"""Deterministic random-number streams.

Every random structure in the library (hyperplanes, corpora, workloads)
derives its generator from an explicit seed plus a *purpose* string, so two
components seeded from the same root never consume each other's stream and
results are reproducible regardless of call order.
"""

from __future__ import annotations

import zlib

import numpy as np

__all__ = ["rng_for", "spawn_rngs"]


def _purpose_key(purpose: str) -> int:
    """Stable 32-bit key for a purpose label (crc32 is stable across runs)."""
    return zlib.crc32(purpose.encode("utf-8"))


def rng_for(seed: int | None, purpose: str) -> np.random.Generator:
    """Return a Generator keyed by ``(seed, purpose)``.

    ``seed=None`` yields a nondeterministic generator (fresh OS entropy), for
    callers that explicitly opt out of reproducibility.
    """
    if seed is None:
        return np.random.default_rng()
    return np.random.default_rng(np.random.SeedSequence([seed, _purpose_key(purpose)]))


def spawn_rngs(seed: int | None, purpose: str, n: int) -> list[np.random.Generator]:
    """Return ``n`` independent generators keyed by ``(seed, purpose, index)``."""
    if seed is None:
        return [np.random.default_rng() for _ in range(n)]
    key = _purpose_key(purpose)
    return [
        np.random.default_rng(np.random.SeedSequence([seed, key, i])) for i in range(n)
    ]
