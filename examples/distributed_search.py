#!/usr/bin/env python
"""Distributed PLSH: an 8-node cluster with a rolling insert window.

Reproduces the system of Figure 1 in miniature: data streams into a rolling
window of M = 2 insert nodes; full windows advance; once every node is at
capacity, the window wraps around and the *oldest* two nodes are retired
wholesale to make room (the paper's timestamp-free expiration).  Queries
are broadcast to every node by the coordinator **concurrently** and the
partial answers are concatenated; the network model accounts for every
message so the communication share of runtime can be reported (paper:
< 1 %).

The finale goes beyond the simulation: ``spawn_local_cluster`` forks real
node *processes* serving the binary TCP protocol, replays a slice of the
same stream, and shows the broadcasts answering bit-identically to the
in-process cluster — then hard-kills one node to demonstrate per-node
failure isolation (the broadcast completes degraded, with the missing
shard named).  A second pass spawns the same cluster with
``replication=2``: each logical shard lives on two node processes, so
the same kill now costs *nothing* — the coordinator fails over to the
sibling replica and the answers stay bit-identical.

Run:  python examples/distributed_search.py
"""

from __future__ import annotations

import numpy as np

from repro import PLSHParams, SyntheticCorpus
from repro.cluster import spawn_local_cluster
from repro.cluster.cluster import PLSHCluster
from repro.cluster.stats import aggregate_node_seconds, load_imbalance
from repro.parallel import fork_available

N_NODES = 8
NODE_CAPACITY = 4_000
INSERT_WINDOW = 2
SEED = 31


def main() -> None:
    # Generate 1.5x the cluster capacity so retirement kicks in.
    total = int(N_NODES * NODE_CAPACITY * 1.5)
    corpus = SyntheticCorpus.generate(total, seed=SEED)
    vectors = corpus.vectors()
    params = PLSHParams(k=16, m=16, radius=0.9, seed=SEED)

    cluster = PLSHCluster(
        n_nodes=N_NODES,
        node_capacity=NODE_CAPACITY,
        dim=corpus.vocab_size,
        params=params,
        insert_window=INSERT_WINDOW,
    )
    print(
        f"cluster: {N_NODES} nodes x {NODE_CAPACITY:,} docs, "
        f"insert window M={INSERT_WINDOW}"
    )

    # Stream the data in; watch the window march and retirement fire.
    BATCH = 2_000
    for start in range(0, total, BATCH):
        cluster.insert(vectors.slice_rows(start, min(start + BATCH, total)))
    occupancy = " ".join(f"{n.n_items // 1000:>2}k" for n in cluster.nodes)
    print(f"after streaming {total:,} docs:")
    print(f"  node occupancy: [{occupancy}]")
    print(
        f"  retirements: {cluster.n_retirements} "
        f"(oldest window erased wholesale; "
        f"{sum(len(r) for r in cluster.retired_ids):,} docs expired)"
    )
    cluster.merge_all()

    # Broadcast queries (one warmup pass so first-touch page faults and
    # allocator warmup don't masquerade as load imbalance).
    _, queries = corpus.query_vectors(20, seed=SEED + 1)
    cluster.query_batch(queries.slice_rows(0, 5))
    outcomes = cluster.query_batch(queries)
    n_results = [len(o.result) for o in outcomes]
    print(
        f"\nbroadcast {queries.n_rows} queries: "
        f"mean {np.mean(n_results):.1f} neighbors/query"
    )

    per_node = aggregate_node_seconds(outcomes)
    imbalance = load_imbalance(list(per_node.values()))
    net_s = sum(o.network_seconds for o in outcomes)
    crit_s = sum(o.critical_path_seconds for o in outcomes)
    print(f"  load imbalance (max/avg node time): {imbalance:.2f}  (paper: <=1.3)")
    print(
        f"  modeled communication: {net_s * 1e3:.2f} ms of "
        f"{crit_s * 1e3:.1f} ms critical path "
        f"({net_s / crit_s:.2%}; paper: <1%)"
    )
    print(
        f"  network traffic: {cluster.network.stats.n_messages:,} messages, "
        f"{cluster.network.stats.bytes_sent / 1e6:.2f} MB"
    )

    # Retired (oldest) documents must be gone from query results.
    retired = set(int(g) for block in cluster.retired_ids for g in block)
    leaked = sum(
        len(set(o.result.indices.tolist()) & retired) for o in outcomes
    )
    print(f"  retired docs appearing in answers: {leaked} (must be 0)")
    assert leaked == 0
    cluster.close()

    if fork_available():
        real_transport_demo(vectors, queries)
    else:
        print("\n(no fork() on this platform; skipping the multi-process demo)")


def real_transport_demo(vectors, queries) -> None:
    """The same cluster logic over real node processes and TCP."""
    print("\n--- real transport: 3 node processes on localhost ---")
    params = PLSHParams(k=16, m=16, radius=0.9, seed=SEED)
    n, capacity = 3, 3_000
    sim = PLSHCluster(n, capacity, vectors.n_cols, params, insert_window=2)
    rpc = spawn_local_cluster(n, capacity, vectors.n_cols, params, insert_window=2)
    try:
        for start in range(0, 6_000, 1_000):
            block = vectors.slice_rows(start, start + 1_000)
            sim.insert(block)
            rpc.insert(block)
        sim_outs = sim.query_batch(queries)
        rpc_outs = rpc.query_batch(queries)
        identical = all(
            np.array_equal(a.result.indices, b.result.indices)
            and np.array_equal(a.result.distances, b.result.distances)
            for a, b in zip(sim_outs, rpc_outs)
        )
        print(f"  broadcast answers bit-identical to in-process: {identical}")
        assert identical
        wire = rpc.coordinator.transport_totals()
        print(
            f"  real wire traffic: {wire['n_messages']} messages, "
            f"{(wire['bytes_sent'] + wire['bytes_received']) / 1e3:.0f} KB "
            f"(modeled query traffic: "
            f"{rpc.network.stats.bytes_sent / 1e3:.0f} KB)"
        )

        # Failure isolation: kill a node process mid-flight.
        rpc.kill_node(1)
        degraded = rpc.query_batch(queries)
        errors = degraded[0].node_errors
        survivors = sum(len(o.result) for o in degraded)
        full = sum(len(o.result) for o in rpc_outs)
        print(
            f"  killed node 1 -> broadcast degraded, not dead: "
            f"{survivors}/{full} answers, degraded={degraded[0].degraded}, "
            f"missing shards {degraded[0].missing_shards}"
        )
        assert 1 in errors and degraded[0].degraded
    finally:
        rpc.close()
        sim.close()

    replicated_failover_demo(vectors, queries, sim_outs)


def replicated_failover_demo(vectors, queries, expected_outs) -> None:
    """Same workload, ``replication=2``: a kill costs nothing."""
    print("\n--- replication=2: 6 processes serving 3 logical shards ---")
    params = PLSHParams(k=16, m=16, radius=0.9, seed=SEED)
    rpc = spawn_local_cluster(
        6, 3_000, vectors.n_cols, params,
        insert_window=2, replication=2,
        op_timeout=5.0, heartbeat_interval=0.25,
    )
    try:
        for start in range(0, 6_000, 1_000):
            rpc.insert(vectors.slice_rows(start, start + 1_000))

        # Kill one replica of shard 1 mid-stream; its sibling carries on.
        rpc.kill_node(2)  # shard 1 = processes {2, 3}
        outs = rpc.query_batch(queries)
        identical = all(
            np.array_equal(a.result.indices, b.result.indices)
            and np.array_equal(a.result.distances, b.result.distances)
            for a, b in zip(expected_outs, outs)
        )
        print(
            f"  killed one replica of shard 1 -> failover; answers "
            f"bit-identical: {identical}, degraded={outs[0].degraded}"
        )
        assert identical and not outs[0].degraded

        for row in rpc.health():
            replicas = " ".join(
                f"node{r['node_id']}:{r['state']}" for r in row["replicas"]
            )
            print(
                f"  shard {row['shard_id']}: "
                f"{row['live_replicas']}/{row['replication']} live  [{replicas}]"
            )
    finally:
        rpc.close()


if __name__ == "__main__":
    main()
