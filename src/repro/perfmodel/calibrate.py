"""Host calibration: the paper's cost model re-fit to this machine.

The paper's constants are cycles on a 2013 Xeon running AVX C++; this
reproduction runs numpy kernels under Python, so the *structure* of the
model is kept (cost = per-collision term + per-unique term + fixed scan;
creation = hashing + partition passes) and the constants are measured on
the host with microbenchmarks.  Figure 6/7 benches then validate the
calibrated model against actual runs — the same experiment the paper does,
one level up.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.index import PLSHIndex
from repro.params import PLSHParams
from repro.perfmodel.cost import CreationCostBreakdown, QueryCostBreakdown
from repro.sparse.csr import CSRMatrix

__all__ = ["HostCostModel", "calibrate_host"]


@dataclass(frozen=True)
class HostCostModel:
    """Measured per-unit costs on this machine (seconds)."""

    #: seconds per (duplicated) collision in Step Q2
    q2_per_collision_s: float
    #: fixed per-query Q2 overhead: scan + bucket gather + bookkeeping.
    #: Unlike the paper's C++ (where per-table overhead is in the noise),
    #: the Python Q2 overhead is dominated by per-table work, so this term
    #: is scaled by L / calibration_L when predicting other configurations.
    q2_fixed_s: float
    #: seconds per unique candidate in Step Q3
    q3_per_unique_s: float
    #: fixed per-query Q3 overhead (kernel launch overheads)
    q3_fixed_s: float
    #: hashing seconds per (non-zero x hash bit)
    hash_per_nnz_bit_s: float
    #: partition seconds per (item x pass) — creation is (L + m) passes
    partition_per_item_pass_s: float
    #: fixed per-pass overhead (bincount/argsort call overhead)
    partition_fixed_per_pass_s: float
    #: L of the configuration the constants were measured at
    calibration_n_tables: int = 1

    def query_cost(
        self,
        n: int,
        expected_collisions: float,
        expected_unique: float,
        n_tables: int | None = None,
    ) -> QueryCostBreakdown:
        """Predicted per-query cost with the calibrated constants."""
        table_scale = 1.0
        if n_tables is not None and self.calibration_n_tables > 0:
            table_scale = n_tables / self.calibration_n_tables
        q2 = self.q2_fixed_s * table_scale
        q2 += self.q2_per_collision_s * expected_collisions
        q3 = self.q3_fixed_s + self.q3_per_unique_s * expected_unique
        return QueryCostBreakdown(q2_bitvector_s=q2, q3_search_s=q3)

    def creation_cost(self, n: int, nnz: float, k: int, m: int) -> CreationCostBreakdown:
        """Predicted construction cost with the calibrated constants."""
        L = m * (m - 1) // 2
        hashing = self.hash_per_nnz_bit_s * n * nnz * m * (k / 2)
        per_pass = self.partition_per_item_pass_s * n + self.partition_fixed_per_pass_s
        # Shared construction: m low passes (I1), L high passes (I2+I3).
        i1 = per_pass * m
        i23 = per_pass * L
        return CreationCostBreakdown(
            hashing_s=hashing, i1_s=i1, i2_s=i23 / 2.0, i3_s=i23 / 2.0
        )


def calibrate_host(
    data: CSRMatrix,
    params: PLSHParams,
    *,
    n_calibration_queries: int = 50,
    seed: int | None = 0,
) -> HostCostModel:
    """Fit :class:`HostCostModel` constants by running small workloads.

    Builds a scratch index over ``data`` (timed for the construction
    constants), runs a query sample with per-stage timers, and solves the
    per-unit costs by least squares over the observed (collisions, unique)
    counts.
    """
    index = PLSHIndex(data.n_cols, params)
    index.build(data)
    build = index.build_times
    n, m, k = data.n_rows, params.m, params.k
    L = params.n_tables
    nnz = data.nnz / max(n, 1)

    hash_per_nnz_bit = build["hashing"] / max(n * nnz * m * (k / 2), 1)
    # insertion time covers L + m partition passes over n items
    per_pass = build["insertion"] / (L + m)
    partition_fixed = 0.2 * per_pass  # attribute a fraction to call overhead
    partition_per_item = (per_pass - partition_fixed) / max(n, 1)

    # Query calibration: measure per-query stage times vs counts.
    rng = np.random.default_rng(seed)
    q_ids = rng.choice(n, size=min(n_calibration_queries, n), replace=False)
    queries = data.gather_rows(q_ids)
    collisions = np.empty(queries.n_rows)
    uniques = np.empty(queries.n_rows)
    q2_times = np.empty(queries.n_rows)
    q3_times = np.empty(queries.n_rows)
    assert index.engine is not None
    engine = index.engine
    for r in range(queries.n_rows):
        st = engine.stats
        c0, u0 = st.n_collisions, st.n_unique
        t2_0 = st.stage_times["q2_dedup"]
        t3_0 = st.stage_times["q3_distance"]
        engine.query_row(queries, r)
        collisions[r] = st.n_collisions - c0
        uniques[r] = st.n_unique - u0
        q2_times[r] = st.stage_times["q2_dedup"] - t2_0
        q3_times[r] = st.stage_times["q3_distance"] - t3_0

    q2_per, q2_fixed = _fit_line(collisions, q2_times)
    q3_per, q3_fixed = _fit_line(uniques, q3_times)
    return HostCostModel(
        q2_per_collision_s=q2_per,
        q2_fixed_s=q2_fixed,
        q3_per_unique_s=q3_per,
        q3_fixed_s=q3_fixed,
        hash_per_nnz_bit_s=hash_per_nnz_bit,
        partition_per_item_pass_s=partition_per_item,
        partition_fixed_per_pass_s=partition_fixed,
        calibration_n_tables=params.n_tables,
    )


def _fit_line(x: np.ndarray, y: np.ndarray) -> tuple[float, float]:
    """Non-negative least-squares fit of ``y = slope*x + intercept``."""
    if x.size < 2 or float(np.ptp(x)) == 0.0:
        mean_x = float(x.mean()) if x.size else 1.0
        mean_y = float(y.mean()) if y.size else 0.0
        if mean_x == 0:
            return 0.0, mean_y
        return mean_y / mean_x, 0.0
    slope, intercept = np.polyfit(x, y, 1)
    slope = max(float(slope), 0.0)
    intercept = max(float(intercept), 0.0)
    return slope, intercept
