"""Cost-model interface parity and tuner behavior under both models."""

from __future__ import annotations

import pytest

from repro.perfmodel.calibrate import HostCostModel
from repro.perfmodel.cost import PaperCostModel
from repro.perfmodel.tuner import ParameterTuner


def _host_model() -> HostCostModel:
    return HostCostModel(
        q2_per_collision_s=1e-8,
        q2_fixed_s=1e-5,
        q3_per_unique_s=5e-8,
        q3_fixed_s=1e-5,
        hash_per_nnz_bit_s=1e-9,
        partition_per_item_pass_s=1e-9,
        partition_fixed_per_pass_s=1e-6,
        calibration_n_tables=100,
    )


class TestInterfaceParity:
    def test_query_cost_breakdowns_share_shape(self):
        paper = PaperCostModel().query_cost(10_000, 5000.0, 1000.0)
        host = _host_model().query_cost(10_000, 5000.0, 1000.0)
        for cost in (paper, host):
            assert cost.total_s == pytest.approx(
                cost.q2_bitvector_s + cost.q3_search_s
            )
            assert cost.total_s > 0

    def test_creation_breakdowns_share_shape(self):
        paper = PaperCostModel().creation_cost(10_000, 7.2, 16, 40)
        host = _host_model().creation_cost(10_000, 7.2, 16, 40)
        for cost in (paper, host):
            assert cost.total_s == pytest.approx(
                cost.hashing_s + cost.insertion_s
            )
            assert cost.insertion_s == pytest.approx(
                cost.i1_s + cost.i2_s + cost.i3_s
            )

    def test_host_fixed_q2_scales_with_tables(self):
        model = _host_model()
        small = model.query_cost(1000, 0.0, 0.0, n_tables=100)
        large = model.query_cost(1000, 0.0, 0.0, n_tables=400)
        assert large.q2_bitvector_s == pytest.approx(
            4 * small.q2_bitvector_s
        )
        # Without n_tables the fixed term is used as calibrated.
        default = model.query_cost(1000, 0.0, 0.0)
        assert default.q2_bitvector_s == pytest.approx(small.q2_bitvector_s)


class TestTunerWithBothModels:
    def test_tuner_accepts_both_models(self, small_vectors, small_queries):
        _, queries = small_queries
        for model in (PaperCostModel(), _host_model()):
            tuner = ParameterTuner(
                small_vectors,
                queries,
                model,
                k_max=10,
                n_query_sample=10,
                n_data_sample=100,
                seed=0,
            )
            best = tuner.best()
            assert best.feasible
            assert best.k % 2 == 0

    def test_host_model_penalizes_large_l(self, small_vectors, small_queries):
        """With a per-table cost the tuner must not always pick max k."""
        _, queries = small_queries
        tuner = ParameterTuner(
            small_vectors,
            queries,
            _host_model(),
            k_max=16,
            n_query_sample=10,
            n_data_sample=200,
            seed=0,
        )
        cands = tuner.candidates()
        best = tuner.best()
        assert best.k < max(c.k for c in cands), (
            "per-table overhead should make the largest k suboptimal"
        )
