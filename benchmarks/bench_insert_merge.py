"""Section 8.6 — streaming insert and merge costs.

Paper numbers (C++ on the Xeon): inserting a 100 k-tweet batch into the
delta tables takes ~400 ms; merging a full 1 M delta into a nearly-full
10.5 M static structure takes ~15 s; at Twitter rates (400 M tweets/day
over M = 4 insert nodes) the total insert+merge overhead is ~2 % of
wall-clock time.

This bench measures batch-insert time and merge time at the configured
scale and then evaluates the same overhead model: given the measured
per-tweet costs, what fraction of a day would a node spend ingesting
Twitter-rate traffic?  Shape to check: merge cost ≈ a static rebuild
(partition-bound), insert cost per tweet well under merge cost per tweet,
and the modeled overhead small.
"""

from __future__ import annotations

from repro.bench.reporting import format_table, print_section
from repro.bench.runner import measure
from repro.streaming.node import StreamingPLSH

TWEETS_PER_DAY = 400e6
INSERT_NODES = 4  # the paper's M


def test_insert_and_merge_costs(benchmark, twitter, scale):
    params = scale.params()
    vectors = twitter.vectors
    capacity = vectors.n_rows
    delta_cap = int(capacity * 0.1)
    batch = max(delta_cap // 4, 1)

    node = StreamingPLSH(
        vectors.n_cols, params, capacity, delta_fraction=0.1, auto_merge=False
    )
    n_static = int(capacity * 0.9)
    node.insert_batch(vectors.slice_rows(0, n_static))
    node.merge_now()

    insert_times = []
    pos = n_static
    while node.n_delta + batch <= delta_cap:
        _, secs = measure(
            lambda p=pos: node.insert_batch(vectors.slice_rows(p, p + batch))
        )
        insert_times.append(secs)
        pos += batch
    _, merge_s = measure(node.merge_now)

    benchmark.pedantic(
        lambda: StreamingPLSH(
            vectors.n_cols, params, capacity, delta_fraction=0.1,
            auto_merge=False,
        ).insert_batch(vectors.slice_rows(0, batch)),
        rounds=2,
        iterations=1,
    )

    insert_s = sum(insert_times) / len(insert_times)
    insert_per_tweet = insert_s / batch
    merge_per_cycle = merge_s  # one merge per delta_cap tweets
    # Overhead model (Section 8.6): each of the M insert nodes ingests
    # (rate / M) tweets/s; every tweet costs insert_per_tweet and every
    # delta_cap tweets cost one merge.
    per_node_rate = TWEETS_PER_DAY / 86400 / INSERT_NODES
    busy_frac = per_node_rate * (
        insert_per_tweet + merge_per_cycle / delta_cap
    )

    rows = [
        ["insert batch size", batch, "", ""],
        ["insert time / batch (ms)", insert_s * 1e3, "paper: 400 ms @ 100k", ""],
        ["insert time / tweet (us)", insert_per_tweet * 1e6, "paper: ~4 us", ""],
        ["merge time (s)", merge_s, "paper: ~15 s @ 10.5M", ""],
        ["merge / tweet of delta (us)", merge_s / delta_cap * 1e6, "", ""],
        ["modeled ingest busy-fraction", f"{busy_frac * 100:.2f}%",
         "paper: ~2%", ""],
    ]
    print_section(
        f"Section 8.6 — insert/merge costs (C={capacity:,}, "
        f"delta cap={delta_cap:,})",
        format_table(["metric", "value", "reference", ""], rows),
    )

    # Shape: per-tweet insert cost must be far below per-tweet merge share,
    # and the merge must be in the same magnitude as a static rebuild.
    assert insert_per_tweet < merge_s / delta_cap * 50
    assert merge_s > 0
