"""Circular-bucket streaming LSH (the paper's rejected alternative)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.params import PLSHParams
from repro.streaming.circular import CircularBucketLSH

PARAMS = PLSHParams(k=8, m=6, radius=0.9, seed=101)


def test_insert_and_query_small(small_vectors):
    lsh = CircularBucketLSH(small_vectors.n_cols, PARAMS, bucket_capacity=8)
    lsh.insert_batch(small_vectors.slice_rows(0, 100))
    cols, vals = small_vectors.row(42)
    res = lsh.query(cols.astype(np.int64), vals)
    assert 42 in res.indices.tolist()


def test_overwrites_start_when_buckets_fill(small_vectors):
    lsh = CircularBucketLSH(small_vectors.n_cols, PARAMS, bucket_capacity=1)
    lsh.insert_batch(small_vectors.slice_rows(0, 500))
    assert lsh.n_overwrites > 0


def test_memory_is_bounded(small_vectors):
    cap = 2
    lsh = CircularBucketLSH(small_vectors.n_cols, PARAMS, bucket_capacity=cap)
    lsh.insert_batch(small_vectors.slice_rows(0, 800))
    for bins in lsh._bins:
        assert all(len(bucket) <= cap for bucket, _ in bins.values())


def test_residency_decays_for_old_items(small_vectors):
    """The paper's objection, quantified: an old point is evicted from
    *some* of its buckets, so its residency falls strictly between 0 and
    full — its expiration time is undefined."""
    lsh = CircularBucketLSH(small_vectors.n_cols, PARAMS, bucket_capacity=1)
    lsh.insert_batch(small_vectors.slice_rows(0, 50))
    fresh = lsh.residency(49)
    lsh.insert_batch(small_vectors.slice_rows(50, 1500))
    stale = lsh.residency(0)
    assert fresh == pytest.approx(1.0)
    assert stale < 1.0


def test_ill_defined_expiration_mixes_generations(small_vectors):
    """Unlike PLSH's wholesale retirement, old and new items coexist in an
    uncontrolled mix after overflow."""
    lsh = CircularBucketLSH(small_vectors.n_cols, PARAMS, bucket_capacity=2)
    lsh.insert_batch(small_vectors.slice_rows(0, 1000))
    residencies = [lsh.residency(i) for i in (0, 250, 500, 750, 999)]
    # Newest fully resident, oldest partially — a decay gradient.
    assert residencies[-1] == pytest.approx(1.0)
    assert min(residencies) < 1.0


def test_query_batch_and_empty(small_vectors, small_queries):
    _, queries = small_queries
    lsh = CircularBucketLSH(small_vectors.n_cols, PARAMS)
    out = lsh.query_batch(queries.slice_rows(0, 2))
    assert all(len(r) == 0 for r in out)  # nothing inserted yet
    lsh.insert_batch(small_vectors.slice_rows(0, 50))
    out = lsh.query_batch(queries.slice_rows(0, 2))
    assert len(out) == 2


def test_validation(small_vectors):
    with pytest.raises(ValueError):
        CircularBucketLSH(10, PARAMS, bucket_capacity=0)
    lsh = CircularBucketLSH(small_vectors.n_cols, PARAMS)
    from repro.sparse.csr import CSRMatrix

    with pytest.raises(ValueError):
        lsh.insert_batch(CSRMatrix.empty(small_vectors.n_cols + 1))
    assert lsh.insert_batch(CSRMatrix.empty(small_vectors.n_cols)).size == 0
