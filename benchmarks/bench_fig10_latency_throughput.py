"""Figure 10 — latency vs throughput for batched query processing.

Paper: sweeping the batch size from 10 to 1000 queries, throughput rises
then saturates around 700 queries/second once ~30 queries are processed
together; latency keeps growing linearly with batch size past that point.

This bench sweeps the batch size and measures BOTH batch execution modes:

* ``mode="loop"``       — the per-query pipeline (the ablation baseline),
  whose batch throughput is dominated by interpreter/numpy-dispatch
  overhead.
* ``mode="vectorized"`` — the batch kernel: Q1-Q4 over the whole block in a
  constant number of numpy calls, so fixed costs amortize across the batch
  exactly like the paper's query-block processing.
* ``mode="pipelined"`` — the cache-blocked pipeline (PR 7): same exact
  answers as vectorized, restructured so each query block's bucket-gather
  and dot-product stages run back-to-back while the block is hot in cache.

``test_fig10_pipelined_memory_bound`` adds the regime the pipeline is
*for*: a 100k-doc shard (default; ``PLSH_BENCH_FIG10_PIPE_N``) where the
vectorized kernel's full-batch intermediates spill out of LLC and the
run goes memory-bound.  There the pipelined kernel must be bit-identical
AND >= 1.3x faster (asserted at full scale on idle hosts; measured
~1.37x on a 1-vCPU host, 2026-08-08).

Both benches write their headline series to ``BENCH_fig10.json`` via
:func:`repro.bench.artifacts.record_artifact`.

Workload: a dedicated per-node shard of ``PLSH_BENCH_FIG10_N`` documents
(default 20,000) queried with ``PLSH_BENCH_FIG10_QUERIES`` queries
(default 1,000 — the paper's batch ceiling).  This is the regime Figure 10
studies — a memory-resident node shard answering large query blocks, where
per-query fixed costs are the battle — and it is where the loop-vs-
vectorized comparison is meaningful; larger shards shift time toward the
shared memory-bound gathers and compress the gap (measured 2026-07-29 on a
single-vCPU host: ~3.7-5.4x at 10k-20k docs, ~3.1-4.4x at 30k, ~1.7-2.4x
at 100k).

Shape to check: vectorized throughput grows with batch size then flattens
(saturation, not collapse); latency grows ~linearly; the loop-vs-vectorized
speedup at paper-sized batches is the headline number printed below the
table.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro import PLSHIndex
from repro.bench.artifacts import record_artifact
from repro.bench.reporting import format_table, print_section
from repro.bench.runner import measure_median
from repro.bench.workloads import BenchScale, twitter_workload
from repro.parallel import fork_available


def test_fig10_latency_throughput(benchmark, scale):
    n_docs = int(os.environ.get("PLSH_BENCH_FIG10_N", "20000"))
    n_q = int(os.environ.get("PLSH_BENCH_FIG10_QUERIES", "1000"))
    fig10_scale = BenchScale(
        n=n_docs, vocab=scale.vocab, n_queries=scale.n_queries,
        k=scale.k, m=scale.m,
    )
    workload = twitter_workload(fig10_scale)
    index = PLSHIndex(workload.vectors.n_cols, fig10_scale.params())
    index.build(workload.vectors)
    engine = index.engine
    assert engine is not None
    ids = workload.corpus.sample_query_ids(n_q, seed=101)
    queries = workload.vectors.gather_rows(ids)
    batch_sizes = [b for b in (10, 20, 30, 50, 100, 200, 500, 1000)
                   if b <= queries.n_rows]

    rows = []
    for batch in batch_sizes:
        qs = queries.slice_rows(0, batch)
        loop_s = measure_median(
            lambda q=qs: engine.query_batch(q, mode="loop"),
            repeats=3,
            warmup=1,
        )
        vec_s = measure_median(
            lambda q=qs: engine.query_batch(q, mode="vectorized"),
            repeats=3,
            warmup=1,
        )
        pipe_s = measure_median(
            lambda q=qs: engine.query_batch(q, mode="pipelined"),
            repeats=3,
            warmup=1,
        )
        rows.append(
            [batch, loop_s * 1e3, vec_s * 1e3, pipe_s * 1e3,
             loop_s / vec_s, vec_s / pipe_s, batch / vec_s]
        )

    benchmark.pedantic(
        lambda: engine.query_batch(
            queries.slice_rows(0, batch_sizes[-1]), mode="vectorized"
        ),
        rounds=2,
        iterations=1,
    )

    # Workers sweep at the paper-sized batch: the vectorized kernel
    # sharded over the persistent pool (repro.parallel), reporting the
    # warm per-batch time and the amortized one-off pool setup.
    big = queries.slice_rows(0, batch_sizes[-1])
    pool_backend = "fork_pool" if fork_available() else "thread"
    n_cpu = os.cpu_count() or 1
    worker_rows = []
    serial_big_s = measure_median(
        lambda: engine.query_batch(big, mode="vectorized", workers=1),
        repeats=3,
        warmup=1,
    )
    for w in [c for c in (1, 2, 4, 8, 16) if c <= max(n_cpu, 2)]:
        if w == 1:
            cold_s = warm_s = serial_big_s
        else:
            start = time.perf_counter()
            engine.query_batch(
                big, mode="vectorized", workers=w, backend=pool_backend
            )
            cold_s = time.perf_counter() - start  # pays pool creation
            warm_s = measure_median(
                lambda ww=w: engine.query_batch(
                    big, mode="vectorized", workers=ww, backend=pool_backend
                ),
                repeats=3,
                warmup=0,
            )
        worker_rows.append(
            [
                w,
                warm_s * 1e3,
                serial_big_s / warm_s,
                (cold_s - warm_s) * 1e3,
                big.n_rows / warm_s,
            ]
        )
    engine.close()

    speedup = rows[-1][4]
    paper_sized = [r for r in rows if r[0] >= 100]
    best = max(paper_sized, key=lambda r: r[4]) if paper_sized else rows[-1]
    sweep_headers = ["batch size", "loop ms", "vectorized ms", "pipelined ms",
                     "loop/vec", "vec/pipe", "vec throughput q/s"]
    print_section(
        f"Figure 10 — latency vs throughput (N={workload.n:,}, "
        f"{queries.n_rows} queries)",
        format_table(sweep_headers, rows)
        + f"\nvectorized batch kernel speedup at batch={batch_sizes[-1]}: "
        f"{speedup:.1f}x over mode='loop' "
        f"(best paper-sized operating point: {best[4]:.1f}x at "
        f"batch={best[0]})"
        + "\npaper: throughput saturates ~700 q/s at batch ~30, latency grows"
        + f"\n\nworkers sweep at batch={big.n_rows} (vectorized kernel "
        f"sharded over the persistent {pool_backend}; host has {n_cpu} "
        f"cpus):\n"
        + format_table(
            ["workers", "warm ms", "spd vs w=1", "pool setup ms",
             "throughput q/s"],
            worker_rows,
        )
        + "\n'pool setup ms' is the one-off cost the first batch pays "
        "(fork of the parent); warm batches ride the persistent pool",
    )

    record_artifact("fig10", "latency_throughput", {
        "n_docs": workload.n,
        "n_queries": queries.n_rows,
        "columns": sweep_headers,
        "rows": rows,
        "loop_vs_vectorized_speedup_at_max_batch": speedup,
        "best_paper_sized_speedup": best[4],
        "best_paper_sized_batch": best[0],
        "workers_columns": ["workers", "warm ms", "speedup_vs_w1",
                            "pool_setup_ms", "throughput_qps"],
        "workers_rows": worker_rows,
        "pool_backend": pool_backend,
        "n_cpu": n_cpu,
    })

    # Shape: vectorized throughput at the largest batch must be at least
    # that of the smallest batch (saturation, not collapse), and latency
    # must increase with batch size overall.
    assert rows[-1][6] >= rows[0][6] * 0.8
    assert rows[-1][2] > rows[0][2]
    # The batch kernel is the point of this reproduction rung: on the
    # default workload (>= 10k docs, >= 1k queries) it must beat the
    # per-query loop by at least 3x at some paper-sized batch (>= 100
    # queries; measured 3.2-4.2x across batch sizes on an idle 1-vCPU
    # host, asserted at the best operating point so a noisy host's worst
    # row doesn't flake the guard).  Tiny smoke scales (CI) only exercise
    # the mechanics, so the bar applies in the Figure 10 regime only.
    if n_docs >= 10_000 and batch_sizes[-1] >= 500:
        assert best[4] >= 3.0, (
            f"vectorized batch kernel only {best[4]:.2f}x over loop at its "
            f"best paper-sized batch (batch={best[0]})"
        )


def test_fig10_pipelined_memory_bound(benchmark, scale):
    """The 100k-doc rung where the pipelined kernel earns its keep.

    At 10-20k docs the whole shard's dense image and the batch's
    intermediates fit in cache and ``vectorized`` vs ``pipelined`` is a
    wash; at 100k docs the vectorized kernel streams its full-batch
    candidate arrays through memory and the cache-blocked pipeline pulls
    ahead.  Timing interleaves the two modes (A,B,A,B,...) so host noise
    drifts into both estimates equally, and the asserted speedup is the
    better of two robust estimators — the ratio of per-mode minima and
    the ratio of per-mode medians.  Each is independently deflatable by
    noise (one lucky window for the slower mode sinks the min-ratio; a
    load burst during the faster mode's windows sinks the median-ratio)
    while inflation requires noise to consistently hit only the slower
    mode across interleaved repeats; on an idle host the two converge
    (this shared 1-vCPU box measured the same build at 1.26x-1.40x
    across runs).  Bit-identity is asserted on every run; the >= 1.3x
    floor only at full scale (it is meaningless on CI smoke sizes).
    """
    n_docs = int(os.environ.get("PLSH_BENCH_FIG10_PIPE_N", "100000"))
    n_q = int(os.environ.get("PLSH_BENCH_FIG10_PIPE_QUERIES", "1000"))
    repeats = int(os.environ.get("PLSH_BENCH_FIG10_PIPE_REPEATS", "9"))
    fig10_scale = BenchScale(
        n=n_docs, vocab=scale.vocab, n_queries=scale.n_queries,
        k=scale.k, m=scale.m,
    )
    workload = twitter_workload(fig10_scale)
    index = PLSHIndex(workload.vectors.n_cols, fig10_scale.params())
    index.build(workload.vectors)
    engine = index.engine
    assert engine is not None
    ids = workload.corpus.sample_query_ids(n_q, seed=202)
    queries = workload.vectors.gather_rows(ids)

    vec_res = engine.query_batch(queries, mode="vectorized")  # also warmup
    pipe_res = engine.query_batch(queries, mode="pipelined")
    for a, b in zip(vec_res, pipe_res):
        np.testing.assert_array_equal(a.indices, b.indices)
        np.testing.assert_array_equal(a.distances, b.distances)

    vec_times, pipe_times = [], []
    for _ in range(repeats):
        start = time.perf_counter()
        engine.query_batch(queries, mode="vectorized")
        vec_times.append(time.perf_counter() - start)
        start = time.perf_counter()
        engine.query_batch(queries, mode="pipelined")
        pipe_times.append(time.perf_counter() - start)
    vec_best, pipe_best = min(vec_times), min(pipe_times)
    vec_med = sorted(vec_times)[len(vec_times) // 2]
    pipe_med = sorted(pipe_times)[len(pipe_times) // 2]
    speedup_best = vec_best / pipe_best
    speedup_med = vec_med / pipe_med

    benchmark.pedantic(
        lambda: engine.query_batch(queries, mode="pipelined"),
        rounds=2,
        iterations=1,
    )
    engine.close()

    print_section(
        f"Figure 10 — pipelined kernel, memory-bound rung "
        f"(N={workload.n:,}, {queries.n_rows} queries, {repeats} "
        "interleaved repeats)",
        format_table(
            ["mode", "best ms", "median ms"],
            [
                ["vectorized", vec_best * 1e3, vec_med * 1e3],
                ["pipelined", pipe_best * 1e3, pipe_med * 1e3],
            ],
        )
        + f"\npipelined speedup: {speedup_best:.2f}x (best-of-"
        f"{repeats}), {speedup_med:.2f}x (median) — answers bit-identical"
        + "\nfloor at full scale: >= 1.3x (cache-blocked pipeline vs "
        "memory-bound full-batch kernel)",
    )
    record_artifact("fig10", "pipelined_memory_bound", {
        "n_docs": workload.n,
        "n_queries": queries.n_rows,
        "repeats_interleaved": repeats,
        "vectorized_best_s": vec_best,
        "vectorized_median_s": vec_med,
        "pipelined_best_s": pipe_best,
        "pipelined_median_s": pipe_med,
        "speedup_best": speedup_best,
        "speedup_median": speedup_med,
        "bit_identical": True,
    })

    if n_docs >= 100_000:
        speedup = max(speedup_best, speedup_med)
        assert speedup >= 1.3, (
            f"pipelined kernel only {speedup:.2f}x over vectorized at "
            f"N={n_docs:,} (best-of-{repeats} {speedup_best:.2f}x, median "
            f"{speedup_med:.2f}x; medians {vec_med * 1e3:.0f} ms vs "
            f"{pipe_med * 1e3:.0f} ms)"
        )
