"""ClusterNode tests: global-id translation, deletion routing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.node import ClusterNode
from repro.core.hashing import AllPairsHasher
from repro.params import PLSHParams

PARAMS = PLSHParams(k=8, m=6, radius=0.9, seed=41)


@pytest.fixture(scope="module")
def node(small_vectors):
    hasher = AllPairsHasher(PARAMS, small_vectors.n_cols)
    node = ClusterNode(0, small_vectors.n_cols, PARAMS, 1000, hasher)
    node.insert_batch(
        small_vectors.slice_rows(0, 300),
        np.arange(5000, 5300),  # global ids offset from local
    )
    return node


def test_query_returns_global_ids(node, small_vectors):
    cols, vals = small_vectors.row(42)
    res = node.query(cols.astype(np.int64), vals)
    assert 5042 in res.indices.tolist()
    assert all(5000 <= g < 5300 for g in res.indices.tolist())


def test_insert_size_mismatch_raises(node, small_vectors):
    with pytest.raises(ValueError):
        node.insert_batch(small_vectors.slice_rows(0, 5), np.arange(4))


def test_delete_by_global_id(small_vectors):
    hasher = AllPairsHasher(PARAMS, small_vectors.n_cols)
    node = ClusterNode(1, small_vectors.n_cols, PARAMS, 1000, hasher)
    node.insert_batch(small_vectors.slice_rows(0, 100), np.arange(900, 1000))
    assert node.delete_global(np.asarray([950, 999])) == 2
    # Unknown ids are ignored.
    assert node.delete_global(np.asarray([1, 2])) == 0
    cols, vals = small_vectors.row(50)
    res = node.query(cols.astype(np.int64), vals)
    assert 950 not in res.indices.tolist()


def test_retire_returns_dropped_ids(small_vectors):
    hasher = AllPairsHasher(PARAMS, small_vectors.n_cols)
    node = ClusterNode(2, small_vectors.n_cols, PARAMS, 1000, hasher)
    node.insert_batch(small_vectors.slice_rows(0, 40), np.arange(40))
    dropped = node.retire()
    np.testing.assert_array_equal(dropped, np.arange(40))
    assert node.n_items == 0
    assert node.free_capacity == 1000


def test_capacity_properties(small_vectors):
    hasher = AllPairsHasher(PARAMS, small_vectors.n_cols)
    node = ClusterNode(3, small_vectors.n_cols, PARAMS, 50, hasher)
    node.insert_batch(small_vectors.slice_rows(0, 50), np.arange(50))
    assert node.is_full
    assert node.free_capacity == 0


def test_id_map_corruption_is_runtime_error(small_vectors):
    """Regression: the contiguity guard must be a RuntimeError (an
    AssertionError vanishes under ``python -O`` and the id map would
    silently corrupt)."""
    hasher = AllPairsHasher(PARAMS, small_vectors.n_cols)
    node = ClusterNode(4, small_vectors.n_cols, PARAMS, 1000, hasher)
    node.insert_batch(small_vectors.slice_rows(0, 10), np.arange(10))
    # Rows slipped in behind the node's back desynchronize local ids
    # from the global-id map; the next tracked insert must refuse.
    node.plsh.insert_batch(small_vectors.slice_rows(10, 15))
    with pytest.raises(RuntimeError, match="id map"):
        node.insert_batch(small_vectors.slice_rows(15, 20), np.arange(10, 15))


def test_restore_rejects_mismatched_id_map(small_vectors):
    hasher = AllPairsHasher(PARAMS, small_vectors.n_cols)
    donor = ClusterNode(5, small_vectors.n_cols, PARAMS, 1000, hasher)
    donor.insert_batch(small_vectors.slice_rows(0, 20), np.arange(20))
    with pytest.raises(ValueError, match="global ids"):
        ClusterNode.restore(5, donor.plsh, np.arange(19))


def test_merge_lifecycle_delegates(small_vectors):
    """The handle-protocol merge methods drive the wrapped StreamingPLSH."""
    hasher = AllPairsHasher(PARAMS, small_vectors.n_cols)
    node = ClusterNode(6, small_vectors.n_cols, PARAMS, 1000, hasher)
    node.insert_batch(small_vectors.slice_rows(0, 60), np.arange(60))
    assert node.begin_merge()
    assert node.merge_in_flight
    assert node.commit_merge(wait=True)
    assert not node.merge_in_flight
    node.insert_batch(small_vectors.slice_rows(60, 80), np.arange(60, 80))
    node.merge_now()
    assert node.plsh.n_delta == 0
