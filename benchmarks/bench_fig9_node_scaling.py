"""Figure 9 — scaling on multiple nodes (weak scaling), two transports.

Paper: with the data per node fixed at 10.5 M tweets, creation and query
times stay flat from 1 to 100 nodes ("flat lines indicate perfect
scaling"), load balance (max/avg) stays below 1.3, and query communication
is under 20 ms per 1000-query batch (< 1 % of runtime).

Three benches:

* ``test_fig9_node_scaling`` holds data-per-node constant and sweeps the
  node count over the in-process simulation, reporting per-node init and
  query times, load imbalance, and the modeled communication fraction.
* ``test_fig9_concurrent_broadcast`` measures the coordinator's
  concurrent fan-out against the old serial per-node loop on the same
  cluster — bit-identical answers, wall-clock below the serial sum on
  multi-core hosts (the per-node kernels release the GIL).
* ``test_fig9_rpc_cluster`` spawns a real multi-process cluster
  (``spawn_local_cluster``) next to the simulation, checks broadcasts
  are bit-identical, and reports measured vs modeled communication:
  load-balance ratio per backend, per-node wire share (coordinator wall
  minus server compute), and real transport bytes vs the NetworkModel's.
  PR 7 makes the byte comparison batch-isolated (reset counters, run one
  paper-sized broadcast, read ``transport_totals()``), counts shm ring
  payloads alongside TCP, and holds the model within 2x of the measured
  batch — plus the compact-dtype budget: <= 0.4 MB for the 200-query,
  3-node batch that cost 1.06 MB before PR 7.
* ``test_fig9_availability`` measures serving under failure: answer
  coverage (share of the full answer set still returned) after 0, 1 and
  2 node kills at replication 1 vs 2, and the latency cost of failover —
  the first broadcast after a kill (pays dead-connection discovery)
  against the steady state before and after.  At R=2 coverage must hold
  at 100 % with bit-identical answers through both kills; at R=1 each
  kill honestly removes one shard's contribution (``degraded=True``).
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.bench.artifacts import record_artifact
from repro.bench.reporting import format_table, print_section
from repro.cluster.cluster import PLSHCluster
from repro.cluster.coordinator import Coordinator
from repro.cluster.network import NetworkModel
from repro.cluster.stats import aggregate_node_seconds, load_imbalance


def test_fig9_node_scaling(benchmark, twitter, scale):
    params = scale.params()
    per_node = int(os.environ.get("PLSH_BENCH_FIG9_PER_NODE", "10000"))
    max_nodes = int(os.environ.get("PLSH_BENCH_FIG9_MAX_NODES", "8"))
    node_counts = [n for n in (1, 2, 4, 8, 16) if n <= max_nodes]
    queries = twitter.queries.slice_rows(0, min(50, twitter.queries.n_rows))

    rows = []
    last_cluster = None
    for n_nodes in node_counts:
        need = n_nodes * per_node
        reps = -(-need // twitter.n)
        if reps > 1:
            from repro.sparse.csr import CSRMatrix

            data = CSRMatrix.vstack([twitter.vectors] * reps).slice_rows(0, need)
        else:
            data = twitter.vectors.slice_rows(0, need)

        cluster = PLSHCluster(
            n_nodes=n_nodes,
            node_capacity=per_node,
            dim=twitter.vectors.n_cols,
            params=params,
            insert_window=min(4, n_nodes),
        )
        # Per-node init: fill each node and force the merge (rebuild).
        init_times = []
        pos = 0
        for node in cluster.nodes:
            start = time.perf_counter()
            node.insert_batch(
                data.slice_rows(pos, pos + per_node),
                np.arange(pos, pos + per_node),
            )
            node.plsh.merge_now()
            init_times.append(time.perf_counter() - start)
            pos += per_node
        # Serial fan-out for the *measurement*: under the concurrent
        # broadcast a node's wall time includes GIL waits on fewer-core
        # hosts, which would report thread scheduling as data imbalance.
        # Figure 9's load-balance ratio is about shard sizes; the
        # concurrent path has its own bench below.
        cluster.coordinator.concurrent = False
        # Two passes, keeping each node's faster total: one-off scheduler
        # pauses on a small shared host would otherwise masquerade as load
        # imbalance.
        cluster.query_batch(queries.slice_rows(0, 5))  # warmup
        totals_a = aggregate_node_seconds(cluster.query_batch(queries))
        outcomes = cluster.query_batch(queries)
        totals_b = aggregate_node_seconds(outcomes)
        node_totals = {
            nid: min(totals_a[nid], totals_b[nid]) for nid in totals_a
        }
        query_times = list(node_totals.values())
        net_s = sum(o.network_seconds for o in outcomes)
        compute_s = sum(query_times)
        rows.append(
            [
                n_nodes,
                min(init_times) * 1e3,
                sum(init_times) / len(init_times) * 1e3,
                max(init_times) * 1e3,
                min(query_times) * 1e3,
                sum(query_times) / len(query_times) * 1e3,
                max(query_times) * 1e3,
                load_imbalance(query_times),
                net_s / max(net_s + max(query_times), 1e-12) * 100,
            ]
        )
        last_cluster = cluster

    assert last_cluster is not None
    benchmark.pedantic(
        lambda: last_cluster.query_batch(queries.slice_rows(0, 10)),
        rounds=2,
        iterations=1,
    )

    print_section(
        f"Figure 9 — node scaling ({per_node:,} docs/node, "
        f"{queries.n_rows} queries)",
        format_table(
            ["nodes", "init min ms", "init avg ms", "init max ms",
             "query min ms", "query avg ms", "query max ms",
             "load imbal", "comm %"],
            rows,
        )
        + "\npaper: flat init/query vs node count; load balance <= 1.3;"
          " communication < 1 % at 100 nodes",
    )
    record_artifact("fig9", "node_scaling", {
        "per_node_docs": per_node,
        "n_queries": queries.n_rows,
        "columns": ["nodes", "init_min_ms", "init_avg_ms", "init_max_ms",
                    "query_min_ms", "query_avg_ms", "query_max_ms",
                    "load_imbalance", "comm_pct"],
        "rows": rows,
    })

    # Shape: weak scaling — per-node init times stay flat (within 2x) as the
    # node count grows, and load imbalance stays moderate.
    init_avgs = [r[2] for r in rows]
    assert max(init_avgs) < 2.0 * min(init_avgs)
    assert all(r[7] < 2.0 for r in rows)


def _fill_cluster(cluster: PLSHCluster, data, per_node: int) -> None:
    pos = 0
    for node in cluster.nodes:
        node.insert_batch(
            data.slice_rows(pos, pos + per_node),
            np.arange(pos, pos + per_node),
        )
        node.merge_now()
        pos += per_node


def test_fig9_concurrent_broadcast(benchmark, twitter, scale):
    """Concurrent fan-out vs the old serial per-node loop, same cluster."""
    params = scale.params()
    per_node = int(os.environ.get("PLSH_BENCH_FIG9_PER_NODE", "10000"))
    n_nodes = int(os.environ.get("PLSH_BENCH_FIG9_BCAST_NODES", "4"))
    n_queries = int(os.environ.get("PLSH_BENCH_FIG9_BCAST_QUERIES", "200"))
    queries = twitter.queries.slice_rows(0, min(n_queries, twitter.queries.n_rows))

    need = n_nodes * per_node
    reps = -(-need // twitter.n)
    if reps > 1:
        from repro.sparse.csr import CSRMatrix

        data = CSRMatrix.vstack([twitter.vectors] * reps).slice_rows(0, need)
    else:
        data = twitter.vectors.slice_rows(0, need)

    with PLSHCluster(
        n_nodes=n_nodes, node_capacity=per_node,
        dim=twitter.vectors.n_cols, params=params,
        insert_window=min(4, n_nodes),
    ) as cluster:
        _fill_cluster(cluster, data, per_node)
        serial = Coordinator(cluster.nodes, NetworkModel(), concurrent=False)
        try:
            # Warmup both paths, then best-of-two per mode.
            cluster.query_batch(queries.slice_rows(0, 5))
            serial.query_batch(queries.slice_rows(0, 5))

            def run(coord):
                start = time.perf_counter()
                outs = coord.query_batch(queries)
                return time.perf_counter() - start, outs

            serial_wall, serial_outs = min(
                (run(serial) for _ in range(2)), key=lambda t: t[0]
            )
            conc_wall, conc_outs = min(
                (run(cluster.coordinator) for _ in range(2)), key=lambda t: t[0]
            )
            serial_sum = sum(
                aggregate_node_seconds(serial_outs).values()
            )
            for a, b in zip(serial_outs, conc_outs):
                np.testing.assert_array_equal(a.result.indices, b.result.indices)
                np.testing.assert_array_equal(
                    a.result.distances, b.result.distances
                )
        finally:
            serial.close()

        benchmark.pedantic(
            lambda: cluster.coordinator.query_batch(queries.slice_rows(0, 10)),
            rounds=2,
            iterations=1,
        )

    print_section(
        f"Figure 9 — concurrent broadcast ({n_nodes} nodes x {per_node:,} docs, "
        f"{queries.n_rows} queries, {os.cpu_count()} vCPU)",
        format_table(
            ["mode", "batch wall ms", "sum node ms"],
            [
                ["serial loop", serial_wall * 1e3, serial_sum * 1e3],
                ["concurrent", conc_wall * 1e3,
                 sum(aggregate_node_seconds(conc_outs).values()) * 1e3],
            ],
        )
        + "\nanswers bit-identical; concurrent wall tracks the slowest node"
          " where cores allow (paper: per-node times overlap fully)",
    )
    record_artifact("fig9", "concurrent_broadcast", {
        "n_nodes": n_nodes,
        "per_node_docs": per_node,
        "n_queries": queries.n_rows,
        "serial_wall_s": serial_wall,
        "serial_sum_node_s": serial_sum,
        "concurrent_wall_s": conc_wall,
        "speedup_vs_serial_sum": serial_sum / conc_wall if conc_wall else 0.0,
    })

    # Shape: the concurrent fan-out must beat the old serial sum-over-nodes
    # wherever there is real parallel hardware and enough work to overlap.
    if (os.cpu_count() or 1) >= 2 and serial_wall >= 0.05:
        assert conc_wall < 0.9 * serial_sum, (
            f"concurrent broadcast {conc_wall * 1e3:.1f} ms not below "
            f"90% of serial sum {serial_sum * 1e3:.1f} ms"
        )


def test_fig9_rpc_cluster(benchmark, twitter, scale):
    """Real multi-process cluster vs the simulation: identity + comm share."""
    from repro.cluster import spawn_local_cluster
    from repro.parallel import fork_available

    if not fork_available():
        import pytest

        pytest.skip("spawn_local_cluster requires fork()")

    params = scale.params()
    per_node = int(os.environ.get("PLSH_BENCH_FIG9_RPC_PER_NODE", "5000"))
    n_nodes = int(os.environ.get("PLSH_BENCH_FIG9_RPC_NODES", "3"))
    n_queries = int(os.environ.get("PLSH_BENCH_FIG9_RPC_QUERIES", "200"))
    queries = twitter.queries.slice_rows(0, min(n_queries, twitter.queries.n_rows))
    need = n_nodes * per_node
    data = twitter.vectors.slice_rows(0, min(need, twitter.n))
    per_node = data.n_rows // n_nodes

    sim = PLSHCluster(
        n_nodes=n_nodes, node_capacity=per_node,
        dim=twitter.vectors.n_cols, params=params,
        insert_window=min(4, n_nodes),
    )
    rpc = spawn_local_cluster(
        n_nodes, per_node, twitter.vectors.n_cols, params,
        insert_window=min(4, n_nodes),
    )
    try:
        _fill_cluster(sim, data, per_node)
        _fill_cluster(rpc, data, per_node)

        sim.query_batch(queries.slice_rows(0, 5))  # warmup
        rpc.query_batch(queries.slice_rows(0, 5))
        fill_transport = rpc.coordinator.transport_totals()  # fill + warmup
        # Batch isolation (PR 7): zero every byte counter — measured AND
        # modeled — so the totals read back below are the cost of exactly
        # one paper-sized batch, directly comparable to the model's charge
        # for that same batch.
        rpc.coordinator.reset_transport_stats()
        rpc.network.stats.reset()
        start = time.perf_counter()
        sim_outs = sim.query_batch(queries)
        sim_wall = time.perf_counter() - start
        start = time.perf_counter()
        rpc_outs = rpc.query_batch(queries)
        rpc_wall = time.perf_counter() - start
        batch_transport = rpc.coordinator.transport_totals()
        batch_modeled_msgs = rpc.network.stats.n_messages
        batch_modeled_bytes = rpc.network.stats.bytes_sent
        shm_nodes = sum(
            1 for h in rpc.nodes if getattr(h, "shm_active", False)
        )

        for a, b in zip(sim_outs, rpc_outs):
            np.testing.assert_array_equal(a.result.indices, b.result.indices)
            np.testing.assert_array_equal(a.result.distances, b.result.distances)

        sim_totals = aggregate_node_seconds(sim_outs)
        rpc_totals = aggregate_node_seconds(rpc_outs)
        # Per-node wire share: coordinator-side wall minus server compute.
        compute = {
            node.node_id: node.last_compute_seconds for node in rpc.nodes
        }
        # aggregate_node_seconds sums the per-query shares back to the
        # node's whole-batch seconds, so compute/total is the right ratio.
        wire_share = {
            nid: 1.0 - compute[nid] / rpc_totals[nid]
            if rpc_totals[nid] > 0 else 0.0
            for nid in rpc_totals
        }
        benchmark.pedantic(
            lambda: rpc.query_batch(queries.slice_rows(0, 10)),
            rounds=2,
            iterations=1,
        )
    finally:
        rpc.close()
        sim.close()

    rows = [
        ["in-process", sim_wall * 1e3,
         load_imbalance(list(sim_totals.values())), 0.0],
        ["multi-process", rpc_wall * 1e3,
         load_imbalance(list(rpc_totals.values())),
         100 * max(0.0, sum(wire_share.values()) / len(wire_share))],
    ]
    measured_batch = batch_transport["total_bytes"]
    tcp_batch = batch_transport["bytes_sent"] + batch_transport["bytes_received"]
    shm_batch = (
        batch_transport["shm_bytes_sent"] + batch_transport["shm_bytes_received"]
    )
    fill_mb = (
        (fill_transport["total_bytes"]) / 1e6 if fill_transport else 0.0
    )
    print_section(
        f"Figure 9 — real transport ({n_nodes} node processes x "
        f"{per_node:,} docs, {queries.n_rows} queries, "
        f"{shm_nodes}/{n_nodes} nodes on shm)",
        format_table(
            ["backend", "batch wall ms", "load imbal", "comm share %"],
            rows,
        )
        + f"\nbatch-isolated traffic for the {queries.n_rows}-query "
          f"broadcast: {batch_transport['n_messages']} messages, "
          f"{measured_batch / 1e6:.3f} MB total = "
          f"{tcp_batch / 1e6:.3f} MB tcp + {shm_batch / 1e6:.3f} MB shm"
        + f"\nmodeled for the same batch: {batch_modeled_msgs} messages, "
          f"{batch_modeled_bytes / 1e6:.3f} MB "
          f"(measured/modeled = "
          f"{measured_batch / max(batch_modeled_bytes, 1):.2f}x; held <= 2x)"
        + f"\ncumulative incl. fill + warmup: {fill_mb:.2f} MB "
          "(PR 4 measured 1.06 MB for this workload, fill included, before "
          "compact wire dtypes)"
        + "\npaper: communication < 1% of runtime at 100 nodes over Infiniband;"
          " localhost TCP pays serialization, so the share is honest, not tiny",
    )
    record_artifact("fig9", "rpc_transport", {
        "n_nodes": n_nodes,
        "per_node_docs": per_node,
        "n_queries": queries.n_rows,
        "shm_nodes": shm_nodes,
        "sim_wall_s": sim_wall,
        "rpc_wall_s": rpc_wall,
        "batch_messages": batch_transport["n_messages"],
        "batch_tcp_bytes": tcp_batch,
        "batch_shm_bytes": shm_batch,
        "batch_total_bytes": measured_batch,
        "batch_modeled_messages": batch_modeled_msgs,
        "batch_modeled_bytes": batch_modeled_bytes,
        "fill_total_bytes": (
            fill_transport["total_bytes"] if fill_transport else 0
        ),
        "bit_identical_to_sim": True,
    })

    # Shape: both backends answered bit-identically (asserted above) and
    # the load-balance metric stays sane over the real transport.
    assert load_imbalance(list(rpc_totals.values())) < 2.0
    # Model calibration (PR 7): per-message framing + payload charges must
    # track the measured wire+shm bytes within 2x in either direction.
    if measured_batch and batch_modeled_bytes:
        ratio = measured_batch / batch_modeled_bytes
        assert 0.5 <= ratio <= 2.0, (
            f"NetworkModel {batch_modeled_bytes} B vs measured "
            f"{measured_batch} B for the same batch ({ratio:.2f}x)"
        )
    # Compact wire dtypes (PR 7): the paper-sized 200-query, 3-node batch
    # must fit in 0.4 MB of combined tcp+shm traffic (PR 4: 1.06 MB).
    if n_nodes == 3 and queries.n_rows >= 200:
        assert measured_batch <= 400_000, (
            f"batch-isolated traffic {measured_batch} B exceeds the 0.4 MB "
            "compact-dtype budget"
        )


def test_fig9_availability(benchmark, twitter, scale):
    """Answer coverage and failover latency under node kills, R=1 vs R=2."""
    from repro.cluster import spawn_local_cluster
    from repro.parallel import fork_available

    if not fork_available():
        import pytest

        pytest.skip("spawn_local_cluster requires fork()")

    params = scale.params()
    per_node = int(os.environ.get("PLSH_BENCH_FIG9_AVAIL_PER_NODE", "3000"))
    n_shards = 3
    n_queries = int(os.environ.get("PLSH_BENCH_FIG9_AVAIL_QUERIES", "100"))
    queries = twitter.queries.slice_rows(0, min(n_queries, twitter.queries.n_rows))
    data = twitter.vectors.slice_rows(0, min(n_shards * per_node, twitter.n))
    per_node = data.n_rows // n_shards

    # Ground truth: the full (nothing-killed) answers from the simulation.
    with PLSHCluster(
        n_nodes=n_shards, node_capacity=per_node,
        dim=twitter.vectors.n_cols, params=params,
        insert_window=min(4, n_shards),
    ) as sim:
        _fill_cluster(sim, data, per_node)
        full_outs = sim.query_batch(queries)
    full_total = sum(len(o.result) for o in full_outs)

    def run_kills(replication: int):
        """Kill 0, 1, 2 nodes progressively; report coverage + latency."""
        rpc = spawn_local_cluster(
            n_shards * replication, per_node, twitter.vectors.n_cols, params,
            insert_window=min(4, n_shards), replication=replication,
            op_timeout=10.0,
        )
        rows = []
        try:
            # Fill shard-wise: a ReplicaGroup fans each insert to all its
            # replicas, so both copies of a shard hold identical data.
            pos = 0
            for shard in rpc.shards:
                shard.insert_batch(
                    data.slice_rows(pos, pos + per_node),
                    np.arange(pos, pos + per_node),
                )
                shard.merge_now()
                pos += per_node
            rpc.query_batch(queries.slice_rows(0, 5))  # warmup
            # One replica each from two *different* shards, so R=2 always
            # keeps a live sibling (one kill per shard is its design point).
            victims = [0 * replication, 1 * replication + (replication - 1)]
            for n_kills in (0, 1, 2):
                if n_kills:
                    rpc.kill_node(victims[n_kills - 1])
                start = time.perf_counter()
                first_outs = rpc.query_batch(queries)  # pays failover
                first_wall = time.perf_counter() - start
                start = time.perf_counter()
                steady_outs = rpc.query_batch(queries)
                steady_wall = time.perf_counter() - start
                coverage = sum(len(o.result) for o in steady_outs) / max(
                    full_total, 1
                )
                degraded = steady_outs[0].degraded
                rows.append(
                    [f"R={replication}", n_kills, coverage * 100,
                     "yes" if degraded else "no",
                     first_wall * 1e3, steady_wall * 1e3]
                )
                if replication == 2:
                    # Failover must be invisible in the answers.
                    for a, b in zip(full_outs, first_outs):
                        np.testing.assert_array_equal(
                            a.result.indices, b.result.indices
                        )
                        np.testing.assert_array_equal(
                            a.result.distances, b.result.distances
                        )
                    assert not degraded
                elif n_kills:
                    assert degraded and len(steady_outs[0].missing_shards) == n_kills
        finally:
            rpc.close()
        return rows

    rows = run_kills(1) + run_kills(2)

    with PLSHCluster(
        n_nodes=n_shards, node_capacity=per_node,
        dim=twitter.vectors.n_cols, params=params,
        insert_window=min(4, n_shards),
    ) as bench_sim:
        _fill_cluster(bench_sim, data, per_node)
        benchmark.pedantic(
            lambda: bench_sim.query_batch(queries.slice_rows(0, 10)),
            rounds=2,
            iterations=1,
        )

    print_section(
        f"Availability — {n_shards} shards x {per_node:,} docs, "
        f"{queries.n_rows} queries, progressive kills",
        format_table(
            ["cluster", "kills", "coverage %", "degraded",
             "first bcast ms", "steady ms"],
            rows,
        )
        + "\nR=2 holds 100% coverage with bit-identical answers through both"
          " kills (one per shard); R=1 sheds one shard per kill and says so."
          "\nfirst broadcast after a kill pays dead-connection discovery;"
          " the steady state pays nothing",
    )

    # Shape: R=2 coverage never moves; R=1 coverage strictly decreases.
    r1 = [r for r in rows if r[0] == "R=1"]
    r2 = [r for r in rows if r[0] == "R=2"]
    assert all(abs(r[2] - 100.0) < 1e-9 for r in r2)
    assert r1[0][2] >= r1[1][2] >= r1[2][2]
    assert r1[2][2] < 100.0 or full_total == 0
