"""Saving and loading built PLSH indexes.

The paper's system is memory-resident and rebuilt from the firehose, but an
adoptable library needs restartability: a built static index (tables,
cached hash values, data, hyperplanes) round-trips through one ``.npz``
archive.  Loading restores an index that answers queries identically —
including the hash functions, which are stored rather than re-drawn so a
reloaded index agrees with peers built from the same seed.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.core.hashing import AllPairsHasher
from repro.core.index import PLSHIndex
from repro.core.tables import StaticTableSet
from repro.params import PLSHParams
from repro.sparse.csr import CSRMatrix

__all__ = ["save_index", "load_index"]

_FORMAT_VERSION = 1


def save_index(index: PLSHIndex, path: str | Path) -> None:
    """Serialize a built index to ``path`` (an ``.npz`` archive)."""
    if not index.is_built:
        raise ValueError("cannot save an index that has not been built")
    assert index.data is not None
    assert index.u_values is not None
    assert index.tables is not None
    meta = {
        "format_version": _FORMAT_VERSION,
        "dim": index.dim,
        "params": {
            "k": index.params.k,
            "m": index.params.m,
            "radius": index.params.radius,
            "delta": index.params.delta,
            "seed": index.params.seed,
        },
        "dedup": index._dedup,
        "dots": index._dots,
    }
    np.savez_compressed(
        Path(path),
        meta=np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8),
        data_indptr=index.data.indptr,
        data_indices=index.data.indices,
        data_values=index.data.data,
        u_values=index.u_values,
        entries=index.tables.entries,
        offsets=index.tables.offsets,
        hyperplanes=index.hasher.bank.planes,
    )


def load_index(path: str | Path) -> PLSHIndex:
    """Restore an index saved by :func:`save_index`."""
    with np.load(Path(path)) as archive:
        meta = json.loads(bytes(archive["meta"]).decode("utf-8"))
        if meta["format_version"] != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported index format {meta['format_version']} "
                f"(this build reads {_FORMAT_VERSION})"
            )
        params = PLSHParams(**meta["params"])
        dim = int(meta["dim"])
        data = CSRMatrix(
            archive["data_indptr"],
            archive["data_indices"],
            archive["data_values"],
            dim,
            check=False,
        )
        hasher = AllPairsHasher(params, dim)
        # Restore the exact hyperplanes (seeds may legitimately be None).
        hasher.bank.planes = np.ascontiguousarray(
            archive["hyperplanes"], dtype=np.float32
        )
        index = PLSHIndex(
            dim, params, hasher=hasher, dedup=meta["dedup"], dots=meta["dots"]
        )
        index.data = data
        index.u_values = np.ascontiguousarray(archive["u_values"])
        index.tables = StaticTableSet(
            np.ascontiguousarray(archive["entries"]),
            np.ascontiguousarray(archive["offsets"]),
            params,
        )
        from repro.core.query import QueryEngine

        index.engine = QueryEngine(
            index.tables,
            data,
            hasher,
            params,
            dedup=meta["dedup"],
            dots=meta["dots"],
        )
        return index
