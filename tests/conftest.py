"""Shared fixtures: a small deterministic corpus and a built index.

Session-scoped because corpus generation and index construction dominate
test wall-clock; tests must not mutate these fixtures (engines that need
private state clone their own).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import PLSHIndex, PLSHParams, SyntheticCorpus
from repro.text.corpus import CorpusSpec

SEED = 1234


@pytest.fixture(scope="session")
def small_spec() -> CorpusSpec:
    return CorpusSpec(vocab_size=5000, mean_doc_length=7.2)


@pytest.fixture(scope="session")
def small_corpus(small_spec) -> SyntheticCorpus:
    return SyntheticCorpus.generate(2000, small_spec, seed=SEED)


@pytest.fixture(scope="session")
def small_vectors(small_corpus):
    return small_corpus.vectors()


@pytest.fixture(scope="session")
def small_params() -> PLSHParams:
    # k=8 keeps 2^k = 256 buckets per table; m=8 gives L=28 tables.
    return PLSHParams(k=8, m=8, radius=0.9, delta=0.1, seed=SEED)


@pytest.fixture(scope="session")
def built_index(small_vectors, small_params) -> PLSHIndex:
    return PLSHIndex(small_vectors.n_cols, small_params).build(small_vectors)


@pytest.fixture(scope="session")
def small_queries(small_corpus):
    ids, queries = small_corpus.query_vectors(25, seed=SEED + 1)
    return ids, queries


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(SEED)
