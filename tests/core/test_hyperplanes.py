"""HyperplaneBank tests: determinism, shapes, collision statistics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.hyperplanes import HyperplaneBank
from repro.sparse.csr import CSRMatrix


def unit_rows(rng, n, dim):
    dense = rng.standard_normal((n, dim)).astype(np.float32)
    dense /= np.linalg.norm(dense, axis=1, keepdims=True)
    return CSRMatrix.from_dense(dense), dense


def test_same_seed_same_planes():
    a = HyperplaneBank(50, 8, seed=3)
    b = HyperplaneBank(50, 8, seed=3)
    np.testing.assert_array_equal(a.planes, b.planes)


def test_different_seed_different_planes():
    a = HyperplaneBank(50, 8, seed=3)
    b = HyperplaneBank(50, 8, seed=4)
    assert not np.array_equal(a.planes, b.planes)


def test_shapes_and_dtype():
    bank = HyperplaneBank(30, 12, seed=0)
    assert bank.planes.shape == (30, 12)
    assert bank.planes.dtype == np.float32
    assert bank.nbytes == 30 * 12 * 4


def test_sign_bits_binary(rng):
    bank = HyperplaneBank(20, 6, seed=0)
    vecs, _ = unit_rows(rng, 15, 20)
    bits = bank.sign_bits(vecs)
    assert bits.shape == (15, 6)
    assert set(np.unique(bits).tolist()) <= {0, 1}


def test_sign_bits_match_dense_projection(rng):
    bank = HyperplaneBank(20, 6, seed=0)
    vecs, dense = unit_rows(rng, 15, 20)
    expected = (dense @ bank.planes > 0).astype(np.uint8)
    np.testing.assert_array_equal(bank.sign_bits(vecs), expected)


def test_vectorized_matches_reference(rng):
    bank = HyperplaneBank(20, 6, seed=0)
    vecs, _ = unit_rows(rng, 10, 20)
    np.testing.assert_array_equal(
        bank.sign_bits(vecs, vectorized=True),
        bank.sign_bits(vecs, vectorized=False),
    )


def test_dimension_mismatch_raises(rng):
    bank = HyperplaneBank(20, 6, seed=0)
    vecs, _ = unit_rows(rng, 5, 21)
    with pytest.raises(ValueError):
        bank.sign_bits(vecs)


def test_invalid_args():
    with pytest.raises(ValueError):
        HyperplaneBank(0, 4)
    with pytest.raises(ValueError):
        HyperplaneBank(4, 0)


def test_collision_rate_matches_charikar(rng):
    """Empirical P[h(p)=h(q)] must track 1 - t/pi (Section 3)."""
    dim, n_planes = 64, 4000
    bank = HyperplaneBank(dim, n_planes, seed=11)
    # Construct a pair at a controlled angle t.
    for target in (0.4, 0.9, 1.6):
        a = rng.standard_normal(dim)
        a /= np.linalg.norm(a)
        b_raw = rng.standard_normal(dim)
        b_raw -= (b_raw @ a) * a
        b_raw /= np.linalg.norm(b_raw)
        p = a
        q = np.cos(target) * a + np.sin(target) * b_raw
        pair = CSRMatrix.from_dense(
            np.vstack([p, q]).astype(np.float32)
        )
        bits = bank.sign_bits(pair)
        rate = float((bits[0] == bits[1]).mean())
        expected = 1.0 - target / np.pi
        # 4000 Bernoulli trials -> std ~ 0.008; allow 5 sigma.
        assert rate == pytest.approx(expected, abs=0.04)
