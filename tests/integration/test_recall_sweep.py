"""Recall-vs-theory sweep across parameter settings.

For several (k, m) configurations, measured recall over true R-near
neighbors must track the mean of the per-pair retrieval probability
P'(t, k, m) — the quantitative heart of the reproduction (it is what makes
Table 2's "92 % accuracy" a prediction rather than a tuning accident).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import PLSHIndex, PLSHParams
from repro.baselines.exhaustive import ExhaustiveSearch
from repro.perfmodel.collisions import recall_probability


@pytest.mark.parametrize(
    "k,m",
    [(4, 4), (8, 8), (8, 16), (12, 16)],
)
def test_recall_tracks_theory(small_vectors, small_queries, k, m):
    _, queries = small_queries
    params = PLSHParams(k=k, m=m, radius=0.9, seed=777)
    index = PLSHIndex(small_vectors.n_cols, params).build(small_vectors)
    exact = ExhaustiveSearch(small_vectors, params.radius)

    found, predicted, total = 0, 0.0, 0
    for r in range(queries.n_rows):
        truth = exact.query(*queries.row(r))
        got = set(index.engine.query_row(queries, r).indices.tolist())
        for idx, dist in zip(truth.indices.tolist(), truth.distances.tolist()):
            total += 1
            predicted += float(recall_probability(dist, k, m))
            found += int(idx in got)
    assert total >= 50
    measured = found / total
    expected = predicted / total
    assert measured == pytest.approx(expected, abs=0.15), (
        f"k={k} m={m}: measured recall {measured:.3f} vs "
        f"theory {expected:.3f} over {total} pairs"
    )


def test_more_tables_more_recall(small_vectors, small_queries):
    """Recall must increase monotonically in m at fixed k (statistically)."""
    _, queries = small_queries
    exact = ExhaustiveSearch(small_vectors, 0.9)
    truth_sets = [
        set(exact.query(*queries.row(r)).indices.tolist())
        for r in range(queries.n_rows)
    ]
    total = sum(len(t) for t in truth_sets)

    def recall_for(m: int) -> float:
        params = PLSHParams(k=8, m=m, radius=0.9, seed=778)
        index = PLSHIndex(small_vectors.n_cols, params).build(small_vectors)
        found = 0
        for r in range(queries.n_rows):
            got = set(index.engine.query_row(queries, r).indices.tolist())
            found += len(got & truth_sets[r])
        return found / total

    r_small, r_mid, r_large = recall_for(4), recall_for(10), recall_for(24)
    assert r_small <= r_mid + 0.05
    assert r_mid <= r_large + 0.05
    assert r_large > 0.9
