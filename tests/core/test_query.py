"""QueryEngine tests: pipeline correctness across every ablation rung."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.query import QueryEngine
from repro.params import PLSHParams


def make_engine(built_index, **kw):
    return QueryEngine(
        built_index.tables,
        built_index.data,
        built_index.hasher,
        built_index.params,
        **kw,
    )


class TestPipeline:
    def test_query_returns_self(self, built_index, small_vectors):
        """A corpus row queried against the index must find itself (its own
        table keys collide trivially) at distance ~0."""
        cols, vals = small_vectors.row(17)
        res = built_index.query(cols.astype(np.int64), vals)
        assert 17 in res.indices.tolist()
        d = res.distances[res.indices.tolist().index(17)]
        assert d == pytest.approx(0.0, abs=1e-3)

    def test_all_results_within_radius(self, built_index, small_queries):
        _, queries = small_queries
        for r in range(queries.n_rows):
            res = built_index.engine.query_row(queries, r)
            assert (res.distances <= built_index.params.radius + 1e-6).all()

    def test_radius_override(self, built_index, small_vectors):
        cols, vals = small_vectors.row(3)
        tight = built_index.query(cols.astype(np.int64), vals, radius=0.05)
        loose = built_index.query(cols.astype(np.int64), vals, radius=1.2)
        assert len(tight) <= len(loose)
        assert (tight.distances <= 0.05 + 1e-6).all()

    def test_exclude_mask_drops_candidates(self, built_index, small_vectors):
        cols, vals = small_vectors.row(17)
        exclude = np.zeros(built_index.n_items, dtype=bool)
        exclude[17] = True
        res = built_index.query(cols.astype(np.int64), vals, exclude=exclude)
        assert 17 not in res.indices.tolist()

    def test_stats_accumulate(self, built_index, small_queries):
        _, queries = small_queries
        engine = make_engine(built_index)
        engine.query_row(queries, 0)
        engine.query_row(queries, 1)
        assert engine.stats.n_queries == 2
        assert engine.stats.n_collisions >= engine.stats.n_unique
        assert engine.stats.n_unique >= engine.stats.n_matches
        assert engine.stats.stage_times.total > 0


class TestAblationEquivalence:
    """Every optimization rung must return identical neighbor sets."""

    @pytest.mark.parametrize("dedup", ["set", "sort", "bitvector"])
    @pytest.mark.parametrize("dots", ["naive", "lookup", "batched"])
    def test_rungs_agree(self, built_index, small_queries, dedup, dots):
        _, queries = small_queries
        baseline = make_engine(built_index)
        variant = make_engine(built_index, dedup=dedup, dots=dots,
                              reuse_buffers=False)
        for r in range(5):
            a = baseline.query_row(queries, r)
            b = variant.query_row(queries, r)
            assert set(a.indices.tolist()) == set(b.indices.tolist())
            np.testing.assert_allclose(
                np.sort(a.distances), np.sort(b.distances), rtol=1e-4, atol=1e-5
            )

    def test_buffer_reuse_equivalence(self, built_index, small_queries):
        _, queries = small_queries
        reuse = make_engine(built_index, reuse_buffers=True)
        fresh = make_engine(built_index, reuse_buffers=False)
        for r in range(8):
            a = reuse.query_row(queries, r)
            b = fresh.query_row(queries, r)
            assert set(a.indices.tolist()) == set(b.indices.tolist())


class TestBatch:
    def test_serial_batch_matches_single(self, built_index, small_queries):
        _, queries = small_queries
        engine = make_engine(built_index)
        batch = engine.query_batch(queries)
        single = [engine.query_row(queries, r) for r in range(queries.n_rows)]
        for a, b in zip(batch, single):
            np.testing.assert_array_equal(
                np.sort(a.indices), np.sort(b.indices)
            )

    @pytest.mark.parametrize("workers", [2, 4])
    def test_parallel_matches_serial(self, built_index, small_queries, workers):
        _, queries = small_queries
        engine = make_engine(built_index)
        serial = engine.query_batch(queries, workers=1)
        parallel = engine.query_batch(queries, workers=workers)
        assert len(serial) == len(parallel)
        for a, b in zip(serial, parallel):
            np.testing.assert_array_equal(
                np.sort(a.indices), np.sort(b.indices)
            )

    def test_parallel_stats_absorbed(self, built_index, small_queries):
        _, queries = small_queries
        engine = make_engine(built_index)
        engine.query_batch(queries, workers=3)
        assert engine.stats.n_queries == queries.n_rows


class TestValidation:
    def test_table_data_mismatch_raises(self, built_index, small_vectors):
        truncated = small_vectors.slice_rows(0, 10)
        with pytest.raises(ValueError):
            QueryEngine(
                built_index.tables, truncated, built_index.hasher,
                built_index.params,
            )

    def test_unknown_dots_strategy_raises(self, built_index):
        with pytest.raises(ValueError):
            make_engine(built_index, dots="warp")


class TestQueryResult:
    def test_sorted_and_top(self, built_index, small_vectors):
        cols, vals = small_vectors.row(5)
        res = built_index.query(cols.astype(np.int64), vals, radius=1.3)
        s = res.sorted_by_distance()
        assert (np.diff(s.distances) >= 0).all()
        top = res.top(3)
        assert len(top) <= 3
        if len(res) >= 1:
            assert top.distances[0] == s.distances[0]
