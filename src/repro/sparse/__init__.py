"""Sparse-vector substrate: CSR storage, kernels, and the IDF vectorizer.

The paper stores tweets as IDF-weighted unit vectors in Compressed Row
Storage (CRS/CSR) form and treats both hashing (sparse × dense matmul) and
candidate filtering (sparse row · dense query) as CSR kernels.  This package
implements that substrate from scratch on numpy.
"""

from repro.sparse.csr import CSRMatrix
from repro.sparse.ops import (
    row_dots_dense,
    row_dots_dense_reference,
    sparse_dense_matmul,
    sparse_dense_matmul_reference,
)
from repro.sparse.vectorizer import IDFVectorizer

__all__ = [
    "CSRMatrix",
    "IDFVectorizer",
    "row_dots_dense",
    "row_dots_dense_reference",
    "sparse_dense_matmul",
    "sparse_dense_matmul_reference",
]
