"""Contiguous static hash tables (Section 5.1).

A :class:`StaticTableSet` holds all ``L`` tables in two dense allocations:

* ``entries`` — int32 ``(L, N)``: data indexes grouped by table key, the
  paper's "contiguous arrays with exactly enough space".
* ``offsets`` — int32 ``(L, 2^k + 1)``: bucket boundaries.

The single large allocations are the library's "large pages" analogue — one
mapping per structure instead of per-bucket linked nodes.  Memory matches
the paper's Equation 7.4: ``(L*N + 2^k * L) * 4`` bytes.
"""

from __future__ import annotations

import numpy as np

from repro.core.partition import BUILD_STRATEGIES
from repro.params import PLSHParams

__all__ = ["StaticTableSet"]


class StaticTableSet:
    """All ``L`` static hash tables of one PLSH node."""

    def __init__(self, entries: np.ndarray, offsets: np.ndarray, params: PLSHParams):
        if entries.ndim != 2 or offsets.ndim != 2:
            raise ValueError("entries and offsets must be 2-D")
        if entries.shape[0] != params.n_tables:
            raise ValueError(
                f"expected {params.n_tables} tables, got {entries.shape[0]}"
            )
        if offsets.shape != (params.n_tables, params.n_buckets + 1):
            raise ValueError(
                f"offsets shape {offsets.shape} != "
                f"{(params.n_tables, params.n_buckets + 1)}"
            )
        self.entries = entries
        self.offsets = offsets
        self.params = params

    @classmethod
    def build(
        cls,
        u_values: np.ndarray,
        params: PLSHParams,
        *,
        strategy: str = "shared",
        vectorized: bool = True,
        workers: int = 1,
    ) -> "StaticTableSet":
        """Construct from cached ``(n, m)`` hash-function values.

        ``strategy`` is one of ``one_level`` / ``two_level`` / ``shared``
        (see :mod:`repro.core.partition`); production code uses the default.
        ``workers`` parallelizes per-table construction (shared strategy
        only; other strategies are ablation rungs and stay serial).
        """
        if u_values.ndim != 2 or u_values.shape[1] != params.m:
            raise ValueError(
                f"u_values must be (n, {params.m}), got {u_values.shape}"
            )
        try:
            build = BUILD_STRATEGIES[strategy]
        except KeyError:
            raise ValueError(
                f"unknown strategy {strategy!r}; expected one of "
                f"{sorted(BUILD_STRATEGIES)}"
            ) from None
        if strategy == "shared":
            entries, offsets = build(
                u_values, params.k, vectorized=vectorized, workers=workers
            )
        else:
            entries, offsets = build(u_values, params.k, vectorized=vectorized)
        return cls(entries, offsets, params)

    @property
    def n_items(self) -> int:
        return int(self.entries.shape[1])

    @property
    def n_tables(self) -> int:
        return int(self.entries.shape[0])

    @property
    def nbytes(self) -> int:
        return int(self.entries.nbytes + self.offsets.nbytes)

    def bucket(self, table: int, key: int) -> np.ndarray:
        """View of the data indexes in one bucket."""
        start = int(self.offsets[table, key])
        stop = int(self.offsets[table, key + 1])
        return self.entries[table, start:stop]

    def collisions(self, query_keys: np.ndarray) -> np.ndarray:
        """Concatenated bucket contents across all L tables for one query.

        ``query_keys`` is the length-L key vector ``g_1(q)..g_L(q)``.  The
        result may contain duplicates — Step Q2's dedup runs downstream.
        Gathering is fully vectorized across tables (the prefetch-friendly
        batched access of Section 5.2.2).
        """
        query_keys = np.asarray(query_keys, dtype=np.int64)
        if query_keys.shape != (self.n_tables,):
            raise ValueError(
                f"expected {self.n_tables} keys, got shape {query_keys.shape}"
            )
        tables = np.arange(self.n_tables)
        starts = self.offsets[tables, query_keys].astype(np.int64)
        stops = self.offsets[tables, query_keys + 1].astype(np.int64)
        lengths = stops - starts
        total = int(lengths.sum())
        if total == 0:
            return np.empty(0, dtype=np.int64)
        # Flatten (table, position) pairs into indexes of the 2-D entries.
        ends = np.cumsum(lengths)
        table_of = np.repeat(tables, lengths)
        within = np.arange(total) - np.repeat(
            np.concatenate(([0], ends[:-1])), lengths
        )
        flat = table_of * self.n_items + starts[table_of] + within
        return self.entries.ravel()[flat].astype(np.int64)

    def collisions_per_table(self, query_keys: np.ndarray) -> list[np.ndarray]:
        """Per-table bucket views (the unbatched access pattern; used by the
        Figure 5 "no prefetch" ablation and by tests)."""
        return [
            self.bucket(l, int(query_keys[l])) for l in range(self.n_tables)
        ]

    def validate(self) -> None:
        """Check structural invariants (each table is a permutation)."""
        n = self.n_items
        for l in range(self.n_tables):
            if self.offsets[l, 0] != 0 or self.offsets[l, -1] != n:
                raise ValueError(f"table {l}: offsets do not span 0..{n}")
            if np.any(np.diff(self.offsets[l]) < 0):
                raise ValueError(f"table {l}: offsets not monotone")
            perm = np.sort(self.entries[l])
            if not np.array_equal(perm, np.arange(n, dtype=perm.dtype)):
                raise ValueError(f"table {l}: entries are not a permutation")
