"""Stateful random-ops harness for the streaming node (the PR's net).

A seeded generator produces op sequences — insert / query / query_batch /
delete / begin_merge / commit_merge / merge_now / snapshot — and replays
each against two nodes in lockstep:

* the **primary**, running the overlapped-merge pipeline
  (``overlap_merges=True``, auto-merge on) with random partition rolls
  (``roll`` ops fragment its static tier), queried with the harness'
  ``workers`` setting;
* a **shadow** reference with the synchronous blocking merge and a
  never-rolled (monolithic) static tier, queried serially.

Since only the primary rolls, every sync-parity assertion is also the
PR-10 tentpole property: a multi-partition static answers bit-identically
to the monolith.  ``retire`` ops drive ``retire_before`` on both nodes
(asserting they report identical retired-id sets), and queries randomly
carry a ``time_range`` filter checked against a timestamp-aware oracle.

After every query op the harness asserts

1. **sync parity** — primary answers are *bit-identical* (ids and
   distances, including order) to the shadow's, whatever merge state the
   primary is in; this is the PR's core guarantee;
2. **oracle soundness** — every returned id is within the radius by the
   exhaustive-scan oracle over live rows, no tombstone is ever returned,
   and the query's own row (when inserted and live) is always found —
   LSH may miss neighbors, never invent them;
3. **bookkeeping** — ``n_total`` / ``n_live`` match the model.

``snapshot`` ops round-trip the primary through
:func:`repro.persistence.save_node` / ``load_node`` and *continue the
sequence on the loaded node*, so persistence is exercised at arbitrary
interior states, not just at rest.

On failure the harness **shrinks**: it greedily deletes ops while the
failure reproduces and reports the minimal sequence with its seed, so a
red run prints a directly replayable recipe.

Tier-1 runs 200 seeded sequences: 100 with the suite's default worker
setting (serial locally; the fork pool under the CI ``PLSH_WORKERS=2``
job) and 100 explicitly sharded over 2 workers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.distance import angular_distance
from repro.params import PLSHParams
from repro.persistence import load_node, save_node
from repro.sparse.csr import CSRMatrix
from repro.sparse.ops import densify_query, row_dots_dense
from repro.streaming.node import StreamingPLSH

DIM = 48
CAPACITY = 64
PARAMS = PLSHParams(k=4, m=4, radius=1.1, seed=77)
N_SEQUENCES = 100  # per workers setting; 2 settings => 200 in tier-1

_RNG = np.random.default_rng(4242)
_POOL_DENSE = _RNG.standard_normal((CAPACITY, DIM)).astype(np.float32)
_POOL_DENSE /= np.linalg.norm(_POOL_DENSE, axis=1, keepdims=True)
_POOL = CSRMatrix.from_dense(_POOL_DENSE)

_OPS = [
    "insert", "insert", "insert",        # weight 3
    "query", "query",                    # weight 2
    "query_batch",
    "delete",
    "begin_merge",
    "commit_merge",
    "merge_now",
    "snapshot",
    "roll", "roll",                      # weight 2: fragment the primary
    "retire",
]


def _maybe_window(rng) -> list[int] | None:
    """A random half-open time window (1 in 3 queries carry one)."""
    if rng.random() < 1 / 3:
        t0 = int(rng.integers(0, 12))
        return [t0, t0 + int(rng.integers(1, 8))]
    return None


def generate_ops(seed: int) -> list[dict]:
    """A seeded random op sequence (self-contained, shrink-tolerant)."""
    rng = np.random.default_rng(seed)
    ops: list[dict] = []
    for _ in range(int(rng.integers(8, 15))):
        kind = _OPS[int(rng.integers(len(_OPS)))]
        if kind == "insert":
            ops.append({"op": "insert", "count": int(rng.integers(1, 9))})
        elif kind == "query":
            ops.append(
                {
                    "op": "query",
                    "row": int(rng.integers(CAPACITY)),
                    "window": _maybe_window(rng),
                }
            )
        elif kind == "query_batch":
            ops.append(
                {
                    "op": "query_batch",
                    "start": int(rng.integers(CAPACITY)),
                    "count": int(rng.integers(2, 9)),
                    "window": _maybe_window(rng),
                }
            )
        elif kind == "delete":
            ops.append({"op": "delete", "sel": int(rng.integers(1 << 30))})
        elif kind == "retire":
            # Cutoff relative to however far the clock got: ahead of it
            # retires everything so far, 0 is a no-op.
            ops.append({"op": "retire", "ticks": int(rng.integers(0, 8))})
        else:
            ops.append({"op": kind})
    # Every sequence ends by settling and checking one final batch, so a
    # sequence of pure mutations still verifies something.
    ops.append({"op": "commit_merge"})
    ops.append({"op": "query_batch", "start": 0, "count": 6})
    return ops


class _Model:
    """Ground truth the nodes are checked against."""

    def __init__(self) -> None:
        self.cursor = 0          # pool rows inserted so far
        self.deleted: set[int] = set()
        self.retired: set[int] = set()
        self.ts: list[int] = []  # per-row logical insert timestamp
        self.clock = 0           # mirrors the nodes' default stamping

    def insert(self, count: int) -> None:
        self.ts.extend([self.clock] * count)
        self.cursor += count
        self.clock += 1  # one tick per batch, like the node

    def retire(self, cutoff: int) -> set[int]:
        newly = {
            r
            for r in range(self.cursor)
            if self.ts[r] < cutoff and r not in self.retired
        }
        self.retired |= newly
        self.clock = max(self.clock, cutoff)
        return newly

    def visible(self, row: int, window) -> bool:
        """Whether a row can appear in a (possibly filtered) answer."""
        if row >= self.cursor or row in self.deleted or row in self.retired:
            return False
        if window is not None:
            t0, t1 = window
            return t0 <= self.ts[row] < t1
        return True

    def truth(self, q_cols, q_vals, window=None) -> set[int]:
        """Exhaustive R-near ids over live, time-visible rows."""
        if self.cursor == 0:
            return set()
        rows = _POOL.slice_rows(0, self.cursor)
        dense = densify_query(q_cols.astype(np.int64), q_vals, DIM)
        dots = row_dots_dense(rows, np.arange(self.cursor), dense)
        dists = angular_distance(dots)
        within = np.nonzero(dists <= PARAMS.radius)[0]
        return {int(i) for i in within if self.visible(int(i), window)}


def _check_query(primary, shadow, model, row: int, workers, window) -> None:
    q_cols, q_vals = _POOL.row(row)
    q_cols = q_cols.astype(np.int64)
    tr = tuple(window) if window is not None else None
    got = primary.query(q_cols, q_vals, time_range=tr)
    ref = shadow.query(q_cols, q_vals, time_range=tr)
    np.testing.assert_array_equal(
        got.indices, ref.indices,
        err_msg="partitioned path diverged from monolithic path (ids)",
    )
    np.testing.assert_array_equal(
        got.distances, ref.distances,
        err_msg="partitioned path diverged from monolithic path (distances)",
    )
    truth = model.truth(q_cols, q_vals, window)
    got_set = set(got.indices.tolist())
    assert got_set <= truth, f"query invented ids: {sorted(got_set - truth)}"
    if model.visible(row, window):
        assert row in got_set, f"self-row {row} missing from its own query"


def _check_query_batch(
    primary, shadow, model, start, count, workers, window
) -> None:
    lo = start % CAPACITY
    hi = min(lo + count, CAPACITY)
    queries = _POOL.slice_rows(lo, hi)
    tr = tuple(window) if window is not None else None
    got = primary.query_batch(queries, workers=workers, time_range=tr)
    ref = shadow.query_batch(queries, workers=1, time_range=tr)
    assert len(got) == len(ref) == hi - lo
    for b, (x, y) in enumerate(zip(got, ref)):
        np.testing.assert_array_equal(
            x.indices, y.indices,
            err_msg=f"batch query {b} diverged from monolithic path (ids)",
        )
        np.testing.assert_array_equal(
            x.distances, y.distances,
            err_msg=f"batch query {b} diverged (distances)",
        )
        q_cols, q_vals = queries.row(b)
        truth = model.truth(q_cols.astype(np.int64), q_vals, window)
        got_set = set(x.indices.tolist())
        assert got_set <= truth, (
            f"batch query {b} invented ids: {sorted(got_set - truth)}"
        )
        row = lo + b
        if model.visible(row, window):
            assert row in got_set, f"self-row {row} missing from batch query"


def run_ops(ops: list[dict], workers, tmp_path) -> None:
    """Replay a sequence, asserting parity/oracle/bookkeeping throughout.

    Ops that are inapplicable in the current state (inserting into a full
    node, deleting from an empty one) degrade to no-ops so any
    subsequence of a valid sequence is itself valid — the property the
    shrinker relies on.
    """
    primary = StreamingPLSH(
        DIM, PARAMS, CAPACITY, delta_fraction=0.25,
        auto_merge=True, overlap_merges=True,
    )
    shadow = StreamingPLSH(
        DIM, PARAMS, CAPACITY, delta_fraction=0.25,
        auto_merge=True, overlap_merges=False,
    )
    model = _Model()
    try:
        for op in ops:
            kind = op["op"]
            if kind == "insert":
                count = min(op["count"], CAPACITY - model.cursor)
                if count <= 0:
                    continue
                batch = _POOL.slice_rows(model.cursor, model.cursor + count)
                got_ids = primary.insert_batch(batch)
                ref_ids = shadow.insert_batch(batch)
                expected = list(range(model.cursor, model.cursor + count))
                assert got_ids.tolist() == expected, (
                    f"primary local ids {got_ids.tolist()} != {expected}"
                )
                assert ref_ids.tolist() == expected
                model.insert(count)
            elif kind == "query":
                _check_query(
                    primary, shadow, model, op["row"], workers,
                    op.get("window"),
                )
            elif kind == "query_batch":
                _check_query_batch(
                    primary, shadow, model, op["start"], op["count"],
                    workers, op.get("window"),
                )
            elif kind == "delete":
                if model.cursor == 0:
                    continue
                local = op["sel"] % model.cursor
                if local in model.retired:
                    continue  # deleting a retired row degrades to a no-op
                primary.delete(np.asarray([local]))
                shadow.delete(np.asarray([local]))
                model.deleted.add(local)
            elif kind == "roll":
                primary.roll_partition()  # the shadow stays monolithic
            elif kind == "retire":
                cutoff = op["ticks"]
                got_ids = primary.retire_before(cutoff)
                ref_ids = shadow.retire_before(cutoff)
                np.testing.assert_array_equal(
                    got_ids, ref_ids,
                    err_msg="partitioned and monolithic retirement "
                    "reported different id sets",
                )
                newly = model.retire(cutoff)
                assert set(got_ids.tolist()) == newly, (
                    f"retire_before({cutoff}) reported "
                    f"{got_ids.tolist()}, oracle expected {sorted(newly)}"
                )
            elif kind == "begin_merge":
                primary.begin_merge()
                shadow.merge_now()  # the blocking counterpart
            elif kind == "commit_merge":
                primary.commit_merge(wait=True)
            elif kind == "merge_now":
                primary.merge_now()
                shadow.merge_now()
            elif kind == "snapshot":
                path = tmp_path / "snapshot.npz"
                save_node(primary, path)  # drains any pending merge
                primary.close()
                primary = load_node(path)
            else:  # pragma: no cover - generator/op-table mismatch
                raise ValueError(f"unknown op {kind!r}")
            # Bookkeeping invariants after every op.  The id space counts
            # every row ever inserted (holes included); residency shrinks
            # only through partition drops, which differ by layout — but
            # the live count must agree everywhere.
            assert primary.id_space == model.cursor, (
                f"id_space {primary.id_space} != inserted {model.cursor}"
            )
            assert shadow.id_space == model.cursor
            expected_live = model.cursor - len(model.deleted | model.retired)
            assert primary.n_live == expected_live, (
                f"primary n_live {primary.n_live} != {expected_live}"
            )
            assert shadow.n_live == expected_live
            if not model.retired:
                assert primary.n_total == model.cursor, (
                    f"n_total {primary.n_total} != inserted {model.cursor}"
                )
    finally:
        primary.close()
        shadow.close()


def _failure(ops, workers, tmp_path):
    """Run a sequence, returning the AssertionError it raises (or None)."""
    try:
        run_ops(ops, workers, tmp_path)
    except AssertionError as exc:
        return exc
    return None


def shrink_ops(ops: list[dict], workers, tmp_path) -> list[dict]:
    """Greedily delete ops while the failure still reproduces."""
    changed = True
    while changed:
        changed = False
        for i in range(len(ops)):
            candidate = ops[:i] + ops[i + 1 :]
            if candidate and _failure(candidate, workers, tmp_path):
                ops = candidate
                changed = True
                break
    return ops


@pytest.mark.parametrize(
    "workers",
    [
        pytest.param(None, id="default-workers"),
        pytest.param(2, id="workers-2"),
    ],
)
def test_random_op_sequences(workers, tmp_path):
    """≥200 seeded sequences across the two worker settings (100 each)."""
    base = 0 if workers is None else 10_000
    for seed in range(base, base + N_SEQUENCES):
        ops = generate_ops(seed)
        error = _failure(ops, workers, tmp_path)
        if error is not None:
            minimal = shrink_ops(list(ops), workers, tmp_path)
            final = _failure(minimal, workers, tmp_path) or error
            lines = "\n".join(f"  {op!r}," for op in minimal)
            pytest.fail(
                f"random-ops sequence failed (seed={seed}, workers={workers})\n"
                f"minimal reproducing sequence ({len(minimal)} of "
                f"{len(ops)} ops):\n[\n{lines}\n]\n"
                f"replay: run_ops(<ops>, workers={workers!r}, tmp_path)\n\n"
                f"{final}"
            )


def test_shrinker_finds_minimal_sequence(tmp_path, monkeypatch):
    """The shrinker itself: plant a deterministic parity bug and check the
    reported minimal sequence is the two-op core that triggers it."""
    ops = generate_ops(123)
    # A query on a node poisoned to drop its frozen delta from answers
    # diverges from the shadow only when a merge is in flight.
    real_views = StreamingPLSH._delta_views

    def broken_views(self):
        views = real_views(self)
        if self._frozen is not None:  # lose the frozen rows: a "torn" read
            return [v for v in views if v[0] is not self._frozen]
        return views

    monkeypatch.setattr(StreamingPLSH, "_delta_views", broken_views)
    ops = [
        {"op": "insert", "count": 8},
        {"op": "delete", "sel": 3},
        {"op": "begin_merge"},
        {"op": "query_batch", "start": 0, "count": 6},
    ]
    error = _failure(ops, None, tmp_path)
    assert error is not None, "planted bug must be caught by the harness"
    minimal = shrink_ops(list(ops), None, tmp_path)
    kinds = [op["op"] for op in minimal]
    assert "begin_merge" in kinds and any(
        k in ("query", "query_batch") for k in kinds
    ), f"shrunk sequence lost the failing core: {minimal}"
    assert len(minimal) <= 3, f"shrinker left slack: {minimal}"
