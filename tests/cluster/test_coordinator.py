"""Coordinator tests: broadcast, concatenation, accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.coordinator import Coordinator
from repro.cluster.network import NetworkModel
from repro.cluster.node import ClusterNode
from repro.core.hashing import AllPairsHasher
from repro.params import PLSHParams

PARAMS = PLSHParams(k=8, m=6, radius=0.9, seed=51)


@pytest.fixture(scope="module")
def setup(small_vectors):
    hasher = AllPairsHasher(PARAMS, small_vectors.n_cols)
    nodes = [
        ClusterNode(i, small_vectors.n_cols, PARAMS, 1000, hasher)
        for i in range(4)
    ]
    # Shard 1800 rows over 3 nodes; node 3 stays empty.
    for i in range(3):
        nodes[i].insert_batch(
            small_vectors.slice_rows(600 * i, 600 * (i + 1)),
            np.arange(600 * i, 600 * (i + 1)),
        )
    net = NetworkModel()
    return Coordinator(nodes, net), nodes, net, hasher


def test_broadcast_merges_all_shards(setup, small_vectors, small_queries):
    coordinator, nodes, _, hasher = setup
    _, queries = small_queries
    from repro import PLSHIndex

    reference = PLSHIndex(small_vectors.n_cols, PARAMS, hasher=hasher)
    reference.build(small_vectors.slice_rows(0, 1800))
    for r in range(6):
        merged = coordinator.query(*queries.row(r))
        ref = reference.engine.query_row(queries, r)
        np.testing.assert_array_equal(
            np.sort(merged.result.indices), np.sort(ref.indices)
        )


def test_empty_nodes_are_skipped(setup, small_queries):
    coordinator, nodes, _, _ = setup
    _, queries = small_queries
    out = coordinator.query(*queries.row(0))
    assert set(out.node_seconds) == {0, 1, 2}  # node 3 empty, not queried


def test_network_charged_per_node(setup, small_queries):
    coordinator, _, net, _ = setup
    _, queries = small_queries
    before = net.stats.n_messages
    coordinator.query(*queries.row(1))
    # 3 non-empty nodes, one request + one response each.
    assert net.stats.n_messages - before == 6


def test_critical_path_is_slowest_node_plus_network(setup, small_queries):
    coordinator, _, _, _ = setup
    _, queries = small_queries
    out = coordinator.query(*queries.row(2))
    slowest = max(out.node_seconds.values())
    assert out.critical_path_seconds == pytest.approx(
        slowest + out.network_seconds
    )


def test_query_batch(setup, small_queries):
    coordinator, _, _, _ = setup
    _, queries = small_queries
    outs = coordinator.query_batch(queries.slice_rows(0, 4))
    assert len(outs) == 4


def test_query_batch_vectorized_matches_loop(setup, small_queries):
    coordinator, _, _, _ = setup
    _, queries = small_queries
    batch = queries.slice_rows(0, 8)
    vec = coordinator.query_batch(batch)
    loop = coordinator.query_batch(batch, mode="loop")
    assert len(vec) == len(loop) == 8
    for a, b in zip(vec, loop):
        order_a = np.argsort(a.result.indices)
        order_b = np.argsort(b.result.indices)
        np.testing.assert_array_equal(
            a.result.indices[order_a], b.result.indices[order_b]
        )
        np.testing.assert_allclose(
            a.result.distances[order_a], b.result.distances[order_b],
            rtol=1e-6,
        )
    # Amortized accounting: every outcome carries the same per-node share.
    assert set(vec[0].node_seconds) == {0, 1, 2}
    assert vec[0].node_seconds == vec[1].node_seconds


def test_query_batch_empty(setup, small_queries):
    coordinator, _, _, _ = setup
    _, queries = small_queries
    assert coordinator.query_batch(queries.slice_rows(0, 0)) == []


def test_query_batch_sharded_matches_serial(setup, small_queries):
    """workers > 1 shards every node's batch through that node's own
    persistent pool (repro.parallel) — bit-identical per-node results,
    so bit-identical merged broadcasts."""
    coordinator, nodes, _, _ = setup
    _, queries = small_queries
    batch = queries.slice_rows(0, 8)
    try:
        serial = coordinator.query_batch(batch, workers=1)
        sharded = coordinator.query_batch(batch, workers=2)
        assert len(serial) == len(sharded) == 8
        for a, b in zip(serial, sharded):
            np.testing.assert_array_equal(a.result.indices, b.result.indices)
            np.testing.assert_array_equal(
                a.result.distances, b.result.distances
            )
        # Per-node pools: every non-empty node now owns warm executors.
        assert all(n.plsh._executors for n in nodes if n.n_items)
    finally:
        for n in nodes:
            n.close()
    assert all(not n.plsh._executors for n in nodes)


class _ExplodingNode:
    """A handle whose queries always fail (a dead or sick node)."""

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id
        self.n_items = 10

    def query(self, *args, **kwargs):
        raise ConnectionError("node exploded")

    def query_batch(self, *args, **kwargs):
        raise ConnectionError("node exploded")

    def stats(self):
        return {"node_id": self.node_id}


@pytest.fixture()
def lopsided(setup):
    """The healthy 4-node setup plus one node that always fails."""
    coordinator, nodes, net, hasher = setup
    bad = _ExplodingNode(99)
    mixed = Coordinator(nodes + [bad], NetworkModel())
    yield mixed, coordinator, bad
    mixed.close()


class TestFailureIsolation:
    def test_single_query_surfaces_node_error(self, lopsided, small_queries):
        mixed, healthy, bad = lopsided
        _, queries = small_queries
        out = mixed.query(*queries.row(0))
        ref = healthy.query(*queries.row(0))
        assert not out.ok
        assert set(out.node_errors) == {99}
        assert "ConnectionError" in out.node_errors[99]
        np.testing.assert_array_equal(out.result.indices, ref.result.indices)

    def test_batch_surfaces_node_error_on_every_outcome(
        self, lopsided, small_queries
    ):
        mixed, healthy, bad = lopsided
        _, queries = small_queries
        batch = queries.slice_rows(0, 5)
        outs = mixed.query_batch(batch)
        refs = healthy.query_batch(batch)
        for out, ref in zip(outs, refs):
            assert set(out.node_errors) == {99}
            np.testing.assert_array_equal(out.result.indices, ref.result.indices)
            np.testing.assert_array_equal(
                out.result.distances, ref.result.distances
            )
        # Failed nodes stay out of the load-balance accounting.
        assert 99 not in outs[0].node_seconds


class TestConcurrentBroadcast:
    def test_concurrent_matches_serial_bit_identically(self, setup, small_queries):
        coordinator, nodes, _, _ = setup
        _, queries = small_queries
        batch = queries.slice_rows(0, 8)
        serial = Coordinator(nodes, NetworkModel(), concurrent=False)
        try:
            a_outs = coordinator.query_batch(batch)
            b_outs = serial.query_batch(batch)
            for a, b in zip(a_outs, b_outs):
                np.testing.assert_array_equal(a.result.indices, b.result.indices)
                np.testing.assert_array_equal(
                    a.result.distances, b.result.distances
                )
        finally:
            serial.close()

    def test_wall_clock_measured_on_batch(self, setup, small_queries):
        coordinator, _, _, _ = setup
        _, queries = small_queries
        outs = coordinator.query_batch(queries.slice_rows(0, 4))
        assert all(o.wall_seconds is not None and o.wall_seconds > 0 for o in outs)
        assert all(o.ok for o in outs)

    def test_pool_recreated_after_close(self, setup, small_queries):
        coordinator, _, _, _ = setup
        _, queries = small_queries
        coordinator.query_batch(queries.slice_rows(0, 2))
        coordinator.close()
        assert coordinator._pool is None
        outs = coordinator.query_batch(queries.slice_rows(0, 2))
        assert len(outs) == 2
        coordinator.close()
        coordinator.close()  # idempotent

    def test_transport_totals_none_for_in_process(self, setup):
        coordinator, _, _, _ = setup
        assert coordinator.transport_totals() is None
