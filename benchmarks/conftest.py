"""Shared benchmark fixtures.

Scale is controlled via PLSH_BENCH_* environment variables (see
``repro.bench.workloads``).  The flagship workload and index are built once
per session; individual benches must treat them as read-only.
"""

from __future__ import annotations

import pytest

from repro import PLSHIndex
from repro.bench.workloads import BenchScale, twitter_workload, wikipedia_workload


@pytest.fixture(scope="session")
def scale() -> BenchScale:
    return BenchScale.from_env()


@pytest.fixture(scope="session")
def twitter(scale):
    return twitter_workload(scale)


@pytest.fixture(scope="session")
def wikipedia(scale):
    return wikipedia_workload(scale)


@pytest.fixture(scope="session")
def flagship_index(twitter, scale) -> PLSHIndex:
    """The production index over the Twitter workload (paper §8 setup)."""
    index = PLSHIndex(twitter.vectors.n_cols, scale.params())
    index.build(twitter.vectors)
    return index


def pytest_terminal_summary(terminalreporter):
    """Replay the paper-style result tables after the pytest-benchmark
    summary — pytest's fd-level capture hides them during the run."""
    from repro.bench.reporting import consume_sections

    sections = consume_sections()
    if sections:
        terminalreporter.write_line("")
        terminalreporter.write_line("paper-style reproduction tables:")
        for text in sections:
            terminalreporter.write_line(text)
