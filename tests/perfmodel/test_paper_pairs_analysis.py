"""Deeper analysis tests around the paper's parameter pairs (Figure 7).

These encode the quantitative observations recorded in EXPERIMENTS.md so a
regression in the probability code would be caught by the same numbers the
write-up cites.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.perfmodel.collisions import (
    collision_probability,
    recall_probability,
)
from repro.perfmodel.tuner import minimum_m

PAPER_PAIRS = [(12, 21), (14, 29), (16, 40), (18, 55)]


def test_paper_pairs_cluster_near_constant_boundary_recall():
    """All four pairs sit in a narrow P'(R) band — evidence they came from
    one effective recall target, not four unrelated choices."""
    values = [float(recall_probability(0.9, k, m)) for k, m in PAPER_PAIRS]
    assert max(values) - min(values) < 0.05
    assert 0.74 < min(values) and max(values) < 0.79


def test_pairs_not_minimal_for_09_boundary():
    """Under the strict 1-delta = 0.9 boundary constraint, min m is much
    larger than the paper's choices — the discrepancy documented in
    EXPERIMENTS.md."""
    for k, paper_m in PAPER_PAIRS:
        strict_m = minimum_m(0.9, 0.1, k)
        assert strict_m is not None
        assert strict_m > paper_m


def test_average_case_recall_exceeds_boundary_value():
    """For neighbors spread inside R (as planted duplicates are), expected
    recall is well above P'(R) — how the paper can measure 92 % while its
    boundary value is ~0.76."""
    k, m = 16, 40
    # neighbors uniform over [0.2, 0.9] radians
    t = np.linspace(0.2, 0.9, 100)
    avg = float(np.mean(recall_probability(t, k, m)))
    boundary = float(recall_probability(0.9, k, m))
    assert avg > 0.9 > boundary


def test_single_bit_probability_at_r():
    # p(0.9) = 1 - 0.9/pi ~ 0.7135 — the paper's kmax argument uses
    # p^40 <= 1e-6.
    p = float(collision_probability(0.9))
    assert p == pytest.approx(0.71352, abs=1e-4)
    assert p**40 < 1e-5


def test_memory_cap_drives_kmax():
    """Section 7.3: with 64 GB and N = 10 M, ~1600 tables fit; m <= 44 and
    the largest feasible k under the recall constraint is ~16."""
    n = 10_000_000
    mem = 64e9
    # L*N*4 <= mem  ->  L <= 1600
    max_l = mem / (4 * n)
    assert 1500 < max_l < 1700
    m_cap = int((1 + (1 + 8 * max_l) ** 0.5) / 2)
    assert m_cap in (56, 57)  # m(m-1)/2 <= 1600
    # Under the paper's effective boundary target, k = 16 needs m = 40 <= cap
    # while k = 18 needs ~55 which is within the cap but leaves little
    # headroom; k = 20 would exceed it.
    m18 = minimum_m(0.9, 0.1, 18, boundary_recall=0.747)
    m20 = minimum_m(0.9, 0.1, 20, boundary_recall=0.747)
    assert m18 is not None and m18 <= m_cap
    assert m20 is not None and m20 > m_cap * 0.9
