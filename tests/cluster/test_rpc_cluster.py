"""Multi-process cluster integration: RPC nodes vs the in-process simulation.

The contract under test is the tentpole guarantee: a localhost
multi-process cluster (real ``NodeServer`` processes, TCP transport) fed
the same op sequence as the in-process simulated cluster answers
broadcasts **bit-identically** — same global ids, same float32 distances,
same retirement behavior — and a killed node degrades the broadcast to a
per-node error instead of an exception.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import PLSHCluster, PLSHParams
from repro.cluster import RemoteNodeError, spawn_local_cluster
from repro.parallel import fork_available

PARAMS = PLSHParams(k=8, m=6, radius=0.9, seed=77)
N_NODES = 3
CAPACITY = 250

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="spawn_local_cluster requires fork()"
)


def _assert_outcomes_identical(sim_outcomes, rpc_outcomes):
    assert len(sim_outcomes) == len(rpc_outcomes)
    for sim, rpc in zip(sim_outcomes, rpc_outcomes):
        np.testing.assert_array_equal(sim.result.indices, rpc.result.indices)
        np.testing.assert_array_equal(sim.result.distances, rpc.result.distances)
        assert not rpc.node_errors


@pytest.fixture(scope="module")
def clusters(small_vectors):
    """A simulated and a spawned cluster fed the same streaming ops."""
    dim = small_vectors.n_cols
    sim = PLSHCluster(N_NODES, CAPACITY, dim, PARAMS, insert_window=2)
    rpc = spawn_local_cluster(N_NODES, CAPACITY, dim, PARAMS, insert_window=2)
    try:
        # Stream enough to wrap the window and retire the oldest nodes
        # (3 * 250 capacity, 1000 rows inserted in batches of 100).
        for start in range(0, 1000, 100):
            block = small_vectors.slice_rows(start, start + 100)
            sim_ids = sim.insert(block)
            rpc_ids = rpc.insert(block)
            np.testing.assert_array_equal(sim_ids, rpc_ids)
        # Tombstone a few global ids on both.
        doomed = np.asarray([310, 512, 700], dtype=np.int64)
        assert sim.delete(doomed) == rpc.delete(doomed)
        yield sim, rpc
    finally:
        rpc.close()
        sim.close()


class TestBitIdentity:
    def test_retirement_behavior_identical(self, clusters):
        sim, rpc = clusters
        assert sim.n_retirements == rpc.n_retirements > 0
        assert len(sim.retired_ids) == len(rpc.retired_ids)
        for a, b in zip(sim.retired_ids, rpc.retired_ids):
            np.testing.assert_array_equal(a, b)
        assert [n.n_items for n in sim.nodes] == [n.n_items for n in rpc.nodes]

    def test_broadcast_batch_bit_identical(self, clusters, small_queries):
        sim, rpc = clusters
        _, queries = small_queries
        batch = queries.slice_rows(0, 12)
        _assert_outcomes_identical(sim.query_batch(batch), rpc.query_batch(batch))

    def test_single_query_bit_identical(self, clusters, small_queries):
        sim, rpc = clusters
        _, queries = small_queries
        for r in range(4):
            cols, vals = queries.row(r)
            a = sim.query(cols.astype(np.int64), vals)
            b = rpc.query(cols.astype(np.int64), vals)
            np.testing.assert_array_equal(a.result.indices, b.result.indices)
            np.testing.assert_array_equal(a.result.distances, b.result.distances)

    def test_merge_lifecycle_over_rpc(self, clusters, small_queries):
        sim, rpc = clusters
        _, queries = small_queries
        started_sim = sim.begin_merge_all()
        started_rpc = rpc.begin_merge_all()
        assert started_sim == started_rpc
        # Queries stay bit-identical mid-merge...
        batch = queries.slice_rows(12, 20)
        _assert_outcomes_identical(sim.query_batch(batch), rpc.query_batch(batch))
        # ...and after draining everything.
        assert sim.commit_merges(wait=True) == rpc.commit_merges(wait=True)
        sim.merge_all()
        rpc.merge_all()
        _assert_outcomes_identical(sim.query_batch(batch), rpc.query_batch(batch))

    def test_stats_rows_identical(self, clusters):
        sim, rpc = clusters
        for sim_row, rpc_row in zip(sim.stats(), rpc.stats()):
            assert sim_row == rpc_row

    def test_loop_mode_matches_vectorized_over_rpc(self, clusters, small_queries):
        _, rpc = clusters
        _, queries = small_queries
        batch = queries.slice_rows(0, 5)
        vec = rpc.query_batch(batch)
        loop = rpc.query_batch(batch, mode="loop")
        for a, b in zip(vec, loop):
            np.testing.assert_array_equal(
                np.sort(a.result.indices), np.sort(b.result.indices)
            )


class TestTransportAccounting:
    def test_real_bytes_counted_and_dwarf_modeled_headers(self, clusters):
        sim, rpc = clusters
        totals = rpc.coordinator.transport_totals()
        assert totals is not None
        assert totals["n_messages"] > 0
        # Request traffic (inserts + query batches) dominates; responses
        # carry result ids/distances.
        assert totals["bytes_sent"] > 0 and totals["bytes_received"] > 0
        # The in-process coordinator has no transport.
        assert sim.coordinator.transport_totals() is None
        # Both backends charged the same NetworkModel accounting.
        assert rpc.network.stats.n_messages > 0

    def test_server_side_error_surfaces_and_connection_survives(self, clusters):
        _, rpc = clusters
        node = rpc.nodes[0]
        bad_ids = np.arange(3, dtype=np.int64)
        from repro.sparse.csr import CSRMatrix

        overfill = CSRMatrix.from_rows(
            [([0], [1.0])] * (CAPACITY + 1), rpc.dim
        )
        with pytest.raises(RemoteNodeError, match="Capacity|capacity|full"):
            node.insert_batch(overfill, np.arange(CAPACITY + 1))
        # The server answered the error and keeps serving.
        assert node.ping() == node.node_id
        assert node.delete_global(bad_ids) == 0


class TestFailureIsolation:
    def test_killed_node_degrades_not_kills(self, small_vectors, small_queries):
        dim = small_vectors.n_cols
        _, queries = small_queries
        batch = queries.slice_rows(0, 8)
        sim = PLSHCluster(N_NODES, CAPACITY, dim, PARAMS, insert_window=2)
        rpc = spawn_local_cluster(N_NODES, CAPACITY, dim, PARAMS, insert_window=2)
        try:
            for start in range(0, 600, 100):
                block = small_vectors.slice_rows(start, start + 100)
                sim.insert(block)
                rpc.insert(block)
            full = sim.query_batch(batch)
            victim = rpc.nodes[1]
            rpc.kill_node(1)

            degraded = rpc.query_batch(batch)
            # The broadcast completed, the victim's death is a per-node
            # error, and every outcome reports it.
            assert all(1 in out.node_errors for out in degraded)
            assert not victim.alive

            # Degraded-but-sound: the surviving answers are exactly the
            # full (3-node) answers minus the victim's shard.  The
            # simulated twin knows precisely which global ids lived on
            # node 1.
            victim_ids = set(sim.nodes[1]._global_ids.tolist())
            for full_out, deg_out in zip(full, degraded):
                full_ids = set(full_out.result.indices.tolist())
                deg_ids = set(deg_out.result.indices.tolist())
                assert deg_ids <= full_ids
                assert full_ids - deg_ids == full_ids & victim_ids

            # Later broadcasts skip the dead node silently (its death was
            # already reported) and stay sound.
            again = rpc.query_batch(batch)
            for out, deg_out in zip(again, degraded):
                np.testing.assert_array_equal(
                    out.result.indices, deg_out.result.indices
                )
                assert not out.node_errors
        finally:
            rpc.close()
            sim.close()

    def test_degraded_answers_match_surviving_shards_exactly(
        self, small_vectors, small_queries
    ):
        """The strong form: post-kill answers equal the in-process answers
        of a coordinator restricted to the surviving nodes."""
        dim = small_vectors.n_cols
        _, queries = small_queries
        batch = queries.slice_rows(0, 6)
        sim = PLSHCluster(N_NODES, CAPACITY, dim, PARAMS, insert_window=2)
        rpc = spawn_local_cluster(N_NODES, CAPACITY, dim, PARAMS, insert_window=2)
        try:
            for start in range(0, 600, 100):
                block = small_vectors.slice_rows(start, start + 100)
                sim.insert(block)
                rpc.insert(block)
            rpc.kill_node(2)
            rpc.query_batch(batch)  # observes the death
            degraded = rpc.query_batch(batch)

            survivors = [n for n in sim.nodes if n.node_id != 2]
            from repro.cluster.coordinator import Coordinator
            from repro.cluster.network import NetworkModel

            restricted = Coordinator(survivors, NetworkModel())
            try:
                expected = restricted.query_batch(batch)
                _assert_outcomes_identical(expected, degraded)
            finally:
                restricted.close()
        finally:
            rpc.close()
            sim.close()
