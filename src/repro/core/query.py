"""The PLSH query pipeline, Steps Q1-Q4 (Section 5.2).

Q1  hash the query with all m k/2-bit functions and form the L table keys;
Q2  gather bucket contents from every table and deduplicate;
Q3  compute the true distance to each unique candidate;
Q4  emit candidates within radius R.

The engine exposes every optimization as a switch so the Figure 5 ablation
can walk the paper's rungs:

====================  =======================================================
engine option          paper optimization
====================  =======================================================
``dedup``              Q2 bitvector vs sort vs set (Section 5.2.1)
``dots``               Q3 dense-lookup sparse dot product (Section 5.2.3)
``batched_gather``     Q3 software prefetching analogue (Section 5.2.2)
``reuse_buffers``      large-pages analogue: persistent dense query buffer
                       and dedup mask instead of per-query allocations
====================  =======================================================

Batch queries have two execution modes (``QueryEngine.query_batch``):

* ``mode="vectorized"`` — the production batch kernel and the default for
  ``workers == 1``.  Steps Q1-Q4 run over the *whole* ``(B, dim)`` query
  block in a constant number of numpy calls: one CSR x hyperplane-bank
  pass and a two-gather pair expansion (Q1), one flat gather of all
  ``B x L`` buckets plus one segmented dedup (Q2), one blocked
  gather/segment-reduce over the CSR data (Q3), and one vectorized radius
  filter (Q4).  Per-query work is pure slicing, so batch throughput is
  bounded by memory bandwidth instead of interpreter dispatch — the same
  "restructure for the memory system" move as the paper's software
  prefetching and contiguous tables (Section 5.2.2).
* ``mode="loop"`` — the per-query pipeline, kept as the ablation baseline
  and used by the parallel backends (``workers > 1``).  Vectorized beats
  loop whenever queries are cheap relative to numpy dispatch overhead
  (tweet-scale corpora, batch sizes ≳ tens of queries); the loop only wins
  when individual queries are so kernel-heavy that dispatch is noise.

Parallel batches run through a thread pool (Section 5.2 "Parallelism":
independent queries, work-stealing tasks) or fork()ed workers.  numpy
kernels release the GIL for large operations; EXPERIMENTS.md reports the
scaling actually achieved in Python.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from repro.core.candidates import make_deduplicator, mask_segments, unique_segments
from repro.core.distance import (
    angular_distance,
    candidate_dots_batched,
    candidate_dots_lookup,
    candidate_dots_naive,
    candidate_dots_segmented,
)
from repro.core.hashing import AllPairsHasher
from repro.core.tables import StaticTableSet
from repro.params import PLSHParams
from repro.sparse.csr import CSRMatrix
from repro.sparse.ops import densify_query
from repro.utils.timing import StageTimes

__all__ = ["QueryEngine", "QueryResult", "QueryStats"]


@dataclass
class QueryResult:
    """R-near neighbors of one query: parallel id/distance arrays."""

    indices: np.ndarray
    distances: np.ndarray

    def __len__(self) -> int:
        return int(self.indices.size)

    def sorted_by_distance(self) -> "QueryResult":
        order = np.argsort(self.distances, kind="stable")
        return QueryResult(self.indices[order], self.distances[order])

    def top(self, n: int) -> "QueryResult":
        s = self.sorted_by_distance()
        return QueryResult(s.indices[:n], s.distances[:n])


@dataclass
class QueryStats:
    """Aggregate counters across queries (drives the performance model)."""

    n_queries: int = 0
    n_collisions: int = 0
    n_unique: int = 0
    n_matches: int = 0
    stage_times: StageTimes = field(default_factory=StageTimes)

    def mean_collisions(self) -> float:
        return self.n_collisions / max(self.n_queries, 1)

    def mean_unique(self) -> float:
        return self.n_unique / max(self.n_queries, 1)

    def mean_matches(self) -> float:
        return self.n_matches / max(self.n_queries, 1)


class QueryEngine:
    """Executes Q1-Q4 against a static table set."""

    def __init__(
        self,
        tables: StaticTableSet,
        data: CSRMatrix,
        hasher: AllPairsHasher,
        params: PLSHParams,
        *,
        dedup: str = "bitvector",
        dots: str = "batched",
        reuse_buffers: bool = True,
    ) -> None:
        if tables.n_items != data.n_rows:
            raise ValueError(
                f"tables index {tables.n_items} items but data has "
                f"{data.n_rows} rows"
            )
        if dots not in ("naive", "lookup", "batched"):
            raise ValueError(f"unknown dots strategy {dots!r}")
        self.tables = tables
        self.data = data
        self.hasher = hasher
        self.params = params
        self.dedup_strategy = dedup
        self.dots_strategy = dots
        self.reuse_buffers = reuse_buffers
        # The batch kernel has its own fixed strategies (segmented sort
        # dedup, blocked batched dots); only an engine in the production
        # configuration may default to it, so ablation engines keep
        # measuring the rung they were built with.
        self._production_config = (
            dedup == "bitvector" and dots == "batched" and reuse_buffers
        )
        self.stats = QueryStats()
        self._dedup = make_deduplicator(dedup, tables.n_items)
        self._q_dense: np.ndarray | None = (
            np.zeros(data.n_cols, dtype=np.float32) if reuse_buffers else None
        )

    # -- single query -------------------------------------------------------

    def query(
        self,
        q_cols: np.ndarray,
        q_vals: np.ndarray,
        *,
        radius: float | None = None,
        exclude: np.ndarray | None = None,
        keys: np.ndarray | None = None,
    ) -> QueryResult:
        """R-near neighbors of a sparse unit query vector.

        ``exclude`` is an optional boolean mask over data indexes (True =
        drop); the streaming node passes its deletion filter here, applied
        before the distance computation as in Section 6.2.  ``keys`` may
        carry the precomputed L table keys of the query (the streaming node
        hashes each query once and shares the keys between the static and
        delta structures).
        """
        radius = self.params.radius if radius is None else radius
        q_cols = np.asarray(q_cols, dtype=np.int64)
        q_vals = np.asarray(q_vals, dtype=np.float32)
        st = self.stats.stage_times

        with st.stage("q1_hash"):
            if keys is None:
                keys = self._hash_query(q_cols, q_vals)
        with st.stage("q2_dedup"):
            collisions = self.tables.collisions(keys)
            unique = self._dedup.unique(collisions)
            if exclude is not None and unique.size:
                unique = unique[~exclude[unique]]
        with st.stage("q3_distance"):
            dots = self._candidate_dots(unique, q_cols, q_vals)
        with st.stage("q4_filter"):
            dists = angular_distance(dots)
            within = dists <= radius
            result = QueryResult(unique[within], dists[within])

        self.stats.n_queries += 1
        self.stats.n_collisions += int(collisions.size)
        self.stats.n_unique += int(unique.size)
        self.stats.n_matches += len(result)
        return result

    def query_row(self, queries: CSRMatrix, row: int, **kw) -> QueryResult:
        cols, vals = queries.row(row)
        return self.query(cols, vals, **kw)

    # -- batch queries --------------------------------------------------------

    def query_batch(
        self,
        queries: CSRMatrix,
        *,
        radius: float | None = None,
        workers: int = 1,
        exclude: np.ndarray | None = None,
        backend: str = "thread",
        mode: str | None = None,
        keys: np.ndarray | None = None,
    ) -> list[QueryResult]:
        """Process a query batch.

        ``mode`` selects the execution strategy:

        * ``"vectorized"`` (default for ``workers == 1`` on a
          production-configured engine) — the batch kernel: Q1-Q4 run over
          the whole block in a constant number of numpy calls (see the
          module docstring).  Result-identical to the loop, and requires
          ``workers == 1``.  The kernel has its own fixed strategies, so
          an engine built with non-default ``dedup``/``dots``/
          ``reuse_buffers`` (an ablation rung) defaults to ``"loop"``
          instead — pass ``mode="vectorized"`` explicitly to override.
        * ``"loop"`` (default otherwise) — the per-query pipeline,
          optionally parallelized.

        ``keys`` may carry the precomputed ``(B, L)`` table-key matrix of
        the batch (the streaming node hashes each batch once and shares the
        keys between the static and delta structures).

        For ``mode="loop"`` with ``workers > 1``, workers get independent
        engines sharing the read-only tables/data (the paper's "multiple
        cores concurrently access the same set of hash tables"), each with
        private dedup masks and buffers, mirroring the per-thread private
        bitvectors of Section 5.2.1.  ``backend``:

        * ``"thread"``  — a thread pool.  On CPython the GIL serializes the
          small numpy calls that dominate a per-query pipeline, so threads
          only help when individual queries are kernel-heavy; at tweet
          scale they can even regress (the reproduction's honest finding —
          see EXPERIMENTS.md).
        * ``"process"`` — fork()ed workers sharing the index copy-on-write
          (Linux).  This sidesteps the GIL and is the closest Python
          analogue of the paper's multithreaded query engine; per-batch
          fork overhead means it pays off for larger batches.
        """
        n = queries.n_rows
        if keys is not None:
            keys = np.asarray(keys)
            if keys.shape != (n, self.tables.n_tables):
                raise ValueError(
                    f"keys shape {keys.shape} != "
                    f"{(n, self.tables.n_tables)}"
                )
        if mode is None:
            mode = (
                "vectorized"
                if workers <= 1 and self._production_config
                else "loop"
            )
        if mode == "vectorized":
            if workers > 1:
                raise ValueError(
                    "mode='vectorized' runs the whole batch in one kernel; "
                    "use workers=1 (or mode='loop' for parallel backends)"
                )
            return self._query_batch_vectorized(queries, radius, exclude, keys)
        if mode != "loop":
            raise ValueError(f"unknown mode {mode!r}; expected 'vectorized' or 'loop'")
        if workers <= 1:
            return [
                self.query_row(
                    queries, r, radius=radius, exclude=exclude,
                    keys=None if keys is None else keys[r],
                )
                for r in range(n)
            ]
        if backend == "process":
            return self._query_batch_fork(queries, radius, workers, exclude, keys)
        if backend != "thread":
            raise ValueError(f"unknown backend {backend!r}")
        engines = [self._clone() for _ in range(workers)]
        chunks = np.array_split(np.arange(n), workers)

        def run(worker: int) -> list[tuple[int, QueryResult]]:
            eng = engines[worker]
            return [
                (
                    int(r),
                    eng.query_row(
                        queries, int(r), radius=radius, exclude=exclude,
                        keys=None if keys is None else keys[int(r)],
                    ),
                )
                for r in chunks[worker]
            ]

        results: list[QueryResult | None] = [None] * n
        with ThreadPoolExecutor(max_workers=workers) as pool:
            for part in pool.map(run, range(workers)):
                for r, res in part:
                    results[r] = res
        for eng in engines:
            self._absorb_stats(eng)
        return results  # type: ignore[return-value]

    #: Queries per internal block of the vectorized kernel.  Large enough to
    #: amortize dispatch to nothing, small enough that the flat collision /
    #: candidate temporaries stay cache-resident — past ~500 queries per
    #: block the segmented arrays spill and per-query cost creeps back up.
    VECTORIZED_QUERY_BLOCK = 256

    def _query_batch_vectorized(
        self,
        queries: CSRMatrix,
        radius: float | None,
        exclude: np.ndarray | None,
        keys: np.ndarray | None,
    ) -> list[QueryResult]:
        """The batch kernel: Q1-Q4 over whole query blocks, O(1) numpy calls
        per :data:`VECTORIZED_QUERY_BLOCK` queries.

        The whole batch is hashed in one pass (Q1); Q2-Q4 then run over
        internal blocks so the flat segmented temporaries stay in cache.
        Per-query python work is limited to slicing out the result objects;
        every numerical step runs once per block over flat segmented
        arrays.  Results are bit-identical to the per-query loop (same
        float32 operands, float64 accumulation in the same order).
        """
        radius = self.params.radius if radius is None else radius
        n = queries.n_rows
        if n == 0:
            return []
        st = self.stats.stage_times

        with st.stage("q1_hash"):
            if keys is None:
                u = self.hasher.hash_functions(queries)
                keys = self.hasher.table_keys_batch(u)

        results: list[QueryResult] = []
        block = self.VECTORIZED_QUERY_BLOCK
        for b0 in range(0, n, block):
            b1 = min(b0 + block, n)
            q_block = queries.slice_rows(b0, b1)
            with st.stage("q2_dedup"):
                values, raw_offsets = self.tables.collisions_batch(keys[b0:b1])
                cand, offsets = unique_segments(
                    values, raw_offsets, self.tables.n_items
                )
                if exclude is not None and cand.size:
                    keep = ~exclude[cand]
                    offsets = mask_segments(offsets, keep)
                    cand = cand[keep]
            with st.stage("q3_distance"):
                dots = candidate_dots_segmented(
                    self.data, cand, offsets, q_block
                )
            with st.stage("q4_filter"):
                dists = angular_distance(dots)
                within = dists <= radius
                out_offsets = mask_segments(offsets, within)
                out_ids = cand[within]
                out_dists = dists[within]
                results.extend(
                    QueryResult(
                        out_ids[out_offsets[b] : out_offsets[b + 1]],
                        out_dists[out_offsets[b] : out_offsets[b + 1]],
                    )
                    for b in range(b1 - b0)
                )
            self.stats.n_collisions += int(values.size)
            self.stats.n_unique += int(cand.size)
            self.stats.n_matches += int(out_ids.size)
        self.stats.n_queries += n
        return results

    def _query_batch_fork(
        self,
        queries: CSRMatrix,
        radius: float | None,
        workers: int,
        exclude: np.ndarray | None,
        keys: np.ndarray | None = None,
    ) -> list[QueryResult]:
        """Fork-based parallel batch (see ``query_batch``)."""
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # platform without fork: fall back to threads
            return self.query_batch(
                queries, radius=radius, workers=workers, exclude=exclude,
                backend="thread", mode="loop", keys=keys,
            )
        n = queries.n_rows
        global _FORK_STATE
        _FORK_STATE = (self, queries, radius, exclude, keys)
        chunks = [c.tolist() for c in np.array_split(np.arange(n), workers)]
        try:
            with ctx.Pool(processes=workers) as pool:
                parts = pool.map(_fork_query_chunk, chunks)
        finally:
            _FORK_STATE = None
        results: list[QueryResult] = []
        n_coll = n_uniq = n_match = 0
        for part, (coll, uniq, match), stage_secs in parts:
            for indices, distances in part:
                results.append(QueryResult(indices, distances))
            n_coll += coll
            n_uniq += uniq
            n_match += match
            # Merge the workers' per-stage wall-clock like _absorb_stats
            # does, so Figure 5 breakdowns under backend="process" report
            # real numbers instead of zeros.
            for name, secs in stage_secs.items():
                self.stats.stage_times.add(name, secs)
        self.stats.n_queries += n
        self.stats.n_collisions += n_coll
        self.stats.n_unique += n_uniq
        self.stats.n_matches += n_match
        return results

    # -- internals ---------------------------------------------------------

    def _hash_query(self, q_cols: np.ndarray, q_vals: np.ndarray) -> np.ndarray:
        """Step Q1: u values then the L table keys for one query."""
        q = CSRMatrix(
            np.asarray([0, q_cols.size], dtype=np.int64),
            q_cols.astype(np.int32),
            q_vals,
            self.data.n_cols,
            check=False,
        )
        u = self.hasher.hash_functions(q)[0]
        return self.hasher.table_keys_for_query(u)

    def _candidate_dots(
        self, unique: np.ndarray, q_cols: np.ndarray, q_vals: np.ndarray
    ) -> np.ndarray:
        if unique.size == 0:
            return np.empty(0, dtype=np.float32)
        if self.dots_strategy == "naive":
            return candidate_dots_naive(self.data, unique, q_cols, q_vals)
        if self.dots_strategy == "lookup":
            return candidate_dots_lookup(self.data, unique, q_cols, q_vals)
        q_dense = self._densify(q_cols, q_vals)
        try:
            return candidate_dots_batched(self.data, unique, q_dense)
        finally:
            if self._q_dense is not None:
                # Reset only the touched positions of the persistent buffer.
                self._q_dense[q_cols] = 0.0

    def _densify(self, q_cols: np.ndarray, q_vals: np.ndarray) -> np.ndarray:
        if self._q_dense is not None:
            self._q_dense[q_cols] = q_vals
            return self._q_dense
        return densify_query(q_cols, q_vals, self.data.n_cols)

    def _clone(self) -> "QueryEngine":
        return QueryEngine(
            self.tables,
            self.data,
            self.hasher,
            self.params,
            dedup=self.dedup_strategy,
            dots=self.dots_strategy,
            reuse_buffers=self.reuse_buffers,
        )

    def _absorb_stats(self, other: "QueryEngine") -> None:
        self.stats.n_queries += other.stats.n_queries
        self.stats.n_collisions += other.stats.n_collisions
        self.stats.n_unique += other.stats.n_unique
        self.stats.n_matches += other.stats.n_matches
        for name, secs in other.stats.stage_times.as_dict().items():
            self.stats.stage_times.add(name, secs)


#: (engine, queries, radius, exclude, keys) visible to fork()ed workers —
#: set just before the pool is created so children inherit it copy-on-write.
_FORK_STATE: tuple | None = None


def _fork_query_chunk(rows: list[int]):
    """Worker entry point: run a chunk of queries against the inherited
    engine and return plain arrays (QueryResult objects re-wrap them in the
    parent; keeping the payload primitive keeps pickling cheap) plus the
    counter and per-stage timing payloads the parent merges."""
    assert _FORK_STATE is not None, "fork state missing in worker"
    engine, queries, radius, exclude, keys = _FORK_STATE
    worker_engine = engine._clone()
    out = []
    for r in rows:
        res = worker_engine.query_row(
            queries, r, radius=radius, exclude=exclude,
            keys=None if keys is None else keys[r],
        )
        out.append((res.indices, res.distances))
    stats = worker_engine.stats
    return (
        out,
        (stats.n_collisions, stats.n_unique, stats.n_matches),
        stats.stage_times.as_dict(),
    )
