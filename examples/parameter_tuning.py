#!/usr/bin/env python
"""Parameter selection with the performance model (Section 7).

Given a corpus and a target recall, enumerate (k, m) candidates that satisfy
the recall constraint P'(R, k, m) >= 1 - delta, estimate each candidate's
query cost from sampled collision statistics (Equations 7.1/7.2), apply the
memory cap (Equation 7.4), and pick the cheapest feasible configuration —
exactly the paper's Section 7.3 procedure.

Both cost models are shown: the paper's cycle model (predicting the 2013
Xeon) and a model calibrated on *this* machine.

Run:  python examples/parameter_tuning.py
"""

from __future__ import annotations

from repro import PLSHParams, SyntheticCorpus
from repro.perfmodel import PaperCostModel, ParameterTuner, calibrate_host

N_DOCS = 30_000
MEMORY_BUDGET_GB = 8.0
SEED = 43


def show(tuner: ParameterTuner, title: str) -> None:
    print(f"\n{title}")
    print(
        f"{'k':>4} {'m':>4} {'L':>6} {'P(R)':>6} {'E[coll]':>9} "
        f"{'E[uniq]':>9} {'pred ms':>8} {'mem GB':>7} {'ok':>3}"
    )
    for c in tuner.candidates():
        print(
            f"{c.k:>4} {c.m:>4} {c.L:>6} {c.recall_at_radius:>6.3f} "
            f"{c.expected_collisions:>9.0f} {c.expected_unique:>9.0f} "
            f"{c.predicted_query_s * 1e3:>8.3f} "
            f"{c.table_bytes / 1e9:>7.2f} {'y' if c.feasible else 'n':>3}"
        )
    best = tuner.best()
    print(f"-> selected (k={best.k}, m={best.m}, L={best.L})")


def main() -> None:
    corpus = SyntheticCorpus.generate(N_DOCS, seed=SEED)
    vectors = corpus.vectors()
    _, queries = corpus.query_vectors(200, seed=SEED + 1)
    print(
        f"corpus: {N_DOCS:,} docs; tuning for R=0.9, delta=0.1, "
        f"memory <= {MEMORY_BUDGET_GB} GB"
    )

    # The paper's cycle model (what the 2013 Xeon would do).
    paper_tuner = ParameterTuner(
        vectors,
        queries,
        PaperCostModel(),
        radius=0.9,
        delta=0.1,
        memory_bytes=MEMORY_BUDGET_GB * 1e9,
        k_max=18,
        n_query_sample=100,
        n_data_sample=500,
        seed=SEED,
    )
    show(paper_tuner, "candidates under the paper's Xeon cycle model:")

    # The same enumeration with constants measured on this machine.
    calib = calibrate_host(
        vectors.slice_rows(0, 10_000),
        PLSHParams(k=12, m=12, radius=0.9, seed=SEED),
        n_calibration_queries=30,
        seed=SEED,
    )
    host_tuner = ParameterTuner(
        vectors,
        queries,
        calib,
        radius=0.9,
        delta=0.1,
        memory_bytes=MEMORY_BUDGET_GB * 1e9,
        k_max=18,
        n_query_sample=100,
        n_data_sample=500,
        seed=SEED,
    )
    show(host_tuner, "candidates under the host-calibrated model:")

    print(
        "\nnote: with the paper's own P' formula its published pairs "
        "(12,21) (14,29) (16,40) (18,55) sit at P'(0.9) ~ 0.75-0.79, not "
        "0.90 — see EXPERIMENTS.md for the analysis."
    )


if __name__ == "__main__":
    main()
