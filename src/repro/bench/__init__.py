"""Benchmark harness support: standard workloads, timing, reporting."""

from repro.bench.artifacts import artifact_path, record_artifact
from repro.bench.reporting import format_table, print_section
from repro.bench.runner import measure, measure_median
from repro.bench.workloads import BenchScale, Workload, twitter_workload, wikipedia_workload

__all__ = [
    "BenchScale",
    "Workload",
    "artifact_path",
    "format_table",
    "measure",
    "measure_median",
    "print_section",
    "record_artifact",
    "twitter_workload",
    "wikipedia_workload",
]
