"""The gateway's client-facing wire protocol: JSON lines over TCP.

One message per ``\\n``-terminated line, UTF-8 JSON.  This is the *front
door* protocol — deliberately trivial so any client (curl + a shell loop,
a browser, another language) can speak it; the binary zero-copy protocol
of :mod:`repro.cluster.protocol` stays behind the gateway where the
volume is.  A query is a sparse vector as parallel ``cols``/``vals``
lists; an answer carries global ids and float32 distances.

Floats survive the round trip exactly: a float32 distance widens to the
binary64 JSON number that represents it exactly, and narrows back to the
identical float32 — so gateway answers can be compared bit-for-bit
against direct :meth:`Coordinator.query` calls (and the test suite does).

Requests
--------

``{"op": "query", "id": 7, "cols": [...], "vals": [...],
   "radius": 0.9, "tenant": "analytics"}``
    One similarity query.  ``id`` is echoed on the response (clients may
    pipeline; responses can arrive out of order).  ``radius`` and
    ``tenant`` are optional.
``{"op": "insert", "id": 8, "cols": [...], "vals": [...],
   "tenant": "ingest"}``
    Insert one sparse row into the cluster.  The response carries the
    assigned ``global_ids`` (one per inserted row).  Values round-trip
    float32-exactly, so a gateway insert indexes the same bits a direct
    ``cluster.insert`` would.  The acknowledgment IS the ordering
    contract: once the response arrives, the row is applied, and any
    query sent after it sees the row (read-your-writes).
``{"op": "delete", "id": 9, "ids": [17, 40], "tenant": "ingest"}``
    Tombstone rows by global id; the response carries ``n_deleted``
    (ids not present count zero, same as ``cluster.delete``).
``{"op": "flush", "id": 10}``
    Write barrier: forces the write micro-batcher to dispatch its
    collecting batch immediately and answers once every write admitted
    before the flush has been applied and acknowledged.
``{"op": "ping"}``
    Liveness check; answered immediately, never queued.
``{"op": "stats"}``
    Gateway counters (coalescing, admission, latency bookkeeping).

Writes share the queries' admission control (``max_pending`` bound +
per-tenant quotas) and statuses; an insert/delete against a read-only
provider (a bare coordinator) answers ``status="error"``.

Responses
---------

``status`` is one of:

* ``"ok"`` — ``ids``/``dists`` hold the answer; ``degraded`` /
  ``missing_shards`` propagate the broadcast's honest-serving report
  for *this* query.
* ``"rejected"`` — admission control shed this request **before**
  queueing it.  ``reason`` is ``"overloaded"`` (gateway-wide pending
  cap) or ``"quota"`` (per-tenant cap); ``retry_after`` is the seconds
  the client should back off — the closed-loop load generator honors
  it.  A rejection is an explicit answer, never a silent drop.
* ``"error"`` — the request was malformed or the broadcast failed
  (``error`` holds the message).
"""

from __future__ import annotations

import json

import numpy as np

__all__ = [
    "MAX_LINE_BYTES",
    "decode",
    "delete_ok_response",
    "delete_request",
    "encode",
    "error_response",
    "flush_ok_response",
    "flush_request",
    "insert_ok_response",
    "insert_request",
    "ok_response",
    "query_request",
    "reject_response",
]

#: upper bound on one protocol line (a query's cols/vals or an answer's
#: ids/dists); the asyncio reader enforces it so one bad client cannot
#: balloon gateway memory.
MAX_LINE_BYTES = 8 * 1024 * 1024


def encode(message: dict) -> bytes:
    """One message as a compact JSON line (trailing newline included)."""
    return json.dumps(message, separators=(",", ":")).encode() + b"\n"


def decode(line: bytes) -> dict:
    """Parse one line; raises ``ValueError`` on anything but a JSON object."""
    try:
        message = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ValueError(f"invalid JSON: {exc}") from exc
    if not isinstance(message, dict):
        raise ValueError(f"expected a JSON object, got {type(message).__name__}")
    return message


def query_request(
    cols,
    vals,
    *,
    request_id: int | str | None = None,
    radius: float | None = None,
    tenant: str | None = None,
    time_range: tuple[int, int] | None = None,
) -> dict:
    """Build a query request message (client-side helper).

    ``time_range`` restricts the answer to rows whose insert timestamp
    falls in the half-open window ``[t0, t1)`` of the cluster's logical
    clock (one tick per insert op)."""
    message: dict = {
        "op": "query",
        "cols": [int(c) for c in np.asarray(cols).tolist()],
        "vals": [float(v) for v in np.asarray(vals).tolist()],
    }
    if request_id is not None:
        message["id"] = request_id
    if radius is not None:
        message["radius"] = float(radius)
    if tenant is not None:
        message["tenant"] = tenant
    if time_range is not None:
        t0, t1 = time_range
        message["time_range"] = [int(t0), int(t1)]
    return message


def insert_request(
    cols,
    vals,
    *,
    request_id: int | str | None = None,
    tenant: str | None = None,
) -> dict:
    """Build an insert request for one sparse row (client-side helper)."""
    message: dict = {
        "op": "insert",
        "cols": [int(c) for c in np.asarray(cols).tolist()],
        "vals": [float(v) for v in np.asarray(vals).tolist()],
    }
    if request_id is not None:
        message["id"] = request_id
    if tenant is not None:
        message["tenant"] = tenant
    return message


def delete_request(
    global_ids,
    *,
    request_id: int | str | None = None,
    tenant: str | None = None,
) -> dict:
    """Build a delete-by-global-id request (client-side helper)."""
    message: dict = {
        "op": "delete",
        "ids": [int(g) for g in np.asarray(global_ids).reshape(-1).tolist()],
    }
    if request_id is not None:
        message["id"] = request_id
    if tenant is not None:
        message["tenant"] = tenant
    return message


def flush_request(*, request_id: int | str | None = None) -> dict:
    """Build a write-barrier request (client-side helper)."""
    message: dict = {"op": "flush"}
    if request_id is not None:
        message["id"] = request_id
    return message


def ok_response(request_id, outcome) -> dict:
    """An answered query: ids, distances and the honest-serving report."""
    result = outcome.result
    return {
        "id": request_id,
        "status": "ok",
        "ids": result.indices.tolist(),
        "dists": [float(d) for d in result.distances],
        "degraded": bool(outcome.degraded),
        "missing_shards": list(outcome.missing_shards),
    }


def insert_ok_response(request_id, global_ids) -> dict:
    """An applied insert: the cluster-assigned global ids, in row order."""
    return {
        "id": request_id,
        "status": "ok",
        "op": "insert",
        "global_ids": [int(g) for g in np.asarray(global_ids).tolist()],
    }


def delete_ok_response(request_id, n_deleted: int) -> dict:
    """An applied delete: how many ids were actually tombstoned."""
    return {
        "id": request_id,
        "status": "ok",
        "op": "delete",
        "n_deleted": int(n_deleted),
    }


def flush_ok_response(request_id, n_flushed: int) -> dict:
    """A completed write barrier; ``n_flushed`` is how many writes were
    still unapplied when the flush arrived (0 = nothing to wait for)."""
    return {
        "id": request_id,
        "status": "ok",
        "op": "flush",
        "n_flushed": int(n_flushed),
    }


def reject_response(request_id, reason: str, retry_after: float) -> dict:
    """An admission-control rejection (explicit, with a backoff hint)."""
    return {
        "id": request_id,
        "status": "rejected",
        "reason": reason,
        "retry_after": round(float(retry_after), 6),
    }


def error_response(request_id, message: str) -> dict:
    """A malformed request or a failed broadcast."""
    return {"id": request_id, "status": "error", "error": message}
