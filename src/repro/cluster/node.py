"""A cluster node: a streaming PLSH instance plus the global-id mapping.

``ClusterNode`` is also the reference implementation of the **node handle
protocol** the coordinator and cluster drive: ``n_items`` / ``capacity`` /
``free_capacity`` / ``is_full``, ``insert_batch``, ``query``,
``query_batch``, ``delete_global``, ``begin_merge`` / ``commit_merge`` /
``merge_now``, ``stats``, ``retire`` / ``retire_window`` /
``retire_before``, ``close``.  The in-process node here
and :class:`repro.cluster.client.RemoteNodeHandle` (the same surface over
a TCP connection to a :class:`repro.cluster.server.NodeServer` process)
are interchangeable behind that protocol, which is how one coordinator
drives both the simulated and the real multi-process deployment.
:class:`repro.cluster.replication.ReplicaGroup` speaks the same protocol
over *several* handles at once (fan-out writes, failover reads), so a
replicated shard is indistinguishable from a single node to everything
above it.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.core.hashing import AllPairsHasher
from repro.core.query import QueryResult
from repro.params import PLSHParams
from repro.sparse.csr import CSRMatrix
from repro.streaming.node import StreamingPLSH

__all__ = ["ClusterNode"]


class ClusterNode:
    """Wraps :class:`StreamingPLSH` and translates local ↔ global ids.

    All nodes share one :class:`AllPairsHasher` (same seed): the paper's
    broadcast querying requires every node to hash a query identically.

    Operations are serialized by a per-node lock, mirroring the real
    deployment where a :class:`~repro.cluster.server.NodeServer` process
    handles requests sequentially.  The engine underneath shares mutable
    scratch state across queries (the reusable dense-query buffer, the
    dedup bitvector, stats counters), so two *concurrent broadcasts*
    through one coordinator would otherwise tear each other's single-query
    answers on in-process nodes.  The lock is per node: fan-out across
    nodes stays fully concurrent.

    The same lock is what makes node-level *writes* atomic under
    concurrent serving (PR 9): an ``insert_batch`` overlapping a query
    either fully precedes or fully follows it — a query never observes
    rows without their global-id map entries (the torn-translation
    hazard), and ``insert_batch`` returning means the rows are queryable
    (the cluster's read-your-writes contract builds on this).  Cross-node
    ordering — window placement, retirement atomicity — is the cluster
    object's job, not this lock's.
    """

    def __init__(
        self,
        node_id: int,
        dim: int,
        params: PLSHParams,
        capacity: int,
        hasher: AllPairsHasher,
        *,
        delta_fraction: float = 0.1,
        overlap_merges: bool = False,
    ) -> None:
        self.node_id = node_id
        self.plsh = StreamingPLSH(
            dim,
            params,
            capacity,
            delta_fraction=delta_fraction,
            overlap_merges=overlap_merges,
            hasher=hasher,
        )
        self._global_ids = np.empty(0, dtype=np.int64)
        #: serializes ops on this node (see class docstring) — the same
        #: one-request-at-a-time contract the NodeServer loop provides.
        self._op_lock = threading.Lock()

    @classmethod
    def restore(
        cls, node_id: int, plsh: StreamingPLSH, global_ids: np.ndarray
    ) -> "ClusterNode":
        """Rebuild a node from restored parts (see ``load_cluster_node``)."""
        obj = cls.__new__(cls)
        obj.node_id = int(node_id)
        obj.plsh = plsh
        obj._op_lock = threading.Lock()
        obj._global_ids = np.ascontiguousarray(global_ids, dtype=np.int64)
        # The map covers the whole local id *space*: dropped partitions
        # leave holes whose (stale) entries are retained so later ids keep
        # translating — so size is checked against id_space, not n_total.
        if obj._global_ids.size != plsh.id_space:
            raise ValueError(
                f"{obj._global_ids.size} global ids for id space of "
                f"{plsh.id_space}"
            )
        return obj

    @property
    def n_items(self) -> int:
        return self.plsh.n_total

    @property
    def merge_in_flight(self) -> bool:
        """True while the node's streaming merge is between begin and
        commit — broadcast queries stay correct throughout (the node
        serves ``static + frozen + fresh`` and local ids are stable, so
        the global-id translation never tears)."""
        return self.plsh.merge_in_flight

    def stats(self) -> dict:
        """One monitoring row for the coordinator's cluster stats."""
        plsh = self.plsh
        with self._op_lock:
            return self._stats_row(plsh)

    def _stats_row(self, plsh) -> dict:
        return {
            "node_id": self.node_id,
            "n_items": self.n_items,
            "n_static": plsh.n_static,
            "n_static_resident": plsh.n_static_resident,
            "n_partitions": plsh.n_partitions,
            "n_parts_probed": plsh.static.n_probed,
            "n_parts_pruned": plsh.static.n_pruned,
            "n_frozen": plsh.n_frozen,
            "n_delta": plsh.n_delta,
            "n_deleted": plsh.deletions.n_deleted,
            "n_merges": plsh.n_merges,
            "merge_in_flight": plsh.merge_in_flight,
            "merge_ready": plsh.merge_ready,
            "capacity": plsh.capacity,
        }

    @property
    def capacity(self) -> int:
        return self.plsh.capacity

    @property
    def free_capacity(self) -> int:
        return self.capacity - self.n_items

    @property
    def is_full(self) -> bool:
        return self.plsh.is_full

    def insert_batch(
        self,
        vectors: CSRMatrix,
        global_ids: np.ndarray,
        timestamps: np.ndarray | None = None,
    ) -> None:
        """Insert rows carrying their cluster-wide ids.

        ``timestamps`` optionally stamps each row with the cluster's
        logical insert time (non-decreasing int64 per row) so every
        shard's partitions share one timeline; without it the node's own
        clock stamps the batch."""
        if vectors.n_rows != global_ids.size:
            raise ValueError(
                f"{vectors.n_rows} rows but {global_ids.size} global ids"
            )
        with self._op_lock:
            local = self.plsh.insert_batch(vectors, timestamps=timestamps)
            # Local ids are dense and increasing (stable under merge), so
            # the map is a simple append.
            expected = np.arange(
                self._global_ids.size, self._global_ids.size + local.size
            )
            if not np.array_equal(local, expected):
                # RuntimeError, not AssertionError: this check guards the
                # local->global translation of every future query result
                # and must survive ``python -O``.
                raise RuntimeError(
                    "local ids not contiguous — id map would corrupt "
                    f"(expected [{self._global_ids.size}, "
                    f"{self._global_ids.size + local.size}), got "
                    f"[{int(local[0]) if local.size else -1}, ...])"
                )
            self._global_ids = np.concatenate(
                [self._global_ids, np.asarray(global_ids, dtype=np.int64)]
            )

    def delete_global(self, global_ids: np.ndarray) -> int:
        """Tombstone rows by global id (ignores ids not on this node)."""
        with self._op_lock:
            mask = np.isin(
                self._global_ids, np.asarray(global_ids, dtype=np.int64)
            )
            local = np.nonzero(mask)[0]
            # The id map keeps stale entries for retired holes (see
            # ``retire_window``); only resident rows are deletable.
            local = local[self.plsh.resident_mask(local)]
            if local.size == 0:
                return 0
            return self.plsh.delete(local)

    def query(
        self,
        q_cols: np.ndarray,
        q_vals: np.ndarray,
        *,
        radius: float | None = None,
        time_range: tuple[int, int] | None = None,
    ) -> QueryResult:
        """Node-local query with results translated to global ids."""
        with self._op_lock:
            res = self.plsh.query(
                q_cols, q_vals, radius=radius, time_range=time_range
            )
            return QueryResult(self._global_ids[res.indices], res.distances)

    def query_batch(
        self,
        queries: CSRMatrix,
        *,
        radius: float | None = None,
        mode: str | None = None,
        workers: int | None = None,
        backend: str | None = None,
        time_range: tuple[int, int] | None = None,
    ) -> list[QueryResult]:
        """Batch query through the node's vectorized kernel, translated to
        global ids (one gather per query result).

        ``workers > 1`` shards the batch across cores via the node's own
        persistent worker pool (see :meth:`StreamingPLSH.query_batch`) —
        in a multi-node deployment every node owns its pool, the paper's
        per-node multithreaded query engine."""
        with self._op_lock:
            results = self.plsh.query_batch(
                queries, radius=radius, mode=mode, workers=workers,
                backend=backend, time_range=time_range,
            )
            return [
                QueryResult(self._global_ids[res.indices], res.distances)
                for res in results
            ]

    def prepare_workers(
        self, workers: int | None = None, backend: str | None = None
    ) -> None:
        """Warm this node's batch pool before a concurrent broadcast (see
        :meth:`StreamingPLSH.prepare_workers`)."""
        with self._op_lock:
            self.plsh.prepare_workers(workers, backend)

    # -- merge lifecycle (delegated so remote handles can mirror it) -------

    def begin_merge(self) -> bool:
        """Start a non-blocking delta merge; True if one is now in flight."""
        with self._op_lock:
            return self.plsh.begin_merge()

    def commit_merge(self, *, wait: bool = False) -> bool:
        """Commit a pending merge; True if a build landed."""
        with self._op_lock:
            return self.plsh.commit_merge(wait=wait)

    def merge_now(self) -> None:
        """Drain any in-flight build, then merge the delta synchronously."""
        with self._op_lock:
            self.plsh.merge_now()

    # -- resync (replica rebuild) ------------------------------------------

    def export_state(self) -> dict:
        """Snapshot the node's full state as a flat ``{name: array}``
        payload (every partition, delta rows with cached hashes,
        tombstones, clock, global-id map) — the replica-resync source
        side.  A merge in flight is drained first so the payload is
        settled."""
        from repro.persistence import cluster_node_state

        with self._op_lock:
            return cluster_node_state(self)

    def import_state(self, payload: dict) -> None:
        """Adopt an exported sibling state wholesale — the replica-resync
        target side.  Everything but the node id is replaced; afterwards
        this node answers bit-identically to the export source."""
        from repro.persistence import restore_cluster_node_state

        fresh = restore_cluster_node_state(payload)
        with self._op_lock:
            self.plsh.close()
            self.plsh = fresh.plsh
            self._global_ids = fresh._global_ids

    def close(self) -> None:
        """Release the node's persistent worker pools.  Serialized with
        in-flight ops: closing mid-broadcast must not pull a warm pool
        out from under a running ``query_batch``."""
        with self._op_lock:
            self.plsh.close()

    def retire(self) -> np.ndarray:
        """Erase the node; returns the global ids that were dropped."""
        with self._op_lock:
            dropped = self._global_ids
            self.plsh.retire()
            self._global_ids = np.empty(0, dtype=np.int64)
            return dropped

    def retire_window(self) -> np.ndarray:
        """Drop every partition and delta row without tearing the node
        down (O(1) per partition — no table rebuild); returns the global
        ids that were resident.  The global-id map is *kept*: dropped
        ranges become holes whose stale entries pad the map so later
        local ids keep translating, and the next insert appends after
        them."""
        with self._op_lock:
            local = self.plsh.retire_window()
            return self._global_ids[local]

    def retire_before(self, cutoff: int) -> np.ndarray:
        """Retire rows with ``timestamp < cutoff``: wholly-cold partitions
        are dropped in O(1), the ragged edge is tombstoned.  Returns the
        global ids newly retired by this cutoff."""
        with self._op_lock:
            local = self.plsh.retire_before(cutoff)
            return self._global_ids[local]
