"""Contiguous static hash tables (Section 5.1).

A :class:`StaticTableSet` holds all ``L`` tables in two dense allocations:

* ``entries`` — int32 ``(L, N)``: data indexes grouped by table key, the
  paper's "contiguous arrays with exactly enough space".
* ``offsets`` — int32 ``(L, 2^k + 1)``: bucket boundaries.

The single large allocations are the library's "large pages" analogue — one
mapping per structure instead of per-bucket linked nodes.  Memory matches
the paper's Equation 7.4: ``(L*N + 2^k * L) * 4`` bytes.

Since PR 10 a streaming node holds one ``StaticTableSet`` **per time
partition** (see :mod:`repro.streaming.partitions`), each built over
its partition's rows with local (0-based) data indexes; the partition's
``base`` offset translates them into the node-wide id space.  A table
set is immutable after :meth:`StaticTableSet.build` — merges build a
replacement for the newest partition only, and time-based retirement
drops whole table sets without reading them.
"""

from __future__ import annotations

import numpy as np

from repro.core.partition import BUILD_STRATEGIES
from repro.params import PLSHParams
from repro.sparse.csr import ranges_to_indices

__all__ = ["StaticTableSet"]


class StaticTableSet:
    """All ``L`` static hash tables of one PLSH node."""

    def __init__(self, entries: np.ndarray, offsets: np.ndarray, params: PLSHParams):
        if entries.ndim != 2 or offsets.ndim != 2:
            raise ValueError("entries and offsets must be 2-D")
        if entries.shape[0] != params.n_tables:
            raise ValueError(
                f"expected {params.n_tables} tables, got {entries.shape[0]}"
            )
        if offsets.shape != (params.n_tables, params.n_buckets + 1):
            raise ValueError(
                f"offsets shape {offsets.shape} != "
                f"{(params.n_tables, params.n_buckets + 1)}"
            )
        self.entries = entries
        self.offsets = offsets
        self.params = params
        # Per-table bases for flat indexing into offsets/entries (batch path).
        tables = np.arange(params.n_tables, dtype=np.int64)
        self._offset_row_base = tables * (params.n_buckets + 1)
        self._entry_row_base = tables * self.n_items

    @classmethod
    def build(
        cls,
        u_values: np.ndarray,
        params: PLSHParams,
        *,
        strategy: str = "shared",
        vectorized: bool = True,
        workers: int = 1,
    ) -> "StaticTableSet":
        """Construct from cached ``(n, m)`` hash-function values.

        ``strategy`` is one of ``one_level`` / ``two_level`` / ``shared``
        (see :mod:`repro.core.partition`); production code uses the default.
        ``workers`` parallelizes per-table construction (shared strategy
        only; other strategies are ablation rungs and stay serial).
        """
        if u_values.ndim != 2 or u_values.shape[1] != params.m:
            raise ValueError(
                f"u_values must be (n, {params.m}), got {u_values.shape}"
            )
        try:
            build = BUILD_STRATEGIES[strategy]
        except KeyError:
            raise ValueError(
                f"unknown strategy {strategy!r}; expected one of "
                f"{sorted(BUILD_STRATEGIES)}"
            ) from None
        if strategy == "shared":
            entries, offsets = build(
                u_values, params.k, vectorized=vectorized, workers=workers
            )
        else:
            entries, offsets = build(u_values, params.k, vectorized=vectorized)
        return cls(entries, offsets, params)

    @property
    def n_items(self) -> int:
        return int(self.entries.shape[1])

    @property
    def n_tables(self) -> int:
        return int(self.entries.shape[0])

    @property
    def nbytes(self) -> int:
        return int(self.entries.nbytes + self.offsets.nbytes)

    def bucket(self, table: int, key: int) -> np.ndarray:
        """View of the data indexes in one bucket."""
        start = int(self.offsets[table, key])
        stop = int(self.offsets[table, key + 1])
        return self.entries[table, start:stop]

    def collisions(self, query_keys: np.ndarray) -> np.ndarray:
        """Concatenated bucket contents across all L tables for one query.

        ``query_keys`` is the length-L key vector ``g_1(q)..g_L(q)``.  The
        result may contain duplicates — Step Q2's dedup runs downstream.
        Gathering is fully vectorized across tables (the prefetch-friendly
        batched access of Section 5.2.2).
        """
        query_keys = np.asarray(query_keys, dtype=np.int64)
        if query_keys.shape != (self.n_tables,):
            raise ValueError(
                f"expected {self.n_tables} keys, got shape {query_keys.shape}"
            )
        tables = np.arange(self.n_tables)
        starts = self.offsets[tables, query_keys].astype(np.int64)
        stops = self.offsets[tables, query_keys + 1].astype(np.int64)
        flat_starts = tables * self.n_items + starts
        take = ranges_to_indices(flat_starts, stops - starts)
        if take.size == 0:
            return np.empty(0, dtype=np.int64)
        return self.entries.ravel()[take].astype(np.int64)

    def collisions_batch(
        self, query_keys: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Bucket contents for a whole query batch in one flat gather.

        ``query_keys`` is a ``(B, L)`` key matrix (one row per query, as
        produced by :meth:`AllPairsHasher.table_keys_batch`).  Returns
        ``(values, seg_offsets)`` where ``values`` concatenates the bucket
        contents of all ``B x L`` buckets query-major (query 0's L buckets,
        then query 1's, ...) and ``seg_offsets`` is the ``(B + 1,)`` int64
        boundary array: query ``b``'s collisions are
        ``values[seg_offsets[b]:seg_offsets[b + 1]]``.  Duplicates within a
        segment are expected — Step Q2's dedup runs downstream.

        The whole gather is a constant number of numpy calls regardless of
        batch size: this is the batch kernel's Step Q2 front half.
        """
        query_keys = np.asarray(query_keys)
        if query_keys.ndim != 2 or query_keys.shape[1] != self.n_tables:
            raise ValueError(
                f"expected (B, {self.n_tables}) keys, got shape "
                f"{query_keys.shape}"
            )
        n_queries = query_keys.shape[0]
        # One flat index per (query, table) bucket instead of two rounds of
        # 2-D advanced indexing: at small shard sizes this fixed B x L cost
        # is the dominant term, so every avoided (B, L) temporary counts.
        # ``idx`` is reused in place for the bucket-end gather.
        idx = self._offset_row_base[None, :] + query_keys
        offsets_flat = self.offsets.ravel()
        starts = offsets_flat[idx]  # int32, widened lazily via promotion
        idx += 1
        lengths = offsets_flat[idx] - starts  # (B, L) int32
        seg_offsets = np.zeros(n_queries + 1, dtype=np.int64)
        np.cumsum(lengths.sum(axis=1, dtype=np.int64), out=seg_offsets[1:])
        flat_starts = (self._entry_row_base[None, :] + starts).ravel()
        take = ranges_to_indices(flat_starts, lengths.ravel())
        if take.size == 0:
            return np.empty(0, dtype=np.int32), seg_offsets
        # Entries stay int32 (no widening pass): downstream segmented dedup
        # upcasts while fusing keys, so the extra copy would be pure waste.
        return self.entries.ravel()[take], seg_offsets

    def collisions_per_table(self, query_keys: np.ndarray) -> list[np.ndarray]:
        """Per-table bucket views (the unbatched access pattern; used by the
        Figure 5 "no prefetch" ablation and by tests)."""
        return [
            self.bucket(l, int(query_keys[l])) for l in range(self.n_tables)
        ]

    def validate(self) -> None:
        """Check structural invariants (each table is a permutation)."""
        n = self.n_items
        for l in range(self.n_tables):
            if self.offsets[l, 0] != 0 or self.offsets[l, -1] != n:
                raise ValueError(f"table {l}: offsets do not span 0..{n}")
            if np.any(np.diff(self.offsets[l]) < 0):
                raise ValueError(f"table {l}: offsets not monotone")
            perm = np.sort(self.entries[l])
            if not np.array_equal(perm, np.arange(n, dtype=perm.dtype)):
                raise ValueError(f"table {l}: entries are not a permutation")
