"""Closed-loop multi-client load generator for the serving gateway.

*Closed-loop*: each simulated client keeps exactly one request in
flight — it sends a query, waits for the answer, records the latency,
sends the next.  Throughput is therefore an emergent property of
latency and the client count (Little's law), not an arrival-rate knob
that can silently overrun the server; it is the honest way to compare a
coalescing gateway against an uncoalesced one, because the gateway only
gets the concurrency real clients would give it.

All clients run as coroutines on one event loop
(:class:`~repro.serve.client.AsyncGatewayClient` each), so a single
process can drive hundreds of connections.  Rejections are honored: a
rejected request sleeps the server's ``retry_after`` hint and then
retries *as the same logical request* (closed-loop clients do not skip
work), with rejections counted separately so shed load shows up in the
report instead of vanishing.

The :class:`LoadReport` carries client-observed p50/p99/max latency, the
completed-query throughput, rejection/error counts, and the gateway's
own batcher stats snapshot (mean batch size, flush causes) taken at the
end of the run — the coalescing evidence next to the latency it bought.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field

import numpy as np

from repro.serve.client import AsyncGatewayClient
from repro.sparse.csr import CSRMatrix

__all__ = ["LoadReport", "run_closed_loop"]


@dataclass
class LoadReport:
    """One closed-loop run, client-side view plus gateway evidence."""

    n_clients: int
    n_ok: int = 0
    n_rejected: int = 0
    n_errors: int = 0
    n_degraded: int = 0
    seconds: float = 0.0
    #: all per-request client-observed latencies (seconds), ok only.
    latencies: list[float] = field(default_factory=list)
    #: gateway ``stats()`` snapshot at the end of the run.
    gateway_stats: dict = field(default_factory=dict)

    @property
    def qps(self) -> float:
        return self.n_ok / self.seconds if self.seconds > 0 else 0.0

    def latency_ms(self, percentile: float) -> float:
        if not self.latencies:
            return 0.0
        return float(np.percentile(np.asarray(self.latencies), percentile)) * 1e3

    @property
    def p50_ms(self) -> float:
        return self.latency_ms(50)

    @property
    def p99_ms(self) -> float:
        return self.latency_ms(99)

    @property
    def mean_batch_size(self) -> float:
        return float(
            self.gateway_stats.get("batcher", {}).get("mean_batch_size", 0.0)
        )

    def row(self) -> list:
        """One table row: clients, ok, rej, qps, p50, p99, mean batch."""
        return [
            self.n_clients,
            self.n_ok,
            self.n_rejected,
            round(self.qps, 1),
            round(self.p50_ms, 2),
            round(self.p99_ms, 2),
            round(self.mean_batch_size, 1),
        ]


async def _client_loop(
    host: str,
    port: int,
    queries: CSRMatrix,
    offsets: np.ndarray,
    n_requests: int,
    radius: float | None,
    tenant: str | None,
    report: LoadReport,
    start_gate: asyncio.Event,
) -> None:
    client = await AsyncGatewayClient().connect(host, port)
    try:
        await start_gate.wait()
        n_rows = queries.n_rows
        served = 0
        cursor = 0
        while served < n_requests:
            cols, vals = queries.row(int(offsets[cursor % offsets.size]) % n_rows)
            cursor += 1
            start = time.perf_counter()
            message = await client.query_raw(
                cols, vals, radius=radius, tenant=tenant
            )
            status = message.get("status")
            if status == "ok":
                report.latencies.append(time.perf_counter() - start)
                report.n_ok += 1
                if message.get("degraded"):
                    report.n_degraded += 1
                served += 1
            elif status == "rejected":
                report.n_rejected += 1
                await asyncio.sleep(
                    float(message.get("retry_after", 0.001))
                )
            else:
                report.n_errors += 1
                served += 1
    finally:
        await client.close()


async def _run(
    host: str,
    port: int,
    queries: CSRMatrix,
    n_clients: int,
    requests_per_client: int,
    radius: float | None,
    tenants: list[str] | None,
    seed: int,
) -> LoadReport:
    report = LoadReport(n_clients=n_clients)
    rng = np.random.default_rng(seed)
    start_gate = asyncio.Event()
    tasks = []
    for c in range(n_clients):
        # Every client walks its own shuffled view of the query pool so
        # concurrent batches mix queries instead of duplicating them.
        offsets = rng.permutation(max(queries.n_rows, 1))
        tenant = tenants[c % len(tenants)] if tenants else None
        tasks.append(
            asyncio.ensure_future(
                _client_loop(
                    host, port, queries, offsets, requests_per_client,
                    radius, tenant, report, start_gate,
                )
            )
        )
    # All connections established before the clock starts.
    await asyncio.sleep(0)
    start_gate.set()
    start = time.perf_counter()
    results = await asyncio.gather(*tasks, return_exceptions=True)
    report.seconds = time.perf_counter() - start
    failures = [r for r in results if isinstance(r, BaseException)]
    if failures:
        raise failures[0]
    try:
        probe = await AsyncGatewayClient().connect(host, port)
        try:
            report.gateway_stats = await probe.stats()
        finally:
            await probe.close()
    except (ConnectionError, OSError):
        pass  # gateway already closing; the latency numbers stand
    return report


def run_closed_loop(
    host: str,
    port: int,
    queries: CSRMatrix,
    *,
    n_clients: int,
    requests_per_client: int,
    radius: float | None = None,
    tenants: list[str] | None = None,
    seed: int = 0,
) -> LoadReport:
    """Drive the gateway with ``n_clients`` closed-loop clients.

    Each client issues ``requests_per_client`` queries drawn (shuffled,
    per-client seed) from ``queries``; the report aggregates all clients.
    Runs its own event loop — call from ordinary sync code while the
    gateway serves on its background thread.
    """
    if n_clients < 1:
        raise ValueError(f"n_clients must be >= 1, got {n_clients}")
    if queries.n_rows < 1:
        raise ValueError("need at least one query vector")
    return asyncio.run(
        _run(
            host, port, queries, n_clients, requests_per_client,
            radius, tenants, seed,
        )
    )
