"""Serving gateway — request coalescing vs the uncoalesced baseline.

The PLSH coordinator exists to serve "queries arriving from different
clients" (paper §4), and the batch kernel is 3x+ faster per query than
the single-query path at paper-sized batches.  This bench measures
whether the gateway's micro-batching actually converts independent
closed-loop clients into that batch advantage:

* **coalesced** — the production config: flush at the 2 ms latency
  budget or a full batch, whichever first;
* **uncoalesced baseline** — the *same* gateway with ``max_batch=1``
  (every query is its own broadcast), same dispatch width, same
  clients — isolating coalescing as the only variable.

Reported per mode: completed-query throughput, client-observed p50/p99,
and the gateway's mean batch size (the coalescing evidence).  The run
asserts a conservative speedup floor — at CI smoke scale the kernels are
small and the win is modest; at paper scale it tracks the batch-kernel
advantage.

Scale knobs: ``PLSH_BENCH_GATEWAY_CLIENTS`` (default 64),
``PLSH_BENCH_GATEWAY_REQUESTS`` per client (default 15),
``PLSH_BENCH_GATEWAY_CORPUS`` rows indexed (default 20000, capped by the
workload), ``PLSH_BENCH_GATEWAY_MIN_SPEEDUP`` (default 1.2).
"""

from __future__ import annotations

import os

from repro.bench.artifacts import record_artifact
from repro.bench.reporting import format_table, print_section
from repro.cluster.cluster import PLSHCluster
from repro.serve import Gateway, run_closed_loop

N_NODES = 2


def _measure(cluster, dim, queries, *, max_batch, max_delay, n_clients,
             requests_per_client):
    with Gateway(
        cluster, dim,
        max_batch=max_batch, max_delay=max_delay,
        max_concurrent_batches=2,
        max_pending=max(1024, 4 * n_clients),
    ) as gw:
        return run_closed_loop(
            gw.host, gw.port, queries,
            n_clients=n_clients, requests_per_client=requests_per_client,
        )


def test_gateway_coalescing_speedup(twitter, scale):
    n_clients = int(os.environ.get("PLSH_BENCH_GATEWAY_CLIENTS", "64"))
    per_client = int(os.environ.get("PLSH_BENCH_GATEWAY_REQUESTS", "15"))
    corpus_rows = min(
        twitter.n, int(os.environ.get("PLSH_BENCH_GATEWAY_CORPUS", "20000"))
    )
    min_speedup = float(
        os.environ.get("PLSH_BENCH_GATEWAY_MIN_SPEEDUP", "1.2")
    )

    dim = twitter.vectors.n_cols
    capacity = -(-corpus_rows // N_NODES)  # fits: no window wrap/retirement
    cluster = PLSHCluster(
        N_NODES, capacity, dim, scale.params(), insert_window=N_NODES
    )
    try:
        cluster.insert(twitter.vectors.slice_rows(0, corpus_rows))
        cluster.merge_all()
        queries = twitter.queries

        # Warmup both paths once (first-touch numpy/socket costs).
        _measure(cluster, dim, queries, max_batch=64, max_delay=0.002,
                 n_clients=4, requests_per_client=2)

        baseline = _measure(
            cluster, dim, queries,
            max_batch=1, max_delay=0.0,
            n_clients=n_clients, requests_per_client=per_client,
        )
        coalesced = _measure(
            cluster, dim, queries,
            max_batch=256, max_delay=0.002,
            n_clients=n_clients, requests_per_client=per_client,
        )
    finally:
        cluster.close()

    speedup = coalesced.qps / max(baseline.qps, 1e-9)
    headers = [
        "mode", "clients", "ok", "rejected", "qps", "p50 ms", "p99 ms",
        "mean batch",
    ]
    rows = [
        ["uncoalesced"] + baseline.row(),
        ["coalesced"] + coalesced.row(),
    ]
    print_section(
        f"serving gateway: coalesced vs uncoalesced "
        f"({corpus_rows} rows, speedup {speedup:.2f}x)",
        format_table(headers, rows),
    )
    record_artifact(
        "serving_gateway",
        "coalescing",
        {
            "corpus_rows": corpus_rows,
            "n_clients": n_clients,
            "requests_per_client": per_client,
            "baseline": {
                "qps": baseline.qps,
                "p50_ms": baseline.p50_ms,
                "p99_ms": baseline.p99_ms,
                "mean_batch_size": baseline.mean_batch_size,
            },
            "coalesced": {
                "qps": coalesced.qps,
                "p50_ms": coalesced.p50_ms,
                "p99_ms": coalesced.p99_ms,
                "mean_batch_size": coalesced.mean_batch_size,
            },
            "speedup": speedup,
        },
    )

    total = n_clients * per_client
    assert baseline.n_ok == total and coalesced.n_ok == total
    assert baseline.n_errors == 0 and coalesced.n_errors == 0
    # Coalescing engaged: real multi-query batches, while the baseline
    # stayed strictly singleton.
    assert coalesced.mean_batch_size > 2.0
    assert baseline.mean_batch_size == 1.0
    assert speedup >= min_speedup, (
        f"coalescing speedup {speedup:.2f}x below floor {min_speedup}x "
        f"(baseline {baseline.qps:.0f} qps, coalesced {coalesced.qps:.0f} qps)"
    )
