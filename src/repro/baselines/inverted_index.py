"""Inverted-index baseline (Table 2's "Inverted index").

"Given a query text, the inverted index is used to get the set of all
documents (tweets) that contain at least one of the words in the document.
These candidate points are filtered using the distance criterion."

Posting lists are immutable int32 arrays built with one global counting
partition (term -> documents), matching how a static text engine would lay
them out.  Per the paper's accounting, candidate-generation time is tracked
separately from distance-filter time, and the number of distance
computations (= candidate count) is the headline column.
"""

from __future__ import annotations

import numpy as np

from repro.core.distance import angular_distance
from repro.core.query import QueryResult
from repro.sparse.csr import CSRMatrix
from repro.sparse.ops import row_dots_dense
from repro.utils.timing import StageTimes

__all__ = ["InvertedIndex"]


class InvertedIndex:
    """Term → posting-list index over a CSR corpus."""

    def __init__(self, data: CSRMatrix, radius: float) -> None:
        if not 0 < radius <= np.pi:
            raise ValueError(f"radius must be in (0, pi], got {radius}")
        self.data = data
        self.radius = radius
        self.n_distance_computations = 0
        self.stage_times = StageTimes()
        # Build all posting lists with one stable partition of (term, doc)
        # pairs: documents within a posting list stay in ascending order.
        doc_of = np.repeat(
            np.arange(data.n_rows, dtype=np.int32), data.row_lengths()
        )
        order = np.argsort(data.indices, kind="stable")
        self._postings = doc_of[order]
        counts = np.bincount(data.indices, minlength=data.n_cols)
        self._offsets = np.zeros(data.n_cols + 1, dtype=np.int64)
        np.cumsum(counts, out=self._offsets[1:])
        self._q_dense = np.zeros(data.n_cols, dtype=np.float32)
        self._seen = np.zeros(data.n_rows, dtype=bool)

    def posting_list(self, term: int) -> np.ndarray:
        """Documents containing ``term`` (ascending, deduplicated per doc)."""
        return self._postings[self._offsets[term] : self._offsets[term + 1]]

    def candidates(self, q_cols: np.ndarray) -> np.ndarray:
        """Union of posting lists of the query terms."""
        q_cols = np.asarray(q_cols, dtype=np.int64)
        if q_cols.size == 0:
            return np.empty(0, dtype=np.int64)
        parts = [self.posting_list(int(t)) for t in q_cols]
        merged = np.concatenate(parts).astype(np.int64)
        if merged.size == 0:
            return merged
        self._seen[merged] = True
        out = np.nonzero(self._seen)[0]
        self._seen[out] = False
        return out

    def query(self, q_cols: np.ndarray, q_vals: np.ndarray) -> QueryResult:
        """Candidate generation + exact distance filter."""
        q_cols = np.asarray(q_cols, dtype=np.int64)
        q_vals = np.asarray(q_vals, dtype=np.float32)
        with self.stage_times.stage("candidate_generation"):
            cands = self.candidates(q_cols)
        with self.stage_times.stage("distance_filter"):
            self._q_dense[q_cols] = q_vals
            dots = row_dots_dense(self.data, cands, self._q_dense)
            self._q_dense[q_cols] = 0.0
            self.n_distance_computations += int(cands.size)
            dists = angular_distance(dots)
            within = dists <= self.radius
            return QueryResult(cands[within], dists[within])

    def query_batch(self, queries: CSRMatrix) -> list[QueryResult]:
        return [self.query(*queries.row(r)) for r in range(queries.n_rows)]
