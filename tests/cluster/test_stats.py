"""Cluster stats helpers."""

from __future__ import annotations

import pytest

from repro.cluster.coordinator import BroadcastOutcome
from repro.cluster.stats import (
    aggregate_node_seconds,
    communication_fraction,
    load_imbalance,
)
from repro.core.query import QueryResult

import numpy as np


def _outcome(node_seconds, net=0.001):
    empty = QueryResult(np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float32))
    return BroadcastOutcome(empty, node_seconds, net)


def test_aggregate_node_seconds_sums_per_node():
    outcomes = [
        _outcome({0: 1.0, 1: 2.0}),
        _outcome({0: 0.5, 2: 3.0}),
    ]
    totals = aggregate_node_seconds(outcomes)
    assert totals == {0: 1.5, 1: 2.0, 2: 3.0}


def test_aggregate_empty():
    assert aggregate_node_seconds([]) == {}


def test_load_imbalance_ideal_and_skewed():
    assert load_imbalance([2.0, 2.0]) == 1.0
    assert load_imbalance([4.0, 2.0, 0.0]) == pytest.approx(2.0)


def test_load_imbalance_zero_times():
    assert load_imbalance([0.0, 0.0]) == 1.0


def test_communication_fraction_bounds():
    assert communication_fraction(0.5, 0.5) == pytest.approx(0.5)
    assert 0.0 <= communication_fraction(1e-9, 1.0) < 0.001


def test_critical_path():
    o = _outcome({0: 1.0, 1: 3.0}, net=0.25)
    assert o.critical_path_seconds == pytest.approx(3.25)
    empty = _outcome({}, net=0.1)
    assert empty.critical_path_seconds == pytest.approx(0.1)
