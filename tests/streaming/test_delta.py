"""DeltaTable tests: insert-optimized bins, batched inserts, hash caching."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.hashing import AllPairsHasher
from repro.params import PLSHParams
from repro.streaming.delta import DeltaTable


@pytest.fixture(scope="module")
def parts(small_vectors):
    params = PLSHParams(k=8, m=6, seed=9)
    hasher = AllPairsHasher(params, small_vectors.n_cols)
    return params, hasher


def fresh_delta(parts, small_vectors):
    params, hasher = parts
    return DeltaTable(small_vectors.n_cols, params, hasher)


def test_insert_assigns_sequential_local_ids(parts, small_vectors):
    delta = fresh_delta(parts, small_vectors)
    ids1 = delta.insert_batch(small_vectors.slice_rows(0, 10))
    ids2 = delta.insert_batch(small_vectors.slice_rows(10, 25))
    np.testing.assert_array_equal(ids1, np.arange(10))
    np.testing.assert_array_equal(ids2, np.arange(10, 25))
    assert len(delta) == 25


def test_every_row_lands_in_every_table(parts, small_vectors):
    params, hasher = parts
    delta = fresh_delta(parts, small_vectors)
    batch = small_vectors.slice_rows(0, 30)
    delta.insert_batch(batch)
    u = hasher.hash_functions(batch)
    for l in range(params.n_tables):
        keys = hasher.table_key(u, l)
        for row in range(30):
            query_keys = np.full(params.n_tables, -1, dtype=np.int64)
            # direct bin check
            bucket = delta._bins[l].get(int(keys[row]), [])
            assert row in bucket


def test_collisions_match_bin_contents(parts, small_vectors):
    params, hasher = parts
    delta = fresh_delta(parts, small_vectors)
    delta.insert_batch(small_vectors.slice_rows(0, 50))
    q = small_vectors.slice_rows(3, 4)
    u = hasher.hash_functions(q)[0]
    keys = hasher.table_keys_for_query(u)
    collisions = delta.collisions(keys)
    assert 3 in collisions.tolist()
    # Manual union across tables must match.
    expected = []
    for l in range(params.n_tables):
        expected.extend(delta._bins[l].get(int(keys[l]), []))
    assert sorted(collisions.tolist()) == sorted(expected)


def test_vectors_roundtrip_and_cache(parts, small_vectors):
    delta = fresh_delta(parts, small_vectors)
    delta.insert_batch(small_vectors.slice_rows(0, 7))
    v1 = delta.vectors()
    assert v1 is delta.vectors()  # cached
    delta.insert_batch(small_vectors.slice_rows(7, 9))
    v2 = delta.vectors()  # cache invalidated by insert
    assert v2.n_rows == 9
    np.testing.assert_allclose(
        v2.to_dense()[:7], small_vectors.slice_rows(0, 7).to_dense()
    )


def test_u_values_cached_and_correct(parts, small_vectors):
    params, hasher = parts
    delta = fresh_delta(parts, small_vectors)
    batch = small_vectors.slice_rows(0, 12)
    delta.insert_batch(batch)
    np.testing.assert_array_equal(
        delta.u_values(), hasher.hash_functions(batch)
    )


def test_empty_batch_noop(parts, small_vectors):
    from repro.sparse.csr import CSRMatrix

    delta = fresh_delta(parts, small_vectors)
    out = delta.insert_batch(CSRMatrix.empty(small_vectors.n_cols))
    assert out.size == 0
    assert len(delta) == 0


def test_wrong_dim_raises(parts, small_vectors):
    from repro.sparse.csr import CSRMatrix

    delta = fresh_delta(parts, small_vectors)
    with pytest.raises(ValueError):
        delta.insert_batch(CSRMatrix.empty(small_vectors.n_cols + 1))


def test_clear(parts, small_vectors):
    delta = fresh_delta(parts, small_vectors)
    delta.insert_batch(small_vectors.slice_rows(0, 5))
    delta.clear()
    assert len(delta) == 0
    assert delta.vectors().n_rows == 0
    assert delta.u_values().shape == (0, parts[0].m)


def test_bucket_sizes_diagnostic(parts, small_vectors):
    delta = fresh_delta(parts, small_vectors)
    delta.insert_batch(small_vectors.slice_rows(0, 20))
    sizes = delta.bucket_sizes()
    assert len(sizes) == parts[0].n_tables
    assert all(1 <= v <= 20 for v in sizes.values())
