"""IDF-weighted unit-vector encoding of token documents (Section 8).

The paper's preprocessing: each tweet becomes a sparse vector in the
vocabulary space, weighted by Inverse Document Frequency ("to give more
importance to less common words") and normalized to a unit vector so that
the angular hash family applies.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.sparse.csr import CSRMatrix

__all__ = ["IDFVectorizer"]


class IDFVectorizer:
    """Turns token-id documents into IDF-weighted unit CSR rows.

    The vectorizer is fit on a corpus (document frequencies → IDF scores) and
    then applied to any documents over the same vocabulary, including
    queries.  Repeated tokens in a document contribute term frequency, which
    matters little for tweets (tf ≈ 1) but keeps longer documents correct.
    """

    def __init__(self, vocab_size: int) -> None:
        if vocab_size <= 0:
            raise ValueError(f"vocab_size must be positive, got {vocab_size}")
        self.vocab_size = int(vocab_size)
        self.idf: np.ndarray | None = None
        self.n_documents_fit = 0

    def fit(self, documents: Iterable[Sequence[int]]) -> "IDFVectorizer":
        """Compute IDF from document frequencies: ``idf = ln(N / df)``.

        Terms never seen keep ``idf = ln(N+1)`` (max rarity) so out-of-corpus
        query words still contribute rather than silently vanishing.
        """
        df = np.zeros(self.vocab_size, dtype=np.int64)
        n_docs = 0
        for doc in documents:
            ids = np.unique(np.asarray(doc, dtype=np.int64))
            if ids.size:
                self._check_ids(ids)
                df[ids] += 1
            n_docs += 1
        if n_docs == 0:
            raise ValueError("cannot fit on an empty corpus")
        self.n_documents_fit = n_docs
        # Unseen terms get df=0 -> idf of a singleton, via the +1 smoothing.
        idf = np.log((n_docs + 1.0) / np.maximum(df, 1).astype(np.float64))
        idf[df == 0] = np.log(n_docs + 1.0)
        self.idf = idf.astype(np.float32)
        return self

    def transform(self, documents: Iterable[Sequence[int]]) -> CSRMatrix:
        """Encode documents as IDF-weighted unit-norm CSR rows.

        Documents with no in-vocabulary tokens become empty rows (the paper's
        "0-length queries", which it drops before benchmarking; dropping is
        the caller's policy, not the encoder's).
        """
        if self.idf is None:
            raise RuntimeError("vectorizer must be fit before transform")
        rows: list[tuple[np.ndarray, np.ndarray]] = []
        for doc in documents:
            ids = np.asarray(doc, dtype=np.int64)
            if ids.size == 0:
                rows.append((np.empty(0, dtype=np.int32), np.empty(0, dtype=np.float32)))
                continue
            self._check_ids(ids)
            uniq, counts = np.unique(ids, return_counts=True)
            weights = counts.astype(np.float64) * self.idf[uniq]
            norm = np.sqrt((weights**2).sum())
            if norm > 0:
                weights /= norm
            rows.append((uniq.astype(np.int32), weights.astype(np.float32)))
        return CSRMatrix.from_rows(rows, self.vocab_size)

    def fit_transform(self, documents: Sequence[Sequence[int]]) -> CSRMatrix:
        """Fit on the corpus then encode it."""
        return self.fit(documents).transform(documents)

    def _check_ids(self, ids: np.ndarray) -> None:
        lo, hi = int(ids.min()), int(ids.max())
        if lo < 0 or hi >= self.vocab_size:
            raise ValueError(
                f"token id out of vocabulary range [0, {self.vocab_size}): "
                f"min={lo} max={hi}"
            )
