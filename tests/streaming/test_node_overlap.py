"""Non-blocking merge lifecycle and concurrency soak tests.

The contract under test (``StreamingPLSH`` module docstring): between
``begin_merge`` and ``commit_merge`` the node serves queries against
``static + frozen delta + fresh delta`` with answers **bit-identical** to
the synchronous-merge path, inserts are visible by the next query, deletes
apply immediately at any merge phase, and worker pools are invalidated at
*commit* (when the layout actually changes), not at merge start.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

import repro.streaming.node as node_mod
from repro.cluster.cluster import PLSHCluster
from repro.params import PLSHParams
from repro.sparse.csr import CSRMatrix
from repro.streaming.merge import prepare_merge
from repro.streaming.node import CapacityError, StreamingPLSH

DIM = 64
PARAMS = PLSHParams(k=4, m=4, radius=1.15, seed=99)
_RNG = np.random.default_rng(2024)
_DENSE = _RNG.standard_normal((400, DIM)).astype(np.float32)
_DENSE /= np.linalg.norm(_DENSE, axis=1, keepdims=True)
POOL = CSRMatrix.from_dense(_DENSE)


def make_node(n_static=120, n_delta=60, **kwargs) -> StreamingPLSH:
    kwargs.setdefault("auto_merge", False)
    node = StreamingPLSH(DIM, PARAMS, 400, delta_fraction=0.2, **kwargs)
    if n_static:
        node.insert_batch(POOL.slice_rows(0, n_static))
        node.merge_now()
    if n_delta:
        node.insert_batch(POOL.slice_rows(n_static, n_static + n_delta))
    return node


def assert_parity(a, b, n_queries=30, workers_a=1, workers_b=1) -> None:
    queries = POOL.slice_rows(0, n_queries)
    ra = a.query_batch(queries, workers=workers_a)
    rb = b.query_batch(queries, workers=workers_b)
    for x, y in zip(ra, rb):
        np.testing.assert_array_equal(x.indices, y.indices)
        np.testing.assert_array_equal(x.distances, y.distances)


def slow_prepare(seconds: float):
    def _slow(static, delta):
        time.sleep(seconds)
        return prepare_merge(static, delta)

    return _slow


# -- lifecycle ---------------------------------------------------------------


def test_begin_commit_lifecycle():
    with make_node() as node:
        assert not node.merge_in_flight
        assert node.n_static == 120 and node.n_delta == 60
        assert node.begin_merge()
        assert node.merge_in_flight
        assert node.n_frozen == 60 and node.n_delta == 0
        assert node.n_total == 180  # frozen rows still counted
        assert node.commit_merge(wait=True)
        assert not node.merge_in_flight
        assert node.n_static == 180 and node.n_frozen == 0
        assert node.n_merges == 2  # setup merge + overlapped merge
        # Nothing pending: further commits are no-ops.
        assert not node.commit_merge(wait=True)


def test_begin_merge_empty_delta_is_noop():
    with make_node(n_delta=0) as node:
        assert not node.begin_merge()
        assert not node.merge_in_flight


def test_commit_nonblocking_polls(monkeypatch):
    monkeypatch.setattr(node_mod, "prepare_merge", slow_prepare(0.3))
    with make_node() as node:
        node.begin_merge()
        # Build sleeps 0.3s: an immediate non-blocking commit must refuse.
        assert not node.commit_merge(wait=False)
        assert node.merge_in_flight
        deadline = time.perf_counter() + 5.0
        while not node.merge_ready:
            assert time.perf_counter() < deadline, "build never finished"
            time.sleep(0.01)
        assert node.commit_merge(wait=False)
        assert node.n_static == 180


def test_merge_now_drains_pending(monkeypatch):
    monkeypatch.setattr(node_mod, "prepare_merge", slow_prepare(0.1))
    with make_node() as node:
        node.begin_merge()
        node.insert_batch(POOL.slice_rows(180, 200))  # fresh delta refills
        node.merge_now()  # commits the pending build, then merges fresh
        assert not node.merge_in_flight
        assert node.n_static == 200 and node.n_delta == 0
        assert node.n_merges == 3


def test_retire_abandons_pending_merge(monkeypatch):
    monkeypatch.setattr(node_mod, "prepare_merge", slow_prepare(0.1))
    with make_node() as node:
        node.begin_merge()
        node.retire()
        assert not node.merge_in_flight
        assert node.n_total == 0 and node.n_static == 0
        # The abandoned build must not land later.
        time.sleep(0.15)
        assert node.n_static == 0
        ids = node.insert_batch(POOL.slice_rows(0, 5))
        assert ids.tolist() == [0, 1, 2, 3, 4]


def test_capacity_counts_frozen_rows():
    node = StreamingPLSH(
        DIM, PARAMS, capacity=100, delta_fraction=0.5, auto_merge=False
    )
    with node:
        node.insert_batch(POOL.slice_rows(0, 90))
        node.begin_merge()
        with pytest.raises(CapacityError):
            node.insert_batch(POOL.slice_rows(90, 110))
        node.insert_batch(POOL.slice_rows(90, 100))  # exactly fits
        assert node.is_full
        node.commit_merge()
        assert node.n_total == 100


def test_builder_failure_recovers(monkeypatch):
    calls = {"n": 0}

    def flaky(static, delta):
        calls["n"] += 1
        if calls["n"] == 1:
            raise RuntimeError("injected build failure")
        return prepare_merge(static, delta)

    monkeypatch.setattr(node_mod, "prepare_merge", flaky)
    with make_node() as node:
        node.begin_merge()
        deadline = time.perf_counter() + 5.0
        while not node.merge_ready:
            assert time.perf_counter() < deadline
            time.sleep(0.01)
        # Polls never surface the background error and never rebuild:
        # they just report "nothing committed" while the frozen rows
        # keep being served.
        assert not node.commit_merge(wait=False)
        assert not node.commit_merge(wait=False)  # stable after consume
        assert node.merge_in_flight and node.n_frozen == 60
        assert node.n_total == 180
        reference = make_node()
        with reference:
            reference.merge_now()
            assert_parity(node, reference)
        # The blocking drain recovers by rebuilding synchronously.
        assert node.commit_merge(wait=True)
        assert node.n_static == 180 and not node.merge_in_flight
        assert calls["n"] == 2  # one failed background try + one rebuild


def test_builder_failure_surfaces_on_blocking_drain(monkeypatch):
    """A failure that also reproduces synchronously raises only on the
    explicit blocking drain — never out of a wait=False poll."""

    def always_broken(static, delta):
        raise RuntimeError("injected build failure")

    monkeypatch.setattr(node_mod, "prepare_merge", always_broken)
    with make_node() as node:
        node.begin_merge()
        assert node._merge_task is not None
        node._merge_task.wait()
        assert not node.commit_merge(wait=False)  # silent, non-blocking
        with pytest.raises(RuntimeError, match="injected build failure"):
            node.commit_merge(wait=True)
        # Still nothing lost: the frozen rows remain queryable.
        assert node.n_total == 180 and node.n_frozen == 60


# -- bit-identity across the merge window ------------------------------------


@pytest.mark.parametrize("workers", [1, 2])
def test_mid_merge_parity_with_synchronous_path(workers):
    overlapped = make_node()
    reference = make_node()
    with overlapped, reference:
        reference.merge_now()  # the blocking path, fully merged
        overlapped.begin_merge()
        assert overlapped.merge_in_flight
        # Mid-merge: static+frozen vs merged static must answer identically.
        assert_parity(overlapped, reference, workers_a=workers)
        # Per-query path too.
        for r in range(10):
            cols, vals = POOL.row(r)
            a = overlapped.query(cols.astype(np.int64), vals)
            b = reference.query(cols.astype(np.int64), vals)
            np.testing.assert_array_equal(a.indices, b.indices)
            np.testing.assert_array_equal(a.distances, b.distances)
        overlapped.commit_merge()
        assert_parity(overlapped, reference, workers_a=workers)


def test_mid_merge_insert_and_delete_parity():
    """All three structures live at once: static + frozen + fresh, with
    tombstones landing in each range mid-merge."""
    overlapped = make_node()
    reference = make_node()
    with overlapped, reference:
        reference.merge_now()
        overlapped.begin_merge()
        # Inserts land in the fresh delta; visible by the next query.
        la = overlapped.insert_batch(POOL.slice_rows(180, 220))
        lb = reference.insert_batch(POOL.slice_rows(180, 220))
        np.testing.assert_array_equal(la, lb)  # id layout identical
        cols, vals = POOL.row(200)
        assert 200 in overlapped.query(cols.astype(np.int64), vals).indices
        # Tombstones in the static, frozen and fresh ranges.
        victims = np.asarray([10, 130, 200])
        overlapped.delete(victims)
        reference.delete(victims)
        assert_parity(overlapped, reference, n_queries=40)
        for v in victims.tolist():
            cols, vals = POOL.row(v)
            assert v not in overlapped.query(cols.astype(np.int64), vals).indices
        overlapped.commit_merge()
        # Tombstones survive the swap without replay.
        assert_parity(overlapped, reference, n_queries=40)
        for v in victims.tolist():
            cols, vals = POOL.row(v)
            assert v not in overlapped.query(cols.astype(np.int64), vals).indices


# -- concurrency soak --------------------------------------------------------


@pytest.mark.parametrize("workers", [1, 2])
def test_soak_query_batch_hammers_node_during_merge(monkeypatch, workers):
    """Background build in flight while the main thread hammers
    query_batch: every batch must match the synchronous path exactly, and
    no batch may observe a torn static/frozen/fresh boundary."""
    monkeypatch.setattr(node_mod, "prepare_merge", slow_prepare(0.4))
    overlapped = make_node()
    reference = make_node()
    with overlapped, reference:
        reference.merge_now()
        overlapped.begin_merge()
        queries = POOL.slice_rows(0, 25)
        ref_results = reference.query_batch(queries)
        in_flight_batches = 0
        for _ in range(40):
            was_in_flight = overlapped.merge_in_flight
            sizes = (
                overlapped.n_static,
                overlapped.n_frozen,
                overlapped.n_delta,
            )
            got = overlapped.query_batch(queries, workers=workers)
            # A torn boundary would double- or drop-count rows; sizes are
            # stable within a batch and results exactly match the
            # reference whatever phase the merge is in.
            assert sum(sizes) == 180
            for x, y in zip(got, ref_results):
                np.testing.assert_array_equal(x.indices, y.indices)
                np.testing.assert_array_equal(x.distances, y.distances)
            if was_in_flight:
                in_flight_batches += 1
                overlapped.commit_merge(wait=False)  # opportunistic poll
        # The 0.4 s build must have overlapped a healthy number of batches.
        assert in_flight_batches >= 3, (
            f"merge finished too fast to test overlap ({in_flight_batches})"
        )
        overlapped.commit_merge(wait=True)
        assert overlapped.n_static == 180
        got = overlapped.query_batch(queries, workers=workers)
        for x, y in zip(got, ref_results):
            np.testing.assert_array_equal(x.indices, y.indices)


def test_soak_concurrent_inserts_and_queries(monkeypatch):
    """Firehose scenario: inserts keep landing while the build runs; each
    round's inserts are visible to the immediately following query."""
    monkeypatch.setattr(node_mod, "prepare_merge", slow_prepare(0.3))
    with make_node(n_static=120, n_delta=40) as node:
        node.begin_merge()
        inserted = 160
        while node.merge_in_flight and inserted < 400:
            ids = node.insert_batch(POOL.slice_rows(inserted, inserted + 8))
            assert ids.tolist() == list(range(inserted, inserted + 8))
            inserted += 8
            cols, vals = POOL.row(inserted - 1)
            res = node.query(cols.astype(np.int64), vals)
            assert inserted - 1 in res.indices, "insert not visible by next query"
            node.commit_merge(wait=False)
        node.commit_merge(wait=True)
        assert node.n_static >= 160
        assert node.n_total == inserted


# -- pool invalidation timing ------------------------------------------------


def test_pools_survive_begin_and_invalidate_at_commit():
    with make_node() as node:
        queries = POOL.slice_rows(0, 16)
        node.query_batch(queries, workers=2)  # warms a pool
        assert len(node._executors) == 1
        pool = node._executors.get(2, None)
        node.begin_merge()
        # Merge start must NOT re-fork: the snapshot still answers
        # bit-identically (same rows, old static+delta layout).
        assert len(node._executors) == 1
        assert node._executors.get(2, None) is pool and not pool.closed
        node.query_batch(queries, workers=2)
        node.commit_merge(wait=True)
        # Commit swapped the static in: snapshots are stale now.
        assert len(node._executors) == 0
        assert pool.closed


def test_no_new_fork_pool_while_builder_runs(monkeypatch):
    """fork()ing while the builder thread may hold BLAS/allocator locks
    can deadlock the child, so new pools requested mid-build come from
    the thread backend; a pool forked *before* begin_merge (no builder
    thread existed) is reused untouched."""
    from repro.parallel import fork_available

    monkeypatch.setattr(node_mod, "prepare_merge", slow_prepare(0.5))
    with make_node() as node:
        node.begin_merge()
        assert node.merge_in_flight and not node.merge_ready
        ex = node._executor(2, None)
        assert ex.backend == "thread"
        queries = POOL.slice_rows(0, 16)
        reference = make_node()
        with reference:
            reference.merge_now()
            assert_parity(node, reference, workers_a=2)
        node.commit_merge(wait=True)
        # Post-commit the platform default (fork pool on Linux) returns.
        if fork_available():
            assert node._executor(2, None).backend == "fork_pool"

    # And a warm pre-begin fork pool is preferred over a new thread pool.
    monkeypatch.setattr(node_mod, "prepare_merge", slow_prepare(0.3))
    with make_node() as node:
        warm = node._executor(2, None)
        node.begin_merge()
        assert node._executor(2, None) is warm


def test_sibling_node_build_blocks_new_forks(monkeypatch):
    """The fork hazard is process-wide: while ANY node's builder thread
    runs, no pool anywhere in the process may fork — the node guard and
    the make_executor backstop both degrade to threads."""
    from repro.parallel import BackgroundTask, fork_available, make_executor

    monkeypatch.setattr(node_mod, "prepare_merge", slow_prepare(0.4))
    building = make_node()
    sibling = make_node(n_static=60, n_delta=20)
    with building, sibling:
        building.begin_merge()
        assert BackgroundTask.any_active()
        # The innocent sibling has no merge of its own in flight, yet its
        # new pool must not fork while the build runs.
        assert not sibling.merge_in_flight
        assert sibling._executor(2, None).backend == "thread"
        # The factory backstop covers creation paths outside the node.
        ex = make_executor(None, 2, sibling)
        assert ex.backend == "thread"
        ex.close()
        building.commit_merge(wait=True)
        assert not BackgroundTask.any_active()
        if fork_available():
            ex = make_executor(None, 2, sibling)
            assert ex.backend == "fork_pool"
            ex.close()


# -- auto-merge policy -------------------------------------------------------


def test_auto_overlap_merges_on_threshold():
    node = StreamingPLSH(
        DIM, PARAMS, capacity=400, delta_fraction=0.1,
        auto_merge=True, overlap_merges=True,
    )
    with node:
        # Crossing the threshold (40) starts a background merge instead of
        # blocking the insert.
        node.insert_batch(POOL.slice_rows(0, 50))
        assert node.merge_in_flight
        assert node.n_frozen == 50 and node.n_delta == 0
        # Next threshold crossing drains the first build, then begins the
        # second — at most one merge in flight, nothing lost.
        node.insert_batch(POOL.slice_rows(50, 100))
        assert node.n_static == 50 and node.n_frozen == 50
        node.commit_merge(wait=True)
        assert node.n_static == 100 and node.n_merges == 2
        reference = make_node(n_static=100, n_delta=0)
        with reference:
            assert_parity(node, reference)


def test_cluster_broadcast_and_stats_mid_merge():
    cluster = PLSHCluster(
        3, 120, DIM, PARAMS, insert_window=3, delta_fraction=0.3,
        overlap_merges=True,
    )
    reference = PLSHCluster(3, 120, DIM, PARAMS, insert_window=3)
    with cluster, reference:
        cluster.insert(POOL.slice_rows(0, 90))
        reference.insert(POOL.slice_rows(0, 90))
        n_started = cluster.begin_merge_all()
        assert n_started == 3
        stats = cluster.stats()
        assert [row["merge_in_flight"] for row in stats] == [True] * 3
        assert all(row["n_frozen"] > 0 for row in stats)
        # Broadcast answers stay bit-identical while every node is
        # mid-merge.
        queries = POOL.slice_rows(0, 12)
        got = cluster.query_batch(queries)
        ref = reference.query_batch(queries)
        for a, b in zip(got, ref):
            np.testing.assert_array_equal(
                np.sort(a.result.indices), np.sort(b.result.indices)
            )
        committed = cluster.commit_merges(wait=True)
        assert committed == 3
        assert [row["merge_in_flight"] for row in cluster.stats()] == [False] * 3
        got = cluster.query_batch(queries)
        for a, b in zip(got, ref):
            np.testing.assert_array_equal(
                np.sort(a.result.indices), np.sort(b.result.indices)
            )
