"""Unit tests for the health subsystem: state machine, circuit breaker,
half-open probe discipline, backoff schedule, heartbeat monitor."""

from __future__ import annotations

import threading

import pytest

from repro.cluster.health import (
    BreakerState,
    HealthMonitor,
    HealthState,
    NodeHealth,
    backoff_delays,
)


class FakeClock:
    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def health(clock):
    return NodeHealth(down_after=3, cooldown=2.0, clock=clock)


class TestStateMachine:
    def test_starts_up_closed(self, health):
        assert health.state is HealthState.UP
        assert health.breaker is BreakerState.CLOSED
        assert health.allow_request()

    def test_first_failure_is_suspect_not_down(self, health):
        health.record_failure("boom")
        assert health.state is HealthState.SUSPECT
        # SUSPECT still serves: one flake must not remove a node.
        assert health.breaker is BreakerState.CLOSED
        assert health.allow_request()

    def test_down_after_consecutive_failures(self, health):
        for _ in range(3):
            health.record_failure("boom")
        assert health.state is HealthState.DOWN
        assert health.breaker is BreakerState.OPEN
        assert not health.allow_request()

    def test_success_resets_failure_streak(self, health):
        health.record_failure("a")
        health.record_failure("b")
        health.record_success()
        assert health.state is HealthState.UP
        assert health.consecutive_failures == 0
        # The streak is consecutive, not cumulative.
        health.record_failure("c")
        assert health.state is HealthState.SUSPECT

    def test_timeout_weight_trips_immediately(self, health):
        # A blown deadline is recorded with full weight: one hung request
        # must not cost every subsequent broadcast a deadline.
        health.record_failure("deadline", weight=health.down_after)
        assert health.state is HealthState.DOWN
        assert not health.allow_request()

    def test_invalid_down_after_rejected(self):
        with pytest.raises(ValueError, match="down_after"):
            NodeHealth(down_after=0)


class TestBreakerProbing:
    def _trip(self, health):
        for _ in range(health.down_after):
            health.record_failure("x")

    def test_no_probe_before_cooldown(self, health, clock):
        self._trip(health)
        assert not health.allow_probe()
        clock.advance(1.9)
        assert not health.allow_probe()

    def test_single_half_open_slot(self, health, clock):
        self._trip(health)
        clock.advance(2.1)
        assert health.allow_probe()
        assert health.breaker is BreakerState.HALF_OPEN
        # The slot is exclusive: a concurrent prober is refused.
        assert not health.allow_probe()

    def test_probe_success_closes(self, health, clock):
        self._trip(health)
        clock.advance(2.1)
        assert health.allow_probe()
        health.record_success()
        assert health.breaker is BreakerState.CLOSED
        assert health.state is HealthState.UP
        assert health.allow_request()

    def test_probe_failure_reopens_and_restarts_cooldown(self, health, clock):
        self._trip(health)
        clock.advance(2.1)
        assert health.allow_probe()
        health.record_failure("still dead")
        assert health.breaker is BreakerState.OPEN
        # Cooldown restarted from the failed probe, not the original trip.
        assert not health.allow_probe()
        clock.advance(2.1)
        assert health.allow_probe()

    def test_abort_probe_releases_slot(self, health, clock):
        self._trip(health)
        clock.advance(2.1)
        assert health.allow_probe()
        health.abort_probe()
        # Slot free again without an outcome recorded.
        assert health.allow_probe()

    def test_healthy_node_probes_freely(self, health):
        assert health.allow_probe()
        assert health.allow_probe()  # no slot is claimed while CLOSED

    def test_trip_counter(self, health, clock):
        self._trip(health)
        assert health.n_trips == 1
        self._trip(health)  # further failures while down: same outage
        assert health.n_trips == 1
        clock.advance(2.1)
        assert health.allow_probe()
        health.record_success()
        self._trip(health)  # a fresh outage
        assert health.n_trips == 2


class TestSnapshot:
    def test_snapshot_fields(self, health):
        health.record_success()
        health.record_failure("late")
        snap = health.snapshot()
        assert snap["state"] == "suspect"
        assert snap["breaker"] == "closed"
        assert snap["consecutive_failures"] == 1
        assert snap["last_error"] == "late"
        assert snap["n_successes_total"] == 1
        assert snap["n_failures_total"] == 1

    def test_thread_safety_smoke(self, health):
        # Hammer the record paths from threads; the invariant is simply
        # that internal state stays consistent (no exceptions, counter
        # within bounds).
        def work():
            for i in range(200):
                if i % 3:
                    health.record_failure("x")
                else:
                    health.record_success()
                health.allow_request()
                health.state, health.breaker

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert health.n_failures_total + health.n_successes_total == 800


class TestBackoff:
    def test_exponential_shape_capped(self):
        import random

        delays = list(
            backoff_delays(6, base=0.05, factor=2.0, max_delay=0.3,
                           jitter=0.0, rng=random.Random(1))
        )
        assert delays == [0.05, 0.1, 0.2, 0.3, 0.3, 0.3]

    def test_jitter_bounds(self):
        import random

        rng = random.Random(7)
        for d, base in zip(
            backoff_delays(5, base=0.1, factor=1.0, jitter=0.5, rng=rng),
            [0.1] * 5,
        ):
            assert base <= d <= base * 1.5

    def test_negative_n_rejected(self):
        with pytest.raises(ValueError, match="n must be"):
            list(backoff_delays(-1))


class _ProbeTarget:
    def __init__(self) -> None:
        self.n_probes = 0

    def probe(self):
        self.n_probes += 1
        return True


class TestHealthMonitor:
    def test_monitor_probes_periodically(self):
        target = _ProbeTarget()
        with HealthMonitor([target], interval=0.02) as monitor:
            import time

            deadline = time.monotonic() + 2.0
            while target.n_probes < 3 and time.monotonic() < deadline:
                time.sleep(0.01)
        assert target.n_probes >= 3
        assert not monitor.running

    def test_monitor_skips_probe_less_handles(self):
        class NoProbe:
            pass

        monitor = HealthMonitor([NoProbe(), _ProbeTarget()], interval=0.05)
        assert len(monitor._handles) == 1

    def test_monitor_survives_probe_exceptions(self):
        class Exploding:
            def __init__(self):
                self.n = 0

            def probe(self):
                self.n += 1
                raise RuntimeError("kaboom")

        target = Exploding()
        with HealthMonitor([target], interval=0.02):
            import time

            deadline = time.monotonic() + 2.0
            while target.n < 2 and time.monotonic() < deadline:
                time.sleep(0.01)
        assert target.n >= 2  # kept ticking after the first exception

    def test_stop_idempotent(self):
        monitor = HealthMonitor([_ProbeTarget()], interval=0.05).start()
        monitor.stop()
        monitor.stop()
        assert not monitor.running

    def test_bad_interval_rejected(self):
        with pytest.raises(ValueError, match="interval"):
            HealthMonitor([], interval=0.0)
