"""Ablation — choosing the delta threshold eta (Section 6.3).

The paper sizes eta (the delta-table share of capacity that triggers a
merge) from two pressures:

* larger eta  -> slower worst-case queries (more data in the slow delta
  structure); the paper derives eta <= 0.15 from the 1.5x slowdown budget
  and picks 0.1;
* smaller eta -> more frequent merges (each merge costs a partition-bound
  rebuild), raising the ingest overhead fraction.

This bench sweeps eta and reports both sides of the trade-off: worst-case
query time (delta full) relative to fully-static, and total merge count /
merge seconds for ingesting a fixed stream.  Shape to check: query penalty
grows with eta, merge overhead falls with eta — the knee sits around the
paper's 0.1-0.15.
"""

from __future__ import annotations

from repro.bench.reporting import format_table, print_section
from repro.bench.runner import measure_median
from repro.streaming.node import StreamingPLSH
from repro import PLSHIndex


def test_ablation_eta(benchmark, twitter, scale):
    params = scale.params()
    vectors = twitter.vectors
    queries = twitter.queries.slice_rows(0, min(50, twitter.queries.n_rows))
    capacity = vectors.n_rows
    stream_rows = capacity // 2  # the stream ingested in every configuration
    batch = max(stream_rows // 50, 1)

    static = PLSHIndex(vectors.n_cols, params)
    static.build(vectors.slice_rows(0, capacity))
    engine = static.engine
    assert engine is not None
    static_s = measure_median(
        lambda: engine.query_batch(queries), repeats=2, warmup=1
    )

    rows = []
    for eta in (0.02, 0.05, 0.1, 0.15, 0.25):
        node = StreamingPLSH(
            vectors.n_cols,
            params,
            capacity,
            delta_fraction=eta,
            auto_merge=True,
        )
        # Ingest a fixed-size stream; auto-merge fires per the threshold.
        for start in range(0, stream_rows, batch):
            node.insert_batch(
                vectors.slice_rows(start, min(start + batch, stream_rows))
            )
        merge_s = node.times["merge"] if "merge" in node.times else 0.0
        # Worst case: refill the delta right up to the threshold.
        refill = min(node.delta_threshold - 1, capacity - node.n_total)
        if refill > 0:
            node.insert_batch(
                vectors.slice_rows(stream_rows, stream_rows + refill)
            )
        worst_s = measure_median(
            lambda: node.query_batch(queries), repeats=2, warmup=1
        )
        rows.append(
            [
                f"{eta:.2f}",
                node.n_merges,
                merge_s,
                worst_s * 1e3,
                worst_s / static_s,
            ]
        )

    benchmark.pedantic(
        lambda: engine.query_batch(queries), rounds=2, iterations=1
    )

    print_section(
        f"Ablation — delta threshold eta (C={capacity:,}, stream="
        f"{stream_rows:,} rows, static ref {static_s * 1e3:.1f} ms)",
        format_table(
            ["eta", "merges", "merge s total", "worst query ms", "vs static"],
            rows,
        )
        + "\npaper: eta <= 0.15 keeps worst-case within 1.5x; eta = 0.1"
          " balances merge overhead (Section 6.3)",
    )

    merges = [r[1] for r in rows]
    # Merge frequency must fall as eta grows.
    assert merges[0] > merges[-1]
