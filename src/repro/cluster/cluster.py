"""``PLSHCluster`` — the full multi-node system of Figure 1.

Policy, per Sections 4 and 6:

* Data is sharded by item: every node holds all L tables over its shard.
* Inserts go to a **rolling window of M nodes** in round-robin order; when
  the window's nodes reach capacity the window advances by M.
* When every node is full, the window wraps to the *oldest* M nodes, whose
  contents are retired (erased) wholesale — this is the paper's graceful
  expiration: no per-item timestamps, oldest data lives on known nodes.
* Queries are broadcast to all non-empty nodes via the coordinator,
  **concurrently** — every node's request in flight at once.

The cluster drives *node handles*: the default constructor builds
in-process :class:`ClusterNode` objects (the simulated deployment whose
:class:`NetworkModel` charges modeled bytes), while
:meth:`PLSHCluster.from_handles` accepts any prebuilt handles — notably
:class:`~repro.cluster.client.RemoteNodeHandle` stubs talking to real
``NodeServer`` processes, which is what
:func:`~repro.cluster.client.spawn_local_cluster` wires up.  Window
policy, retirement, deletes and broadcast logic are byte-for-byte the
same code either way, so a multi-process cluster fed the same op
sequence answers bit-identically to the simulation.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.coordinator import BroadcastOutcome, Coordinator
from repro.cluster.network import NetworkModel
from repro.cluster.node import ClusterNode
from repro.core.hashing import AllPairsHasher
from repro.params import PLSHParams
from repro.sparse.csr import CSRMatrix

__all__ = ["PLSHCluster"]


class PLSHCluster:
    """A simulated multi-node PLSH deployment."""

    def __init__(
        self,
        n_nodes: int,
        node_capacity: int,
        dim: int,
        params: PLSHParams,
        *,
        insert_window: int = 4,
        delta_fraction: float = 0.1,
        overlap_merges: bool = False,
        network: NetworkModel | None = None,
    ) -> None:
        if n_nodes <= 0:
            raise ValueError(f"n_nodes must be positive, got {n_nodes}")
        if not 1 <= insert_window <= n_nodes:
            raise ValueError(
                f"insert_window must be in [1, {n_nodes}], got {insert_window}"
            )
        self.params = params
        self.dim = dim
        self.insert_window = insert_window
        self.network = network if network is not None else NetworkModel()
        self.hasher = AllPairsHasher(params, dim)
        self.nodes = [
            ClusterNode(
                i, dim, params, node_capacity, self.hasher,
                delta_fraction=delta_fraction,
                overlap_merges=overlap_merges,
            )
            for i in range(n_nodes)
        ]
        self.coordinator = Coordinator(self.nodes, self.network)
        #: index of the first node of the current insert window
        self._window_start = 0
        #: round-robin cursor within the window
        self._window_cursor = 0
        self._next_global_id = 0
        self.n_retirements = 0
        self.retired_ids: list[np.ndarray] = []

    @classmethod
    def from_handles(
        cls,
        nodes: list,
        dim: int,
        params: PLSHParams,
        *,
        insert_window: int = 4,
        network: NetworkModel | None = None,
    ) -> "PLSHCluster":
        """Cluster over prebuilt node handles (e.g. remote stubs).

        The handles own their engines and hash functions — they must all
        have been built over the same hasher (``spawn_local_cluster``
        guarantees this by forking after the bank is drawn)."""
        if not nodes:
            raise ValueError("from_handles needs at least one node handle")
        if not 1 <= insert_window <= len(nodes):
            raise ValueError(
                f"insert_window must be in [1, {len(nodes)}], got {insert_window}"
            )
        self = cls.__new__(cls)
        self.params = params
        self.dim = dim
        self.insert_window = insert_window
        self.network = network if network is not None else NetworkModel()
        self.hasher = None  # handles own their hash functions
        self.nodes = list(nodes)
        self.coordinator = Coordinator(self.nodes, self.network)
        self._window_start = 0
        self._window_cursor = 0
        self._next_global_id = 0
        self.n_retirements = 0
        self.retired_ids = []
        return self

    # -- capacity ----------------------------------------------------------

    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    @property
    def n_items(self) -> int:
        return sum(node.n_items for node in self.nodes)

    @property
    def total_capacity(self) -> int:
        return sum(node.capacity for node in self.nodes)

    def window_nodes(self) -> list[ClusterNode]:
        """The M nodes currently accepting inserts."""
        return [
            self.nodes[(self._window_start + i) % self.n_nodes]
            for i in range(self.insert_window)
        ]

    # -- inserts -----------------------------------------------------------

    def insert(self, vectors: CSRMatrix) -> np.ndarray:
        """Stream rows into the cluster; returns their global ids.

        Rows are spread over the insert window round-robin in sub-batches;
        the window advances (retiring old nodes once the cluster has
        wrapped) whenever its nodes fill up.
        """
        n = vectors.n_rows
        global_ids = np.arange(
            self._next_global_id, self._next_global_id + n, dtype=np.int64
        )
        self._next_global_id += n
        # Round-robin sub-batches across the window, as in Figure 1.
        per_node = max(1, -(-n // self.insert_window))
        pos = 0
        while pos < n:
            node = self._next_insert_node()
            take = min(node.free_capacity, n - pos, per_node)
            if take > 0:
                node.insert_batch(
                    vectors.slice_rows(pos, pos + take),
                    global_ids[pos : pos + take],
                )
                pos += take
            self._window_cursor = (self._window_cursor + 1) % self.insert_window
        return global_ids

    def _next_insert_node(self) -> ClusterNode:
        """Pick the next window node with space, advancing windows as needed."""
        for _ in range(2 * self.n_nodes):  # bounded: must terminate
            window = self.window_nodes()
            candidates = window[self._window_cursor :] + window[: self._window_cursor]
            for node in candidates:
                if not node.is_full:
                    return node
            self._advance_window()
        raise RuntimeError("no insert capacity found after full rotation")

    def _advance_window(self) -> None:
        """Move the window forward by M, retiring its target if occupied."""
        self._window_start = (self._window_start + self.insert_window) % self.n_nodes
        self._window_cursor = 0
        incoming = self.window_nodes()
        if any(node.n_items > 0 for node in incoming):
            # Wrapped onto the oldest data: retire those nodes (Figure 1).
            dropped = [node.retire() for node in incoming]
            self.retired_ids.append(
                np.concatenate(dropped) if dropped else np.empty(0, dtype=np.int64)
            )
            self.n_retirements += 1

    # -- deletes / queries ----------------------------------------------------

    def delete(self, global_ids: np.ndarray) -> int:
        """Tombstone by global id across all nodes; returns deleted count."""
        return sum(node.delete_global(global_ids) for node in self.nodes)

    def query(
        self, q_cols: np.ndarray, q_vals: np.ndarray, *, radius: float | None = None
    ) -> BroadcastOutcome:
        return self.coordinator.query(q_cols, q_vals, radius=radius)

    def query_batch(
        self,
        queries: CSRMatrix,
        *,
        radius: float | None = None,
        mode: str | None = None,
        workers: int | None = None,
        backend: str | None = None,
    ) -> list[BroadcastOutcome]:
        """Broadcast a batch to all nodes (vectorized kernel by default;
        ``mode="loop"`` broadcasts query-by-query).  ``workers > 1`` also
        shards each node's batch across cores via per-node persistent
        worker pools (see Coordinator)."""
        return self.coordinator.query_batch(
            queries, radius=radius, mode=mode, workers=workers,
            backend=backend,
        )

    def merge_all(self) -> None:
        """Force-merge every node's delta (used by benches for steady
        state).  Drains any in-flight background merges first —
        :meth:`StreamingPLSH.merge_now` commits the pending build, then
        folds the fresh delta in synchronously."""
        for node in self.nodes:
            node.merge_now()

    def begin_merge_all(self) -> int:
        """Kick off a non-blocking merge on every node with a non-empty
        delta; returns how many merges are now in flight.  Queries keep
        being served by every node throughout; finished builds land via
        :meth:`commit_merges` (or opportunistically on the nodes' own
        insert paths when ``overlap_merges`` is set)."""
        return sum(1 for node in self.nodes if node.begin_merge())

    def commit_merges(self, *, wait: bool = False) -> int:
        """Commit pending merges across the cluster; returns how many
        landed.  ``wait=False`` (the default) commits only builds that
        already finished — the coordinator's periodic maintenance tick."""
        return sum(
            1 for node in self.nodes if node.commit_merge(wait=wait)
        )

    def stats(self) -> list[dict]:
        """Per-node monitoring rows, including ``merge_in_flight``."""
        return self.coordinator.node_stats()

    def close(self) -> None:
        """Release every node's worker pools and the broadcast pool."""
        self.coordinator.close()
        for node in self.nodes:
            node.close()

    def __enter__(self) -> "PLSHCluster":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
