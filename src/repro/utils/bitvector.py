"""Bitvectors for duplicate elimination and deletion filtering (Section 5.2.1).

Three variants:

* :class:`BitVector` — a packed uint64 bitvector, the faithful analogue of
  the paper's 1.25 MB-for-10M-indexes structure.  Memory is ``n/8`` bytes.
* :class:`DedupMask` — a numpy boolean array.  Uses 8× the memory but its
  fancy-indexing operations are faster in numpy; the query engine uses it as
  the default "bitvector" dedup backend while :class:`BitVector` backs the
  deletion filter and is available for memory-constrained runs.
* :class:`GenerationMask` — int32 generation counters instead of booleans:
  marking stamps the current generation and a new query just bumps the
  counter, so the clear pass between queries disappears entirely.

All expose ``scan()`` (full-vector) and ``scan_range(lo, hi)`` (touched-range)
so dedup cost can be O(collisions + touched range) instead of O(N).
"""

from __future__ import annotations

import numpy as np

__all__ = ["BitVector", "DedupMask", "GenerationMask"]


class BitVector:
    """Fixed-size packed bitvector over indexes ``0..n-1``."""

    def __init__(self, n: int) -> None:
        if n < 0:
            raise ValueError(f"size must be non-negative, got {n}")
        self._n = n
        self._words = np.zeros((n + 63) // 64, dtype=np.uint64)

    def __len__(self) -> int:
        return self._n

    @property
    def nbytes(self) -> int:
        return int(self._words.nbytes)

    def set(self, idx: np.ndarray | int) -> None:
        """Set bit(s) ``idx`` to 1. Accepts a scalar or an integer array."""
        idx = np.asarray(idx, dtype=np.int64)
        self._check_range(idx)
        words = idx >> 6
        bits = np.uint64(1) << (idx & 63).astype(np.uint64)
        np.bitwise_or.at(self._words, words, bits)

    def clear(self, idx: np.ndarray | int) -> None:
        """Clear bit(s) ``idx`` to 0."""
        idx = np.asarray(idx, dtype=np.int64)
        self._check_range(idx)
        words = idx >> 6
        bits = ~(np.uint64(1) << (idx & 63).astype(np.uint64))
        np.bitwise_and.at(self._words, words, bits)

    def test(self, idx: np.ndarray | int) -> np.ndarray:
        """Return a boolean array: whether each bit is set."""
        idx = np.asarray(idx, dtype=np.int64)
        self._check_range(idx)
        words = self._words[idx >> 6]
        return (words >> (idx & 63).astype(np.uint64)) & np.uint64(1) != 0

    def set_unique(self, idx: np.ndarray) -> np.ndarray:
        """Set bits for ``idx``; return the first occurrence of each new index.

        This is the paper's Step Q2 inner loop: "check if the histogram value
        for that index is 0, and if so write out the value and set it to 1".
        Returned indexes are the unique values of ``idx`` that were unset on
        entry, in first-occurrence order.
        """
        idx = np.asarray(idx, dtype=np.int64)
        self._check_range(idx)
        if idx.size == 0:
            return idx
        # First occurrence within this batch, intersected with "not already set".
        fresh = ~self.test(idx)
        first_in_batch = np.zeros(idx.size, dtype=bool)
        # np.unique returns first-occurrence positions with return_index.
        _, first_pos = np.unique(idx, return_index=True)
        first_in_batch[first_pos] = True
        out = idx[fresh & first_in_batch]
        self.set(out)
        return out

    def scan(self) -> np.ndarray:
        """Return all set bit indexes in ascending order (paper's Q2 scan)."""
        set_words = np.nonzero(self._words)[0]
        out: list[np.ndarray] = []
        for w in set_words:
            word = int(self._words[w])
            bits = []
            b = word
            while b:
                low = b & -b
                bits.append(low.bit_length() - 1)
                b ^= low
            out.append(np.asarray(bits, dtype=np.int64) + (int(w) << 6))
        if not out:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(out)

    def scan_range(self, lo: int, hi: int) -> np.ndarray:
        """Set bit indexes within ``[lo, hi)``, ascending (touched-range scan).

        Only the words overlapping the range are inspected, so the cost is
        proportional to the range instead of the whole vector.
        """
        lo = max(int(lo), 0)
        hi = min(int(hi), self._n)
        if lo >= hi:
            return np.empty(0, dtype=np.int64)
        w0, w1 = lo >> 6, ((hi + 63) >> 6)
        window = self._words[w0:w1]
        set_words = np.nonzero(window)[0]
        out: list[np.ndarray] = []
        for w in set_words:
            word = int(window[w])
            bits = []
            b = word
            while b:
                low = b & -b
                bits.append(low.bit_length() - 1)
                b ^= low
            out.append(np.asarray(bits, dtype=np.int64) + ((int(w) + w0) << 6))
        if not out:
            return np.empty(0, dtype=np.int64)
        idx = np.concatenate(out)
        return idx[(idx >= lo) & (idx < hi)]

    def count(self) -> int:
        """Population count over the whole vector."""
        return int(np.unpackbits(self._words.view(np.uint8)).sum())

    def grow(self, n: int) -> None:
        """Extend the index range to ``n`` bits; existing bits are kept.

        Never shrinks.  Partition retirement leaves holes in a node's
        local-id space, so the id range can legitimately exceed the
        capacity the vector was sized for."""
        if n <= self._n:
            return
        words = np.zeros((n + 63) // 64, dtype=np.uint64)
        words[: self._words.size] = self._words
        self._words = words
        self._n = n

    def reset(self) -> None:
        """Clear every bit (the paper resets the vector on node retirement)."""
        self._words.fill(0)

    def _check_range(self, idx: np.ndarray) -> None:
        if idx.size and (int(idx.min()) < 0 or int(idx.max()) >= self._n):
            raise IndexError(
                f"bit index out of range [0, {self._n}): "
                f"min={int(idx.min())} max={int(idx.max())}"
            )


class DedupMask:
    """Boolean-array dedup histogram with the same API as :class:`BitVector`."""

    def __init__(self, n: int) -> None:
        if n < 0:
            raise ValueError(f"size must be non-negative, got {n}")
        self._mask = np.zeros(n, dtype=bool)

    def __len__(self) -> int:
        return int(self._mask.size)

    @property
    def nbytes(self) -> int:
        return int(self._mask.nbytes)

    def set(self, idx: np.ndarray | int) -> None:
        self._mask[idx] = True

    def clear(self, idx: np.ndarray | int) -> None:
        self._mask[idx] = False

    def test(self, idx: np.ndarray | int) -> np.ndarray:
        return self._mask[idx]

    def set_unique(self, idx: np.ndarray) -> np.ndarray:
        idx = np.asarray(idx, dtype=np.int64)
        if idx.size == 0:
            return idx
        fresh = ~self._mask[idx]
        first_in_batch = np.zeros(idx.size, dtype=bool)
        _, first_pos = np.unique(idx, return_index=True)
        first_in_batch[first_pos] = True
        out = idx[fresh & first_in_batch]
        self._mask[out] = True
        return out

    def scan(self) -> np.ndarray:
        return np.nonzero(self._mask)[0].astype(np.int64)

    def scan_range(self, lo: int, hi: int) -> np.ndarray:
        """Set positions within ``[lo, hi)`` — O(range) touched-range scan."""
        lo = max(int(lo), 0)
        hi = min(int(hi), self._mask.size)
        if lo >= hi:
            return np.empty(0, dtype=np.int64)
        return (np.nonzero(self._mask[lo:hi])[0] + lo).astype(np.int64)

    def count(self) -> int:
        return int(self._mask.sum())

    def reset(self) -> None:
        self._mask.fill(False)


class GenerationMask:
    """Dedup histogram of int32 generation counters (no clear pass).

    Marking index ``i`` stamps ``gen[i] = current``; a fresh query calls
    :meth:`next_generation` instead of clearing anything, so per-query dedup
    cost is O(collisions + scanned range) with *zero* reset work — the
    batch-kernel refinement of the paper's bitvector design.
    """

    def __init__(self, n: int) -> None:
        if n < 0:
            raise ValueError(f"size must be non-negative, got {n}")
        self._gen = np.full(n, -1, dtype=np.int32)
        self._current = 0

    def __len__(self) -> int:
        return int(self._gen.size)

    @property
    def nbytes(self) -> int:
        return int(self._gen.nbytes)

    @property
    def generation(self) -> int:
        return self._current

    def next_generation(self) -> int:
        """Start a new query: bump (and wrap) the generation counter."""
        self._current += 1
        if self._current >= np.iinfo(np.int32).max:
            self._gen.fill(-1)
            self._current = 0
        return self._current

    def set(self, idx: np.ndarray | int) -> None:
        self._gen[idx] = self._current

    def test(self, idx: np.ndarray | int) -> np.ndarray:
        return self._gen[idx] == self._current

    def scan(self) -> np.ndarray:
        return np.nonzero(self._gen == self._current)[0].astype(np.int64)

    def scan_range(self, lo: int, hi: int) -> np.ndarray:
        lo = max(int(lo), 0)
        hi = min(int(hi), self._gen.size)
        if lo >= hi:
            return np.empty(0, dtype=np.int64)
        return (
            np.nonzero(self._gen[lo:hi] == self._current)[0] + lo
        ).astype(np.int64)

    def count(self) -> int:
        return int((self._gen == self._current).sum())

    def reset(self) -> None:
        self._gen.fill(-1)
        self._current = 0
