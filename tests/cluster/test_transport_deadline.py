"""Transport deadline semantics over a local socketpair.

The pre-PR-6 transport set ``settimeout(None)`` and could block forever
on a hung peer; these tests pin the new contract: a ``deadline`` bounds
every socket operation, expiry raises :class:`TimeoutError`, and a
timed-out connection is poisoned (closed) because a half-read frame
cannot be resumed.
"""

from __future__ import annotations

import socket
import threading
import time

import numpy as np
import pytest

from repro.cluster import protocol
from repro.cluster.transport import Connection


@pytest.fixture
def pair():
    a, b = socket.socketpair()
    ca, cb = Connection(a), Connection(b)
    yield ca, cb
    ca.close()
    cb.close()


class TestDeadlines:
    def test_round_trip_within_deadline(self, pair):
        ca, cb = pair
        deadline = time.monotonic() + 5.0
        ca.send_message(protocol.OP_PING, {"x": 1}, deadline=deadline)
        code, meta, arrays = cb.recv_message(deadline=deadline)
        assert code == protocol.OP_PING
        assert meta == {"x": 1}

    def test_recv_times_out_on_silent_peer(self, pair):
        ca, _ = pair
        start = time.monotonic()
        with pytest.raises(TimeoutError):
            ca.recv_message(deadline=time.monotonic() + 0.2)
        # Bounded promptly, not hanging until some large socket default.
        assert time.monotonic() - start < 2.0
        # The connection is poisoned: no further use.
        assert ca.closed
        with pytest.raises((ConnectionError, TimeoutError, OSError)):
            ca.send_message(protocol.OP_PING)

    def test_recv_times_out_mid_frame(self, pair):
        ca, _cb = pair
        # Hand-feed half a frame: an 8-byte length promising more bytes
        # than will ever arrive.
        raw = _cb._sock
        raw.sendall((64).to_bytes(8, "big") + b"partial")
        with pytest.raises(TimeoutError, match="mid-frame"):
            ca.recv_message(deadline=time.monotonic() + 0.2)
        assert ca.closed

    def test_expired_deadline_fails_before_io(self, pair):
        ca, _ = pair
        with pytest.raises(TimeoutError):
            ca.send_message(
                protocol.OP_PING, deadline=time.monotonic() - 0.01
            )
        assert ca.closed

    def test_no_deadline_still_blocks_until_data(self, pair):
        ca, cb = pair

        def reply_late():
            time.sleep(0.1)
            cb.send_message(protocol.OP_PING, {"late": True})

        t = threading.Thread(target=reply_late)
        t.start()
        code, meta, _ = ca.recv_message()  # deadline=None: waits it out
        t.join()
        assert meta == {"late": True}

    def test_deadline_spans_multiple_chunks(self, pair):
        # A peer that trickles the frame still completes within budget:
        # the deadline is an absolute instant, re-armed per chunk.
        ca, cb = pair
        payload = [np.arange(1000, dtype=np.int64)]

        def trickle():
            body = protocol.encode_message(protocol.OP_QUERY, None, payload)
            raw = cb._sock
            raw.sendall(len(body).to_bytes(8, "big"))
            for pos in range(0, len(body), 1024):
                raw.sendall(body[pos : pos + 1024])
                time.sleep(0.005)

        t = threading.Thread(target=trickle)
        t.start()
        code, _, arrays = ca.recv_message(deadline=time.monotonic() + 5.0)
        t.join()
        assert code == protocol.OP_QUERY
        np.testing.assert_array_equal(arrays[0], payload[0])


class TestTeardown:
    def test_close_idempotent(self, pair):
        ca, _ = pair
        ca.close()
        ca.close()  # second close must be a no-op
        assert ca.closed

    def test_peer_close_is_connection_error_not_timeout(self, pair):
        ca, cb = pair
        cb.close()
        with pytest.raises(ConnectionError):
            ca.recv_message(deadline=time.monotonic() + 1.0)
