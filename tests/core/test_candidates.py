"""Dedup strategy tests: the three Section 5.2.1 designs must agree."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.candidates import (
    BitvectorDeduplicator,
    SetDeduplicator,
    SortDeduplicator,
    make_deduplicator,
)

STRATEGIES = ["set", "sort", "bitvector"]


@pytest.mark.parametrize("strategy", STRATEGIES)
class TestDedup:
    def test_removes_duplicates(self, strategy):
        d = make_deduplicator(strategy, 100)
        out = d.unique(np.asarray([5, 3, 5, 5, 7, 3]))
        np.testing.assert_array_equal(out, [3, 5, 7])

    def test_empty_input(self, strategy):
        d = make_deduplicator(strategy, 10)
        assert d.unique(np.empty(0, dtype=np.int64)).size == 0

    def test_no_duplicates_passthrough(self, strategy):
        d = make_deduplicator(strategy, 10)
        np.testing.assert_array_equal(d.unique(np.asarray([2, 0, 9])), [0, 2, 9])

    def test_reusable_across_queries(self, strategy):
        """State (e.g. the persistent bitvector) must reset between calls."""
        d = make_deduplicator(strategy, 50)
        first = d.unique(np.asarray([1, 2, 2]))
        second = d.unique(np.asarray([2, 3]))
        np.testing.assert_array_equal(first, [1, 2])
        np.testing.assert_array_equal(second, [2, 3])


def test_factory_types():
    assert isinstance(make_deduplicator("set", 5), SetDeduplicator)
    assert isinstance(make_deduplicator("sort", 5), SortDeduplicator)
    assert isinstance(make_deduplicator("bitvector", 5), BitvectorDeduplicator)


def test_factory_rejects_unknown():
    with pytest.raises(ValueError):
        make_deduplicator("bloom", 5)


@settings(max_examples=60, deadline=None)
@given(values=st.lists(st.integers(0, 199), max_size=300))
def test_strategies_agree_property(values):
    arr = np.asarray(values, dtype=np.int64)
    outputs = [
        make_deduplicator(s, 200).unique(arr.copy()) for s in STRATEGIES
    ]
    expected = np.unique(arr)
    for s, out in zip(STRATEGIES, outputs):
        np.testing.assert_array_equal(out, expected, err_msg=s)
