"""Bench-harness support tests (workloads, runner, reporting)."""

from __future__ import annotations

import pytest

from repro.bench.reporting import format_table
from repro.bench.runner import measure, measure_median
from repro.bench.workloads import BenchScale, twitter_workload, wikipedia_workload


@pytest.fixture(scope="module")
def tiny_scale():
    return BenchScale(n=500, vocab=2000, n_queries=10, k=8, m=6)


def test_twitter_workload_shapes(tiny_scale):
    w = twitter_workload(tiny_scale)
    assert w.n == 500
    assert w.vectors.n_cols == 2000
    assert w.queries.n_rows == 10
    assert 3 < w.mean_nnz < 9


def test_workload_is_cached(tiny_scale):
    assert twitter_workload(tiny_scale) is twitter_workload(tiny_scale)


def test_wikipedia_workload_longer_docs(tiny_scale):
    tw = twitter_workload(tiny_scale)
    wk = wikipedia_workload(tiny_scale)
    assert wk.mean_nnz > 3 * tw.mean_nnz


def test_scale_params(tiny_scale):
    p = tiny_scale.params()
    assert p.k == 8 and p.m == 6


def test_env_parsing(monkeypatch):
    monkeypatch.setenv("PLSH_BENCH_N", "1234")
    assert BenchScale.from_env().n == 1234
    monkeypatch.setenv("PLSH_BENCH_N", "abc")
    with pytest.raises(ValueError):
        BenchScale.from_env()
    monkeypatch.setenv("PLSH_BENCH_N", "-1")
    with pytest.raises(ValueError):
        BenchScale.from_env()


def test_measure_returns_result_and_time():
    out, secs = measure(lambda: 42)
    assert out == 42
    assert secs >= 0


def test_measure_median_runs():
    calls = []
    t = measure_median(lambda: calls.append(1), repeats=3, warmup=2)
    assert len(calls) == 5
    assert t >= 0


def test_measure_median_validates():
    with pytest.raises(ValueError):
        measure_median(lambda: None, repeats=0)


def test_format_table_alignment():
    table = format_table(
        ["name", "value"], [["plsh", 1.42], ["exhaustive", 115.35]]
    )
    lines = table.splitlines()
    assert len(lines) == 4
    assert "plsh" in lines[2]
    assert "115.35" in lines[3]


def test_format_table_large_numbers_get_commas():
    table = format_table(["n"], [[10_579_994]])
    assert "10,579,994" in table
