"""Standard benchmark workloads (shared and cached across bench modules).

Scale is controlled by environment variables so the same harness runs as a
quick CI smoke or a paper-shaped evaluation:

=================  =========  ==============================================
variable           default    meaning
=================  =========  ==============================================
``PLSH_BENCH_N``   100000     corpus size per node
``PLSH_BENCH_VOCAB``  50000   vocabulary size (paper: 500 000)
``PLSH_BENCH_QUERIES``  200   query-set size (paper: 1000)
``PLSH_BENCH_K``   16         k for the flagship configuration
``PLSH_BENCH_M``   24         m for the flagship configuration (paper: 40)
=================  =========  ==============================================

The flagship default (k=16, m=24, L=276) keeps table memory proportionate
to the scaled-down N; pass ``PLSH_BENCH_M=40`` to run the paper's exact
(k=16, m=40, L=780) shape.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.params import PLSHParams
from repro.sparse.csr import CSRMatrix
from repro.text.corpus import SyntheticCorpus, TWITTER_SPEC, WIKIPEDIA_SPEC, CorpusSpec

__all__ = ["BenchScale", "Workload", "twitter_workload", "wikipedia_workload"]


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name)
    if raw is None:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(f"{name} must be an integer, got {raw!r}") from None
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value


@dataclass(frozen=True)
class BenchScale:
    """Resolved benchmark scale knobs."""

    n: int
    vocab: int
    n_queries: int
    k: int
    m: int

    @classmethod
    def from_env(cls) -> "BenchScale":
        return cls(
            n=_env_int("PLSH_BENCH_N", 100_000),
            vocab=_env_int("PLSH_BENCH_VOCAB", 50_000),
            n_queries=_env_int("PLSH_BENCH_QUERIES", 200),
            k=_env_int("PLSH_BENCH_K", 16),
            m=_env_int("PLSH_BENCH_M", 24),
        )

    def params(self, *, seed: int = 42) -> PLSHParams:
        return PLSHParams(k=self.k, m=self.m, radius=0.9, delta=0.1, seed=seed)


@dataclass(frozen=True)
class Workload:
    """A materialized corpus + query set ready for benchmarking."""

    name: str
    corpus: SyntheticCorpus
    vectors: CSRMatrix
    query_ids: np.ndarray
    queries: CSRMatrix
    scale: BenchScale

    @property
    def n(self) -> int:
        return self.vectors.n_rows

    @property
    def mean_nnz(self) -> float:
        return self.vectors.nnz / max(self.vectors.n_rows, 1)


@lru_cache(maxsize=8)
def _build_workload(
    name: str, spec: CorpusSpec, n: int, vocab: int, n_queries: int, seed: int
) -> Workload:
    spec = CorpusSpec(
        vocab_size=vocab,
        mean_doc_length=spec.mean_doc_length,
        zipf_exponent=spec.zipf_exponent,
        near_duplicate_fraction=spec.near_duplicate_fraction,
        duplicate_keep_probability=spec.duplicate_keep_probability,
        duplicate_extra_tokens=spec.duplicate_extra_tokens,
    )
    corpus = SyntheticCorpus.generate(n, spec, seed=seed)
    vectors = corpus.vectors()
    query_ids, queries = corpus.query_vectors(n_queries, seed=seed + 1)
    scale = BenchScale.from_env()
    return Workload(name, corpus, vectors, query_ids, queries, scale)


def twitter_workload(scale: BenchScale | None = None, *, seed: int = 42) -> Workload:
    """The tweet-shaped benchmark corpus (cached per scale)."""
    scale = scale if scale is not None else BenchScale.from_env()
    return _build_workload(
        "twitter", TWITTER_SPEC, scale.n, scale.vocab, scale.n_queries, seed
    )


def wikipedia_workload(scale: BenchScale | None = None, *, seed: int = 43) -> Workload:
    """The Wikipedia-abstract-shaped corpus (Figure 7's second dataset)."""
    scale = scale if scale is not None else BenchScale.from_env()
    # Wikipedia runs are heavier per document; use a quarter of N.
    return _build_workload(
        "wikipedia", WIKIPEDIA_SPEC, max(scale.n // 4, 1000), scale.vocab,
        scale.n_queries, seed,
    )
