"""``BackgroundTask`` — one off-path computation with a joinable result.

The streaming node's non-blocking merge needs exactly one primitive from
the execution layer: "run this pure function off the query path and hand
me the result inside a short critical section later".  A pool is the wrong
shape for that — pools amortize setup over many homogeneous tasks, while a
merge build is a single long-lived job whose *inputs are frozen at launch*
and whose result is consumed once.

The task runs on a dedicated daemon thread.  A thread (not a fork worker)
is the right backend for table construction: the build spends its time in
large numpy kernels that release the GIL, so it overlaps genuinely with
foreground querying, and the built arrays land directly in the caller's
address space — a fork worker would have to pipe the finished tables back
through pickle, paying a copy proportional to the structure it just built.

The launcher captures its arguments at construction; callers must pass
snapshots they promise not to mutate (the node passes the *frozen* delta
and the current static, neither of which changes while a merge is in
flight).  ``result()`` joins and either returns the value or re-raises the
worker's exception in the caller.
"""

from __future__ import annotations

import threading
from typing import Any, Callable

__all__ = ["BackgroundTask"]

#: process-wide count of BackgroundTask functions currently executing.
#: fork()ing while any of them may hold numpy/BLAS/allocator locks is the
#: classic multithreaded-fork deadlock, so the executor factory consults
#: :meth:`BackgroundTask.any_active` before creating fork pools.
_active = 0
_active_lock = threading.Lock()


class BackgroundTask:
    """Run ``fn(*args)`` on a daemon thread; join with :meth:`result`."""

    def __init__(self, fn: Callable[..., Any], *args: Any) -> None:
        global _active
        self._value: Any = None
        self._error: BaseException | None = None
        self._done = threading.Event()

        def _run() -> None:
            global _active
            try:
                self._value = fn(*args)
            except BaseException as exc:  # surfaced to the joiner
                self._error = exc
            finally:
                with _active_lock:
                    _active -= 1
                self._done.set()

        with _active_lock:
            _active += 1
        self._thread = threading.Thread(
            target=_run, name="plsh-background", daemon=True
        )
        self._thread.start()

    @staticmethod
    def any_active() -> bool:
        """True while any background task's function is still executing
        (process-wide).  Once False, every worker function has returned,
        so no background thread can be holding BLAS/allocator locks —
        the condition under which fork() is safe again."""
        with _active_lock:
            return _active > 0

    def done(self) -> bool:
        """True once the function returned or raised (non-blocking)."""
        return self._done.is_set()

    def wait(self, timeout: float | None = None) -> bool:
        """Block until done (or ``timeout`` seconds); returns :meth:`done`."""
        self._done.wait(timeout)
        if self._done.is_set():
            self._thread.join()
        return self._done.is_set()

    def result(self) -> Any:
        """Join and return the value, re-raising the worker's exception."""
        self.wait()
        if self._error is not None:
            raise self._error
        return self._value
