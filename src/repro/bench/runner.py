"""Tiny measurement helpers for the paper-style benches."""

from __future__ import annotations

import statistics
import time
from typing import Callable, TypeVar

T = TypeVar("T")

__all__ = ["measure", "measure_median"]


def measure(fn: Callable[[], T]) -> tuple[T, float]:
    """Run once; return (result, seconds)."""
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def measure_median(fn: Callable[[], object], *, repeats: int = 3,
                   warmup: int = 1) -> float:
    """Median wall-clock seconds over ``repeats`` runs after ``warmup``."""
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    for _ in range(warmup):
        fn()
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return statistics.median(times)
