"""BitVector / DedupMask unit + property tests (they must behave alike)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.bitvector import BitVector, DedupMask

BACKENDS = [BitVector, DedupMask]


@pytest.mark.parametrize("backend", BACKENDS)
class TestBasicOps:
    def test_starts_empty(self, backend):
        bv = backend(100)
        assert bv.count() == 0
        assert bv.scan().size == 0

    def test_set_and_test_scalar(self, backend):
        bv = backend(100)
        bv.set(5)
        assert bv.test(5).all()
        assert not bv.test(6).any()

    def test_set_and_test_array(self, backend):
        bv = backend(200)
        idx = np.asarray([0, 63, 64, 65, 127, 128, 199])
        bv.set(idx)
        assert bv.test(idx).all()
        assert bv.count() == idx.size

    def test_clear(self, backend):
        bv = backend(100)
        bv.set(np.asarray([1, 2, 3]))
        bv.clear(np.asarray([2]))
        assert bv.test(1).all() and bv.test(3).all()
        assert not bv.test(2).any()
        assert bv.count() == 2

    def test_scan_sorted(self, backend):
        bv = backend(500)
        idx = np.asarray([400, 3, 77, 64, 65])
        bv.set(idx)
        np.testing.assert_array_equal(bv.scan(), np.sort(idx))

    def test_reset(self, backend):
        bv = backend(100)
        bv.set(np.arange(50))
        bv.reset()
        assert bv.count() == 0

    def test_duplicate_set_is_idempotent(self, backend):
        bv = backend(64)
        bv.set(np.asarray([7, 7, 7]))
        assert bv.count() == 1

    def test_len(self, backend):
        assert len(backend(123)) == 123

    def test_out_of_range_raises(self, backend):
        bv = backend(10)
        if backend is BitVector:
            with pytest.raises(IndexError):
                bv.set(10)
            with pytest.raises(IndexError):
                bv.set(-1)
        else:
            with pytest.raises(IndexError):
                bv.set(10)

    def test_negative_size_raises(self, backend):
        with pytest.raises(ValueError):
            backend(-1)

    def test_set_unique_returns_new_only(self, backend):
        bv = backend(50)
        first = bv.set_unique(np.asarray([3, 1, 3, 2]))
        assert set(first.tolist()) == {1, 2, 3}
        second = bv.set_unique(np.asarray([2, 4, 4]))
        assert set(second.tolist()) == {4}

    def test_set_unique_empty(self, backend):
        bv = backend(10)
        assert bv.set_unique(np.empty(0, dtype=np.int64)).size == 0


class TestBitVectorMemory:
    def test_packed_memory_is_n_over_8(self):
        bv = BitVector(10_000_000)
        # Paper: 1.25 MB for N = 10M.
        assert bv.nbytes == pytest.approx(1.25e6, rel=0.01)

    def test_dedup_mask_is_bytes(self):
        assert DedupMask(1000).nbytes == 1000


@settings(max_examples=50, deadline=None)
@given(
    idx=st.lists(st.integers(min_value=0, max_value=499), max_size=60),
    cleared=st.lists(st.integers(min_value=0, max_value=499), max_size=20),
)
def test_backends_agree_with_set_model(idx, cleared):
    """Both backends must track a plain Python set exactly."""
    bv, mask, model = BitVector(500), DedupMask(500), set()
    if idx:
        arr = np.asarray(idx)
        bv.set(arr)
        mask.set(arr)
        model.update(idx)
    if cleared:
        arr = np.asarray(cleared)
        bv.clear(arr)
        mask.clear(arr)
        model.difference_update(cleared)
    expected = np.asarray(sorted(model), dtype=np.int64)
    np.testing.assert_array_equal(bv.scan(), expected)
    np.testing.assert_array_equal(mask.scan(), expected)
    assert bv.count() == mask.count() == len(model)


@pytest.mark.parametrize("backend", BACKENDS)
class TestScanRange:
    def test_matches_full_scan_within_range(self, backend):
        bv = backend(300)
        idx = np.asarray([0, 1, 63, 64, 120, 255, 299])
        bv.set(idx)
        np.testing.assert_array_equal(bv.scan_range(0, 300), bv.scan())
        np.testing.assert_array_equal(bv.scan_range(64, 256), [64, 120, 255])
        np.testing.assert_array_equal(bv.scan_range(1, 64), [1, 63])

    def test_empty_and_clamped_ranges(self, backend):
        bv = backend(100)
        bv.set(np.asarray([5, 99]))
        assert bv.scan_range(10, 10).size == 0
        assert bv.scan_range(50, 20).size == 0
        np.testing.assert_array_equal(bv.scan_range(-5, 1000), [5, 99])


@settings(max_examples=60, deadline=None)
@given(
    idx=st.lists(st.integers(0, 499), max_size=80),
    lo=st.integers(0, 499),
    span=st.integers(0, 499),
)
def test_scan_range_agrees_with_model_property(idx, lo, span):
    from repro.utils.bitvector import GenerationMask

    hi = min(lo + span, 500)
    expected = np.asarray(
        sorted({i for i in idx if lo <= i < hi}), dtype=np.int64
    )
    for backend in (BitVector, DedupMask, GenerationMask):
        bv = backend(500)
        if isinstance(bv, GenerationMask):
            bv.next_generation()
        if idx:
            bv.set(np.asarray(idx))
        np.testing.assert_array_equal(
            bv.scan_range(lo, hi), expected, err_msg=backend.__name__
        )


class TestGenerationMask:
    def test_generation_bump_invalidates_without_clearing(self):
        from repro.utils.bitvector import GenerationMask

        gm = GenerationMask(100)
        gm.next_generation()
        gm.set(np.asarray([3, 7, 7, 50]))
        np.testing.assert_array_equal(gm.scan(), [3, 7, 50])
        gm.next_generation()  # no clear() call anywhere
        assert gm.count() == 0
        gm.set(np.asarray([7, 8]))
        np.testing.assert_array_equal(gm.scan(), [7, 8])

    def test_wraparound_resets_stale_stamps(self):
        from repro.utils.bitvector import GenerationMask

        gm = GenerationMask(10)
        gm._current = np.iinfo(np.int32).max - 1
        gm.set(np.asarray([1]))
        assert gm.test(1).all()
        gm.next_generation()  # hits the wrap threshold
        assert gm.generation == 0
        assert gm.count() == 0

    def test_reset(self):
        from repro.utils.bitvector import GenerationMask

        gm = GenerationMask(10)
        gm.next_generation()
        gm.set(np.asarray([2]))
        gm.reset()
        assert gm.count() == 0 and gm.generation == 0
