"""Time-filtered queries through the serving gateway (PR 10).

``time_range`` rides the JSON query request, survives coalescing, and
reaches the cluster broadcast: a filtered gateway answer must be
bit-identical to a direct ``cluster.query(..., time_range=...)`` call.
The sharp edge is **cross-contamination**: the micro-batcher coalesces
concurrent singles into one kernel batch, so mixed-filter traffic must
be grouped per ``(radius, time_range)`` — one stray filter applied to a
sibling's query would silently drop its older answers.  The load
generator's ``time_filter_fraction`` knob drives exactly that mixed
stream end to end.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro import PLSHCluster, PLSHParams
from repro.serve import Gateway, GatewayClient, run_closed_loop
from repro.sparse.csr import CSRMatrix

PARAMS = PLSHParams(k=8, m=6, radius=0.9, seed=77)
EPOCHS = 4
ROWS = 50


@pytest.fixture(scope="module")
def timed_cluster(small_vectors):
    """4 insert ops = cluster-clock ticks 0..3, 50 rows each."""
    cluster = PLSHCluster(
        3, 400, small_vectors.n_cols, PARAMS, insert_window=3
    )
    for e in range(EPOCHS):
        cluster.insert(small_vectors.slice_rows(e * ROWS, (e + 1) * ROWS))
    try:
        yield cluster
    finally:
        cluster.close()


class TestFilteredBitIdentity:
    WINDOWS = [None, (0, 1), (1, 3), (2, EPOCHS), (50, 60)]

    def test_filtered_query_matches_direct(self, timed_cluster, small_vectors):
        with Gateway(timed_cluster, small_vectors.n_cols) as gw:
            with GatewayClient(gw.host, gw.port) as client:
                for r in range(5):
                    cols, vals = small_vectors.row(r)
                    for window in self.WINDOWS:
                        answer = client.query(cols, vals, time_range=window)
                        direct = timed_cluster.query(
                            cols.astype(np.int64), vals, time_range=window
                        ).result
                        np.testing.assert_array_equal(
                            answer.ids, direct.indices
                        )
                        np.testing.assert_array_equal(
                            answer.distances, direct.distances
                        )

    def test_mixed_filters_coalesce_without_cross_contamination(
        self, timed_cluster, small_vectors
    ):
        """Concurrent clients with DIFFERENT windows (and none) arrive
        inside one flush interval; every answer must equal its own
        window's direct reference."""
        n_rows = 24
        windows = [self.WINDOWS[r % len(self.WINDOWS)] for r in range(n_rows)]
        reference = []
        for r in range(n_rows):
            cols, vals = small_vectors.row(r)
            direct = timed_cluster.query(
                cols.astype(np.int64), vals, time_range=windows[r]
            ).result
            reference.append((direct.indices, direct.distances))

        answers: list = [None] * n_rows
        errors: list[BaseException] = []
        barrier = threading.Barrier(n_rows)

        def worker(r: int, gw) -> None:
            try:
                with GatewayClient(gw.host, gw.port) as client:
                    barrier.wait(timeout=30)
                    cols, vals = small_vectors.row(r)
                    answers[r] = client.query(
                        cols, vals, time_range=windows[r]
                    )
            except BaseException as exc:  # noqa: BLE001 - re-raised
                errors.append(exc)

        with Gateway(
            timed_cluster, small_vectors.n_cols,
            max_batch=n_rows, max_delay=0.05,
        ) as gw:
            threads = [
                threading.Thread(target=worker, args=(r, gw))
                for r in range(n_rows)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60)
                assert not t.is_alive(), "gateway client thread hung"
            if errors:
                raise errors[0]
            stats = gw.stats()["batcher"]
        for r in range(n_rows):
            ref_ids, ref_dists = reference[r]
            np.testing.assert_array_equal(answers[r].ids, ref_ids)
            np.testing.assert_array_equal(answers[r].distances, ref_dists)
        # The batcher really coalesced mixed-filter traffic (the
        # per-window grouping happens at broadcast, not admission).
        assert stats["mean_batch_size"] > 1.0


class TestLoadgenKnob:
    def test_time_filter_fraction_end_to_end(
        self, timed_cluster, small_vectors
    ):
        queries = CSRMatrix.from_rows(
            [small_vectors.row(r) for r in range(24)], small_vectors.n_cols
        )
        with Gateway(
            timed_cluster, small_vectors.n_cols, max_batch=32
        ) as gw:
            report = run_closed_loop(
                gw.host, gw.port, queries,
                n_clients=8, requests_per_client=4,
                time_filter_fraction=0.5, time_range=(1, 3),
            )
        assert report.n_ok == 32
        assert report.n_errors == 0

    def test_fraction_requires_a_window(self, timed_cluster, small_vectors):
        queries = CSRMatrix.from_rows(
            [small_vectors.row(0)], small_vectors.n_cols
        )
        with pytest.raises(ValueError, match="time_range"):
            run_closed_loop(
                "localhost", 1, queries,
                n_clients=1, requests_per_client=1,
                time_filter_fraction=0.5,
            )
