"""Streaming PLSH (Section 6): delta tables, merge, deletion, node policy.

New data is buffered in an insert-optimized **delta table**; queries consult
both static and delta structures and combine answers.  When the delta
reaches a fraction ``eta`` of node capacity it is merged into the static
structure (a partition-bound rebuild over cached hash codes).  The merge is
split into a prepare phase (:func:`prepare_merge`, runnable on a background
thread while queries keep serving ``static + frozen delta + fresh delta``)
and a short commit swap — see :class:`StreamingPLSH` for the non-blocking
lifecycle.  Deletions are a bitvector consulted before the distance
computation.  The node enforces a hard capacity; retirement (wholesale
erase) is driven by the cluster layer.
"""

from repro.streaming.delta import DeltaTable
from repro.streaming.deletion import DeletionFilter
from repro.streaming.merge import PreparedMerge, merge_into_static, prepare_merge
from repro.streaming.node import StreamingPLSH

__all__ = [
    "DeletionFilter",
    "DeltaTable",
    "PreparedMerge",
    "StreamingPLSH",
    "merge_into_static",
    "prepare_merge",
]
