"""Machine-readable bench artifacts (``BENCH_<fig>.json``).

The paper-style tables printed by the benches are for humans; CI and
EXPERIMENTS.md want numbers a script can diff.  Each bench that reproduces
a paper figure calls :func:`record_artifact` with its headline series
(speedups, wall times, wire bytes); sections accumulate into one JSON
document per figure — ``BENCH_fig10.json``, ``BENCH_fig9.json`` — so a
figure spread over several pytest benches still lands in a single file.

Artifacts are written to the current directory by default (benches run
from the repo root); set ``PLSH_BENCH_ARTIFACT_DIR`` to redirect them.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

__all__ = ["artifact_path", "record_artifact"]


def artifact_path(name: str) -> Path:
    """Where figure ``name``'s artifact lives (e.g. ``BENCH_fig10.json``)."""
    base = Path(os.environ.get("PLSH_BENCH_ARTIFACT_DIR", "."))
    return base / f"BENCH_{name}.json"


def _jsonable(value):
    """Coerce numpy scalars/arrays (bench rows are full of them) to JSON."""
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    raise TypeError(f"not JSON-serializable: {type(value).__name__}")


def record_artifact(name: str, section: str, payload: dict) -> Path:
    """Merge ``payload`` under ``section`` into ``BENCH_<name>.json``.

    Read-modify-write so the several benches of one figure compose; a
    corrupt or foreign file is replaced rather than crashing the bench.
    Every section is stamped with the unix time it was recorded.
    """
    path = artifact_path(name)
    doc: dict = {}
    if path.exists():
        try:
            loaded = json.loads(path.read_text())
            if isinstance(loaded, dict):
                doc = loaded
        except (ValueError, OSError):
            doc = {}
    doc[section] = {"recorded_unix": round(time.time(), 3), **payload}
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(".json.tmp")
    tmp.write_text(
        json.dumps(doc, indent=2, sort_keys=True, default=_jsonable) + "\n"
    )
    tmp.replace(path)
    return path
