"""Concurrent broadcasts are safe: the serving-gateway prerequisite.

The gateway dispatches overlapping micro-batches through ONE coordinator
from multiple threads.  Before this PR that was quietly broken in three
places: ``Coordinator._fan_out`` could swap-and-close the shared
broadcast pool under a sibling broadcast, ``NetworkModel`` counter
updates could be lost, and in-process ``ClusterNode`` engines share
mutable query scratch (dense-query buffer, dedup bitvector) so
concurrent single queries could tear each other's answers.

The hammer here is the regression net: seeded iterations of N threads
banging ``query_batch`` + single ``query`` on one cluster, every answer
compared bit-for-bit against the serial reference — in-process *and*
against real spawned node servers — plus an exact-message-count check
that would catch a single lost network-counter update.

PR 9 adds the *write* hammer: threads interleaving single-row inserts,
deletes and broadcasts on one cluster across several window
retirements.  Inserts are fully serialized by the cluster write lock
and global ids are assigned inside the critical section, so the id
order IS the serialization order — replaying the ops serially in id
order into a shadow cluster must reproduce the final state bit for bit
(placement, retirement log, broadcast answers).  A dedicated test
drives a query into a deliberately slowed retirement and asserts
all-or-none visibility (no torn window).
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro import PLSHCluster, PLSHParams
from repro.cluster import spawn_local_cluster
from repro.parallel import fork_available
from repro.sparse.csr import CSRMatrix

PARAMS = PLSHParams(k=8, m=6, radius=0.9, seed=77)
N_NODES = 3
CAPACITY = 250
HAMMER_ITERATIONS = 50
HAMMER_THREADS = 4


def _reference(cluster, queries):
    """Serial per-query answers (indices, distances) — ground truth."""
    out = []
    for r in range(queries.n_rows):
        cols, vals = queries.row(r)
        outcome = cluster.query(cols.astype(np.int64), vals)
        out.append((outcome.result.indices, outcome.result.distances))
    return out


def _check_outcomes(outcomes, reference, rows):
    for outcome, r in zip(outcomes, rows):
        ref_ids, ref_dists = reference[r]
        np.testing.assert_array_equal(outcome.result.indices, ref_ids)
        np.testing.assert_array_equal(outcome.result.distances, ref_dists)
        assert not outcome.node_errors


def _hammer(cluster, queries, reference, *, iterations, n_threads):
    """N threads × (batch broadcast + single queries), seeded slices.

    Every thread's every answer must be bit-identical to the serial
    reference; any scratch-sharing tear, lost frame, or pool misuse
    shows up as a mismatched id/distance array or an exception.
    """
    rng = np.random.default_rng(4242)
    n_rows = queries.n_rows
    errors: list[BaseException] = []

    def batch_worker(rows, barrier):
        try:
            barrier.wait(timeout=30)
            batch = CSRMatrix.from_rows(
                [queries.row(int(r)) for r in rows], queries.n_cols
            )
            _check_outcomes(
                cluster.query_batch(batch), reference, rows
            )
        except BaseException as exc:  # noqa: BLE001 - collected for the test
            errors.append(exc)

    def single_worker(rows, barrier):
        try:
            barrier.wait(timeout=30)
            for r in rows:
                cols, vals = queries.row(int(r))
                outcome = cluster.query(cols.astype(np.int64), vals)
                _check_outcomes([outcome], reference, [int(r)])
        except BaseException as exc:  # noqa: BLE001
            errors.append(exc)

    for _ in range(iterations):
        barrier = threading.Barrier(n_threads)
        threads = []
        for t in range(n_threads):
            rows = rng.choice(n_rows, size=6, replace=False)
            # Half the threads broadcast batches, half hammer the
            # single-query path (the shared-scratch hazard).
            target = batch_worker if t % 2 == 0 else single_worker
            threads.append(
                threading.Thread(target=target, args=(rows, barrier))
            )
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
            assert not thread.is_alive(), "hammer thread hung"
        if errors:
            raise errors[0]


@pytest.fixture(scope="module")
def hammer_queries(small_vectors):
    return small_vectors.slice_rows(0, 40)


@pytest.fixture(scope="module")
def inprocess_cluster(small_vectors):
    cluster = PLSHCluster(N_NODES, CAPACITY, small_vectors.n_cols, PARAMS,
                          insert_window=2)
    cluster.insert(small_vectors.slice_rows(0, 600))
    try:
        yield cluster
    finally:
        cluster.close()


@pytest.fixture(scope="module")
def spawned_cluster(small_vectors):
    if not fork_available():
        pytest.skip("spawn_local_cluster requires fork()")
    cluster = spawn_local_cluster(
        N_NODES, CAPACITY, small_vectors.n_cols, PARAMS, insert_window=2
    )
    cluster.insert(small_vectors.slice_rows(0, 600))
    try:
        yield cluster
    finally:
        cluster.close()


class TestBroadcastHammer:
    def test_inprocess_bit_identity(self, inprocess_cluster, hammer_queries):
        reference = _reference(inprocess_cluster, hammer_queries)
        _hammer(
            inprocess_cluster, hammer_queries, reference,
            iterations=HAMMER_ITERATIONS, n_threads=HAMMER_THREADS,
        )

    def test_spawned_bit_identity(self, spawned_cluster, hammer_queries):
        reference = _reference(spawned_cluster, hammer_queries)
        _hammer(
            spawned_cluster, hammer_queries, reference,
            iterations=HAMMER_ITERATIONS, n_threads=HAMMER_THREADS,
        )

    def test_network_accounting_exact(self, inprocess_cluster, hammer_queries):
        """Concurrent broadcasts must not lose a single counter update.

        One broadcast's message/byte charge is deterministic (fixed
        cluster, fixed batch), so after T×I identical concurrent calls
        the totals must equal exactly T×I times one call's delta — a
        single lost increment fails this.
        """
        cluster = inprocess_cluster
        batch = hammer_queries.slice_rows(0, 8)
        stats = cluster.network.stats
        stats.reset()
        cluster.query_batch(batch)
        per_call_messages = stats.n_messages
        per_call_bytes = stats.bytes_sent
        assert per_call_messages > 0

        stats.reset()
        n_threads, n_iterations = 4, 12
        with ThreadPoolExecutor(max_workers=n_threads) as pool:
            futures = [
                pool.submit(cluster.query_batch, batch)
                for _ in range(n_threads * n_iterations)
            ]
            for future in futures:
                future.result()
        assert stats.n_messages == per_call_messages * n_threads * n_iterations
        assert stats.bytes_sent == per_call_bytes * n_threads * n_iterations


class TestFanOutPool:
    def test_contention_uses_temporary_pools(self, inprocess_cluster):
        """Overlapping ``_fan_out`` calls share the persistent pool when
        free and fall back to private temporary pools under contention —
        never submit-after-shutdown, never a task dropped."""
        coord = inprocess_cluster.coordinator

        def slow_double(_state, value):
            time.sleep(0.01)
            return value * 2

        def one_call(base):
            tasks = [(base + i,) for i in range(3)]
            return coord._fan_out(slow_double, tasks)

        with ThreadPoolExecutor(max_workers=6) as pool:
            futures = [pool.submit(one_call, base * 10) for base in range(12)]
            results = [f.result(timeout=30) for f in futures]
        for base, result in zip(range(12), results):
            assert result == [(base * 10 + i) * 2 for i in range(3)]
        # Contention resolved: the persistent pool is free again and the
        # next broadcast reuses it.
        assert coord._pool_busy is False
        pool_before = coord._pool
        assert one_call(0) == [0, 2, 4]
        assert coord._pool is pool_before

    def test_pool_grows_for_wider_fan_out(self, inprocess_cluster):
        """A wider task list must replace the pool *safely* (old one
        closed only when idle) and still run every task."""
        coord = inprocess_cluster.coordinator

        def ident(_state, value):
            return value

        assert coord._fan_out(ident, [(i,) for i in range(2)]) == [0, 1]
        wide = coord._fan_out(ident, [(i,) for i in range(8)])
        assert wide == list(range(8))
        assert coord._pool is not None and coord._pool.workers >= 8


WRITE_CAPACITY = 40  # small: the write hammer must cross retirements
N_PREINSERTED = 60


def _write_hammer(cluster, vectors, *, iterations, make_shadow):
    """Interleaved insert / delete / broadcast threads, then a serial
    replay check.

    Per iteration: two threads stream single-row inserts, one deletes
    pre-inserted ids, one broadcasts queries — all overlapping window
    retirements.  Afterwards the recorded ops are replayed serially (in
    assigned-global-id order, which is the write lock's serialization
    order) into a fresh shadow cluster; final placement, the retirement
    log and broadcast answers must match bit for bit.  Deletes replay
    last: they only ever target pre-inserted ids, tombstones do not
    change capacity accounting, so they commute with the insert schedule.
    """
    rng = np.random.default_rng(9099)
    pre = vectors.slice_rows(0, N_PREINSERTED)
    cluster.insert(pre)

    inserted: list[tuple[int, int]] = []  # (global id, vector row)
    deleted: list[int] = []
    record_lock = threading.Lock()
    errors: list[BaseException] = []
    next_row = N_PREINSERTED

    def inserter(rows, barrier):
        try:
            barrier.wait(timeout=30)
            for r in rows:
                gids = cluster.insert(
                    CSRMatrix.from_rows([vectors.row(int(r))], vectors.n_cols)
                )
                assert gids.size == 1
                with record_lock:
                    inserted.append((int(gids[0]), int(r)))
        except BaseException as exc:  # noqa: BLE001 - collected for the test
            errors.append(exc)

    def deleter(ids, barrier):
        try:
            barrier.wait(timeout=30)
            for gid in ids:
                cluster.delete(np.asarray([gid], dtype=np.int64))
                with record_lock:
                    deleted.append(int(gid))
        except BaseException as exc:  # noqa: BLE001
            errors.append(exc)

    def querier(rows, barrier):
        try:
            barrier.wait(timeout=30)
            batch = CSRMatrix.from_rows(
                [vectors.row(int(r)) for r in rows], vectors.n_cols
            )
            for outcome in cluster.query_batch(batch):
                assert not outcome.node_errors
                ids = outcome.result.indices
                # Mid-flight soundness: sane ids, no duplicates, finite
                # float32 distances — a torn broadcast shows up here.
                assert ids.size == np.unique(ids).size
                assert (ids >= 0).all()
                dists = outcome.result.distances
                assert dists.dtype == np.float32
                assert np.isfinite(dists).all()
        except BaseException as exc:  # noqa: BLE001
            errors.append(exc)

    del_cursor = 0
    for _ in range(iterations):
        barrier = threading.Barrier(4)
        rows_a = [next_row, next_row + 1]
        rows_b = [next_row + 2, next_row + 3]
        next_row += 4
        del_ids = [del_cursor % N_PREINSERTED]
        del_cursor += 1
        q_rows = rng.choice(N_PREINSERTED, size=4, replace=False)
        threads = [
            threading.Thread(target=inserter, args=(rows_a, barrier)),
            threading.Thread(target=inserter, args=(rows_b, barrier)),
            threading.Thread(target=deleter, args=(del_ids, barrier)),
            threading.Thread(target=querier, args=(q_rows, barrier)),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
            assert not thread.is_alive(), "write hammer thread hung"
        if errors:
            raise errors[0]

    assert cluster.n_retirements > 0, "hammer never crossed a retirement"

    # -- serial replay: the concurrent run must equal SOME serial order,
    # and the assigned global ids say exactly which one.
    shadow = make_shadow()
    try:
        shadow_pre = shadow.insert(pre)
        np.testing.assert_array_equal(
            shadow_pre, np.arange(N_PREINSERTED, dtype=np.int64)
        )
        for gid, r in sorted(inserted):
            (got,) = shadow.insert(
                CSRMatrix.from_rows([vectors.row(r)], vectors.n_cols)
            )
            assert int(got) == gid, "id order did not replay placement"
        if deleted:
            shadow.delete(np.asarray(sorted(set(deleted)), dtype=np.int64))

        assert cluster.n_items == shadow.n_items
        assert cluster.n_retirements == shadow.n_retirements
        assert cluster.n_retired_items == shadow.n_retired_items
        assert len(cluster.retired_ids) == len(shadow.retired_ids)
        for r1, r2 in zip(cluster.retired_ids, shadow.retired_ids):
            np.testing.assert_array_equal(r1, r2)

        probe = CSRMatrix.from_rows(
            [vectors.row(r) for r in range(next_row - 20, next_row)],
            vectors.n_cols,
        )
        for oa, ob in zip(
            cluster.query_batch(probe), shadow.query_batch(probe)
        ):
            np.testing.assert_array_equal(
                oa.result.indices, ob.result.indices
            )
            np.testing.assert_array_equal(
                oa.result.distances, ob.result.distances
            )
    finally:
        shadow.close()


class TestWriteQueryHammer:
    def test_inprocess_writes_linearize(self, small_vectors):
        cluster = PLSHCluster(
            N_NODES, WRITE_CAPACITY, small_vectors.n_cols, PARAMS,
            insert_window=2,
        )
        try:
            _write_hammer(
                cluster, small_vectors,
                iterations=HAMMER_ITERATIONS,
                make_shadow=lambda: PLSHCluster(
                    N_NODES, WRITE_CAPACITY, small_vectors.n_cols, PARAMS,
                    insert_window=2,
                ),
            )
        finally:
            cluster.close()

    def test_spawned_writes_linearize(self, small_vectors):
        if not fork_available():
            pytest.skip("spawn_local_cluster requires fork()")
        cluster = spawn_local_cluster(
            N_NODES, WRITE_CAPACITY, small_vectors.n_cols, PARAMS,
            insert_window=2,
        )
        try:
            _write_hammer(
                cluster, small_vectors,
                iterations=HAMMER_ITERATIONS // 2,
                make_shadow=lambda: PLSHCluster(
                    N_NODES, WRITE_CAPACITY, small_vectors.n_cols, PARAMS,
                    insert_window=2,
                ),
            )
        finally:
            cluster.close()

    def test_retirement_is_atomic_to_broadcasts(self, small_vectors):
        """The torn-window regression: a broadcast admitted while a
        retirement is mid-erase must wait and observe the fully-retired
        state — never a window with some shards gone and some not."""
        cluster = PLSHCluster(
            N_NODES, WRITE_CAPACITY, small_vectors.n_cols, PARAMS,
            insert_window=2,
        )
        try:
            retire_started = threading.Event()
            retire_calls: list[float] = []
            for shard in cluster.shards:
                original = shard.retire_window

                def slow_retire(_orig=original):
                    retire_started.set()
                    time.sleep(0.25)  # hold the window half-erased
                    retire_calls.append(time.perf_counter())
                    return _orig()

                shard.retire_window = slow_retire

            # Fill until the NEXT insert must retire a window.
            row = 0
            while cluster.n_retirements == 0 and not retire_started.is_set():
                nxt = CSRMatrix.from_rows(
                    [small_vectors.row(row)], small_vectors.n_cols
                )
                row += 1
                if all(
                    s.free_capacity == 0 for s in cluster.window_nodes()
                ):
                    break
                cluster.insert(nxt)

            probe = CSRMatrix.from_rows(
                [small_vectors.row(r) for r in range(10)],
                small_vectors.n_cols,
            )
            trigger = CSRMatrix.from_rows(
                [small_vectors.row(row)], small_vectors.n_cols
            )
            inserter = threading.Thread(target=cluster.insert, args=(trigger,))
            inserter.start()
            assert retire_started.wait(timeout=30), "retirement never fired"
            # Broadcast admitted MID-retirement: must block on the gate.
            concurrent = cluster.query_batch(probe)
            answered_at = time.perf_counter()
            inserter.join(timeout=30)
            assert not inserter.is_alive()
            assert cluster.n_retirements == 1
            # The answer arrived only after every shard's retire returned
            # (all-or-none), and equals the post-retirement state exactly.
            assert answered_at >= max(retire_calls)
            reference = cluster.query_batch(probe)
            for oc, ref in zip(concurrent, reference):
                np.testing.assert_array_equal(
                    oc.result.indices, ref.result.indices
                )
                np.testing.assert_array_equal(
                    oc.result.distances, ref.result.distances
                )
        finally:
            cluster.close()


class TestRemoteHandleFrameSafety:
    def test_concurrent_calls_one_handle(self, spawned_cluster, hammer_queries):
        """Many threads sharing ONE RemoteNodeHandle: the per-handle
        request lock guarantees at most one frame in flight per
        connection, so responses can never pair with the wrong request
        (which would show up as crossed-over result rows)."""
        handle = spawned_cluster.nodes[0]
        reference = {}
        for r in range(8):
            cols, vals = hammer_queries.row(r)
            res = handle.query(cols.astype(np.int64), vals, radius=None)
            reference[r] = (res.indices.copy(), res.distances.copy())

        errors: list[BaseException] = []
        barrier = threading.Barrier(HAMMER_THREADS)

        def worker(seed):
            try:
                rng = np.random.default_rng(seed)
                barrier.wait(timeout=30)
                for _ in range(25):
                    r = int(rng.integers(0, 8))
                    cols, vals = hammer_queries.row(r)
                    res = handle.query(cols.astype(np.int64), vals, radius=None)
                    ref_ids, ref_dists = reference[r]
                    np.testing.assert_array_equal(res.indices, ref_ids)
                    np.testing.assert_array_equal(res.distances, ref_dists)
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(1000 + t,))
            for t in range(HAMMER_THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
            assert not thread.is_alive(), "handle hammer thread hung"
        if errors:
            raise errors[0]


class TestRetireBeforeHammer:
    """PR 10 chaos hammer: time-based retirement racing broadcasts.

    ``retire_before`` drops whole partitions under the retirement
    gate's exclusive side while query threads hammer ``query_batch``
    through the read side.  Two guarantees under fire: no broadcast
    ever errors or tears (the gate serializes it against the erase),
    and a broadcast admitted *after* a retirement returned never
    contains a retired id (read-your-retirements)."""

    def test_retire_before_interleaved_with_broadcasts(self, small_vectors):
        cluster = PLSHCluster(
            N_NODES, 400, small_vectors.n_cols, PARAMS, insert_window=3
        )
        try:
            tick_of: dict[int, int] = {}
            for epoch in range(6):
                ids = cluster.insert(
                    small_vectors.slice_rows(epoch * 40, (epoch + 1) * 40)
                )
                for g in ids.tolist():
                    tick_of[int(g)] = epoch
            probe = small_vectors.slice_rows(0, 16)
            errors: list[BaseException] = []
            stop = threading.Event()

            def bomber():
                try:
                    while not stop.is_set():
                        for oc in cluster.query_batch(probe):
                            assert not oc.node_errors
                except BaseException as exc:  # noqa: BLE001 - re-raised
                    errors.append(exc)

            threads = [
                threading.Thread(target=bomber)
                for _ in range(HAMMER_THREADS)
            ]
            for thread in threads:
                thread.start()
            gone: set[int] = set()
            retired_total = 0
            try:
                for cutoff in range(1, 7):
                    retired = cluster.retire_before(cutoff)
                    retired_total += int(retired.size)
                    gone.update(retired.tolist())
                    assert all(tick_of[g] < cutoff for g in retired.tolist())
                    # Admitted strictly after the retirement returned:
                    # must observe the fully-retired state.
                    for oc in cluster.query_batch(probe):
                        assert not (set(oc.result.indices.tolist()) & gone)
                    time.sleep(0.01)
            finally:
                stop.set()
                for thread in threads:
                    thread.join(timeout=60)
                    assert not thread.is_alive(), "retire hammer thread hung"
            if errors:
                raise errors[0]
            assert retired_total == len(tick_of)
            # Every row is retired; anything still resident is a
            # tombstoned ragged-edge row, invisible to queries.
            assert sum(s.plsh.n_live for s in cluster.shards) == 0
        finally:
            cluster.close()
