"""Duplicate elimination strategies for Step Q2 (Section 5.2.1).

The paper weighs three designs and picks the histogram/bitvector:

1. sort-and-scan               — O(Q log Q)
2. a tree set (C++ ``std::set``) — O(Q log Q), pointer-chasing
3. histogram over data indexes — O(Q), realized as a bitvector

All three are implemented so the Figure 5 ablation and equivalence property
tests can run.  The bitvector backend keeps a persistent mask per engine,
scans only the touched index range (min/max of the collision list) and
clears only the touched positions, so per-query cost is O(collisions +
range) rather than O(N); ``bitvector_fullscan`` keeps the paper-literal
full-vector scan reachable for the ablation.  ``generation`` replaces the
boolean mask with int32 generation counters so even the clear pass
disappears.

Batch queries dedup whole collision *segments* at once:
:func:`unique_segments` removes duplicates within every per-query segment of
a flat collision array in a constant number of numpy calls (the sort rung
generalized to B queries — a single ``np.unique`` over ``segment * N + id``
combined keys), and :func:`unique_segments_generation` is the
generation-mask formulation (O(collisions + range) per segment, no clears)
used as its ablation twin.  :func:`mask_segments` applies a boolean keep
mask to a segmented array while maintaining the segment offsets (the batch
Q2 exclude screen and Q4 radius filter).
"""

from __future__ import annotations

import numpy as np

from repro.utils.bitvector import DedupMask, GenerationMask

__all__ = [
    "Deduplicator",
    "SetDeduplicator",
    "SortDeduplicator",
    "BitvectorDeduplicator",
    "GenerationDeduplicator",
    "make_deduplicator",
    "unique_segments",
    "unique_segments_generation",
    "mask_segments",
]


class Deduplicator:
    """Interface: return unique data indexes from a collision list."""

    def unique(self, collisions: np.ndarray) -> np.ndarray:
        raise NotImplementedError


class SetDeduplicator(Deduplicator):
    """Python-set dedup: the paper's unoptimized STL-set baseline."""

    def unique(self, collisions: np.ndarray) -> np.ndarray:
        seen: set[int] = set()
        out: list[int] = []
        for idx in collisions.tolist():
            if idx not in seen:
                seen.add(idx)
                out.append(idx)
        return np.asarray(sorted(out), dtype=np.int64)


class SortDeduplicator(Deduplicator):
    """Sort-based dedup (design (1) in Section 5.2.1)."""

    def unique(self, collisions: np.ndarray) -> np.ndarray:
        return np.unique(collisions).astype(np.int64)


class BitvectorDeduplicator(Deduplicator):
    """Histogram/bitvector dedup (design (3); the production path).

    Marks collision indexes in a boolean mask, scans for set positions (which
    also yields the sorted order the prefetch-friendly gather wants), then
    resets only the touched bits.  By default the scan covers only the
    ``[min, max]`` range of the collision list — O(collisions + range) per
    query; ``full_scan=True`` restores the paper-literal O(N) scan ("scan
    the bitvector and store the non-zero items into a separate array") for
    the Figure 5 ablation.
    """

    def __init__(self, n_items: int, *, full_scan: bool = False) -> None:
        self._mask = DedupMask(n_items)
        self.full_scan = full_scan

    def unique(self, collisions: np.ndarray) -> np.ndarray:
        if collisions.size == 0:
            return np.empty(0, dtype=np.int64)
        self._mask.set(collisions)
        if self.full_scan:
            unique = self._mask.scan()
        else:
            unique = self._mask.scan_range(
                int(collisions.min()), int(collisions.max()) + 1
            )
        self._mask.clear(unique)
        return unique


class GenerationDeduplicator(Deduplicator):
    """Generation-counter dedup: stamp instead of set, never clear.

    The int32 generation array replaces the boolean histogram; each query
    bumps the generation so stale stamps are simply ignored.  Scanning stays
    touched-range, making per-query cost O(collisions + range) with no reset
    pass at all.
    """

    def __init__(self, n_items: int) -> None:
        self._mask = GenerationMask(n_items)

    def unique(self, collisions: np.ndarray) -> np.ndarray:
        if collisions.size == 0:
            return np.empty(0, dtype=np.int64)
        self._mask.next_generation()
        self._mask.set(collisions)
        return self._mask.scan_range(
            int(collisions.min()), int(collisions.max()) + 1
        )


def make_deduplicator(strategy: str, n_items: int) -> Deduplicator:
    """Factory over the Section 5.2.1 designs (plus reproduction rungs)."""
    if strategy == "set":
        return SetDeduplicator()
    if strategy == "sort":
        return SortDeduplicator()
    if strategy == "bitvector":
        return BitvectorDeduplicator(n_items)
    if strategy == "bitvector_fullscan":
        return BitvectorDeduplicator(n_items, full_scan=True)
    if strategy == "generation":
        return GenerationDeduplicator(n_items)
    raise ValueError(
        f"unknown dedup strategy {strategy!r}; expected 'set', 'sort', "
        f"'bitvector', 'bitvector_fullscan' or 'generation'"
    )


# -- batch (segmented) dedup --------------------------------------------------


def unique_segments(
    values: np.ndarray, seg_offsets: np.ndarray, n_items: int
) -> tuple[np.ndarray, np.ndarray]:
    """Per-segment sorted dedup of a flat segmented collision array.

    ``values[seg_offsets[b]:seg_offsets[b+1]]`` holds segment ``b``'s
    collisions; the same data index may (and must) survive in several
    segments, only within-segment duplicates are dropped.  Returns the
    deduplicated flat array plus updated segment offsets.

    Constant numpy-call count regardless of segment count: segment labels
    and data indexes are fused into one int64 key (``seg * n_items + id``)
    and one stable sort handles both the dedup and the per-segment
    ascending order that the downstream contiguous gather wants.  The
    stable kind matters: numpy dispatches it to a radix sort for integer
    keys, which is ~6x faster than the comparison sort ``np.unique`` would
    run at tweet-scale collision counts.
    """
    seg_offsets = np.asarray(seg_offsets, dtype=np.int64)
    n_segments = seg_offsets.size - 1
    if values.size == 0:
        return (
            np.empty(0, dtype=np.int64),
            np.zeros(n_segments + 1, dtype=np.int64),
        )
    labels = np.repeat(np.arange(n_segments, dtype=np.int64), np.diff(seg_offsets))
    combined = np.sort(labels * n_items + values, kind="stable")
    keep = np.empty(combined.size, dtype=bool)
    keep[0] = True
    np.not_equal(combined[1:], combined[:-1], out=keep[1:])
    combined = combined[keep]
    out_labels = combined // n_items
    out_values = combined - out_labels * n_items
    out_offsets = np.searchsorted(
        out_labels, np.arange(n_segments + 1, dtype=np.int64)
    ).astype(np.int64)
    return out_values, out_offsets


def unique_segments_generation(
    values: np.ndarray,
    seg_offsets: np.ndarray,
    mask: GenerationMask,
) -> tuple[np.ndarray, np.ndarray]:
    """Generation-mask twin of :func:`unique_segments` (reference variant).

    Walks the segments with a persistent :class:`GenerationMask`: each
    segment stamps its collisions with a fresh generation and scans only the
    touched range, so no clearing ever happens between segments.  Dispatch
    cost is O(B) python-side, which is exactly what the sort-based default
    amortizes away.  Not wired into any bench; the equivalence property
    tests pin it against the sort-based kernel so either formulation can be
    measured or swapped in later.
    """
    seg_offsets = np.asarray(seg_offsets, dtype=np.int64)
    n_segments = seg_offsets.size - 1
    out: list[np.ndarray] = []
    out_offsets = np.zeros(n_segments + 1, dtype=np.int64)
    for b in range(n_segments):
        seg = values[seg_offsets[b] : seg_offsets[b + 1]]
        if seg.size:
            mask.next_generation()
            mask.set(seg)
            uniq = mask.scan_range(int(seg.min()), int(seg.max()) + 1)
            out.append(uniq)
            out_offsets[b + 1] = out_offsets[b] + uniq.size
        else:
            out_offsets[b + 1] = out_offsets[b]
    if not out:
        return np.empty(0, dtype=np.int64), out_offsets
    return np.concatenate(out), out_offsets


def mask_segments(
    seg_offsets: np.ndarray, keep: np.ndarray
) -> np.ndarray:
    """Segment offsets after applying boolean ``keep`` to the flat array.

    ``keep`` has one entry per flat element; the caller compresses the data
    arrays with ``arr[keep]`` and this returns the matching new offsets —
    one ``cumsum`` over per-segment kept counts, no Python loop.
    """
    seg_offsets = np.asarray(seg_offsets, dtype=np.int64)
    # Prefix sums of kept flags: the new offset of boundary ``b`` is just the
    # number of kept elements before it.
    prefix = np.concatenate(([0], np.cumsum(keep.astype(np.int64))))
    return prefix[seg_offsets]
