"""The pipelined batch kernel must be bit-identical to the vectorized one.

``mode="pipelined"`` (PR 7) restructures Q2-Q3 as a cache-blocked pipeline
— fused int32 dedup keys, unstable sort, division-free segment decode,
compact gather indexes, interleaved (column, value) pair gathers — every
one of which is exact, so the contract against the vectorized oracle is
bitwise equality of indices AND distances, not approximation.  The
property test sweeps random corpora/queries, exclude masks and
precomputed keys; fixture tests cover stats parity, worker sharding, the
streaming engine (delta + merges + deletions), the in-process cluster
broadcast, and the int64 fallback paths that engage when the compact
int32 tricks do not fit.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import PLSHIndex, PLSHParams
from repro.core import pipelined as pipelined_mod
from repro.core.pipelined import PipelinedKernel
from repro.core.query import QueryEngine
from repro.sparse.csr import CSRMatrix
from repro.streaming.node import StreamingPLSH


def make_engine(built_index, **kw):
    return QueryEngine(
        built_index.tables,
        built_index.data,
        built_index.hasher,
        built_index.params,
        **kw,
    )


def _random_corpus(rng, n_rows: int, n_cols: int, density: float) -> CSRMatrix:
    dense = (rng.random((n_rows, n_cols)) < density) * rng.standard_normal(
        (n_rows, n_cols)
    )
    for r in range(n_rows):
        if not dense[r].any():
            dense[r, int(rng.integers(n_cols))] = 1.0
    return CSRMatrix.from_dense(dense.astype(np.float32)).normalized()


def _assert_bit_identical(a_list, b_list):
    assert len(a_list) == len(b_list)
    for a, b in zip(a_list, b_list):
        np.testing.assert_array_equal(a.indices, b.indices)
        np.testing.assert_array_equal(a.distances, b.distances)


class TestPipelinedEquivalenceProperty:
    @settings(max_examples=15, deadline=None)
    @given(data=st.data())
    def test_bit_identical_across_random_corpora(self, data):
        seed = data.draw(st.integers(0, 2**16), label="seed")
        n_rows = data.draw(st.integers(20, 120), label="n_rows")
        n_cols = data.draw(st.integers(16, 64), label="n_cols")
        radius = data.draw(st.sampled_from([0.3, 0.9, 1.5]), label="radius")
        rng = np.random.default_rng(seed)
        vectors = _random_corpus(rng, n_rows, n_cols, density=0.2)
        params = PLSHParams(k=4, m=4, radius=radius, seed=seed)
        index = PLSHIndex(n_cols, params).build(vectors)

        n_q = data.draw(st.integers(1, 12), label="n_q")
        queries = CSRMatrix.vstack(
            [
                vectors.gather_rows(rng.integers(0, n_rows, size=max(1, n_q // 2))),
                _random_corpus(rng, n_q, n_cols, density=0.1),
            ]
        )

        vec = index.query_batch(queries, mode="vectorized")
        pipe = index.query_batch(queries, mode="pipelined")
        _assert_bit_identical(vec, pipe)

        exclude = rng.random(n_rows) < 0.3
        _assert_bit_identical(
            index.query_batch(queries, mode="vectorized", exclude=exclude),
            index.query_batch(queries, mode="pipelined", exclude=exclude),
        )

        keys = index.hasher.table_keys_batch(
            index.hasher.hash_functions(queries)
        )
        _assert_bit_identical(
            pipe, index.query_batch(queries, mode="pipelined", keys=keys)
        )


class TestPipelinedOnFixture:
    def test_bit_identical_to_vectorized(self, built_index, small_queries):
        _, queries = small_queries
        _assert_bit_identical(
            built_index.query_batch(queries, mode="vectorized"),
            built_index.query_batch(queries, mode="pipelined"),
        )

    def test_empty_batch(self, built_index):
        queries = CSRMatrix.empty(built_index.dim)
        assert built_index.query_batch(queries, mode="pipelined") == []

    def test_stats_match_vectorized(self, built_index, small_queries):
        """Same Q1-Q4 counters: the pipeline restructures the work, not
        the accounting."""
        _, queries = small_queries
        vec_eng = make_engine(built_index)
        pipe_eng = make_engine(built_index)
        vec_eng.query_batch(queries, mode="vectorized")
        pipe_eng.query_batch(queries, mode="pipelined")
        assert pipe_eng.stats.n_queries == vec_eng.stats.n_queries
        assert pipe_eng.stats.n_collisions == vec_eng.stats.n_collisions
        assert pipe_eng.stats.n_unique == vec_eng.stats.n_unique
        assert pipe_eng.stats.n_matches == vec_eng.stats.n_matches
        for name in ("q1_hash", "q2_dedup", "q3_distance", "q4_filter"):
            assert name in pipe_eng.stats.stage_times

    def test_workers_sharded_bit_identical(self, built_index, small_queries):
        _, queries = small_queries
        engine = make_engine(built_index)
        try:
            _assert_bit_identical(
                engine.query_batch(queries, mode="pipelined", workers=1),
                engine.query_batch(queries, mode="pipelined", workers=2),
            )
        finally:
            engine.close()

    def test_radius_override(self, built_index, small_queries):
        _, queries = small_queries
        _assert_bit_identical(
            built_index.query_batch(queries, mode="vectorized", radius=0.5),
            built_index.query_batch(queries, mode="pipelined", radius=0.5),
        )

    def test_int64_fallback_paths_bit_identical(
        self, built_index, small_queries, monkeypatch
    ):
        """Force every compact-int32 trick to fall back (as if the corpus
        exceeded 2^31 elements) — outputs must not move a bit."""
        _, queries = small_queries
        reference = built_index.query_batch(queries, mode="pipelined")
        monkeypatch.setattr(pipelined_mod, "_INT32_MAX", 0)
        engine = make_engine(built_index)
        _assert_bit_identical(
            reference, engine.query_batch(queries, mode="pipelined")
        )
        kernel = engine._pipelined
        assert not kernel._csr_compact and kernel._pair64 is None
        assert not kernel._entries_compact

    def test_numba_knob_disables_cleanly(self, built_index, small_queries, monkeypatch):
        """PLSH_PIPELINED_NUMBA=0 pins the pure-numpy stages regardless of
        whether numba is importable (it is not in CI images)."""
        monkeypatch.setenv("PLSH_PIPELINED_NUMBA", "0")
        assert not pipelined_mod._use_numba()
        _, queries = small_queries
        _assert_bit_identical(
            built_index.query_batch(queries, mode="vectorized"),
            built_index.query_batch(queries, mode="pipelined"),
        )


class TestPipelinedKernelDirect:
    def test_block_candidates_matches_tables(self, built_index, small_queries):
        """The kernel's Q2 equals collisions_batch + unique_segments."""
        from repro.core.candidates import unique_segments

        _, queries = small_queries
        keys = built_index.hasher.table_keys_batch(
            built_index.hasher.hash_functions(queries)
        )
        kernel = PipelinedKernel(built_index.tables, built_index.data)
        cand, offsets, n_coll = kernel.block_candidates(keys)
        values, seg = built_index.tables.collisions_batch(keys)
        ref_cand, ref_offsets = unique_segments(
            values, seg, built_index.tables.n_items
        )
        np.testing.assert_array_equal(cand, np.asarray(ref_cand, dtype=np.int64))
        np.testing.assert_array_equal(offsets, ref_offsets)
        assert n_coll == values.size

    def test_block_dots_matches_row_dots(self, built_index, small_queries):
        from repro.core.candidates import unique_segments
        from repro.sparse.ops import row_dots_dense_batch

        _, queries = small_queries
        keys = built_index.hasher.table_keys_batch(
            built_index.hasher.hash_functions(queries)
        )
        kernel = PipelinedKernel(built_index.tables, built_index.data)
        cand, offsets, _ = kernel.block_candidates(keys)
        got = kernel.block_dots(cand, offsets, queries)
        want = row_dots_dense_batch(built_index.data, cand, offsets, queries)
        assert got.dtype == want.dtype == np.float32
        np.testing.assert_array_equal(got, want)


class TestPipelinedStreaming:
    def test_streaming_node_with_deltas_and_deletes(self, small_vectors):
        """The pipelined mode must answer over the full static+delta state
        (merged table set, unmerged delta, tombstones) identically."""
        params = PLSHParams(k=8, m=8, radius=0.9, delta=0.2, seed=99)
        node = StreamingPLSH(small_vectors.n_cols, params, capacity=3000)
        node.insert_batch(small_vectors.slice_rows(0, 1200))
        node.merge_now()
        node.insert_batch(small_vectors.slice_rows(1200, 1500))
        node.delete(np.arange(40, 60))
        queries = small_vectors.gather_rows(
            np.arange(0, 1500, 7, dtype=np.int64)
        )
        _assert_bit_identical(
            node.query_batch(queries, mode="vectorized"),
            node.query_batch(queries, mode="pipelined"),
        )
        _assert_bit_identical(
            node.query_batch(queries, mode="vectorized"),
            node.query_batch(queries, mode="pipelined", workers=2),
        )

    def test_cluster_broadcast_parity(self, small_vectors):
        from repro import PLSHCluster

        params = PLSHParams(k=8, m=6, radius=0.9, seed=77)
        with PLSHCluster(
            3, 800, small_vectors.n_cols, params, insert_window=3
        ) as cluster:
            cluster.insert(small_vectors.slice_rows(0, 1800))
            cluster.merge_all()
            queries = small_vectors.gather_rows(
                np.arange(0, 1800, 37, dtype=np.int64)
            )
            vec = cluster.query_batch(queries, mode="vectorized")
            pipe = cluster.query_batch(queries, mode="pipelined")
            for a, b in zip(vec, pipe):
                np.testing.assert_array_equal(a.result.indices, b.result.indices)
                np.testing.assert_array_equal(
                    a.result.distances, b.result.distances
                )
