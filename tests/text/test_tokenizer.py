"""Tokenizer tests: the paper's cleaning pipeline."""

from __future__ import annotations

import pytest

from repro.text.tokenizer import DEFAULT_STOP_WORDS, Tokenizer


def test_lowercases_and_strips_non_alpha():
    t = Tokenizer()
    assert t.tokenize("Hello, WORLD!! 123") == ["hello", "world"]


def test_removes_stop_words():
    t = Tokenizer()
    assert t.tokenize("the cat and the hat") == ["cat", "hat"]


def test_removes_duplicate_tokens():
    t = Tokenizer()
    assert t.tokenize("run run run fast") == ["run", "fast"]


def test_preserves_first_occurrence_order():
    t = Tokenizer()
    assert t.tokenize("zebra apple zebra mango") == ["zebra", "apple", "mango"]


def test_min_token_length():
    t = Tokenizer(min_token_length=4)
    assert t.tokenize("cat elephant dog bear") == ["elephant", "bear"]


def test_min_token_length_validation():
    with pytest.raises(ValueError):
        Tokenizer(min_token_length=0)


def test_handles_urls_and_mentions():
    t = Tokenizer()
    tokens = t.tokenize("@user check https://x.co/abc #Topic")
    assert "user" in tokens and "check" in tokens and "topic" in tokens


def test_rt_is_a_stop_word():
    # "RT" markers are noise in tweets; the default stop list drops them.
    assert "rt" in DEFAULT_STOP_WORDS
    assert Tokenizer().tokenize("RT great game") == ["great", "game"]


def test_empty_and_symbol_only_text():
    t = Tokenizer()
    assert t.tokenize("") == []
    assert t.tokenize("!!! 999 @@@") == []


def test_custom_stop_words():
    t = Tokenizer(stop_words={"foo"})
    assert t.tokenize("foo bar the") == ["bar", "the"]


def test_tokenize_many():
    t = Tokenizer()
    out = t.tokenize_many(["good day", "bad day"])
    assert out == [["good", "day"], ["bad", "day"]]
