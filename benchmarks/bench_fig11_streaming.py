"""Figure 11 — streaming query performance as the delta table fills.

Paper: a node with capacity C = 10.5 M and max delta size eta*C = 1 M is
queried while the delta fills from 0 to 100 %.  With 50 % of capacity in
static tables there is no visible penalty versus fully-static; with 90 %
static the worst case reaches ~1.3x; the design bound is 1.5x (Section 6.3).

This bench reproduces both series plus the 100 %-static reference line.
Shape to check: query time grows with delta fill; the (90 %, full-delta)
worst case stays within ~1.5x of the full static reference.

``test_fig11_merge_overlap`` adds the concurrent-serving column the paper's
Sections 4 & 6 describe: a serving loop issues query batches while the
delta→static merge happens underneath, once with the blocking merge (the
batch that triggers it absorbs the whole rebuild) and once with the
non-blocking pipeline (``begin_merge`` freezes the delta and builds on a
background thread; the loop polls ``commit_merge(wait=False)``).  Reported
per-batch latency percentiles make the contrast the paper's Figure 11
implies: overlapped p99 must sit strictly below blocking p99, while the
answers stay bit-identical between the two modes.
"""

from __future__ import annotations

import time

import numpy as np

from repro.bench.reporting import format_table, print_section
from repro.bench.runner import measure_median
from repro.streaming.node import StreamingPLSH
from repro import PLSHIndex


def _series(vectors, queries, params, capacity, static_frac, fills):
    node = StreamingPLSH(
        vectors.n_cols, params, capacity, delta_fraction=0.1, auto_merge=False
    )
    n_static = int(capacity * static_frac)
    node.insert_batch(vectors.slice_rows(0, n_static))
    node.merge_now()
    delta_cap = int(capacity * 0.1)
    out = []
    inserted = 0
    for fill in fills:
        target = int(delta_cap * fill)
        if target > inserted:
            node.insert_batch(
                vectors.slice_rows(n_static + inserted, n_static + target)
            )
            inserted = target
        secs = measure_median(
            lambda: node.query_batch(queries), repeats=2, warmup=1
        )
        out.append(secs)
    return out


def test_fig11_streaming(benchmark, twitter, scale):
    params = scale.params()
    vectors = twitter.vectors
    queries = twitter.queries.slice_rows(0, min(50, twitter.queries.n_rows))
    capacity = int(vectors.n_rows * 0.8)
    fills = [0.0, 0.2, 0.4, 0.6, 0.8, 1.0]

    # 100 % static reference line.
    reference = PLSHIndex(vectors.n_cols, params)
    reference.build(vectors.slice_rows(0, capacity))
    engine = reference.engine
    assert engine is not None
    static_s = measure_median(
        lambda: engine.query_batch(queries), repeats=2, warmup=1
    )

    series_50 = _series(vectors, queries, params, capacity, 0.5, fills)
    series_90 = _series(vectors, queries, params, capacity, 0.9, fills)

    benchmark.pedantic(
        lambda: engine.query_batch(queries), rounds=2, iterations=1
    )

    rows = [
        [
            f"{int(f * 100)}%",
            s50 * 1e3,
            s50 / static_s,
            s90 * 1e3,
            s90 / static_s,
        ]
        for f, s50, s90 in zip(fills, series_50, series_90)
    ]
    print_section(
        f"Figure 11 — streaming query perf (C={capacity:,}, "
        f"delta cap=10% of C, {queries.n_rows} queries; "
        f"100% static reference = {static_s * 1e3:.1f} ms)",
        format_table(
            ["delta fill", "50% static ms", "vs static", "90% static ms",
             "vs static"],
            rows,
        )
        + "\npaper: 50% static shows no penalty; 90% static worst case"
          " ~1.3x; bound 1.5x",
    )

    # Shape assertions.  Query time must grow with delta fill.
    assert series_90[-1] >= series_90[0] * 0.9
    # The paper's ratio claims hold when the static search is heavy enough
    # to amortize the per-query delta probing (its static query is ~1.4 ms);
    # at toy scales the fixed Python overhead of the delta path dominates
    # and only the monotone shape is meaningful, so gate the ratio bounds.
    if static_s / queries.n_rows >= 0.5e-3:
        # 50%-static nodes hold half the data: within the 1.5x design bound.
        assert max(series_50) <= static_s * 1.6
        # 90%-static + full delta: the case the paper bounds at 1.5x.
        assert series_90[-1] <= static_s * 2.0


def _serving_loop(vectors, queries, params, capacity, *, overlap, n_steps,
                  merge_step):
    """One serving run: per-batch client-visible latencies across a merge.

    The loop models a single-threaded server: at every step any due
    maintenance runs first (the blocking merge stalls the step; the
    overlapped pipeline begins the build and later commits via a
    non-blocking poll), then the step's query batch is answered.  The
    measured step latency is therefore exactly what a client waiting on
    that batch would see.
    """
    node = StreamingPLSH(
        vectors.n_cols, params, capacity,
        delta_fraction=0.2, auto_merge=False, overlap_merges=overlap,
    )
    n_static = int(capacity * 0.6)
    node.insert_batch(vectors.slice_rows(0, n_static))
    node.merge_now()
    n_delta = int(capacity * 0.15)
    node.insert_batch(vectors.slice_rows(n_static, n_static + n_delta))
    node.query_batch(queries)  # warmup: fault in tables and buffers
    node.times.reset()  # report only the in-loop merge, not the setup one

    latencies = []
    checkpoints = {}
    for step in range(n_steps):
        start = time.perf_counter()
        if step == merge_step:
            if overlap:
                node.begin_merge()
            else:
                node.merge_now()
        results = node.query_batch(queries)
        if overlap:
            node.commit_merge(wait=False)  # opportunistic, off the stall path
        latencies.append(time.perf_counter() - start)
        if step in (0, merge_step, n_steps - 1):
            checkpoints[step] = results
    node.commit_merge(wait=True)
    build_s = node.times["merge_build"] if "merge_build" in node.times else 0.0
    merge_s = node.times["merge"] if "merge" in node.times else 0.0
    node.close()
    return np.asarray(latencies), checkpoints, (build_s, merge_s)


def test_fig11_merge_overlap(benchmark, twitter, scale):
    """Blocking vs non-blocking merge under a live query stream."""
    params = scale.params()
    vectors = twitter.vectors
    queries = twitter.queries.slice_rows(0, min(25, twitter.queries.n_rows))
    capacity = int(vectors.n_rows * 0.8)
    n_steps, merge_step = 40, 10

    blocking, block_checks, (_, block_merge_s) = _serving_loop(
        vectors, queries, params, capacity,
        overlap=False, n_steps=n_steps, merge_step=merge_step,
    )
    overlapped, over_checks, (build_s, _) = _serving_loop(
        vectors, queries, params, capacity,
        overlap=True, n_steps=n_steps, merge_step=merge_step,
    )

    # Same data, same hash functions: the two serving modes must answer
    # bit-identically at every checkpoint, merge in flight or not.
    for step in block_checks:
        for a, b in zip(block_checks[step], over_checks[step]):
            np.testing.assert_array_equal(a.indices, b.indices)
            np.testing.assert_array_equal(a.distances, b.distances)

    def row(name, lat):
        return [
            name,
            float(np.median(lat)) * 1e3,
            float(np.percentile(lat, 99)) * 1e3,
            float(lat.max()) * 1e3,
        ]

    p99_block = float(np.percentile(blocking, 99))
    p99_over = float(np.percentile(overlapped, 99))
    print_section(
        f"Figure 11 — merge overlap (C={capacity:,}, {queries.n_rows} "
        f"queries/batch, {n_steps} batches, merge at batch {merge_step}; "
        f"merge rebuild {block_merge_s * 1e3:.0f} ms blocking / "
        f"{build_s * 1e3:.0f} ms on the background thread)",
        format_table(
            ["merge mode", "p50 ms", "p99 ms", "max ms"],
            [row("blocking", blocking), row("overlapped", overlapped)],
        )
        + "\npaper: maintenance overlaps serving, so no query absorbs the "
          "rebuild",
    )

    benchmark.pedantic(
        lambda: _serving_loop(
            vectors, queries, params, capacity,
            overlap=True, n_steps=6, merge_step=2,
        ),
        rounds=1, iterations=1,
    )

    # The headline claim: the overlapped pipeline keeps tail latency
    # strictly below the blocking merge, whose merge-step batch absorbs
    # the full table rebuild.  Meaningful once the rebuild actually
    # dominates a batch (true at the default scale); at tiny smoke scales
    # the run only checks mechanics + bit-identity.
    if block_merge_s >= 3 * float(np.median(blocking)):
        assert p99_over < p99_block, (
            f"overlapped p99 {p99_over * 1e3:.1f} ms not below blocking p99 "
            f"{p99_block * 1e3:.1f} ms"
        )
        # And the blocking run's worst batch is the merge batch — the
        # stall the overlap removes.
        assert blocking.argmax() == merge_step
