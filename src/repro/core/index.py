"""``PLSHIndex`` — the static PLSH structure (Sections 3-5), public facade.

Construction (Section 5.1): hash every row with the all-pairs scheme, then
build the L contiguous tables with the shared two-level partitioner.  Both
phases are timed per stage so Figure 4/6 benches can read the breakdown.

Querying (Section 5.2) delegates to :class:`repro.core.query.QueryEngine`.

The computed ``(n, m)`` hash-function values are cached on the index — the
streaming merge (Section 6.2) rebuilds tables from cached hashes without
re-hashing, which is what makes merge cost partition-bound and lets the
paper argue no merge can beat it by more than ~3x.
"""

from __future__ import annotations

import numpy as np

from repro.core.hashing import AllPairsHasher
from repro.core.query import QueryEngine, QueryResult
from repro.core.tables import StaticTableSet
from repro.params import PLSHParams
from repro.sparse.csr import CSRMatrix
from repro.utils.timing import StageTimes

__all__ = ["PLSHIndex"]


class PLSHIndex:
    """Static in-memory PLSH index over IDF-weighted unit CSR rows."""

    def __init__(
        self,
        dim: int,
        params: PLSHParams,
        *,
        hasher: AllPairsHasher | None = None,
        dedup: str = "bitvector",
        dots: str = "batched",
    ) -> None:
        self.params = params
        self.dim = dim
        self.hasher = hasher if hasher is not None else AllPairsHasher(params, dim)
        if self.hasher.dim != dim:
            raise ValueError(
                f"hasher dimension {self.hasher.dim} != index dimension {dim}"
            )
        self._dedup = dedup
        self._dots = dots
        self.data: CSRMatrix | None = None
        self.u_values: np.ndarray | None = None
        self.tables: StaticTableSet | None = None
        self.engine: QueryEngine | None = None
        self.build_times = StageTimes()

    # -- construction --------------------------------------------------------

    def build(
        self,
        data: CSRMatrix,
        *,
        strategy: str = "shared",
        vectorized: bool = True,
        workers: int = 1,
        u_values: np.ndarray | None = None,
    ) -> "PLSHIndex":
        """Construct the static structure over ``data``.

        ``u_values`` may carry pre-computed hash-function values (the merge
        path passes the concatenation of cached static + delta hashes).
        """
        if data.n_cols != self.dim:
            raise ValueError(
                f"data has {data.n_cols} columns, index expects {self.dim}"
            )
        self.build_times.reset()
        self.data = data
        if u_values is None:
            with self.build_times.stage("hashing"):
                u_values = self.hasher.hash_functions(data, vectorized=vectorized)
        elif u_values.shape != (data.n_rows, self.params.m):
            raise ValueError(
                f"u_values shape {u_values.shape} != "
                f"{(data.n_rows, self.params.m)}"
            )
        self.u_values = u_values
        if self.engine is not None:  # rebuild: drop the stale engine's pools
            self.engine.close()
        with self.build_times.stage("insertion"):
            self.tables = StaticTableSet.build(
                u_values,
                self.params,
                strategy=strategy,
                vectorized=vectorized,
                workers=workers,
            )
        self.engine = QueryEngine(
            self.tables,
            data,
            self.hasher,
            self.params,
            dedup=self._dedup,
            dots=self._dots,
        )
        return self

    @property
    def n_items(self) -> int:
        return 0 if self.data is None else self.data.n_rows

    @property
    def is_built(self) -> bool:
        return self.engine is not None

    @property
    def nbytes(self) -> int:
        """Table memory (Equation 7.4 accounting)."""
        return 0 if self.tables is None else self.tables.nbytes

    # -- queries ---------------------------------------------------------------

    def query(
        self,
        q_cols: np.ndarray,
        q_vals: np.ndarray,
        *,
        radius: float | None = None,
        exclude: np.ndarray | None = None,
        keys: np.ndarray | None = None,
    ) -> QueryResult:
        """R-near neighbors of one sparse query (see QueryEngine.query)."""
        self._require_built()
        assert self.engine is not None
        return self.engine.query(
            q_cols, q_vals, radius=radius, exclude=exclude, keys=keys
        )

    def query_batch(
        self,
        queries: CSRMatrix,
        *,
        radius: float | None = None,
        workers: int | None = None,
        exclude: np.ndarray | None = None,
        backend: str | None = None,
        mode: str | None = None,
        keys: np.ndarray | None = None,
    ) -> list[QueryResult]:
        """Batch querying through the vectorized kernel, sharded across
        ``workers`` cores via the :mod:`repro.parallel` layer (persistent
        fork pool by default on Linux; bit-identical to ``workers=1`` —
        see :meth:`QueryEngine.query_batch`)."""
        self._require_built()
        assert self.engine is not None
        return self.engine.query_batch(
            queries, radius=radius, workers=workers, exclude=exclude,
            backend=backend, mode=mode, keys=keys,
        )

    def close(self) -> None:
        """Release any persistent worker pools held by the query engine."""
        if self.engine is not None:
            self.engine.close()

    def __enter__(self) -> "PLSHIndex":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def nearest(
        self,
        q_cols: np.ndarray,
        q_vals: np.ndarray,
        n: int,
        *,
        radius: float | None = None,
    ) -> QueryResult:
        """The ``n`` nearest R-near neighbors, sorted by distance.

        Convenience over :meth:`query`: LSH retrieves the R-near candidate
        set; this keeps the closest ``n``.  Like all LSH answers it is
        approximate — a true neighbor missing from the candidate set cannot
        be ranked.
        """
        return self.query(q_cols, q_vals, radius=radius).top(n)

    def _require_built(self) -> None:
        if not self.is_built:
            raise RuntimeError("index must be built before querying")
