"""Merging delta tables into the static structure (Section 6.2).

"One way to perform the merge is simply to reinitialize the static LSH
structure, but with the streamed data added.  We can easily show that
although this is unoptimized, no merge algorithm can be more than 3x
better" — because initialization is bandwidth-bound and any merge must at
least read the old static tables and write the combined ones.

The implementation follows the paper exactly: concatenate the static rows
with the delta rows, concatenate their *cached* hash-function values (so no
re-hashing happens), and run the shared two-level table construction over
the union.  The merge is therefore partition-bound, the quantity the
paper's TI2/TI3 model prices.
"""

from __future__ import annotations

import numpy as np

from repro.core.index import PLSHIndex
from repro.sparse.csr import CSRMatrix
from repro.streaming.delta import DeltaTable

__all__ = ["merge_into_static"]


def merge_into_static(static: PLSHIndex, delta: DeltaTable) -> PLSHIndex:
    """Rebuild ``static`` to include everything in ``delta``.

    Returns a new :class:`PLSHIndex` sharing the hasher (and thus the hash
    functions) of the old one.  Delta rows receive local ids following the
    static rows: static row ids are stable across merges, delta-local id
    ``d`` becomes ``n_static + d`` — the mapping the streaming node relies
    on when translating to global ids.
    """
    if static.data is None or static.u_values is None:
        raise ValueError("static index must be built before merging")
    if delta.dim != static.dim:
        raise ValueError(
            f"dimension mismatch: delta {delta.dim} != static {static.dim}"
        )
    if len(delta) == 0:
        return static

    combined_data = CSRMatrix.vstack([static.data, delta.vectors()])
    combined_u = np.concatenate([static.u_values, delta.u_values()], axis=0)
    merged = PLSHIndex(
        static.dim,
        static.params,
        hasher=static.hasher,
        dedup=static._dedup,
        dots=static._dots,
    )
    merged.build(combined_data, u_values=combined_u)
    return merged
