"""Shared utilities: seeded RNG streams, timers, bitvectors, chunking."""

from repro.utils.bitvector import BitVector, DedupMask
from repro.utils.chunking import iter_chunks, chunk_bounds
from repro.utils.rng import rng_for, spawn_rngs
from repro.utils.timing import StageTimes, Timer

__all__ = [
    "BitVector",
    "DedupMask",
    "StageTimes",
    "Timer",
    "chunk_bounds",
    "iter_chunks",
    "rng_for",
    "spawn_rngs",
]
