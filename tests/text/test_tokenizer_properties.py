"""Property tests for the cleaning pipeline: output invariants on any input."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.text.tokenizer import DEFAULT_STOP_WORDS, Tokenizer


@settings(max_examples=150, deadline=None)
@given(text=st.text(max_size=200))
def test_tokenizer_output_invariants(text):
    tokens = Tokenizer().tokenize(text)
    seen = set()
    for token in tokens:
        # lowercase alphabetic, long enough, not a stop word, unique
        assert token.isalpha()
        assert token == token.lower()
        assert len(token) >= 2
        assert token not in DEFAULT_STOP_WORDS
        assert token not in seen
        seen.add(token)


@settings(max_examples=100, deadline=None)
@given(text=st.text(alphabet=st.characters(), max_size=120))
def test_tokenizer_idempotent(text):
    t = Tokenizer()
    once = t.tokenize(text)
    again = t.tokenize(" ".join(once))
    assert once == again


@settings(max_examples=100, deadline=None)
@given(
    words=st.lists(
        st.text(alphabet="abcdefgh", min_size=2, max_size=8), max_size=15
    )
)
def test_clean_words_survive(words):
    """Already-clean non-stop words must pass through in order, deduped."""
    t = Tokenizer()
    text = " ".join(words)
    expected = []
    seen = set()
    for w in words:
        if w not in DEFAULT_STOP_WORDS and w not in seen:
            seen.add(w)
            expected.append(w)
    assert t.tokenize(text) == expected
