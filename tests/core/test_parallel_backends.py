"""Parallel query backends and parallel table construction."""

from __future__ import annotations

import sys

import numpy as np
import pytest

from repro import PLSHIndex
from repro.core.tables import StaticTableSet


class TestProcessBackend:
    @pytest.mark.skipif(
        not sys.platform.startswith("linux"), reason="fork-based backend"
    )
    def test_matches_serial(self, built_index, small_queries):
        _, queries = small_queries
        engine = built_index.engine
        serial = engine.query_batch(queries)
        forked = engine.query_batch(queries, workers=2, backend="process")
        assert len(serial) == len(forked)
        for a, b in zip(serial, forked):
            np.testing.assert_array_equal(np.sort(a.indices), np.sort(b.indices))
            np.testing.assert_allclose(
                np.sort(a.distances), np.sort(b.distances), rtol=1e-6
            )

    @pytest.mark.skipif(
        not sys.platform.startswith("linux"), reason="fork-based backend"
    )
    def test_stats_aggregated_from_children(self, built_index, small_queries):
        _, queries = small_queries
        engine = built_index.engine
        before = engine.stats.n_queries
        engine.query_batch(queries, workers=2, backend="process")
        assert engine.stats.n_queries - before == queries.n_rows

    def test_unknown_backend_raises(self, built_index, small_queries):
        _, queries = small_queries
        with pytest.raises(ValueError):
            built_index.engine.query_batch(queries, workers=2, backend="mpi")

    def test_single_worker_ignores_backend(self, built_index, small_queries):
        _, queries = small_queries
        out = built_index.engine.query_batch(
            queries.slice_rows(0, 3), workers=1, backend="process"
        )
        assert len(out) == 3


class TestParallelBuild:
    def test_workers_produce_identical_tables(self, built_index):
        u = built_index.u_values
        params = built_index.params
        serial = StaticTableSet.build(u, params, workers=1)
        parallel = StaticTableSet.build(u, params, workers=4)
        np.testing.assert_array_equal(serial.entries, parallel.entries)
        np.testing.assert_array_equal(serial.offsets, parallel.offsets)

    def test_index_build_with_workers(self, small_vectors, small_params):
        a = PLSHIndex(small_vectors.n_cols, small_params).build(small_vectors)
        b = PLSHIndex(small_vectors.n_cols, small_params).build(
            small_vectors, workers=3
        )
        np.testing.assert_array_equal(a.tables.entries, b.tables.entries)


class TestNearest:
    def test_nearest_orders_and_limits(self, built_index, small_vectors):
        cols, vals = small_vectors.row(7)
        res = built_index.nearest(cols.astype(np.int64), vals, 3, radius=1.2)
        assert len(res) <= 3
        assert (np.diff(res.distances) >= 0).all()
        if len(res):
            assert res.indices[0] == 7  # self at distance 0


class TestForkStageTimes:
    @pytest.mark.skipif(
        not sys.platform.startswith("linux"), reason="fork-based backend"
    )
    def test_fork_backend_reports_stage_times(self, built_index, small_queries):
        """Figure 5 breakdowns under backend="process" must see real
        per-stage seconds, not zeros: workers return their StageTimes dict
        and the parent merges it."""
        from repro.core.query import QueryEngine

        _, queries = small_queries
        engine = QueryEngine(
            built_index.tables, built_index.data, built_index.hasher,
            built_index.params,
        )
        engine.query_batch(queries, workers=2, backend="process")
        times = engine.stats.stage_times
        for name in ("q1_hash", "q2_dedup", "q3_distance", "q4_filter"):
            assert name in times, f"missing stage {name}"
        assert times.total > 0.0
