"""Bitvectors for duplicate elimination and deletion filtering (Section 5.2.1).

Two variants:

* :class:`BitVector` — a packed uint64 bitvector, the faithful analogue of
  the paper's 1.25 MB-for-10M-indexes structure.  Memory is ``n/8`` bytes.
* :class:`DedupMask` — a numpy boolean array.  Uses 8× the memory but its
  fancy-indexing operations are faster in numpy; the query engine uses it as
  the default "bitvector" dedup backend while :class:`BitVector` backs the
  deletion filter and is available for memory-constrained runs.

Both expose the same small API so they are interchangeable in tests.
"""

from __future__ import annotations

import numpy as np

__all__ = ["BitVector", "DedupMask"]


class BitVector:
    """Fixed-size packed bitvector over indexes ``0..n-1``."""

    def __init__(self, n: int) -> None:
        if n < 0:
            raise ValueError(f"size must be non-negative, got {n}")
        self._n = n
        self._words = np.zeros((n + 63) // 64, dtype=np.uint64)

    def __len__(self) -> int:
        return self._n

    @property
    def nbytes(self) -> int:
        return int(self._words.nbytes)

    def set(self, idx: np.ndarray | int) -> None:
        """Set bit(s) ``idx`` to 1. Accepts a scalar or an integer array."""
        idx = np.asarray(idx, dtype=np.int64)
        self._check_range(idx)
        words = idx >> 6
        bits = np.uint64(1) << (idx & 63).astype(np.uint64)
        np.bitwise_or.at(self._words, words, bits)

    def clear(self, idx: np.ndarray | int) -> None:
        """Clear bit(s) ``idx`` to 0."""
        idx = np.asarray(idx, dtype=np.int64)
        self._check_range(idx)
        words = idx >> 6
        bits = ~(np.uint64(1) << (idx & 63).astype(np.uint64))
        np.bitwise_and.at(self._words, words, bits)

    def test(self, idx: np.ndarray | int) -> np.ndarray:
        """Return a boolean array: whether each bit is set."""
        idx = np.asarray(idx, dtype=np.int64)
        self._check_range(idx)
        words = self._words[idx >> 6]
        return (words >> (idx & 63).astype(np.uint64)) & np.uint64(1) != 0

    def set_unique(self, idx: np.ndarray) -> np.ndarray:
        """Set bits for ``idx``; return the first occurrence of each new index.

        This is the paper's Step Q2 inner loop: "check if the histogram value
        for that index is 0, and if so write out the value and set it to 1".
        Returned indexes are the unique values of ``idx`` that were unset on
        entry, in first-occurrence order.
        """
        idx = np.asarray(idx, dtype=np.int64)
        self._check_range(idx)
        if idx.size == 0:
            return idx
        # First occurrence within this batch, intersected with "not already set".
        fresh = ~self.test(idx)
        first_in_batch = np.zeros(idx.size, dtype=bool)
        # np.unique returns first-occurrence positions with return_index.
        _, first_pos = np.unique(idx, return_index=True)
        first_in_batch[first_pos] = True
        out = idx[fresh & first_in_batch]
        self.set(out)
        return out

    def scan(self) -> np.ndarray:
        """Return all set bit indexes in ascending order (paper's Q2 scan)."""
        set_words = np.nonzero(self._words)[0]
        out: list[np.ndarray] = []
        for w in set_words:
            word = int(self._words[w])
            bits = []
            b = word
            while b:
                low = b & -b
                bits.append(low.bit_length() - 1)
                b ^= low
            out.append(np.asarray(bits, dtype=np.int64) + (int(w) << 6))
        if not out:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(out)

    def count(self) -> int:
        """Population count over the whole vector."""
        return int(np.unpackbits(self._words.view(np.uint8)).sum())

    def reset(self) -> None:
        """Clear every bit (the paper resets the vector on node retirement)."""
        self._words.fill(0)

    def _check_range(self, idx: np.ndarray) -> None:
        if idx.size and (int(idx.min()) < 0 or int(idx.max()) >= self._n):
            raise IndexError(
                f"bit index out of range [0, {self._n}): "
                f"min={int(idx.min())} max={int(idx.max())}"
            )


class DedupMask:
    """Boolean-array dedup histogram with the same API as :class:`BitVector`."""

    def __init__(self, n: int) -> None:
        if n < 0:
            raise ValueError(f"size must be non-negative, got {n}")
        self._mask = np.zeros(n, dtype=bool)

    def __len__(self) -> int:
        return int(self._mask.size)

    @property
    def nbytes(self) -> int:
        return int(self._mask.nbytes)

    def set(self, idx: np.ndarray | int) -> None:
        self._mask[idx] = True

    def clear(self, idx: np.ndarray | int) -> None:
        self._mask[idx] = False

    def test(self, idx: np.ndarray | int) -> np.ndarray:
        return self._mask[idx]

    def set_unique(self, idx: np.ndarray) -> np.ndarray:
        idx = np.asarray(idx, dtype=np.int64)
        if idx.size == 0:
            return idx
        fresh = ~self._mask[idx]
        first_in_batch = np.zeros(idx.size, dtype=bool)
        _, first_pos = np.unique(idx, return_index=True)
        first_in_batch[first_pos] = True
        out = idx[fresh & first_in_batch]
        self._mask[out] = True
        return out

    def scan(self) -> np.ndarray:
        return np.nonzero(self._mask)[0].astype(np.int64)

    def count(self) -> int:
        return int(self._mask.sum())

    def reset(self) -> None:
        self._mask.fill(False)
