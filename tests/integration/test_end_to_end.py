"""End-to-end integration: text -> vectors -> index -> queries, and the
full streaming/cluster pipelines working together."""

from __future__ import annotations

import numpy as np
import pytest

from repro import IDFVectorizer, PLSHIndex, PLSHParams
from repro.baselines.exhaustive import ExhaustiveSearch
from repro.text.tokenizer import Tokenizer
from repro.text.vocabulary import Vocabulary


class TestTextPipeline:
    """Raw strings all the way to neighbors, exercising the public API."""

    TWEETS = [
        "Lionel Messi scores twice in the final tonight",
        "Messi scores twice — what a final tonight!",
        "Central bank raises interest rates again",
        "The weather in boston is lovely today",
        "Interest rates raised by the central bank",
        "lovely weather today in boston area",
        "new phone launch breaks preorder records",
        "Phone launch: preorder records broken worldwide",
    ] * 25  # replicate so hash statistics are meaningful

    def test_near_duplicate_tweets_are_neighbors(self):
        tokenizer = Tokenizer()
        vocab = Vocabulary()
        docs = vocab.build(tokenizer.tokenize_many(self.TWEETS))
        vocab.freeze()
        vectorizer = IDFVectorizer(max(len(vocab), 1)).fit(docs)
        vectors = vectorizer.transform(docs)
        params = PLSHParams(k=8, m=10, radius=0.9, seed=5)
        index = PLSHIndex(vectors.n_cols, params).build(vectors)

        # Tweet 0 and tweet 1 are near-duplicates; 2 is unrelated.
        cols, vals = vectors.row(0)
        res = index.query(cols.astype(np.int64), vals)
        found = set(res.indices.tolist())
        assert 1 in found
        assert 2 not in found

    def test_query_from_unseen_text(self):
        tokenizer = Tokenizer()
        vocab = Vocabulary()
        docs = vocab.build(tokenizer.tokenize_many(self.TWEETS))
        vocab.freeze()
        vectorizer = IDFVectorizer(len(vocab)).fit(docs)
        vectors = vectorizer.transform(docs)
        params = PLSHParams(k=8, m=10, radius=0.9, seed=5)
        index = PLSHIndex(vectors.n_cols, params).build(vectors)

        q_tokens = vocab.encode(tokenizer.tokenize("messi scores in the final"))
        q = vectorizer.transform([q_tokens])
        cols, vals = q.row(0)
        res = index.query(cols.astype(np.int64), vals)
        assert 0 in res.indices.tolist() or 1 in res.indices.tolist()


class TestStreamingScenario:
    def test_day_in_the_life(self, small_vectors, small_queries):
        """Inserts, merges, deletes and queries interleaved, checked against
        an exhaustive oracle over the live rows at the end."""
        from repro.streaming.node import StreamingPLSH

        params = PLSHParams(k=8, m=8, radius=0.9, seed=81)
        node = StreamingPLSH(
            small_vectors.n_cols, params, capacity=3000, delta_fraction=0.2
        )
        node.insert_batch(small_vectors.slice_rows(0, 800))
        node.insert_batch(small_vectors.slice_rows(800, 1200))
        node.delete(np.arange(0, 50))
        node.insert_batch(small_vectors.slice_rows(1200, 1500))

        live = small_vectors.slice_rows(0, 1500)
        oracle = ExhaustiveSearch(live, params.radius)
        _, queries = small_queries
        deleted = set(range(50))
        for r in range(6):
            got = set(node.query(*queries.row(r)).indices.tolist())
            truth = set(oracle.query(*queries.row(r)).indices.tolist())
            truth -= deleted
            # no false positives, no deleted rows
            assert got <= truth
            assert not (got & deleted)

    def test_streaming_query_slowdown_is_bounded(self, small_vectors,
                                                 small_queries):
        """Sanity version of Section 6.3: answers on a (static+delta) node
        remain identical to fully-static answers, and the delta overhead is
        finite (no quantitative bound asserted at this scale)."""
        from repro.streaming.node import StreamingPLSH

        params = PLSHParams(k=8, m=8, radius=0.9, seed=82)
        node = StreamingPLSH(
            small_vectors.n_cols, params, capacity=3000, delta_fraction=0.5,
            auto_merge=False,
        )
        node.insert_batch(small_vectors.slice_rows(0, 1800))
        node.merge_now()
        node.insert_batch(small_vectors.slice_rows(1800, 2000))

        static = PLSHIndex(small_vectors.n_cols, params, hasher=node.hasher)
        static.build(small_vectors)
        _, queries = small_queries
        for r in range(5):
            a = node.query(*queries.row(r))
            b = static.engine.query_row(queries, r)
            np.testing.assert_array_equal(
                np.sort(a.indices), np.sort(b.indices)
            )


class TestClusterScenario:
    def test_wraparound_lifecycle(self, small_vectors, small_queries):
        """Fill a cluster past 100 % capacity twice; queries must always
        return only live (non-retired) ids and agree with an oracle over
        the live set."""
        from repro.cluster.cluster import PLSHCluster

        params = PLSHParams(k=8, m=8, radius=0.9, seed=83)
        cluster = PLSHCluster(
            n_nodes=4,
            node_capacity=300,
            dim=small_vectors.n_cols,
            params=params,
            insert_window=2,
        )
        for start in range(0, 2000, 250):
            cluster.insert(small_vectors.slice_rows(start, start + 250))
        assert cluster.n_retirements >= 1
        retired = set(
            int(g) for block in cluster.retired_ids for g in block
        )
        _, queries = small_queries
        for r in range(5):
            out = cluster.query(*queries.row(r))
            got = set(out.result.indices.tolist())
            assert not (got & retired)

    def test_communication_fraction_is_small(self, small_vectors,
                                              small_queries):
        """The paper's <1 % claim, at test scale: modeled network time must
        be a tiny fraction of measured compute time."""
        from repro.cluster.cluster import PLSHCluster
        from repro.cluster.stats import communication_fraction

        params = PLSHParams(k=8, m=8, radius=0.9, seed=84)
        cluster = PLSHCluster(
            n_nodes=4,
            node_capacity=600,
            dim=small_vectors.n_cols,
            params=params,
            insert_window=2,
        )
        cluster.insert(small_vectors)
        cluster.merge_all()
        _, queries = small_queries
        outs = cluster.query_batch(queries.slice_rows(0, 10))
        net = sum(o.network_seconds for o in outs)
        compute = sum(sum(o.node_seconds.values()) for o in outs)
        assert communication_fraction(net, compute) < 0.05
