"""The vectorized batch kernel must be bit-identical to the per-query loop.

The batch kernel (``QueryEngine.query_batch(mode="vectorized")``) reuses the
same float32 operands and float64 accumulation order as the loop, so the
equivalence is exact — indices AND distances — not approximate.  The
property test sweeps random corpora/queries (including rows that collide
with nothing), exclude masks and precomputed key matrices.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import PLSHIndex, PLSHParams
from repro.core.query import QueryEngine
from repro.sparse.csr import CSRMatrix


def make_engine(built_index, **kw):
    return QueryEngine(
        built_index.tables,
        built_index.data,
        built_index.hasher,
        built_index.params,
        **kw,
    )


def _random_corpus(rng, n_rows: int, n_cols: int, density: float) -> CSRMatrix:
    dense = (rng.random((n_rows, n_cols)) < density) * rng.standard_normal(
        (n_rows, n_cols)
    )
    # Ensure no all-zero corpus rows (zero rows cannot be unit vectors).
    for r in range(n_rows):
        if not dense[r].any():
            dense[r, int(rng.integers(n_cols))] = 1.0
    return CSRMatrix.from_dense(dense.astype(np.float32)).normalized()


def _assert_bit_identical(a_list, b_list):
    assert len(a_list) == len(b_list)
    for a, b in zip(a_list, b_list):
        np.testing.assert_array_equal(a.indices, b.indices)
        np.testing.assert_array_equal(a.distances, b.distances)


class TestVectorizedEquivalenceProperty:
    @settings(max_examples=15, deadline=None)
    @given(data=st.data())
    def test_bit_identical_across_random_corpora(self, data):
        seed = data.draw(st.integers(0, 2**16), label="seed")
        n_rows = data.draw(st.integers(20, 120), label="n_rows")
        n_cols = data.draw(st.integers(16, 64), label="n_cols")
        radius = data.draw(
            st.sampled_from([0.3, 0.9, 1.5]), label="radius"
        )
        rng = np.random.default_rng(seed)
        vectors = _random_corpus(rng, n_rows, n_cols, density=0.2)
        params = PLSHParams(k=4, m=4, radius=radius, seed=seed)
        index = PLSHIndex(n_cols, params).build(vectors)

        # Queries: a few corpus rows (guaranteed collisions) plus random
        # rows, some of which land in empty buckets (empty candidate sets).
        n_q = data.draw(st.integers(1, 12), label="n_q")
        queries = CSRMatrix.vstack(
            [
                vectors.gather_rows(rng.integers(0, n_rows, size=max(1, n_q // 2))),
                _random_corpus(rng, n_q, n_cols, density=0.1),
            ]
        )

        loop = index.query_batch(queries, mode="loop")
        vec = index.query_batch(queries, mode="vectorized")
        _assert_bit_identical(loop, vec)

        # Exclude mask: drop a random subset of the corpus.
        exclude = rng.random(n_rows) < 0.3
        _assert_bit_identical(
            index.query_batch(queries, mode="loop", exclude=exclude),
            index.query_batch(queries, mode="vectorized", exclude=exclude),
        )

        # Precomputed keys (the hash-once-share-everywhere path).
        keys = index.hasher.table_keys_batch(
            index.hasher.hash_functions(queries)
        )
        _assert_bit_identical(
            vec, index.query_batch(queries, mode="vectorized", keys=keys)
        )
        _assert_bit_identical(
            loop, index.query_batch(queries, mode="loop", keys=keys)
        )


class TestVectorizedOnFixture:
    def test_default_mode_is_vectorized_for_serial(self, built_index, small_queries):
        """workers == 1 must route through the batch kernel by default and
        still match the explicit loop exactly."""
        _, queries = small_queries
        _assert_bit_identical(
            built_index.query_batch(queries),
            built_index.query_batch(queries, mode="loop"),
        )

    def test_empty_batch(self, built_index):
        queries = CSRMatrix.empty(built_index.dim)
        assert built_index.query_batch(queries, mode="vectorized") == []

    def test_stats_match_loop(self, built_index, small_queries):
        _, queries = small_queries
        loop_eng = make_engine(built_index)
        vec_eng = make_engine(built_index)
        loop_eng.query_batch(queries, mode="loop")
        vec_eng.query_batch(queries, mode="vectorized")
        assert vec_eng.stats.n_queries == loop_eng.stats.n_queries
        assert vec_eng.stats.n_collisions == loop_eng.stats.n_collisions
        assert vec_eng.stats.n_unique == loop_eng.stats.n_unique
        assert vec_eng.stats.n_matches == loop_eng.stats.n_matches
        # The batch kernel reports the same Q1-Q4 stage names.
        for name in ("q1_hash", "q2_dedup", "q3_distance", "q4_filter"):
            assert name in vec_eng.stats.stage_times

    def test_ablation_engine_defaults_to_loop(self, built_index, small_queries):
        """An engine built with non-default strategies is an ablation rung:
        its batch default must keep running the configured per-query
        pipeline, not silently switch to the batch kernel."""
        _, queries = small_queries

        def boom(*a, **k):
            raise AssertionError("batch kernel used on an ablation engine")

        # workers=1 pins the serial path: the sharded path runs the kernel
        # on worker-side clones, which a monkeypatched bound method cannot
        # observe.
        ablation = make_engine(
            built_index, dedup="set", dots="naive", reuse_buffers=False
        )
        ablation._query_batch_vectorized = boom
        ablation.query_batch(queries.slice_rows(0, 2), workers=1)  # must not raise

        production = make_engine(built_index)
        production._query_batch_vectorized = boom
        with pytest.raises(AssertionError):
            production.query_batch(queries.slice_rows(0, 2), workers=1)
        # Explicit override still reaches the kernel on an ablation engine.
        ablation2 = make_engine(built_index, dedup="set")
        ablation2._query_batch_vectorized = boom
        with pytest.raises(AssertionError):
            ablation2.query_batch(
                queries.slice_rows(0, 2), mode="vectorized", workers=1
            )

    def test_vectorized_accepts_workers(self, built_index, small_queries):
        """``mode="vectorized", workers > 1`` is the production path now
        (the PR 1 kernel sharded over the parallel layer) and must stay
        bit-identical to the serial kernel."""
        _, queries = small_queries
        engine = make_engine(built_index)
        try:
            _assert_bit_identical(
                engine.query_batch(queries, mode="vectorized", workers=1),
                engine.query_batch(queries, mode="vectorized", workers=2),
            )
        finally:
            engine.close()

    def test_unknown_mode_raises(self, built_index, small_queries):
        _, queries = small_queries
        with pytest.raises(ValueError):
            built_index.query_batch(queries, mode="warp")

    def test_bad_keys_shape_raises(self, built_index, small_queries):
        _, queries = small_queries
        with pytest.raises(ValueError):
            built_index.query_batch(
                queries, keys=np.zeros((queries.n_rows, 3), dtype=np.uint32)
            )

    def test_radius_override(self, built_index, small_queries):
        _, queries = small_queries
        _assert_bit_identical(
            built_index.query_batch(queries, mode="loop", radius=0.5),
            built_index.query_batch(queries, mode="vectorized", radius=0.5),
        )
