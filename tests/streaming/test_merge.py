"""Merge tests: rebuild equivalence with a from-scratch static index."""

from __future__ import annotations

import numpy as np
import pytest

from repro import PLSHIndex, PLSHParams
from repro.core.hashing import AllPairsHasher
from repro.streaming.delta import DeltaTable
from repro.streaming.merge import merge_into_static


@pytest.fixture(scope="module")
def merged_setup(small_vectors):
    params = PLSHParams(k=8, m=6, seed=21)
    hasher = AllPairsHasher(params, small_vectors.n_cols)
    static = PLSHIndex(small_vectors.n_cols, params, hasher=hasher)
    static.build(small_vectors.slice_rows(0, 1200))
    delta = DeltaTable(small_vectors.n_cols, params, hasher)
    delta.insert_batch(small_vectors.slice_rows(1200, 1600))
    delta.insert_batch(small_vectors.slice_rows(1600, 2000))
    merged = merge_into_static(static, delta)
    reference = PLSHIndex(small_vectors.n_cols, params, hasher=hasher)
    reference.build(small_vectors)
    return merged, reference


def test_merged_tables_equal_full_rebuild(merged_setup):
    merged, reference = merged_setup
    np.testing.assert_array_equal(
        merged.tables.entries, reference.tables.entries
    )
    np.testing.assert_array_equal(
        merged.tables.offsets, reference.tables.offsets
    )


def test_merged_queries_equal_full_rebuild(merged_setup, small_queries):
    merged, reference = merged_setup
    _, queries = small_queries
    for r in range(8):
        a = merged.engine.query_row(queries, r)
        b = reference.engine.query_row(queries, r)
        np.testing.assert_array_equal(np.sort(a.indices), np.sort(b.indices))


def test_merge_does_not_rehash(merged_setup):
    """Merged index must carry cached u_values without a hashing stage."""
    merged, _ = merged_setup
    assert "hashing" not in merged.build_times
    assert "insertion" in merged.build_times


def test_merge_empty_delta_returns_static(small_vectors):
    params = PLSHParams(k=8, m=6, seed=22)
    hasher = AllPairsHasher(params, small_vectors.n_cols)
    static = PLSHIndex(small_vectors.n_cols, params, hasher=hasher)
    static.build(small_vectors.slice_rows(0, 100))
    delta = DeltaTable(small_vectors.n_cols, params, hasher)
    assert merge_into_static(static, delta) is static


def test_merge_unbuilt_static_raises(small_vectors):
    params = PLSHParams(k=8, m=6, seed=23)
    hasher = AllPairsHasher(params, small_vectors.n_cols)
    static = PLSHIndex(small_vectors.n_cols, params, hasher=hasher)
    delta = DeltaTable(small_vectors.n_cols, params, hasher)
    delta.insert_batch(small_vectors.slice_rows(0, 5))
    with pytest.raises(ValueError):
        merge_into_static(static, delta)


def test_merge_dim_mismatch_raises(small_vectors):
    params = PLSHParams(k=8, m=6, seed=24)
    hasher = AllPairsHasher(params, small_vectors.n_cols)
    static = PLSHIndex(small_vectors.n_cols, params, hasher=hasher)
    static.build(small_vectors.slice_rows(0, 10))
    other_hasher = AllPairsHasher(params, small_vectors.n_cols + 1)
    delta = DeltaTable(small_vectors.n_cols + 1, params, other_hasher)
    from repro.sparse.csr import CSRMatrix

    delta.insert_batch(
        CSRMatrix.from_rows([([0], [1.0])], small_vectors.n_cols + 1)
    )
    with pytest.raises(ValueError):
        merge_into_static(static, delta)
