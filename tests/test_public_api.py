"""Public API surface checks."""

from __future__ import annotations

import ast
import pathlib

import repro


def test_all_exports_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), f"repro.{name} missing"


def test_version_is_semver_like():
    parts = repro.__version__.split(".")
    assert len(parts) == 3
    assert all(p.isdigit() for p in parts)


def test_subpackage_alls_resolve():
    import repro.baselines
    import repro.bench
    import repro.cluster
    import repro.core
    import repro.parallel
    import repro.perfmodel
    import repro.sparse
    import repro.streaming
    import repro.text
    import repro.utils

    for module in (
        repro.baselines,
        repro.bench,
        repro.cluster,
        repro.core,
        repro.parallel,
        repro.perfmodel,
        repro.sparse,
        repro.streaming,
        repro.text,
        repro.utils,
    ):
        for name in module.__all__:
            assert hasattr(module, name), f"{module.__name__}.{name} missing"


def test_examples_parse_and_have_main():
    """Examples are documentation: they must at least be valid Python with
    a main() entry point (full runs happen outside the unit suite)."""
    examples = sorted(
        (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
    )
    assert len(examples) >= 3, "the deliverable requires >= 3 examples"
    for path in examples:
        tree = ast.parse(path.read_text(), filename=str(path))
        func_names = {
            node.name for node in ast.walk(tree)
            if isinstance(node, ast.FunctionDef)
        }
        assert "main" in func_names, f"{path.name} lacks main()"


def test_public_docstrings_exist():
    """Every public module and public class carries a docstring."""
    import inspect

    modules = [
        repro,
        repro.core,
        repro.parallel,
        repro.sparse,
        repro.streaming,
        repro.cluster,
        repro.perfmodel,
        repro.baselines,
    ]
    for module in modules:
        assert inspect.getdoc(module), f"{module.__name__} lacks a docstring"
        for name in module.__all__:
            obj = getattr(module, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                assert inspect.getdoc(obj), f"{module.__name__}.{name} undocumented"
