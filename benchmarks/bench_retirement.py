"""Retirement latency — O(1) partition drop vs rebuild-style retirement.

Before the partitioned static tier (PR 10), retiring aged-out rows from
the middle of a node's static structure meant rebuilding the hash
tables over the survivors — cost proportional to the *resident* corpus.
With time-ranged partitions, ``retire_before`` drops wholly-cold
partitions by unlinking them: no vector is read, no table is touched,
and only the ragged boundary is tombstoned.

This bench seals EPOCHS equal partitions on one node, retires them one
cutoff at a time (every drop timed), and compares the drop-latency
distribution against the honest baseline: building an index over the
survivors, which is what retirement used to cost.  Shape to check: p99
drop latency is orders of magnitude below one rebuild, and drop latency
does not grow with the number of resident rows.

Knobs: ``PLSH_BENCH_RETIRE_EPOCHS`` (partitions to seal and drop).
Artifact: ``BENCH_retirement.json`` (drop p50/p99, rebuild mean,
speedup) for EXPERIMENTS.md and CI diffing.
"""

from __future__ import annotations

import os

import numpy as np

from repro.bench.artifacts import record_artifact
from repro.bench.reporting import format_table, print_section
from repro.bench.runner import measure
from repro.streaming.node import StreamingPLSH

EPOCHS = int(os.environ.get("PLSH_BENCH_RETIRE_EPOCHS", "12"))
REBUILD_TRIALS = 3


def _sealed_node(vectors, params, rows_per_epoch):
    """One node with EPOCHS sealed partitions, one insert tick each, so
    ``retire_before(e + 1)`` drops exactly partition ``e``."""
    node = StreamingPLSH(
        vectors.n_cols, params, vectors.n_rows,
        delta_fraction=0.1, auto_merge=False,
    )
    for e in range(EPOCHS):
        node.insert_batch(
            vectors.slice_rows(e * rows_per_epoch, (e + 1) * rows_per_epoch)
        )
        node.merge_now()
        if e < EPOCHS - 1:  # the last epoch stays in the open newest
            node.roll_partition()
    return node


def test_retirement_drop_vs_rebuild(benchmark, twitter, scale):
    params = scale.params()
    vectors = twitter.vectors
    rows_per_epoch = vectors.n_rows // EPOCHS
    assert rows_per_epoch > 0, "corpus too small for the epoch count"

    node = _sealed_node(vectors, params, rows_per_epoch)
    try:
        assert node.n_partitions == EPOCHS
        total = node.n_total

        # The new path: one timed O(1) drop per epoch, oldest first.
        drop_times = []
        for e in range(EPOCHS):
            retired, secs = measure(lambda c=e + 1: node.retire_before(c))
            assert retired.size == rows_per_epoch
            drop_times.append(secs)
        assert node.n_live == 0
    finally:
        node.close()

    # The old path: retirement-by-rebuild — index the survivors from
    # scratch (what dropping the oldest epoch used to cost).
    survivors = vectors.slice_rows(rows_per_epoch, EPOCHS * rows_per_epoch)
    rebuild_times = []
    for _ in range(REBUILD_TRIALS):
        def rebuild():
            fresh = StreamingPLSH(
                vectors.n_cols, params, vectors.n_rows,
                delta_fraction=0.1, auto_merge=False,
            )
            fresh.insert_batch(survivors)
            fresh.merge_now()
            fresh.close()

        _, secs = measure(rebuild)
        rebuild_times.append(secs)

    drop = np.asarray(drop_times)
    drop_p50 = float(np.percentile(drop, 50))
    drop_p99 = float(np.percentile(drop, 99))
    rebuild_mean = float(np.mean(rebuild_times))
    speedup = rebuild_mean / max(drop_p99, 1e-9)

    print_section(
        "Retirement latency — partition drop vs rebuild",
        format_table(
            ["path", "p50 (ms)", "p99 (ms)", "scales with"],
            [
                ["partition drop", f"{drop_p50 * 1e3:.3f}",
                 f"{drop_p99 * 1e3:.3f}", "partitions dropped"],
                ["rebuild survivors", f"{rebuild_mean * 1e3:.1f}",
                 f"{max(rebuild_times) * 1e3:.1f}", "resident rows"],
            ],
        )
        + f"\np99 drop vs mean rebuild: {speedup:.0f}x\n",
    )

    record_artifact(
        "retirement",
        "drop_vs_rebuild",
        {
            "epochs": EPOCHS,
            "rows_per_epoch": rows_per_epoch,
            "resident_rows": total,
            "drop_p50_ms": drop_p50 * 1e3,
            "drop_p99_ms": drop_p99 * 1e3,
            "drop_ms": (drop * 1e3).tolist(),
            "rebuild_mean_ms": rebuild_mean * 1e3,
            "rebuild_ms": [t * 1e3 for t in rebuild_times],
            "p99_speedup": speedup,
        },
    )

    # The headline guarantee, asserted conservatively so tiny CI corpora
    # pass honestly: a whole-partition drop must beat rebuilding the
    # survivors by a wide margin.
    assert drop_p99 * 10 < rebuild_mean, (
        f"partition drop p99 {drop_p99 * 1e3:.3f} ms is not ≪ "
        f"rebuild {rebuild_mean * 1e3:.1f} ms"
    )

    benchmark.pedantic(
        lambda: _sealed_node(vectors, params, rows_per_epoch).close(),
        rounds=1,
        iterations=1,
    )
