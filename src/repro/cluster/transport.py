"""Framed TCP transport for the cluster protocol.

One frame = an 8-byte big-endian length prefix followed by a protocol
message body (:mod:`repro.cluster.protocol`).  :class:`Connection` wraps a
connected socket with send/receive of whole messages and counts real
bytes on the wire in a :class:`TransportStats`, so the simulated
:class:`~repro.cluster.network.NetworkModel` accounting can be compared
against measured traffic (EXPERIMENTS.md does exactly that).

``send_message``/``recv_message`` take an optional **deadline** (a
``time.monotonic()`` instant): every socket operation runs under the
remaining budget and a blown deadline raises :class:`TimeoutError`.  A
timed-out connection is *poisoned* — closed on the spot — because a
half-written request or half-read reply leaves the stream mid-frame, and
a late reply landing after the caller moved on would desynchronize every
subsequent exchange.  Callers reconnect instead (the client handle does
this automatically).  Without a deadline the old fully-blocking behavior
is preserved.

The transport is deliberately dumb: no multiplexing, no retries, one
request in flight per connection.  Retry, backoff, and circuit breaking
live a layer up in :mod:`repro.cluster.client`; the coordinator gets its
concurrency by holding one connection per node and broadcasting from a
thread pool, which matches the paper's one-coordinator/N-nodes topology.
"""

from __future__ import annotations

import socket
import struct
import time
from dataclasses import dataclass

import numpy as np

from repro.cluster import protocol

__all__ = [
    "Connection",
    "ShmConnection",
    "TransportStats",
    "FRAME_HEADER_BYTES",
    "MAX_FRAME_BYTES",
]

_LEN = struct.Struct(">Q")

#: bytes of framing overhead per message (the length prefix).
FRAME_HEADER_BYTES = _LEN.size

#: sanity ceiling on one frame (a corrupt length prefix should fail fast,
#: not attempt a 2**63-byte allocation).
MAX_FRAME_BYTES = 1 << 33


@dataclass
class TransportStats:
    """Real bytes/messages moved over one connection.

    ``bytes_*`` count TCP socket bytes (frames, headers included);
    ``shm_bytes_*`` count array payloads that traveled through a
    shared-memory ring instead (:class:`ShmConnection`).  Total traffic
    for comm-share accounting is the sum of both — shm bytes are real
    moved bytes, just not socket bytes.
    """

    n_sent: int = 0
    n_received: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    shm_bytes_sent: int = 0
    shm_bytes_received: int = 0

    def reset(self) -> None:
        self.n_sent = 0
        self.n_received = 0
        self.bytes_sent = 0
        self.bytes_received = 0
        self.shm_bytes_sent = 0
        self.shm_bytes_received = 0

    def add(self, other: "TransportStats") -> None:
        """Fold another stats record into this one (reconnect folding)."""
        self.n_sent += other.n_sent
        self.n_received += other.n_received
        self.bytes_sent += other.bytes_sent
        self.bytes_received += other.bytes_received
        self.shm_bytes_sent += other.shm_bytes_sent
        self.shm_bytes_received += other.shm_bytes_received


class Connection:
    """A connected socket speaking length-prefixed protocol messages."""

    def __init__(self, sock: socket.socket) -> None:
        try:
            # Request/response over small frames: Nagle hurts, disable it.
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass  # non-TCP socket (e.g. a Unix socketpair in tests)
        self._sock = sock
        self.stats = TransportStats()
        self._closed = False

    @classmethod
    def connect(
        cls, host: str, port: int, *, timeout: float | None = None
    ) -> "Connection":
        sock = socket.create_connection((host, port), timeout=timeout)
        sock.settimeout(None)
        return cls(sock)

    @property
    def closed(self) -> bool:
        return self._closed

    def _arm_timeout(self, deadline: float | None, what: str) -> None:
        """Point the socket at the remaining deadline budget (or block)."""
        if deadline is None:
            self._sock.settimeout(None)
            return
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            self.close()
            raise TimeoutError(f"deadline expired before {what}")
        self._sock.settimeout(remaining)

    def send_message(
        self,
        code: int,
        meta: dict | None = None,
        arrays=(),
        *,
        deadline: float | None = None,
    ) -> int:
        """Encode + frame + send one message; returns bytes on the wire.

        ``deadline`` is a ``time.monotonic()`` instant; blowing it raises
        :class:`TimeoutError` and closes the connection (a half-written
        frame cannot be resumed).
        """
        body = protocol.encode_message(code, meta, arrays)
        n = FRAME_HEADER_BYTES + len(body)
        self._arm_timeout(deadline, "send")
        try:
            self._sock.sendall(_LEN.pack(len(body)) + body)
        except TimeoutError:
            self.close()
            raise TimeoutError(f"send timed out mid-frame ({n} bytes)") from None
        except OSError as exc:
            self._closed = True
            raise ConnectionError(f"send failed: {exc}") from exc
        self.stats.n_sent += 1
        self.stats.bytes_sent += n
        return n

    def recv_message(
        self, *, deadline: float | None = None, copy: bool = True
    ) -> tuple[int, dict, list[np.ndarray]]:
        """Receive one whole frame and decode it.

        Raises :class:`ConnectionError` on EOF or a torn frame — the
        caller decides whether that is a clean shutdown (EOF between
        frames) or a node failure — and :class:`TimeoutError` when
        ``deadline`` expires first (the connection is closed: a late
        reply would desynchronize the frame stream).

        ``copy`` exists for interface parity with :class:`ShmConnection`
        (where ``copy=False`` yields zero-copy ring views); a TCP frame's
        arrays are always fresh decode copies.
        """
        header = self._recv_exact(FRAME_HEADER_BYTES, eof_ok=True, deadline=deadline)
        if header is None:
            self._closed = True
            raise ConnectionError("connection closed by peer")
        (length,) = _LEN.unpack(header)
        if length > MAX_FRAME_BYTES:
            self._closed = True
            raise ConnectionError(f"frame length {length} exceeds sanity cap")
        body = self._recv_exact(int(length), eof_ok=False, deadline=deadline)
        assert body is not None
        self.stats.n_received += 1
        self.stats.bytes_received += FRAME_HEADER_BYTES + len(body)
        return protocol.decode_message(body)

    def _recv_exact(
        self, n: int, *, eof_ok: bool, deadline: float | None = None
    ) -> bytes | None:
        buf = bytearray(n)
        view = memoryview(buf)
        got = 0
        while got < n:
            self._arm_timeout(deadline, "recv")
            try:
                chunk = self._sock.recv_into(view[got:], n - got)
            except TimeoutError:
                self.close()
                raise TimeoutError(
                    f"recv timed out mid-frame ({got}/{n} bytes)"
                ) from None
            except OSError as exc:
                self._closed = True
                raise ConnectionError(f"recv failed: {exc}") from exc
            if chunk == 0:
                if eof_ok and got == 0:
                    return None
                self._closed = True
                raise ConnectionError(
                    f"connection closed mid-frame ({got}/{n} bytes)"
                )
            got += chunk
        return bytes(buf)

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            try:
                self._sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
        self._sock.close()

    def __enter__(self) -> "Connection":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class ShmConnection:
    """A connection whose array payloads ride shared-memory rings.

    Wraps any object speaking the ``Connection`` interface (a plain
    :class:`Connection` or a fault-injecting wrapper) plus one
    :class:`~repro.cluster.shm.ShmRing` per direction, negotiated at
    handshake (``OP_HELLO``).  Sends write each array into ``out_ring``
    once and put only ``[dtype, shape, offset]`` descriptors on the TCP
    frame (meta key ``_shm_arrays``); receives map the peer's
    descriptors back out of ``in_ring`` — zero-copy views with
    ``copy=False``, private copies by default.  A payload too large for
    the ring degrades to inline TCP arrays for that message only.

    Control traffic (codes, meta, errors) stays on TCP, so deadlines,
    poisoning and reconnect semantics are exactly the inner
    connection's.  Stats: the shared :class:`TransportStats` counts the
    control frame under ``bytes_*`` and the ring payload under
    ``shm_bytes_*``.
    """

    def __init__(self, inner, *, out_ring=None, in_ring=None) -> None:
        self._inner = inner
        self.out_ring = out_ring
        self.in_ring = in_ring

    @property
    def stats(self) -> TransportStats:
        return self._inner.stats

    @property
    def closed(self) -> bool:
        return self._inner.closed

    def send_message(
        self,
        code: int,
        meta: dict | None = None,
        arrays=(),
        *,
        deadline: float | None = None,
    ) -> int:
        arrays = list(arrays)
        if arrays and self.out_ring is not None and not self.out_ring.closed:
            descs = self.out_ring.write_arrays(arrays)
            if descs is not None:
                shm_bytes = sum(
                    np.ascontiguousarray(a).nbytes for a in arrays
                )
                shm_meta = dict(meta or {})
                shm_meta["_shm_arrays"] = descs
                n = self._inner.send_message(
                    code, shm_meta, (), deadline=deadline
                )
                self.stats.shm_bytes_sent += shm_bytes
                return n + shm_bytes
        return self._inner.send_message(code, meta, arrays, deadline=deadline)

    def recv_message(
        self, *, deadline: float | None = None, copy: bool = True
    ) -> tuple[int, dict, list[np.ndarray]]:
        code, meta, arrays = self._inner.recv_message(deadline=deadline)
        descs = meta.pop("_shm_arrays", None) if meta else None
        if descs is not None:
            if self.in_ring is None or self.in_ring.closed:
                raise ConnectionError(
                    "peer sent shm descriptors but no inbound ring is attached"
                )
            arrays = self.in_ring.read_arrays(descs, copy=copy)
            self.stats.shm_bytes_received += sum(a.nbytes for a in arrays)
        return code, meta, arrays

    def close(self) -> None:
        """Close the control connection.  Ring lifecycle (detach/unlink)
        belongs to whoever created/attached them, not the connection."""
        self._inner.close()

    def __enter__(self) -> "ShmConnection":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
