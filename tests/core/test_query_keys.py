"""Precomputed-key queries: the hash-once-use-twice path of the node."""

from __future__ import annotations

import numpy as np

from repro.sparse.csr import CSRMatrix


def test_precomputed_keys_match_internal_hashing(built_index, small_queries):
    _, queries = small_queries
    hasher = built_index.hasher
    for r in range(6):
        cols, vals = queries.row(r)
        q = CSRMatrix(
            np.asarray([0, cols.size], dtype=np.int64),
            cols,
            vals,
            built_index.dim,
            check=False,
        )
        u = hasher.hash_functions(q)[0]
        keys = hasher.table_keys_for_query(u)
        a = built_index.query(cols.astype(np.int64), vals)
        b = built_index.query(cols.astype(np.int64), vals, keys=keys)
        np.testing.assert_array_equal(np.sort(a.indices), np.sort(b.indices))


def test_node_query_uses_shared_keys(small_vectors, small_queries):
    """Node answers must be invariant to where data sits (static/delta),
    which exercises the shared-keys plumbing end to end."""
    from repro.params import PLSHParams
    from repro.streaming.node import StreamingPLSH

    _, queries = small_queries
    params = PLSHParams(k=8, m=6, radius=0.9, seed=111)
    split = StreamingPLSH(
        small_vectors.n_cols, params, capacity=4000, delta_fraction=0.9,
        auto_merge=False,
    )
    split.insert_batch(small_vectors.slice_rows(0, 1000))
    split.merge_now()
    split.insert_batch(small_vectors.slice_rows(1000, 2000))

    merged = StreamingPLSH(
        small_vectors.n_cols, params, capacity=4000, delta_fraction=0.9,
        auto_merge=False, hasher=split.hasher,
    )
    merged.insert_batch(small_vectors.slice_rows(0, 2000))
    merged.merge_now()

    for r in range(5):
        a = split.query(*queries.row(r))
        b = merged.query(*queries.row(r))
        np.testing.assert_array_equal(np.sort(a.indices), np.sort(b.indices))
