"""Index and streaming-node save/load round-trip tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro import PLSHIndex, PLSHParams
from repro.persistence import load_index, load_node, save_index, save_node
from repro.streaming.node import StreamingPLSH


@pytest.fixture(scope="module")
def saved_path(built_index, tmp_path_factory):
    path = tmp_path_factory.mktemp("idx") / "index.npz"
    save_index(built_index, path)
    return path


def test_roundtrip_query_equivalence(saved_path, built_index, small_queries):
    _, queries = small_queries
    loaded = load_index(saved_path)
    for r in range(8):
        a = built_index.engine.query_row(queries, r)
        b = loaded.engine.query_row(queries, r)
        np.testing.assert_array_equal(np.sort(a.indices), np.sort(b.indices))
        np.testing.assert_allclose(
            np.sort(a.distances), np.sort(b.distances), rtol=1e-6
        )


def test_roundtrip_preserves_structures(saved_path, built_index):
    loaded = load_index(saved_path)
    np.testing.assert_array_equal(loaded.u_values, built_index.u_values)
    np.testing.assert_array_equal(
        loaded.tables.entries, built_index.tables.entries
    )
    np.testing.assert_array_equal(
        loaded.tables.offsets, built_index.tables.offsets
    )
    np.testing.assert_array_equal(
        loaded.hasher.bank.planes, built_index.hasher.bank.planes
    )
    assert loaded.params == built_index.params
    assert loaded.n_items == built_index.n_items


def test_loaded_index_accepts_new_queries(saved_path, small_vectors):
    loaded = load_index(saved_path)
    cols, vals = small_vectors.row(99)
    res = loaded.query(cols.astype(np.int64), vals)
    assert 99 in res.indices.tolist()


def test_save_unbuilt_raises(tmp_path, small_params):
    index = PLSHIndex(100, small_params)
    with pytest.raises(ValueError):
        save_index(index, tmp_path / "x.npz")


def test_version_check(saved_path, tmp_path):
    import json

    with np.load(saved_path) as archive:
        payload = {k: archive[k] for k in archive.files}
    meta = json.loads(bytes(payload["meta"]).decode("utf-8"))
    meta["format_version"] = 999
    payload["meta"] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    )
    bad = tmp_path / "bad.npz"
    np.savez(bad, **payload)
    with pytest.raises(ValueError):
        load_index(bad)


# -- streaming node round-trips ---------------------------------------------


def _parity(a, b, queries, n=12, workers=None):
    """Assert two nodes answer identically (exact ids and distances)."""
    ra = a.query_batch(queries.slice_rows(0, n), workers=workers)
    rb = b.query_batch(queries.slice_rows(0, n), workers=workers)
    for x, y in zip(ra, rb):
        np.testing.assert_array_equal(x.indices, y.indices)
        np.testing.assert_array_equal(x.distances, y.distances)


@pytest.fixture()
def streaming_node(small_vectors, small_params):
    """A node mid-life: merged static + live delta + tombstones."""
    node = StreamingPLSH(
        small_vectors.n_cols, small_params, capacity=600,
        delta_fraction=0.25, auto_merge=False, overlap_merges=True,
    )
    node.insert_batch(small_vectors.slice_rows(0, 300))
    node.merge_now()
    node.insert_batch(small_vectors.slice_rows(300, 380))
    node.delete(np.asarray([5, 17, 310, 350]))
    yield node
    node.close()


def test_node_roundtrip_query_parity(streaming_node, small_vectors, tmp_path):
    path = tmp_path / "node.npz"
    save_node(streaming_node, path)
    loaded = load_node(path)
    assert loaded.n_static == streaming_node.n_static
    assert loaded.n_delta == streaming_node.n_delta
    assert loaded.n_merges == streaming_node.n_merges
    assert loaded.deletions.n_deleted == streaming_node.deletions.n_deleted
    assert not loaded.merge_in_flight
    _parity(streaming_node, loaded, small_vectors)
    # The per-query path agrees too.
    cols, vals = small_vectors.row(3)
    a = streaming_node.query(cols.astype(np.int64), vals)
    b = loaded.query(cols.astype(np.int64), vals)
    np.testing.assert_array_equal(a.indices, b.indices)
    np.testing.assert_array_equal(a.distances, b.distances)


def test_node_roundtrip_preserves_structures(streaming_node, tmp_path):
    path = tmp_path / "node.npz"
    save_node(streaming_node, path)
    loaded = load_node(path)
    np.testing.assert_array_equal(
        loaded.static.u_values, streaming_node.static.u_values
    )
    np.testing.assert_array_equal(
        loaded.static.tables.entries, streaming_node.static.tables.entries
    )
    np.testing.assert_array_equal(
        loaded.delta.u_values(), streaming_node.delta.u_values()
    )
    assert loaded.delta._bins == streaming_node.delta._bins
    assert loaded.capacity == streaming_node.capacity
    assert loaded.delta_fraction == streaming_node.delta_fraction
    assert loaded.overlap_merges == streaming_node.overlap_merges
    assert loaded.auto_merge == streaming_node.auto_merge


def test_node_loaded_keeps_streaming(streaming_node, small_vectors, tmp_path):
    """A restored node is live: inserts, merges and deletes keep working
    and stay in lockstep with the original."""
    path = tmp_path / "node.npz"
    save_node(streaming_node, path)
    loaded = load_node(path)
    for node in (streaming_node, loaded):
        ids = node.insert_batch(small_vectors.slice_rows(380, 420))
        assert ids[0] == 380
        node.delete(np.asarray([395]))
        node.merge_now()
    assert loaded.n_static == streaming_node.n_static == 420
    _parity(streaming_node, loaded, small_vectors)


def test_node_save_refuses_pending_merge(streaming_node, tmp_path):
    assert streaming_node.begin_merge()
    with pytest.raises(ValueError, match="merge in flight"):
        save_node(streaming_node, tmp_path / "x.npz", on_pending="refuse")
    # The refusal must not have perturbed the node.
    assert streaming_node.merge_in_flight
    streaming_node.commit_merge()


def test_node_save_drains_pending_merge(
    streaming_node, small_vectors, tmp_path
):
    n_static_before = streaming_node.n_static
    n_delta = streaming_node.n_delta
    assert streaming_node.begin_merge()
    path = tmp_path / "node.npz"
    save_node(streaming_node, path)  # default: drain
    assert not streaming_node.merge_in_flight
    assert streaming_node.n_static == n_static_before + n_delta
    loaded = load_node(path)
    assert loaded.n_static == streaming_node.n_static
    assert loaded.n_delta == 0
    assert not loaded.merge_in_flight
    _parity(streaming_node, loaded, small_vectors)


def test_node_save_bad_pending_mode(streaming_node, tmp_path):
    with pytest.raises(ValueError, match="on_pending"):
        save_node(streaming_node, tmp_path / "x.npz", on_pending="ignore")


def test_empty_node_roundtrip(small_params, small_vectors, tmp_path):
    node = StreamingPLSH(
        small_vectors.n_cols, small_params, capacity=100, auto_merge=False
    )
    path = tmp_path / "empty.npz"
    save_node(node, path)
    loaded = load_node(path)
    assert loaded.n_total == 0
    ids = loaded.insert_batch(small_vectors.slice_rows(0, 10))
    assert ids.tolist() == list(range(10))
    cols, vals = small_vectors.row(2)
    assert 2 in loaded.query(cols.astype(np.int64), vals).indices.tolist()


def test_node_version_check(streaming_node, tmp_path):
    import json

    path = tmp_path / "node.npz"
    save_node(streaming_node, path)
    with np.load(path) as archive:
        payload = {k: archive[k] for k in archive.files}
    meta = json.loads(bytes(payload["node_meta"]).decode("utf-8"))
    meta["format_version"] = 999
    payload["node_meta"] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    )
    bad = tmp_path / "bad.npz"
    np.savez(bad, **payload)
    with pytest.raises(ValueError, match="unsupported node format"):
        load_node(bad)


def test_none_seed_roundtrip(tmp_path, small_vectors, small_queries):
    """Hyperplanes are stored, so seed=None indexes reload faithfully."""
    _, queries = small_queries
    params = PLSHParams(k=8, m=6, radius=0.9, seed=None)
    index = PLSHIndex(small_vectors.n_cols, params).build(small_vectors)
    path = tmp_path / "noseed.npz"
    save_index(index, path)
    loaded = load_index(path)
    for r in range(3):
        a = index.engine.query_row(queries, r)
        b = loaded.engine.query_row(queries, r)
        np.testing.assert_array_equal(np.sort(a.indices), np.sort(b.indices))


# -- cluster node round trips ------------------------------------------------


@pytest.fixture()
def cluster_node(small_vectors):
    from repro.cluster.node import ClusterNode
    from repro.core.hashing import AllPairsHasher

    params = PLSHParams(k=8, m=6, radius=0.9, seed=93)
    hasher = AllPairsHasher(params, small_vectors.n_cols)
    node = ClusterNode(7, small_vectors.n_cols, params, 1000, hasher)
    # Global ids deliberately offset and non-dense so a local-id leak is
    # unmistakable.
    node.insert_batch(small_vectors.slice_rows(0, 300), np.arange(300) * 3 + 10_000)
    node.plsh.merge_now()
    node.insert_batch(
        small_vectors.slice_rows(300, 350), np.arange(300, 350) * 3 + 10_000
    )
    node.delete_global(np.asarray([10_030, 10_033]))
    return node


def test_cluster_node_roundtrip_keeps_global_ids(
    cluster_node, small_vectors, tmp_path
):
    """Regression: save_node/load_node dropped the global-id map, so a
    restored node answered queries in LOCAL row numbers.  The cluster
    round trip must keep every result in global-id space."""
    from repro.persistence import load_cluster_node, save_cluster_node

    path = tmp_path / "cnode.npz"
    save_cluster_node(cluster_node, path)
    loaded = load_cluster_node(path)
    assert loaded.node_id == cluster_node.node_id
    assert loaded.n_items == cluster_node.n_items
    for r in (5, 42, 310):
        cols, vals = small_vectors.row(r)
        before = cluster_node.query(cols.astype(np.int64), vals)
        after = loaded.query(cols.astype(np.int64), vals)
        np.testing.assert_array_equal(before.indices, after.indices)
        np.testing.assert_array_equal(before.distances, after.distances)
        # The ids really are global (the map offsets every id >= 10_000);
        # a local-id regression would return small row numbers here.
        assert all(g >= 10_000 for g in after.indices.tolist())
    # Tombstones survived too.
    cols, vals = small_vectors.row(30)
    assert 10_030 not in loaded.query(cols.astype(np.int64), vals).indices


def test_cluster_node_roundtrip_streams_on(cluster_node, small_vectors, tmp_path):
    from repro.persistence import load_cluster_node, save_cluster_node

    path = tmp_path / "cnode.npz"
    save_cluster_node(cluster_node, path)
    loaded = load_cluster_node(path)
    loaded.insert_batch(
        small_vectors.slice_rows(350, 400), np.arange(350, 400) * 3 + 10_000
    )
    cols, vals = small_vectors.row(360)
    res = loaded.query(cols.astype(np.int64), vals)
    assert (360 * 3 + 10_000) in res.indices.tolist()


def test_load_cluster_node_rejects_plain_node_archive(
    streaming_node, tmp_path
):
    from repro.persistence import load_cluster_node

    path = tmp_path / "plain.npz"
    save_node(streaming_node, path)
    with pytest.raises(ValueError, match="cluster"):
        load_cluster_node(path)


def test_load_node_still_reads_cluster_archives(cluster_node, tmp_path):
    """A cluster archive is a superset: load_node restores the inner
    streaming node (in local-id space) from the same file."""
    from repro.persistence import save_cluster_node

    path = tmp_path / "cnode.npz"
    save_cluster_node(cluster_node, path)
    inner = load_node(path)
    assert inner.n_total == cluster_node.n_items
