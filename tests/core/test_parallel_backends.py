"""Parallel batch querying and parallel table construction.

The contract of the :mod:`repro.parallel` refactor: sharding the vectorized
kernel over workers — any backend — is **bit-identical** to ``workers=1``,
the persistent pools stay warm and correct across batches, and worker
counters/stage-times merge back into the parent's ``QueryStats``.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import PLSHIndex, PLSHParams
from repro.core.query import QueryEngine
from repro.core.tables import StaticTableSet
from repro.parallel import fork_available
from repro.sparse.csr import CSRMatrix

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="platform without fork"
)

PARALLEL_BACKENDS = [
    "thread",
    pytest.param("fork_pool", marks=needs_fork),
]


def _assert_bit_identical(a_list, b_list):
    assert len(a_list) == len(b_list)
    for a, b in zip(a_list, b_list):
        np.testing.assert_array_equal(a.indices, b.indices)
        np.testing.assert_array_equal(a.distances, b.distances)


def _make_engine(built_index) -> QueryEngine:
    return QueryEngine(
        built_index.tables,
        built_index.data,
        built_index.hasher,
        built_index.params,
    )


def _random_corpus(rng, n_rows: int, n_cols: int, density: float) -> CSRMatrix:
    dense = (rng.random((n_rows, n_cols)) < density) * rng.standard_normal(
        (n_rows, n_cols)
    )
    for r in range(n_rows):
        if not dense[r].any():
            dense[r, int(rng.integers(n_cols))] = 1.0
    return CSRMatrix.from_dense(dense.astype(np.float32)).normalized()


class TestShardedVectorizedParity:
    @pytest.mark.parametrize("backend", PARALLEL_BACKENDS)
    def test_matches_serial_bit_identical(
        self, built_index, small_queries, backend
    ):
        _, queries = small_queries
        with _make_engine(built_index) as engine:
            serial = engine.query_batch(queries, workers=1)
            sharded = engine.query_batch(queries, workers=2, backend=backend)
            _assert_bit_identical(serial, sharded)

    @pytest.mark.parametrize("backend", PARALLEL_BACKENDS)
    def test_exclude_mask_parity(self, built_index, small_queries, backend):
        _, queries = small_queries
        rng = np.random.default_rng(11)
        exclude = rng.random(built_index.n_items) < 0.4
        with _make_engine(built_index) as engine:
            _assert_bit_identical(
                engine.query_batch(queries, workers=1, exclude=exclude),
                engine.query_batch(
                    queries, workers=2, backend=backend, exclude=exclude
                ),
            )

    @pytest.mark.parametrize("backend", PARALLEL_BACKENDS)
    def test_precomputed_keys_parity(self, built_index, small_queries, backend):
        _, queries = small_queries
        keys = built_index.hasher.table_keys_batch(
            built_index.hasher.hash_functions(queries)
        )
        with _make_engine(built_index) as engine:
            _assert_bit_identical(
                engine.query_batch(queries, workers=1, keys=keys),
                engine.query_batch(
                    queries, workers=2, backend=backend, keys=keys
                ),
            )

    @pytest.mark.parametrize("backend", PARALLEL_BACKENDS)
    def test_empty_shards_when_batch_smaller_than_workers(
        self, built_index, small_queries, backend
    ):
        """B < workers leaves some shards empty; results must still be
        complete, ordered, and bit-identical."""
        _, queries = small_queries
        tiny = queries.slice_rows(0, 3)
        with _make_engine(built_index) as engine:
            _assert_bit_identical(
                engine.query_batch(tiny, workers=1),
                engine.query_batch(tiny, workers=8, backend=backend),
            )

    @pytest.mark.parametrize("backend", PARALLEL_BACKENDS)
    def test_loop_mode_parity(self, built_index, small_queries, backend):
        _, queries = small_queries
        with _make_engine(built_index) as engine:
            _assert_bit_identical(
                engine.query_batch(queries, workers=1, mode="loop"),
                engine.query_batch(
                    queries, workers=2, backend=backend, mode="loop"
                ),
            )

    @settings(max_examples=6, deadline=None)
    @given(data=st.data())
    @needs_fork
    def test_random_corpora_parity(self, data):
        """Property: sharded fork-pool answers are bit-identical to serial
        vectorized over random corpora, query mixes and worker counts."""
        seed = data.draw(st.integers(0, 2**16), label="seed")
        n_rows = data.draw(st.integers(20, 100), label="n_rows")
        n_cols = data.draw(st.integers(16, 48), label="n_cols")
        workers = data.draw(st.integers(2, 5), label="workers")
        rng = np.random.default_rng(seed)
        vectors = _random_corpus(rng, n_rows, n_cols, density=0.2)
        params = PLSHParams(k=4, m=4, radius=0.9, seed=seed)
        with PLSHIndex(n_cols, params).build(vectors) as index:
            n_q = data.draw(st.integers(1, 10), label="n_q")
            queries = CSRMatrix.vstack(
                [
                    vectors.gather_rows(
                        rng.integers(0, n_rows, size=max(1, n_q // 2))
                    ),
                    _random_corpus(rng, n_q, n_cols, density=0.1),
                ]
            )
            _assert_bit_identical(
                index.query_batch(queries, workers=1),
                index.query_batch(
                    queries, workers=workers, backend="fork_pool"
                ),
            )


class TestPoolLifecycle:
    @pytest.mark.parametrize("backend", PARALLEL_BACKENDS)
    def test_pool_survives_three_batches(
        self, built_index, small_queries, backend
    ):
        """The pool forks/spins up once and must answer correctly across
        >= 3 consecutive batches (persistent, warm, re-entrant)."""
        _, queries = small_queries
        with _make_engine(built_index) as engine:
            serial = engine.query_batch(queries, workers=1)
            first_ex = engine.executor(2, backend)
            for _ in range(3):
                _assert_bit_identical(
                    serial,
                    engine.query_batch(queries, workers=2, backend=backend),
                )
            # Same executor object the whole time — no silent re-creation.
            assert engine.executor(2, backend) is first_ex

    def test_engine_close_is_idempotent(self, built_index, small_queries):
        _, queries = small_queries
        engine = _make_engine(built_index)
        engine.query_batch(queries, workers=2, backend="thread")
        assert engine._executors
        engine.close()
        assert not engine._executors
        engine.close()
        # A closed engine can still serve serial batches...
        assert len(engine.query_batch(queries)) == queries.n_rows
        # ...and transparently rebuilds a pool if asked to parallelize.
        out = engine.query_batch(queries, workers=2, backend="thread")
        assert len(out) == queries.n_rows
        engine.close()

    def test_index_context_manager_closes_engine(
        self, small_vectors, small_params, small_queries
    ):
        _, queries = small_queries
        with PLSHIndex(small_vectors.n_cols, small_params).build(
            small_vectors
        ) as index:
            index.query_batch(queries, workers=2, backend="thread")
            assert index.engine._executors
        assert not index.engine._executors


class TestStatsMerging:
    @pytest.mark.parametrize("backend", PARALLEL_BACKENDS)
    def test_counters_match_serial(self, built_index, small_queries, backend):
        _, queries = small_queries
        with _make_engine(built_index) as serial_eng, _make_engine(
            built_index
        ) as par_eng:
            serial_eng.query_batch(queries, workers=1)
            par_eng.query_batch(queries, workers=2, backend=backend)
            assert par_eng.stats.n_queries == serial_eng.stats.n_queries
            assert par_eng.stats.n_collisions == serial_eng.stats.n_collisions
            assert par_eng.stats.n_unique == serial_eng.stats.n_unique
            assert par_eng.stats.n_matches == serial_eng.stats.n_matches

    @pytest.mark.parametrize("backend", PARALLEL_BACKENDS)
    def test_worker_stage_times_merged(
        self, built_index, small_queries, backend
    ):
        """Figure 5 breakdowns under parallel backends must see real
        per-stage seconds, not zeros: workers return their StageTimes dict
        and the parent merges it."""
        _, queries = small_queries
        with _make_engine(built_index) as engine:
            engine.query_batch(queries, workers=2, backend=backend)
            times = engine.stats.stage_times
            for name in ("q1_hash", "q2_dedup", "q3_distance", "q4_filter"):
                assert name in times, f"missing stage {name}"
            assert times.total > 0.0


class TestBackendValidation:
    def test_unknown_backend_raises(self, built_index, small_queries):
        _, queries = small_queries
        with pytest.raises(ValueError):
            built_index.query_batch(queries, workers=2, backend="mpi")

    def test_single_worker_ignores_backend(self, built_index, small_queries):
        _, queries = small_queries
        with _make_engine(built_index) as engine:
            out = engine.query_batch(
                queries.slice_rows(0, 3), workers=1, backend="fork_pool"
            )
            assert len(out) == 3
            assert not engine._executors  # no pool was created

    def test_legacy_process_alias_still_works(
        self, built_index, small_queries
    ):
        _, queries = small_queries
        with _make_engine(built_index) as engine:
            _assert_bit_identical(
                engine.query_batch(queries, workers=1),
                engine.query_batch(queries, workers=2, backend="process"),
            )


class TestParallelBuild:
    def test_workers_produce_identical_tables(self, built_index):
        u = built_index.u_values
        params = built_index.params
        serial = StaticTableSet.build(u, params, workers=1)
        parallel = StaticTableSet.build(u, params, workers=4)
        np.testing.assert_array_equal(serial.entries, parallel.entries)
        np.testing.assert_array_equal(serial.offsets, parallel.offsets)

    def test_index_build_with_workers(self, small_vectors, small_params):
        a = PLSHIndex(small_vectors.n_cols, small_params).build(small_vectors)
        b = PLSHIndex(small_vectors.n_cols, small_params).build(
            small_vectors, workers=3
        )
        np.testing.assert_array_equal(a.tables.entries, b.tables.entries)


class TestNearest:
    def test_nearest_orders_and_limits(self, built_index, small_vectors):
        cols, vals = small_vectors.row(7)
        res = built_index.nearest(cols.astype(np.int64), vals, 3, radius=1.2)
        assert len(res) <= 3
        assert (np.diff(res.distances) >= 0).all()
        if len(res):
            assert res.indices[0] == 7  # self at distance 0
