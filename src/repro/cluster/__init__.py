"""Multi-node PLSH (Sections 4 and 5.3) — simulated, real, *and* fault-tolerant.

The paper runs 100 nodes over Infiniband/MPI.  This package provides the
same topology at two levels of realism behind one node-handle protocol:

**In-process simulation** (the default :class:`PLSHCluster` constructor):
each node is a real :class:`repro.streaming.StreamingPLSH` instance in
this process, and a :class:`NetworkModel` charges every message for bytes
and latency so the paper's "communication is <1 % of runtime" claim can
be checked analytically.

**Real multi-process deployment**: :func:`spawn_local_cluster` forks one
:class:`NodeServer` process per node; each owns its :class:`ClusterNode`
and serves a length-prefixed binary protocol over TCP
(:mod:`repro.cluster.protocol` / :mod:`repro.cluster.transport` — raw
CSR and result buffers on the hot path, never pickle).  The coordinator
drives :class:`RemoteNodeHandle` stubs through the same broadcast/merge
code as the simulation, so answers are bit-identical between the two
backends on the same op sequence.

Either way, the :class:`Coordinator` broadcasts queries **concurrently**
(every node's request in flight at once on a :mod:`repro.parallel`
thread pool) and concatenates partial answers.

**Fault tolerance** (PR 5) makes the real deployment survivable, in four
cooperating layers:

* *Replication* — ``replication=R`` partitions the nodes into
  :class:`ReplicaGroup` shards of R copies each; inserts fan to every
  replica, broadcasts take one live replica per shard and fail over to
  siblings.  Replicas are bit-identical by construction, so with R≥2 a
  single node crash leaves answers exactly equal to the healthy
  cluster's.
* *RPC hardening* — every request runs under a deadline; idempotent ops
  (query / stats / ping) retry with exponential backoff + jitter and
  reconnect through torn frames; a hung node costs one deadline, ever,
  because the expiry trips that handle's circuit breaker on the spot.
* *Health* — :class:`NodeHealth` tracks UP/SUSPECT/DOWN per handle; the
  broadcast path only uses breaker-CLOSED handles, and an optional
  :class:`HealthMonitor` heartbeat probes tripped nodes back into
  rotation (without one, failover still works; recovery doesn't).
* *Honest degradation* — when a data-holding shard has no usable replica,
  the broadcast still completes: :class:`BroadcastOutcome.degraded` flips
  True and ``missing_shards`` names exactly which slice of the corpus
  went unsearched.  Never an exception, never a silently-truncated
  answer.

:mod:`repro.cluster.faults` closes the loop with deterministic fault
injection (seeded drops, torn replies, delays), and
:class:`SpawnedLocalCluster` carries the matching process-level knobs
(``kill_node``, ``pause_node``/``resume_node``) that the chaos suite
drives.

Partitioning follows the paper's chosen scheme: every node holds *all* L
tables over a shard of the data (scheme 2 of Section 5.3); data is
distributed in arrival order to a rolling window of M insert shards; when
all shards are full, the window wraps and the oldest M shards are retired
wholesale (Figure 1).
"""

from repro.cluster.client import (
    RemoteNodeError,
    RemoteNodeHandle,
    SpawnedLocalCluster,
    spawn_local_cluster,
)
from repro.cluster.cluster import PLSHCluster
from repro.cluster.coordinator import BroadcastOutcome, Coordinator
from repro.cluster.faults import FaultPlan, FaultyConnection, InjectedFault
from repro.cluster.health import (
    BreakerState,
    CircuitOpenError,
    HealthMonitor,
    HealthState,
    NodeHealth,
    backoff_delays,
)
from repro.cluster.network import NetworkModel, NetworkStats
from repro.cluster.node import ClusterNode
from repro.cluster.replication import (
    ReplicaGroup,
    ShardUnavailableError,
    group_handles,
)
from repro.cluster.server import NodeServer
from repro.cluster.shm import ShmRing, shm_available
from repro.cluster.stats import load_imbalance
from repro.cluster.transport import Connection, ShmConnection, TransportStats

__all__ = [
    "BreakerState",
    "BroadcastOutcome",
    "CircuitOpenError",
    "ClusterNode",
    "Connection",
    "Coordinator",
    "FaultPlan",
    "FaultyConnection",
    "HealthMonitor",
    "HealthState",
    "InjectedFault",
    "NetworkModel",
    "NetworkStats",
    "NodeHealth",
    "NodeServer",
    "PLSHCluster",
    "RemoteNodeError",
    "RemoteNodeHandle",
    "ReplicaGroup",
    "ShardUnavailableError",
    "ShmConnection",
    "ShmRing",
    "SpawnedLocalCluster",
    "TransportStats",
    "backoff_delays",
    "group_handles",
    "load_imbalance",
    "shm_available",
    "spawn_local_cluster",
]
