"""The cache-blocked pipelined batch kernel (``mode="pipelined"``).

The vectorized kernel (:meth:`QueryEngine._query_batch_vectorized`) is the
bit-identity oracle; this module is the production fast path for the regime
where that kernel goes memory-bound — large shards (~100k docs) whose
bucket/candidate gathers spill out of cache.  A query block flows through
the L tables as a *pipeline* (the tables act as a hasher network: each
stage gathers one small group of tables' buckets while those rows are
cache-resident and fuses the dedup sort keys on the spot), then through the
dot-product stages plane-block by plane-block, so every intermediate stays
sized to the cache instead of to the batch.

What makes it faster — all of it measured on the 100k-doc rung, none of it
changing a single output bit:

* **Compact sort keys.**  Q2 dedup fuses ``query * n_items + id`` into
  *int32* whenever ``block * n_items`` fits (int64 otherwise) and sorts
  with the default introsort — duplicate keys are bitwise identical, so
  stability buys nothing, and the int32 quicksort runs ~6x faster than the
  int64 stable sort the oracle uses.
* **Division-free segment decode.**  Per-query offsets come from
  ``np.searchsorted`` against the ``query * n_items`` boundaries and ids
  from one fused subtract, replacing the int64 floor-divide pass.
* **Compact gather indexes.**  Every flat gather index (``take`` arrays
  over table entries and CSR data) is built in int32 when the indexed
  space fits, halving index-stream traffic through the memory-bound
  gathers.
* **Fused float64 cast.**  Q3 multiplies the float32 operands with
  ``dtype=np.float64`` so the widening happens inside the ufunc's buffered
  loop — bit-identical to multiplying explicit float64 copies (both run
  the d*d loop on the same values) without materializing them.
* **Flat plane lookups.**  The dense query-plane gather uses one int32
  flat index instead of 2-D advanced indexing with an int64 row vector.

When :mod:`numba` is importable (optional — never required), the Q2
bucket-gather/key-fuse stage runs as an ``@njit`` loop instead of chunked
numpy, removing the remaining index-array temporaries; set
``PLSH_PIPELINED_NUMBA=0`` to force the pure-numpy stages.  Every
deployment of this reproduction runs the numpy path in CI; the numba path
asserts the same bit-identity contract through the same tests wherever the
dependency is present.
"""

from __future__ import annotations

import os

import numpy as np

from repro.sparse.csr import CSRMatrix
from repro.core.tables import StaticTableSet

try:  # pragma: no cover - exercised only where numba is installed
    import numba

    HAS_NUMBA = True
except ImportError:  # pragma: no cover - the default in this repo's images
    numba = None
    HAS_NUMBA = False

__all__ = [
    "HAS_NUMBA",
    "PIPELINED_QUERY_BLOCK",
    "PIPELINED_TABLE_CHUNK",
    "PipelinedKernel",
]

#: Queries per kernel block.  Matches the vectorized kernel's block so the
#: segmented temporaries stay cache-sized; the int32 key fusion additionally
#: requires ``block * n_items`` to fit in int32, which holds through
#: multi-million-document shards at this width.
PIPELINED_QUERY_BLOCK = 256

#: Tables per Q2 pipeline stage.  Each stage gathers one group of tables'
#: buckets and fuses the dedup keys while the gathered ids are still
#: cache-warm; 32 tables balances that locality against per-stage numpy
#: dispatch (measured flat between 16 and 64 at 100k docs, rising below 8).
PIPELINED_TABLE_CHUNK = 32

#: Dense query-plane budget for the pipelined dot stage.  Smaller than the
#: oracle's 8 MB: with the compact int32 flat indexes the gather stream is
#: lighter, so a tighter, more cache-resident plane wins (measured ~12%
#: faster Q3 at 4 MB vs 8 MB on the 100k-doc rung).
PIPELINED_DENSE_BLOCK_BYTES = 4 << 20

_INT32_MAX = int(np.iinfo(np.int32).max)


def _use_numba() -> bool:
    return HAS_NUMBA and os.environ.get("PLSH_PIPELINED_NUMBA", "1") != "0"


def _ranges_to_indices_compact(
    starts: np.ndarray, lengths: np.ndarray, dtype: type
) -> np.ndarray:
    """:func:`repro.sparse.csr.ranges_to_indices` with a caller-chosen index
    dtype.  int32 halves the traffic of building *and* consuming the take
    array; the caller guarantees every produced index fits ``dtype``."""
    ends = np.cumsum(lengths, dtype=np.int64)
    total = int(ends[-1]) if ends.size else 0
    if total == 0:
        return np.empty(0, dtype=dtype)
    bounds = ends - lengths
    nz = lengths > 0
    firsts = bounds[nz]
    sv = np.asarray(starts[nz], dtype=np.int64)
    lv = np.asarray(lengths[nz], dtype=np.int64)
    jump = np.empty(firsts.size, dtype=np.int64)
    jump[0] = sv[0]
    jump[1:] = sv[1:] - (sv[:-1] + lv[:-1] - 1)
    take = np.ones(total, dtype=dtype)
    take[firsts] = jump  # exact: every jump value fits dtype by contract
    np.cumsum(take, out=take)
    return take


if HAS_NUMBA:  # pragma: no cover - exercised only where numba is installed

    @numba.njit(cache=True)
    def _fused_keys_numba(entries, offsets, keys_block, n_items):  # type: ignore
        """One compiled pass over the block's buckets: count, then emit the
        fused ``query * n_items + id`` keys in (query, table) order.  The
        downstream sort erases the emission order, so this is output-
        equivalent to the chunked numpy stages."""
        n_q, n_tables = keys_block.shape
        total = 0
        for b in range(n_q):
            for t in range(n_tables):
                k = keys_block[b, t]
                total += offsets[t, k + 1] - offsets[t, k]
        out = np.empty(total, dtype=np.int64)
        pos = 0
        for b in range(n_q):
            base = b * n_items
            for t in range(n_tables):
                k = keys_block[b, t]
                for j in range(offsets[t, k], offsets[t, k + 1]):
                    out[pos] = base + entries[t, j]
                    pos += 1
        return out


class PipelinedKernel:
    """Steps Q2-Q3 of one engine's pipelined batch path.

    Owns the per-corpus caches the compact-index tricks need (int32 CSR
    offsets/lengths where they fit) plus the reusable dense query plane.
    One instance per engine clone — never shared across threads.
    """

    def __init__(
        self,
        tables: StaticTableSet,
        data: CSRMatrix,
        *,
        table_chunk: int = PIPELINED_TABLE_CHUNK,
        dense_block_bytes: int = PIPELINED_DENSE_BLOCK_BYTES,
    ) -> None:
        self.tables = tables
        self.data = data
        self.table_chunk = max(1, int(table_chunk))
        self.dense_block_bytes = int(dense_block_bytes)
        nnz = int(data.indptr[-1])
        # Compact CSR row offsets: int32 copies of indptr (and per-row
        # lengths) when every element index fits, so the Q3 gathers read
        # half the index bytes.  Values are exact either way.
        self._csr_compact = nnz <= _INT32_MAX
        if self._csr_compact:
            self._indptr32 = data.indptr.astype(np.int32)
            self._rowlen32 = np.diff(data.indptr).astype(np.int32)
            # Interleaved (column, value-bits) pairs: Q3's two random
            # gathers (indices[take], data[take]) become ONE 8-byte gather
            # — same bytes moved, half the latency-bound accesses.  The
            # int32 halves are recovered as strided views, never copied.
            pair = np.empty((max(nnz, 1), 2), dtype=np.int32)
            pair[: nnz, 0] = data.indices
            pair[: nnz, 1] = data.data.view(np.int32)
            self._pair64 = pair.reshape(-1).view(np.int64)
        else:  # pragma: no cover - requires > 2^31 stored elements
            self._indptr32 = None
            self._rowlen32 = None
            self._pair64 = None
        # Flat-entry gather indexes fit int32 while L * N does.
        self._entries_compact = (
            tables.n_tables * tables.n_items <= _INT32_MAX
        )
        self._plane: np.ndarray | None = None

    # -- Q2: bucket gather + segmented dedup --------------------------------

    def block_candidates(
        self, keys_block: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, int]:
        """Unique sorted candidates of one query block.

        Returns ``(cand, offsets, n_collisions)`` exactly like
        ``collisions_batch`` + ``unique_segments`` would: ``cand`` is int64,
        per-query segments ascending, ``offsets`` int64 ``(B + 1,)``.
        """
        tables = self.tables
        n_q = int(keys_block.shape[0])
        n_items = tables.n_items
        fused, n_collisions = self._gather_fused(keys_block)
        if fused.size == 0:
            return (
                np.empty(0, dtype=np.int64),
                np.zeros(n_q + 1, dtype=np.int64),
                n_collisions,
            )
        # Equal fused keys are bitwise-identical, so the unstable default
        # introsort yields the same sorted array as the oracle's stable
        # sort — just much faster, especially on int32 keys.
        fused.sort()
        keep = np.empty(fused.size, dtype=bool)
        keep[0] = True
        np.not_equal(fused[1:], fused[:-1], out=keep[1:])
        fused = fused[keep]
        # Division-free decode: per-query boundaries by binary search, ids
        # by subtracting each segment's base.
        boundaries = np.arange(n_q + 1, dtype=fused.dtype) * n_items
        offsets = np.searchsorted(fused, boundaries).astype(np.int64)
        cand = np.subtract(
            fused,
            np.repeat(boundaries[:-1], np.diff(offsets)),
            dtype=np.int64,
        )
        return cand, offsets, n_collisions

    def _gather_fused(
        self, keys_block: np.ndarray
    ) -> tuple[np.ndarray, int]:
        """The hasher-network front half: gather every bucket of the block
        and fuse the ``query * n_items + id`` dedup keys, one small group of
        tables at a time."""
        tables = self.tables
        n_q = int(keys_block.shape[0])
        n_items = tables.n_items
        fits32 = n_q * n_items <= _INT32_MAX
        key_dtype = np.int32 if fits32 else np.int64
        if _use_numba():  # pragma: no cover - optional dependency
            fused = _fused_keys_numba(
                tables.entries, tables.offsets, keys_block, n_items
            )
            return fused, int(fused.size)
        q_base = np.arange(n_q, dtype=key_dtype) * key_dtype(n_items)
        offsets_flat = tables.offsets.ravel()
        entries_flat = tables.entries.ravel()
        take_dtype = np.int32 if self._entries_compact else np.int64
        parts: list[np.ndarray] = []
        n_collisions = 0
        chunk = self.table_chunk
        for t0 in range(0, tables.n_tables, chunk):
            t1 = min(t0 + chunk, tables.n_tables)
            idx = (
                tables._offset_row_base[t0:t1][None, :]
                + keys_block[:, t0:t1]
            )
            starts = offsets_flat[idx]
            idx += 1
            lengths = offsets_flat[idx] - starts  # (B, C) int32
            flat_starts = (
                tables._entry_row_base[t0:t1][None, :] + starts
            ).ravel()
            take = _ranges_to_indices_compact(
                flat_starts, lengths.ravel(), take_dtype
            )
            if take.size == 0:
                continue
            vals = entries_flat[take]
            # Fuse while the gathered ids are still cache-hot: one repeat
            # of the per-(query, table) labels, one add, all in key_dtype.
            labels = np.repeat(
                np.repeat(q_base, t1 - t0), lengths.ravel()
            )
            np.add(labels, vals, out=labels)
            parts.append(labels)
            n_collisions += int(vals.size)
        if not parts:
            return np.empty(0, dtype=key_dtype), 0
        fused = parts[0] if len(parts) == 1 else np.concatenate(parts)
        return fused, n_collisions

    # -- Q3: segmented candidate dots ---------------------------------------

    def block_dots(
        self,
        row_ids: np.ndarray,
        seg_offsets: np.ndarray,
        queries: CSRMatrix,
    ) -> np.ndarray:
        """Segmented ``<candidate, query>`` dots for one query block.

        Output-identical to :func:`repro.sparse.ops.row_dots_dense_batch`:
        the same float32 operands multiplied in float64 and accumulated in
        CSR element order by the same segmented reduce.
        """
        csr = self.data
        row_ids = np.asarray(row_ids, dtype=np.int64)
        seg_offsets = np.asarray(seg_offsets, dtype=np.int64)
        n_queries = seg_offsets.size - 1
        out = np.zeros(row_ids.size, dtype=np.float32)
        if row_ids.size == 0 or n_queries == 0:
            return out
        block = max(1, int(self.dense_block_bytes // (4 * max(csr.n_cols, 1))))
        rows = min(block, n_queries)
        if self._plane is None or self._plane.shape[0] < rows:
            self._plane = np.zeros((rows, csr.n_cols), dtype=np.float32)
        plane = self._plane
        flat_plane = plane.ravel()
        # Flat plane indexes stay in int32 while block * n_cols fits.
        flat32 = block * csr.n_cols <= _INT32_MAX
        n_cols32 = np.int32(csr.n_cols)
        take_dtype = np.int32 if self._csr_compact else np.int64
        for b0 in range(0, n_queries, block):
            b1 = min(b0 + block, n_queries)
            qs, qe = int(queries.indptr[b0]), int(queries.indptr[b1])
            q_rows = np.repeat(
                np.arange(b1 - b0), np.diff(queries.indptr[b0 : b1 + 1])
            )
            q_cols = queries.indices[qs:qe]
            plane[q_rows, q_cols] = queries.data[qs:qe]
            s, e = int(seg_offsets[b0]), int(seg_offsets[b1])
            rids = row_ids[s:e]
            if rids.size:
                if self._csr_compact:
                    starts = self._indptr32[rids]
                    lengths = self._rowlen32[rids]
                else:  # pragma: no cover - requires > 2^31 stored elements
                    starts = csr.indptr[rids]
                    lengths = csr.indptr[rids + 1] - starts
                total = int(lengths.sum(dtype=np.int64))
                if total:
                    # reduceat bounds must be intp; everything else compact.
                    bounds = np.cumsum(lengths, dtype=np.int64)
                    bounds -= lengths
                    take = _ranges_to_indices_compact(
                        starts, lengths, take_dtype
                    )
                    cand_query = np.repeat(
                        np.arange(b1 - b0, dtype=np.int32),
                        np.diff(seg_offsets[b0 : b1 + 1]),
                    )
                    if self._pair64 is not None:
                        gathered_pairs = self._pair64[take].view(
                            np.int32
                        ).reshape(-1, 2)
                        cols_t = gathered_pairs[:, 0]
                        data_t = gathered_pairs[:, 1].view(np.float32)
                    else:  # pragma: no cover - > 2^31 stored elements
                        cols_t = csr.indices[take]
                        data_t = csr.data[take]
                    if flat32:
                        # Premultiply the plane-row base per *candidate*
                        # (hundreds of thousands) instead of per element
                        # (millions), then expand once.
                        flat_idx = np.repeat(cand_query * n_cols32, lengths)
                        np.add(flat_idx, cols_t, out=flat_idx)
                        gathered = flat_plane[flat_idx]
                    else:  # pragma: no cover - vocab * block over int32
                        gathered = plane[np.repeat(cand_query, lengths), cols_t]
                    prods = np.empty(total + 1, dtype=np.float64)
                    # dtype=float64 selects the double-precision multiply
                    # loop with buffered casts of both float32 operands —
                    # bit-identical to multiplying explicit .astype(f64)
                    # copies, minus the full-size temporary.
                    np.multiply(
                        data_t,
                        gathered,
                        dtype=np.float64,
                        out=prods[:-1],
                    )
                    prods[-1] = 0.0
                    sums = np.add.reduceat(prods, bounds)
                    empty_rows = lengths == 0
                    if empty_rows.any():
                        sums[empty_rows] = 0.0
                    out[s:e] = sums.astype(np.float32)
            plane[q_rows, q_cols] = 0.0
        return out
