"""Timer / StageTimes accounting tests."""

from __future__ import annotations

import time

from repro.utils.timing import StageTimes, Timer


def test_timer_measures_elapsed():
    with Timer() as t:
        time.sleep(0.01)
    assert t.elapsed >= 0.009


def test_timer_accumulates_across_uses():
    t = Timer()
    with t:
        time.sleep(0.005)
    with t:
        time.sleep(0.005)
    assert t.elapsed >= 0.009


def test_stage_times_accumulate():
    st = StageTimes()
    with st.stage("a"):
        time.sleep(0.005)
    with st.stage("a"):
        time.sleep(0.005)
    with st.stage("b"):
        pass
    assert st["a"] >= 0.009
    assert "b" in st
    assert st.total >= st["a"]


def test_stage_times_add_and_reset():
    st = StageTimes()
    st.add("x", 1.5)
    assert st["x"] == 1.5
    st.reset()
    assert st.total == 0.0
    assert "x" not in st


def test_stage_times_records_on_exception():
    st = StageTimes()
    try:
        with st.stage("err"):
            time.sleep(0.003)
            raise RuntimeError("boom")
    except RuntimeError:
        pass
    assert st["err"] >= 0.002


def test_as_dict_is_a_copy():
    st = StageTimes()
    st.add("x", 1.0)
    d = st.as_dict()
    d["x"] = 99.0
    assert st["x"] == 1.0
