#!/usr/bin/env python
"""Quickstart: build a PLSH index over a tweet-like corpus and query it.

Walks the full pipeline of the paper's single-node static case
(Sections 3 & 5): synthesize a corpus, encode it as IDF-weighted unit
vectors, choose parameters, build the static index, run R-near-neighbor
queries and sanity-check recall against an exhaustive scan.

Batch queries go through ``index.query_batch(queries)``, which by default
runs the *vectorized batch kernel*: Steps Q1-Q4 execute over the whole
query block in a constant number of numpy calls, so per-query dispatch
overhead amortizes away.  Pass ``mode="loop"`` to run the per-query
pipeline instead (the ablation baseline).  Vectorized wins whenever
individual queries are cheap relative to numpy-call overhead — i.e.
tweet-scale corpora and batches of more than a handful of queries; this
script prints the speedup on its own workload.

Multicore (the paper's Figure 8) composes with the kernel through the
``repro.parallel`` execution layer: ``index.query_batch(queries,
workers=W)`` shards the batch into per-worker sub-blocks and runs the
kernel in a **persistent fork pool** — fork()ed once per engine, hash
tables shared copy-on-write, kept warm across batches — with results
bit-identical to ``workers=1``.  On platforms without ``fork`` (Windows)
the layer silently falls back to a thread pool.  Pools hold OS resources:
release them with ``index.close()`` or use the index as a context manager
(``with PLSHIndex(...).build(...) as index: ...``); indexes queried only
serially hold no pool and need no cleanup.  Setting ``PLSH_WORKERS=N`` in
the environment makes ``N`` the default for every batch call.

Streaming (Section 6) lives one layer up in ``StreamingPLSH``: inserts
land in a delta table and are folded into the static structure by
periodic merges.  With ``overlap_merges=True`` those merges are
**non-blocking** — ``begin_merge`` freezes the delta and builds the
merged tables on a background thread while queries keep serving
``static + frozen + fresh`` (answers bit-identical to the blocking
path), and a short ``commit_merge`` swap lands the result; no query ever
absorbs the rebuild.  See ``examples/streaming_firehose.py`` for the
full lifecycle and ``save_node``/``load_node`` in ``repro.persistence``
for restartability.

Distributed serving (Sections 4 & 5.3) lives in ``repro.cluster``:
``spawn_local_cluster(n, ...)`` forks real node-server processes and
broadcasts queries over a binary TCP protocol, answering bit-identically
to the in-process simulation.  The deployment is fault-tolerant:
``replication=2`` places each shard on two nodes so any single crash
leaves answers *exactly* unchanged (the coordinator fails over to the
sibling replica); every RPC runs under a deadline with retry/backoff for
idempotent ops, so a hung node costs one deadline and trips a circuit
breaker instead of stalling broadcasts; ``heartbeat_interval=...``
starts a health monitor whose probes bring recovered nodes back into
rotation.  When a shard really has no live replica, broadcasts still
complete — ``outcome.degraded`` flips True and ``missing_shards`` names
what went unsearched.  See ``examples/distributed_search.py`` for the
full tour, including a kill/failover demo, and
``save_cluster``/``load_cluster`` for whole-cluster restartability.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro import PLSHIndex, PLSHParams, SyntheticCorpus
from repro.baselines.exhaustive import ExhaustiveSearch

N_DOCS = 50_000
N_QUERIES = 20
SEED = 7


def main() -> None:
    print(f"generating {N_DOCS:,} tweet-like documents ...")
    corpus = SyntheticCorpus.generate(N_DOCS, seed=SEED)
    vectors = corpus.vectors()
    print(
        f"  corpus: {len(corpus):,} docs, vocab {corpus.vocab_size:,}, "
        f"mean {corpus.mean_tokens():.1f} tokens/doc"
    )

    # Paper-shaped parameters, scaled down: k=16 bits/table and m=16
    # functions (L = 120 tables) are plenty for 50k documents.
    params = PLSHParams(k=16, m=16, radius=0.9, delta=0.1, seed=SEED)
    print(f"building PLSH index (k={params.k}, m={params.m}, L={params.n_tables}) ...")
    start = time.perf_counter()
    index = PLSHIndex(corpus.vocab_size, params).build(vectors)
    build_s = time.perf_counter() - start
    print(
        f"  built in {build_s:.2f}s "
        f"(hashing {index.build_times['hashing']:.2f}s, "
        f"insertion {index.build_times['insertion']:.2f}s); "
        f"tables use {index.nbytes / 1e6:.0f} MB"
    )

    query_ids, queries = corpus.query_vectors(N_QUERIES, seed=SEED + 1)
    index.query_batch(queries)  # untimed warmup: fault in tables/buffers
    start = time.perf_counter()
    results = index.query_batch(queries)  # vectorized batch kernel (default)
    query_s = time.perf_counter() - start
    print(
        f"ran {N_QUERIES} queries in {query_s * 1e3:.1f} ms "
        f"({query_s / N_QUERIES * 1e3:.2f} ms/query, vectorized batch kernel)"
    )

    # The per-query loop is kept as an ablation rung (mode="loop"); at
    # tweet scale the batch kernel amortizes numpy dispatch across the
    # whole block.
    start = time.perf_counter()
    index.query_batch(queries, mode="loop")
    loop_s = time.perf_counter() - start
    print(
        f"  per-query loop takes {loop_s * 1e3:.1f} ms "
        f"-> vectorized speedup {loop_s / query_s:.1f}x"
    )

    # Multicore (Figure 8): shard the kernel over the persistent fork
    # pool.  Worth showing only where a second core exists — on one vCPU
    # the row would measure pure sharding overhead.
    n_cpu = os.cpu_count() or 1
    if n_cpu >= 2:
        workers = min(4, n_cpu)
        index.query_batch(queries, workers=workers)  # cold call forks the pool
        start = time.perf_counter()
        par_results = index.query_batch(queries, workers=workers)  # warm pool
        par_s = time.perf_counter() - start
        identical = all(
            np.array_equal(a.indices, b.indices)
            for a, b in zip(results, par_results)
        )
        print(
            f"  {workers}-worker fork pool (warm): {par_s * 1e3:.1f} ms "
            f"-> {query_s / par_s:.1f}x over the serial kernel "
            f"(bit-identical: {identical})"
        )
    index.close()  # release the worker pools (or use the index as a context manager)

    # Show one query's neighbors.
    qid = int(query_ids[0])
    top = results[0].top(5)
    print(f"\nnearest neighbors of doc {qid} (within R={params.radius}):")
    for idx, dist in zip(top.indices.tolist(), top.distances.tolist()):
        marker = "  (self)" if idx == qid else ""
        print(f"  doc {idx:>7}  angular distance {dist:.3f}{marker}")

    # Recall against the exact answer (the paper measures 92 % at its scale).
    exact = ExhaustiveSearch(vectors, params.radius)
    found = total = 0
    for r in range(N_QUERIES):
        truth = set(exact.query(*queries.row(r)).indices.tolist())
        got = set(results[r].indices.tolist())
        found += len(truth & got)
        total += len(truth)
    print(
        f"\nrecall vs exhaustive search: {found}/{total} "
        f"= {found / max(total, 1):.2%}"
    )
    stats = index.engine.stats
    print(
        f"per query: {stats.mean_collisions():.0f} collisions -> "
        f"{stats.mean_unique():.0f} unique candidates -> "
        f"{stats.mean_matches():.1f} matches"
    )


if __name__ == "__main__":
    main()
