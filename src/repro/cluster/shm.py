"""Shared-memory payload segments for the same-host cluster transport.

The paper's cluster moves query batches over Infiniband with RDMA-class
cost; a localhost reproduction that serializes every CSR buffer onto a
TCP socket pays two full copies (user → kernel → user) plus framing per
hot-path array.  When coordinator and node share a host, those payloads
can instead live in ``multiprocessing.shared_memory`` segments: the
sender memcpys each array into a per-connection ring segment once, the
TCP frame carries only tiny descriptors (dtype, shape, offset), and the
receiver maps the arrays **zero-copy** as views over the segment.

One :class:`ShmRing` is one direction of one connection.  The protocol
is strict request/response (one message in flight per connection — see
:mod:`repro.cluster.transport`), so a message's arrays stay valid until
the *next* message is written; no head/tail pointers are needed and each
message simply packs from offset 0.  Payloads that do not fit fall back
to inline TCP arrays per-message, so ring size is a knob, not a limit.

Ownership: the **client** creates both rings of a connection and is the
only side that ever unlinks them (``close(unlink=True)``).  The server
merely attaches — so a SIGKILLed server process can never leak a
``/dev/shm`` entry, and the attach side never registers with the
``resource_tracker`` (which on Python < 3.13 wrongly adopts attached
segments and would unlink them when the *server* exits).

Ring names carry the ``plsh-ring-`` prefix so tests (and operators) can
audit ``/dev/shm`` for leaks.
"""

from __future__ import annotations

import os
import secrets
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from repro.cluster import protocol

__all__ = [
    "DEFAULT_RING_BYTES",
    "SHM_NAME_PREFIX",
    "ShmRing",
    "leaked_segments",
    "shm_available",
]

#: /dev/shm name prefix for every ring this module creates.
SHM_NAME_PREFIX = "plsh-ring-"

#: default ring capacity per direction.  Sized so a full insert block
#: (20k docs of ~15 terms: indptr + int32 indices + float32 data ≈ 2.6 MB)
#: travels through the ring; bigger payloads fall back to inline TCP.
DEFAULT_RING_BYTES = 8 << 20

#: array start alignment inside a ring (cache-line).
_ALIGN = 64


def shm_available(min_bytes: int = 4096) -> bool:
    """Can this host back a shared-memory ring right now?

    False when the environment knob ``PLSH_SHM=0`` disables the
    transport, or when creating a probe segment fails (no /dev/shm,
    no permissions, tmpfs full).
    """
    if os.environ.get("PLSH_SHM", "").strip() == "0":
        return False
    try:
        probe = shared_memory.SharedMemory(create=True, size=min_bytes)
    except (OSError, ValueError):
        return False
    probe.close()
    probe.unlink()
    return True


def leaked_segments() -> list[str]:
    """Names of ``plsh-ring-*`` entries currently present in /dev/shm
    (leak auditing for tests; empty when /dev/shm is absent)."""
    try:
        return sorted(
            name for name in os.listdir("/dev/shm")
            if name.startswith(SHM_NAME_PREFIX)
        )
    except OSError:
        return []


class ShmRing:
    """One direction of a same-host connection's array payload channel."""

    def __init__(self, shm: shared_memory.SharedMemory, *, owner: bool) -> None:
        self._shm = shm
        #: True on the creating (unlinking) side — always the client.
        self.owner = owner
        self._closed = False

    # -- lifecycle ---------------------------------------------------------

    @classmethod
    def create(cls, size: int = DEFAULT_RING_BYTES) -> "ShmRing":
        """Create a fresh ring (client side).  The caller must eventually
        ``close(unlink=True)`` it."""
        if size <= 0:
            raise ValueError(f"ring size must be positive, got {size}")
        for _ in range(8):
            name = SHM_NAME_PREFIX + secrets.token_hex(8)
            try:
                shm = shared_memory.SharedMemory(name=name, create=True, size=size)
            except FileExistsError:  # astronomically unlikely; retry
                continue
            return cls(shm, owner=True)
        raise RuntimeError("could not allocate a uniquely named shm ring")

    @classmethod
    def attach(cls, name: str) -> "ShmRing":
        """Attach to a client-created ring (server side).  Never unlinks."""
        try:
            shm = shared_memory.SharedMemory(name=name, track=False)
        except TypeError:
            # Python < 3.13 registers *attached* segments with the resource
            # tracker, which would unlink the client's ring when this server
            # process exits.  Sending an unregister after the fact is wrong
            # too: forked servers share the parent's tracker process, so it
            # would cancel the *creator's* registration and the client's
            # eventual unlink would KeyError inside the tracker.  Suppress
            # the registration at the source instead.
            orig = resource_tracker.register
            resource_tracker.register = lambda *a, **k: None
            try:
                shm = shared_memory.SharedMemory(name=name)
            finally:
                resource_tracker.register = orig
        return cls(shm, owner=False)

    @property
    def name(self) -> str:
        return self._shm.name

    @property
    def size(self) -> int:
        return self._shm.size

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self, *, unlink: bool = False) -> None:
        """Detach (and optionally unlink) the segment.  Idempotent.  A
        detach with live array views outstanding is deferred to process
        exit rather than raised (the mapping stays valid for them)."""
        if self._closed:
            return
        self._closed = True
        if unlink and self.owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:
                pass
        try:
            self._shm.close()
        except BufferError:
            pass  # exported views still alive; the OS reclaims at exit

    def __enter__(self) -> "ShmRing":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close(unlink=self.owner)

    # -- array payload I/O -------------------------------------------------

    def write_arrays(self, arrays) -> list[list] | None:
        """Pack ``arrays`` into the ring from offset 0.

        Returns JSON-able descriptors ``[dtype_code, shape, offset]`` (the
        dtype codes of :mod:`repro.cluster.protocol`), or ``None`` when
        the payload does not fit — the caller then sends inline over TCP.
        Valid until the next ``write_arrays`` on this ring (strict
        request/response makes that safe).
        """
        if self._closed:
            raise ValueError("ring is closed")
        pos = 0
        planned: list[tuple[int, np.ndarray]] = []
        descs: list[list] = []
        for arr in arrays:
            arr = np.ascontiguousarray(arr)
            try:
                code = protocol._DTYPE_CODES[arr.dtype]
            except KeyError:
                raise TypeError(
                    f"dtype {arr.dtype} is not on the wire format"
                ) from None
            pos = -(-pos // _ALIGN) * _ALIGN
            if pos + arr.nbytes > self.size:
                return None
            planned.append((pos, arr))
            descs.append([code, list(arr.shape), pos])
            pos += arr.nbytes
        for offset, arr in planned:
            dst = np.ndarray(
                arr.shape, dtype=arr.dtype, buffer=self._shm.buf, offset=offset
            )
            np.copyto(dst, arr, casting="no")
        return descs

    def read_arrays(self, descs, *, copy: bool = True) -> list[np.ndarray]:
        """Materialize the arrays a peer's descriptors point at.

        ``copy=False`` returns zero-copy views over the segment — valid
        until the peer's next message; callers that retain a buffer past
        the current request must copy it themselves.
        """
        if self._closed:
            raise ValueError("ring is closed")
        out: list[np.ndarray] = []
        for desc in descs:
            code, shape, offset = int(desc[0]), tuple(
                int(s) for s in desc[1]
            ), int(desc[2])
            if not 0 <= code < len(protocol._WIRE_DTYPES):
                raise ValueError(f"unknown wire dtype code {code}")
            dtype = protocol._WIRE_DTYPES[code]
            nbytes = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
            if offset < 0 or offset + nbytes > self.size:
                raise ValueError(
                    f"shm descriptor out of bounds: offset {offset} + "
                    f"{nbytes} bytes > ring size {self.size}"
                )
            arr = np.ndarray(shape, dtype=dtype, buffer=self._shm.buf, offset=offset)
            out.append(arr.copy() if copy else arr)
        return out
