"""Dedup strategy tests: the three Section 5.2.1 designs must agree."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.candidates import (
    BitvectorDeduplicator,
    SetDeduplicator,
    SortDeduplicator,
    make_deduplicator,
)

STRATEGIES = ["set", "sort", "bitvector"]


@pytest.mark.parametrize("strategy", STRATEGIES)
class TestDedup:
    def test_removes_duplicates(self, strategy):
        d = make_deduplicator(strategy, 100)
        out = d.unique(np.asarray([5, 3, 5, 5, 7, 3]))
        np.testing.assert_array_equal(out, [3, 5, 7])

    def test_empty_input(self, strategy):
        d = make_deduplicator(strategy, 10)
        assert d.unique(np.empty(0, dtype=np.int64)).size == 0

    def test_no_duplicates_passthrough(self, strategy):
        d = make_deduplicator(strategy, 10)
        np.testing.assert_array_equal(d.unique(np.asarray([2, 0, 9])), [0, 2, 9])

    def test_reusable_across_queries(self, strategy):
        """State (e.g. the persistent bitvector) must reset between calls."""
        d = make_deduplicator(strategy, 50)
        first = d.unique(np.asarray([1, 2, 2]))
        second = d.unique(np.asarray([2, 3]))
        np.testing.assert_array_equal(first, [1, 2])
        np.testing.assert_array_equal(second, [2, 3])


def test_factory_types():
    assert isinstance(make_deduplicator("set", 5), SetDeduplicator)
    assert isinstance(make_deduplicator("sort", 5), SortDeduplicator)
    assert isinstance(make_deduplicator("bitvector", 5), BitvectorDeduplicator)


def test_factory_rejects_unknown():
    with pytest.raises(ValueError):
        make_deduplicator("bloom", 5)


@settings(max_examples=60, deadline=None)
@given(values=st.lists(st.integers(0, 199), max_size=300))
def test_strategies_agree_property(values):
    arr = np.asarray(values, dtype=np.int64)
    outputs = [
        make_deduplicator(s, 200).unique(arr.copy()) for s in STRATEGIES
    ]
    expected = np.unique(arr)
    for s, out in zip(STRATEGIES, outputs):
        np.testing.assert_array_equal(out, expected, err_msg=s)


ALL_STRATEGIES = STRATEGIES + ["bitvector_fullscan", "generation"]


@pytest.mark.parametrize("strategy", ["bitvector_fullscan", "generation"])
class TestNewRungs:
    def test_removes_duplicates(self, strategy):
        d = make_deduplicator(strategy, 100)
        np.testing.assert_array_equal(
            d.unique(np.asarray([5, 3, 5, 5, 7, 3])), [3, 5, 7]
        )

    def test_reusable_across_queries(self, strategy):
        d = make_deduplicator(strategy, 50)
        np.testing.assert_array_equal(d.unique(np.asarray([1, 2, 2])), [1, 2])
        np.testing.assert_array_equal(d.unique(np.asarray([2, 3])), [2, 3])

    def test_empty(self, strategy):
        d = make_deduplicator(strategy, 10)
        assert d.unique(np.empty(0, dtype=np.int64)).size == 0


def test_touched_range_default_and_fullscan_flag():
    assert BitvectorDeduplicator(5).full_scan is False
    assert make_deduplicator("bitvector_fullscan", 5).full_scan is True


@settings(max_examples=60, deadline=None)
@given(values=st.lists(st.integers(0, 199), max_size=300))
def test_all_rungs_agree_property(values):
    arr = np.asarray(values, dtype=np.int64)
    expected = np.unique(arr)
    for s in ALL_STRATEGIES:
        np.testing.assert_array_equal(
            make_deduplicator(s, 200).unique(arr.copy()), expected, err_msg=s
        )


class TestSegmentedDedup:
    def _offsets(self, counts):
        return np.concatenate(([0], np.cumsum(counts))).astype(np.int64)

    def test_unique_segments_basic(self):
        from repro.core.candidates import unique_segments

        values = np.asarray([4, 2, 4, 9, 9, 1, 0], dtype=np.int64)
        offsets = self._offsets([3, 2, 0, 2])
        out_vals, out_offsets = unique_segments(values, offsets, 10)
        np.testing.assert_array_equal(out_vals, [2, 4, 9, 0, 1])
        np.testing.assert_array_equal(out_offsets, [0, 2, 3, 3, 5])

    def test_same_value_survives_across_segments(self):
        from repro.core.candidates import unique_segments

        values = np.asarray([5, 5, 5, 5], dtype=np.int64)
        offsets = self._offsets([2, 2])
        out_vals, out_offsets = unique_segments(values, offsets, 6)
        np.testing.assert_array_equal(out_vals, [5, 5])
        np.testing.assert_array_equal(out_offsets, [0, 1, 2])

    def test_empty_input(self):
        from repro.core.candidates import unique_segments

        out_vals, out_offsets = unique_segments(
            np.empty(0, dtype=np.int64), self._offsets([0, 0, 0]), 10
        )
        assert out_vals.size == 0
        np.testing.assert_array_equal(out_offsets, [0, 0, 0, 0])

    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_sort_and_generation_variants_agree_property(self, data):
        from repro.core.candidates import (
            unique_segments,
            unique_segments_generation,
        )
        from repro.utils.bitvector import GenerationMask

        n_items = data.draw(st.integers(1, 40))
        counts = data.draw(
            st.lists(st.integers(0, 30), min_size=1, max_size=8)
        )
        total = sum(counts)
        rng = np.random.default_rng(data.draw(st.integers(0, 2**16)))
        values = rng.integers(0, n_items, size=total).astype(np.int64)
        offsets = self._offsets(counts)
        a_vals, a_offsets = unique_segments(values, offsets, n_items)
        b_vals, b_offsets = unique_segments_generation(
            values, offsets, GenerationMask(n_items)
        )
        np.testing.assert_array_equal(a_vals, b_vals)
        np.testing.assert_array_equal(a_offsets, b_offsets)

    def test_mask_segments(self):
        from repro.core.candidates import mask_segments

        offsets = self._offsets([3, 0, 2, 1])
        keep = np.asarray([True, False, True, True, False, True])
        np.testing.assert_array_equal(
            mask_segments(offsets, keep), [0, 2, 2, 3, 4]
        )
