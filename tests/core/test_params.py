"""PLSHParams validation and derived-quantity tests."""

from __future__ import annotations

import pytest

from repro.params import PAPER_TWITTER_PARAMS, PLSHParams


def test_paper_flagship_configuration():
    p = PAPER_TWITTER_PARAMS
    assert p.k == 16 and p.m == 40
    assert p.n_tables == 780          # L = m(m-1)/2, as in the paper
    assert p.bits_per_function == 8
    assert p.n_hash_bits == 320       # m * k/2 hyperplanes
    assert p.n_buckets == 65536


def test_table_pairs_enumeration():
    p = PLSHParams(k=4, m=4)
    assert p.n_tables == 6
    assert p.table_pairs() == [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]


def test_table_pairs_all_distinct_and_ordered():
    p = PLSHParams(k=8, m=10)
    pairs = p.table_pairs()
    assert len(pairs) == len(set(pairs)) == p.n_tables
    assert all(i < j for i, j in pairs)


def test_memory_formula_matches_paper():
    # Section 5.3: N=10M, L=780 -> tables alone are ~31 GB.
    p = PAPER_TWITTER_PARAMS
    total = p.table_memory_bytes(10_000_000)
    assert total == (780 * 10_000_000 + 65536 * 780) * 4
    assert 31e9 < total < 32e9


@pytest.mark.parametrize(
    "kwargs",
    [
        {"k": 0},
        {"k": 3},          # odd
        {"k": 34},         # keys would not fit uint32
        {"m": 1},
        {"radius": 0.0},
        {"radius": 4.0},   # > pi
        {"delta": 0.0},
        {"delta": 1.0},
    ],
)
def test_invalid_parameters_raise(kwargs):
    with pytest.raises(ValueError):
        PLSHParams(**kwargs)


def test_with_seed_preserves_everything_else():
    p = PLSHParams(k=8, m=6, radius=0.5, delta=0.2, seed=1)
    q = p.with_seed(2)
    assert q.seed == 2
    assert (q.k, q.m, q.radius, q.delta) == (8, 6, 0.5, 0.2)


def test_seed_not_part_of_equality():
    assert PLSHParams(seed=1) == PLSHParams(seed=2)


def test_frozen():
    with pytest.raises(AttributeError):
        PLSHParams().k = 4  # type: ignore[misc]
