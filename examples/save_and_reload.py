#!/usr/bin/env python
"""Persistence: build once, save, reload, query identically.

The paper's deployment rebuilds indexes from the stream; a library user
usually wants restartability instead.  A built index (tables, cached hash
values, data, hyperplanes) round-trips through a single ``.npz`` file and
answers queries identically after reload.

Run:  python examples/save_and_reload.py
"""

from __future__ import annotations

import os
import tempfile
import time

import numpy as np

from repro import PLSHIndex, PLSHParams, SyntheticCorpus, load_index, save_index

N_DOCS = 30_000
SEED = 51


def main() -> None:
    corpus = SyntheticCorpus.generate(N_DOCS, seed=SEED)
    params = PLSHParams(k=16, m=16, radius=0.9, seed=SEED)
    print(f"building index over {N_DOCS:,} docs ...")
    start = time.perf_counter()
    index = PLSHIndex(corpus.vocab_size, params).build(corpus.vectors())
    build_s = time.perf_counter() - start

    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "plsh_index.npz")
        start = time.perf_counter()
        save_index(index, path)
        save_s = time.perf_counter() - start
        size_mb = os.path.getsize(path) / 1e6

        start = time.perf_counter()
        reloaded = load_index(path)
        load_s = time.perf_counter() - start
        print(
            f"build {build_s:.2f}s -> save {save_s:.2f}s "
            f"({size_mb:.1f} MB compressed) -> load {load_s:.2f}s "
            f"({build_s / load_s:.1f}x faster than rebuilding)"
        )

        ids, queries = corpus.query_vectors(10, seed=SEED + 1)
        mismatches = 0
        for r in range(queries.n_rows):
            a = index.engine.query_row(queries, r)
            b = reloaded.engine.query_row(queries, r)
            if not np.array_equal(np.sort(a.indices), np.sort(b.indices)):
                mismatches += 1
        print(
            f"queries compared on both indexes: {queries.n_rows}, "
            f"mismatches: {mismatches} (must be 0)"
        )
        assert mismatches == 0


if __name__ == "__main__":
    main()
