"""Fault tolerance over real node processes: replica failover under
kills, deadlines under SIGSTOP hangs, retry-through-flakiness, honest
degraded reporting, and idempotent teardown.

The headline contracts (ISSUE acceptance criteria):

* R=2: killing any single node mid-stream leaves ``query`` /
  ``query_batch`` answers **bit-identical** to the healthy cluster's.
* R=1: the same kill yields ``degraded=True`` with the missing shard
  listed — never an exception.
* A SIGSTOPped (hung, not dead) node trips the request deadline and the
  circuit breaker, and the broadcast completes within the deadline
  budget.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro import PLSHCluster, PLSHParams
from repro.cluster import FaultPlan, spawn_local_cluster
from repro.cluster.health import BreakerState, HealthState
from repro.parallel import fork_available

PARAMS = PLSHParams(k=6, m=4, radius=0.9, seed=42)
CAPACITY = 200

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="spawn_local_cluster requires fork()"
)


def _feed(shadow, rpc, vectors, stop, start=0, step=100):
    for pos in range(start, stop, step):
        block = vectors.slice_rows(pos, pos + step)
        np.testing.assert_array_equal(shadow.insert(block), rpc.insert(block))


def _assert_identical(expected, actual, *, degraded=False):
    assert len(expected) == len(actual)
    for a, b in zip(expected, actual):
        np.testing.assert_array_equal(a.result.indices, b.result.indices)
        np.testing.assert_array_equal(a.result.distances, b.result.distances)
        assert b.degraded == degraded


class TestReplicatedFailover:
    """R=2: one dead node per shard is invisible in the answers."""

    def _spawn_pair(self, dim, **kwargs):
        shadow = PLSHCluster(2, CAPACITY, dim, PARAMS, insert_window=2)
        rpc = spawn_local_cluster(
            4, CAPACITY, dim, PARAMS,
            insert_window=2, replication=2, op_timeout=10.0, **kwargs,
        )
        return shadow, rpc

    def test_kill_one_replica_answers_stay_bit_identical(
        self, small_vectors, small_queries
    ):
        dim = small_vectors.n_cols
        _, queries = small_queries
        batch = queries.slice_rows(0, 10)
        shadow, rpc = self._spawn_pair(dim)
        try:
            _feed(shadow, rpc, small_vectors, 300)
            expected = shadow.query_batch(batch)
            _assert_identical(expected, rpc.query_batch(batch))

            rpc.kill_node(0)  # a replica of shard 0

            # Failover is absorbed inside the replica group: no per-node
            # error, no degradation, bit-identical answers.
            out = rpc.query_batch(batch)
            _assert_identical(expected, out)
            assert all(o.ok for o in out)

            # Mid-stream: the cluster keeps ingesting after the kill
            # (writes land on the surviving replica) and stays exact.
            _feed(shadow, rpc, small_vectors, 500, start=300)
            _assert_identical(shadow.query_batch(batch), rpc.query_batch(batch))
            # The dead replica was evicted from its group on the first
            # failed write.
            assert 0 in rpc.shards[0].evicted
        finally:
            rpc.close()
            shadow.close()

    def test_single_query_failover_and_delete_after_kill(
        self, small_vectors, small_queries
    ):
        dim = small_vectors.n_cols
        _, queries = small_queries
        shadow, rpc = self._spawn_pair(dim)
        try:
            _feed(shadow, rpc, small_vectors, 300)
            rpc.kill_node(3)  # a replica of shard 1
            doomed = np.asarray([10, 150, 250], dtype=np.int64)
            assert shadow.delete(doomed) == rpc.delete(doomed)
            for r in range(3):
                cols, vals = queries.row(r)
                a = shadow.query(cols.astype(np.int64), vals)
                b = rpc.query(cols.astype(np.int64), vals)
                np.testing.assert_array_equal(
                    a.result.indices, b.result.indices
                )
                np.testing.assert_array_equal(
                    a.result.distances, b.result.distances
                )
                assert not b.degraded
        finally:
            rpc.close()
            shadow.close()

    def test_mid_request_kill_fails_over(self, small_vectors, small_queries):
        """The server dies between the request write and the reply read;
        the sibling replica serves the exact answer."""
        dim = small_vectors.n_cols
        _, queries = small_queries
        batch = queries.slice_rows(0, 6)
        plan = FaultPlan(seed=3)
        shadow = PLSHCluster(2, CAPACITY, dim, PARAMS, insert_window=2)
        rpc = spawn_local_cluster(
            4, CAPACITY, dim, PARAMS,
            insert_window=2, replication=2, op_timeout=10.0,
            fault_plans={1: plan},
        )
        try:
            _feed(shadow, rpc, small_vectors, 300)
            expected = shadow.query_batch(batch)
            # Arm: right after node 1's next request goes on the wire,
            # its server is killed; the torn reply guarantees this very
            # request observes the death rather than racing the reply.
            plan.call_after_send(lambda: rpc.kill_node(1))
            plan.tear_next_reply()
            out = rpc.query_batch(batch)
            _assert_identical(expected, out)
            assert all(o.ok for o in out)
        finally:
            rpc.close()
            shadow.close()


class TestUnreplicatedDegraded:
    """R=1: a kill degrades honestly — reported, never fatal."""

    def _spawn_pair(self, dim, **kwargs):
        shadow = PLSHCluster(3, CAPACITY, dim, PARAMS, insert_window=2)
        rpc = spawn_local_cluster(
            3, CAPACITY, dim, PARAMS,
            insert_window=2, op_timeout=10.0, **kwargs,
        )
        return shadow, rpc

    def test_kill_reports_missing_shard_not_exception(
        self, small_vectors, small_queries
    ):
        dim = small_vectors.n_cols
        _, queries = small_queries
        batch = queries.slice_rows(0, 8)
        shadow, rpc = self._spawn_pair(dim)
        try:
            _feed(shadow, rpc, small_vectors, 500)
            rpc.kill_node(1)

            # First broadcast observes the death: per-node error entry,
            # degraded flag, the missing shard named.
            first = rpc.query_batch(batch)
            assert all(1 in o.node_errors for o in first)
            assert all(o.degraded for o in first)
            assert all(o.missing_shards == [1] for o in first)

            # Later broadcasts skip the dead shard silently but keep
            # reporting the degradation — the shard still held data.
            later = rpc.query_batch(batch)
            assert all(o.ok for o in later)
            assert all(o.degraded for o in later)
            assert all(o.missing_shards == [1] for o in later)

            # Answers equal the shadow restricted to surviving shards.
            from repro.cluster.coordinator import Coordinator
            from repro.cluster.network import NetworkModel

            survivors = [n for n in shadow.nodes if n.node_id != 1]
            restricted = Coordinator(survivors, NetworkModel())
            try:
                expected = restricted.query_batch(batch)
                for a, b in zip(expected, later):
                    np.testing.assert_array_equal(
                        a.result.indices, b.result.indices
                    )
            finally:
                restricted.close()
        finally:
            rpc.close()
            shadow.close()

    def test_mid_request_death_is_clean_node_error(
        self, small_vectors, small_queries
    ):
        """Satellite: server killed between request write and reply read
        surfaces as one clean node_errors entry; survivors unchanged."""
        dim = small_vectors.n_cols
        _, queries = small_queries
        batch = queries.slice_rows(0, 6)
        plan = FaultPlan(seed=5)
        shadow = PLSHCluster(3, CAPACITY, dim, PARAMS, insert_window=2)
        rpc = spawn_local_cluster(
            3, CAPACITY, dim, PARAMS,
            insert_window=2, op_timeout=10.0, fault_plans={2: plan},
        )
        try:
            _feed(shadow, rpc, small_vectors, 500)
            plan.call_after_send(lambda: rpc.kill_node(2))
            plan.tear_next_reply()
            out = rpc.query_batch(batch)
            assert all(2 in o.node_errors for o in out)
            assert all(o.missing_shards == [2] for o in out)
            from repro.cluster.coordinator import Coordinator
            from repro.cluster.network import NetworkModel

            survivors = [n for n in shadow.nodes if n.node_id != 2]
            restricted = Coordinator(survivors, NetworkModel())
            try:
                for a, b in zip(restricted.query_batch(batch), out):
                    np.testing.assert_array_equal(
                        a.result.indices, b.result.indices
                    )
            finally:
                restricted.close()
        finally:
            rpc.close()
            shadow.close()


class TestHungNode:
    """SIGSTOP: the failure mode deadlines exist for."""

    def test_paused_node_trips_deadline_and_breaker(
        self, small_vectors, small_queries
    ):
        dim = small_vectors.n_cols
        _, queries = small_queries
        shadow = PLSHCluster(3, CAPACITY, dim, PARAMS, insert_window=2)
        rpc = spawn_local_cluster(
            3, CAPACITY, dim, PARAMS,
            insert_window=2, op_timeout=1.0, health_cooldown=0.2,
        )
        try:
            _feed(shadow, rpc, small_vectors, 500)
            cols, vals = queries.row(0)
            cols = cols.astype(np.int64)
            rpc.pause_node(1)

            start = time.monotonic()
            out = rpc.query(cols, vals)
            elapsed = time.monotonic() - start
            # The broadcast completed within the deadline budget: one
            # deadline for the hung node (timeouts are never retried),
            # not one per retry attempt.
            assert elapsed < 4.0
            assert 1 in out.node_errors
            assert "timed out" in out.node_errors[1]
            assert out.degraded and out.missing_shards == [1]

            # One blown deadline tripped the breaker outright.
            victim = rpc.nodes[1]
            assert victim.health.breaker is BreakerState.OPEN
            assert victim.health.state is HealthState.DOWN
            assert not victim.alive

            # Subsequent broadcasts skip the hung node instantly.
            start = time.monotonic()
            again = rpc.query(cols, vals)
            assert time.monotonic() - start < 1.0
            assert again.ok and again.degraded

            # SIGCONT + a successful probe puts it back in rotation,
            # and answers return to exact-full.
            rpc.resume_node(1)
            time.sleep(0.3)  # cooldown before the breaker half-opens
            deadline = time.monotonic() + 5.0
            while not victim.probe() and time.monotonic() < deadline:
                time.sleep(0.1)
            assert victim.alive
            healed = rpc.query(cols, vals)
            expected = shadow.query(cols, vals)
            np.testing.assert_array_equal(
                expected.result.indices, healed.result.indices
            )
            assert not healed.degraded
        finally:
            rpc.close()
            shadow.close()

    def test_heartbeat_revives_paused_node_automatically(
        self, small_vectors, small_queries
    ):
        dim = small_vectors.n_cols
        _, queries = small_queries
        cols, vals = queries.row(0)
        cols = cols.astype(np.int64)
        rpc = spawn_local_cluster(
            3, CAPACITY, dim, PARAMS,
            insert_window=2, op_timeout=1.0,
            health_cooldown=0.2, heartbeat_interval=0.1,
        )
        try:
            # 500 rows: the window wraps onto node 2, so pausing it later
            # actually hides data (an empty node is never "missing").
            rpc.insert(small_vectors.slice_rows(0, 500))
            baseline = rpc.query(cols, vals)
            rpc.pause_node(2)
            # Either this query's deadline or the monitor's own probe
            # trips the breaker first — both end with the shard reported
            # missing.
            out = rpc.query(cols, vals)
            assert out.degraded and out.missing_shards == [2]
            rpc.resume_node(2)
            # No manual probe: the monitor's heartbeat half-opens the
            # breaker and closes it on the first successful ping.
            deadline = time.monotonic() + 10.0
            while not rpc.nodes[2].alive and time.monotonic() < deadline:
                time.sleep(0.05)
            assert rpc.nodes[2].alive
            healed = rpc.query(cols, vals)
            np.testing.assert_array_equal(
                baseline.result.indices, healed.result.indices
            )
            assert not healed.degraded
        finally:
            rpc.close()


class TestFlakyNetwork:
    def test_torn_reply_retried_transparently(
        self, small_vectors, small_queries
    ):
        dim = small_vectors.n_cols
        _, queries = small_queries
        batch = queries.slice_rows(0, 6)
        plan = FaultPlan(seed=1)
        rpc = spawn_local_cluster(
            2, CAPACITY, dim, PARAMS, insert_window=1,
            op_timeout=10.0, fault_plans={0: plan},
        )
        try:
            rpc.insert(small_vectors.slice_rows(0, 300))
            expected = rpc.query_batch(batch)
            plan.tear_next_reply()
            out = rpc.query_batch(batch)  # reconnect + retry, invisibly
            _assert_identical(expected, out)
            assert all(o.ok for o in out)
            assert plan.injected["torn_reply"] == 1
            # The flake left the node SUSPECT, not DOWN (and the success
            # reset the streak).
            assert rpc.nodes[0].health.state is HealthState.UP
        finally:
            rpc.close()

    def test_dropped_request_retried_transparently(
        self, small_vectors, small_queries
    ):
        dim = small_vectors.n_cols
        _, queries = small_queries
        batch = queries.slice_rows(0, 6)
        plan = FaultPlan(seed=2)
        rpc = spawn_local_cluster(
            2, CAPACITY, dim, PARAMS, insert_window=1,
            op_timeout=10.0, fault_plans={1: plan},
        )
        try:
            rpc.insert(small_vectors.slice_rows(0, 300))
            expected = rpc.query_batch(batch)
            plan.drop_next_send()
            out = rpc.query_batch(batch)
            _assert_identical(expected, out)
            assert all(o.ok for o in out)
            assert plan.injected["drop"] == 1
        finally:
            rpc.close()

    def test_dropped_mutation_is_not_retried(self, small_vectors):
        """A non-idempotent op surfaces the failure instead of guessing:
        the handle reports ConnectionError and stays usable."""
        dim = small_vectors.n_cols
        plan = FaultPlan(seed=4)
        rpc = spawn_local_cluster(
            2, CAPACITY, dim, PARAMS, insert_window=1,
            op_timeout=10.0, fault_plans={0: plan},
        )
        try:
            handle = rpc.nodes[0]
            plan.drop_next_send()
            with pytest.raises(ConnectionError):
                handle.insert_batch(
                    small_vectors.slice_rows(0, 5),
                    np.arange(5, dtype=np.int64),
                )
            # One flake: SUSPECT, still serving; next op reconnects.
            assert handle.health.state is HealthState.SUSPECT
            assert handle.ping() == 0
            assert handle.health.state is HealthState.UP
        finally:
            rpc.close()


class TestTeardown:
    def test_cluster_close_idempotent(self, small_vectors):
        dim = small_vectors.n_cols
        rpc = spawn_local_cluster(2, CAPACITY, dim, PARAMS, insert_window=1)
        rpc.insert(small_vectors.slice_rows(0, 100))
        rpc.close()
        rpc.close()  # second close must be a clean no-op

    def test_close_after_kill_and_pause(self, small_vectors):
        # Teardown with one node dead and one SIGSTOPped must neither
        # raise nor hang (close SIGCONTs paused children before joining).
        dim = small_vectors.n_cols
        rpc = spawn_local_cluster(3, CAPACITY, dim, PARAMS, insert_window=2)
        rpc.insert(small_vectors.slice_rows(0, 100))
        rpc.kill_node(0)
        rpc.pause_node(2)
        start = time.monotonic()
        rpc.close()
        assert time.monotonic() - start < 10.0
        assert all(not proc.is_alive() for proc in rpc.processes)

    def test_handle_close_idempotent_after_failure(self, small_vectors):
        dim = small_vectors.n_cols
        rpc = spawn_local_cluster(2, CAPACITY, dim, PARAMS, insert_window=1)
        try:
            rpc.insert(small_vectors.slice_rows(0, 100))
            rpc.kill_node(1)
            handle = rpc.nodes[1]
            with pytest.raises((ConnectionError, TimeoutError)):
                handle.ping()
            # The failed request already closed the socket; close() again
            # (and again) is safe.
            handle.close()
            handle.close()
            assert not handle.alive
        finally:
            rpc.close()


class TestHealthReporting:
    def test_cluster_health_rows(self, small_vectors):
        dim = small_vectors.n_cols
        rpc = spawn_local_cluster(
            4, CAPACITY, dim, PARAMS, insert_window=2, replication=2,
            op_timeout=10.0,
        )
        try:
            rpc.insert(small_vectors.slice_rows(0, 200))
            rows = rpc.health()
            assert len(rows) == 2  # one row per shard
            for row in rows:
                assert row["replication"] == 2
                assert row["live_replicas"] == 2
                assert len(row["replicas"]) == 2
                for rep in row["replicas"]:
                    assert rep["state"] == "up"
                    assert rep["breaker"] == "closed"
        finally:
            rpc.close()

    def test_in_process_health_rows_static_up(self, small_vectors):
        dim = small_vectors.n_cols
        cluster = PLSHCluster(2, CAPACITY, dim, PARAMS, insert_window=1)
        try:
            rows = cluster.health()
            assert [r["state"] for r in rows] == ["up", "up"]
        finally:
            cluster.close()

    def test_transport_totals_survive_reconnects(
        self, small_vectors, small_queries
    ):
        """Satellite regression: wire totals accumulate across the
        reconnect a retry performs, instead of resetting."""
        dim = small_vectors.n_cols
        _, queries = small_queries
        batch = queries.slice_rows(0, 4)
        plan = FaultPlan(seed=9)
        rpc = spawn_local_cluster(
            2, CAPACITY, dim, PARAMS, insert_window=1,
            op_timeout=10.0, fault_plans={0: plan},
        )
        try:
            rpc.insert(small_vectors.slice_rows(0, 200))
            rpc.query_batch(batch)
            before = rpc.coordinator.transport_totals()
            plan.tear_next_reply()
            rpc.query_batch(batch)
            after = rpc.coordinator.transport_totals()
            assert after["n_messages"] > before["n_messages"]
            assert after["bytes_sent"] > before["bytes_sent"]
        finally:
            rpc.close()
