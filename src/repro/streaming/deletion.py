"""Deletion filter (Section 6.2, "Deleting Entries").

"Deletions of arbitrary tweets can be handled through the use of a
bitvector ... Before performing the sparse dot product computation, we
check this bitvector to see if the corresponding entry is 'live' and
proceed accordingly.  This bitvector gets reset to all-zeros when the data
in the node is retired."
"""

from __future__ import annotations

import numpy as np

from repro.utils.bitvector import BitVector

__all__ = ["DeletionFilter"]


class DeletionFilter:
    """Packed bitvector of tombstones over a node's local row ids."""

    def __init__(self, capacity: int) -> None:
        self._bits = BitVector(capacity)
        self._n_deleted = 0

    @property
    def n_deleted(self) -> int:
        return self._n_deleted

    @property
    def capacity(self) -> int:
        return len(self._bits)

    def delete(self, ids: np.ndarray | int) -> int:
        """Mark rows deleted; returns how many were newly deleted."""
        ids = np.atleast_1d(np.asarray(ids, dtype=np.int64))
        already = self._bits.test(ids)
        fresh = np.unique(ids[~already])
        if fresh.size:
            self._bits.set(fresh)
        self._n_deleted += int(fresh.size)
        return int(fresh.size)

    def is_deleted(self, ids: np.ndarray | int) -> np.ndarray:
        """Boolean mask: True where the row is tombstoned."""
        return self._bits.test(np.atleast_1d(np.asarray(ids, dtype=np.int64)))

    def filter_live(self, ids: np.ndarray) -> np.ndarray:
        """Drop tombstoned ids from a candidate list (the pre-dot check)."""
        ids = np.asarray(ids, dtype=np.int64)
        if ids.size == 0:
            return ids
        return ids[~self._bits.test(ids)]

    def mask(self, n: int) -> np.ndarray | None:
        """Dense boolean exclude-mask over ``0..n`` or None if no deletions."""
        if self._n_deleted == 0:
            return None
        idx = np.arange(n, dtype=np.int64)
        return self._bits.test(idx)

    def mask_range(self, lo: int, hi: int) -> np.ndarray | None:
        """Exclude-mask over local ids ``[lo, hi)`` or None if no deletions.

        The per-partition slice of :meth:`mask` — ``None`` and an
        all-False slice screen identically, so the no-deletions fast path
        is preserved partition by partition."""
        if self._n_deleted == 0:
            return None
        idx = np.arange(lo, hi, dtype=np.int64)
        return self._bits.test(idx)

    def clear_range(self, lo: int, hi: int) -> int:
        """Forget tombstones in ``[lo, hi)`` (a dropped partition's id
        range); returns how many were cleared.  Cost is proportional to
        the range, not the whole vector."""
        idx = self._bits.scan_range(lo, hi)
        if idx.size:
            self._bits.clear(idx)
            self._n_deleted -= int(idx.size)
        return int(idx.size)

    def ensure(self, n: int) -> None:
        """Grow the underlying bitvector to cover local ids ``[0, n)``.

        Partition drops leave holes in the id space, so a node's id range
        can outgrow the capacity the filter was sized for even though the
        resident row count never does."""
        self._bits.grow(n)

    def reset(self) -> None:
        """Forget all tombstones (node retirement)."""
        self._bits.reset()
        self._n_deleted = 0
