"""Basic (unoptimized) LSH tests: exact equivalence with PLSHIndex."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.basic_lsh import BasicLSHIndex


@pytest.fixture(scope="module")
def basic(built_index, small_vectors):
    # Share the hasher so both indexes use identical hash functions.
    return BasicLSHIndex(
        small_vectors.n_cols, built_index.params, hasher=built_index.hasher
    ).build(small_vectors)


def test_identical_results_to_plsh(basic, built_index, small_queries):
    """Same hash functions + same algorithm semantics = same answers.
    The optimized PLSH differs only in data layout and kernels."""
    _, queries = small_queries
    for r in range(10):
        a = basic.query(*queries.row(r))
        b = built_index.engine.query_row(queries, r)
        np.testing.assert_array_equal(np.sort(a.indices), np.sort(b.indices))
        np.testing.assert_allclose(
            np.sort(a.distances), np.sort(b.distances), rtol=1e-4, atol=1e-5
        )


def test_bucket_contents_match_static_tables(basic, built_index):
    """Every dict bucket must equal the corresponding static-table bucket."""
    tables = built_index.tables
    for l in (0, 7, built_index.params.n_tables - 1):
        for key, members in list(basic.tables[l].items())[:50]:
            static_bucket = tables.bucket(l, key)
            assert sorted(members) == sorted(static_bucket.tolist())


def test_query_before_build_raises(small_params):
    idx = BasicLSHIndex(100, small_params)
    with pytest.raises(RuntimeError):
        idx.query(np.asarray([0]), np.asarray([1.0], np.float32))


def test_build_wrong_dim_raises(small_params, small_vectors):
    idx = BasicLSHIndex(small_vectors.n_cols + 3, small_params)
    with pytest.raises(ValueError):
        idx.build(small_vectors)


def test_radius_override(basic, small_queries):
    _, queries = small_queries
    tight = basic.query(*queries.row(0), radius=0.05)
    loose = basic.query(*queries.row(0), radius=1.2)
    assert len(tight) <= len(loose)


def test_query_batch(basic, small_queries):
    _, queries = small_queries
    out = basic.query_batch(queries.slice_rows(0, 3))
    assert len(out) == 3
