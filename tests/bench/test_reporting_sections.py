"""Section recording/replay used by the bench terminal-summary hook."""

from __future__ import annotations

from repro.bench.reporting import consume_sections, print_section


def test_sections_recorded_and_drained(capsys):
    consume_sections()  # drain anything earlier tests left behind
    print_section("Title A", "body A")
    print_section("Title B")
    sections = consume_sections()
    assert len(sections) == 2
    assert "Title A" in sections[0] and "body A" in sections[0]
    assert "Title B" in sections[1]
    # Drained: a second call returns nothing.
    assert consume_sections() == []


def test_print_section_writes_through(capsys):
    consume_sections()
    print_section("Visible", "now")
    # Written to the real stdout (pytest capsys sees sys.stdout level
    # capture only when capture mode is sys; we at least must not raise).
    consume_sections()
