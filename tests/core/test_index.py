"""PLSHIndex facade tests, including the statistical recall invariant."""

from __future__ import annotations

import numpy as np
import pytest

from repro import PLSHIndex, PLSHParams
from repro.baselines.exhaustive import ExhaustiveSearch
from repro.perfmodel.collisions import recall_probability


class TestLifecycle:
    def test_query_before_build_raises(self, small_vectors, small_params):
        index = PLSHIndex(small_vectors.n_cols, small_params)
        with pytest.raises(RuntimeError):
            index.query(np.asarray([0]), np.asarray([1.0], np.float32))

    def test_build_wrong_dim_raises(self, small_vectors, small_params):
        index = PLSHIndex(small_vectors.n_cols + 1, small_params)
        with pytest.raises(ValueError):
            index.build(small_vectors)

    def test_bad_u_values_shape_raises(self, small_vectors, small_params):
        index = PLSHIndex(small_vectors.n_cols, small_params)
        with pytest.raises(ValueError):
            index.build(
                small_vectors,
                u_values=np.zeros((3, small_params.m), dtype=np.uint16),
            )

    def test_properties(self, built_index, small_vectors, small_params):
        assert built_index.is_built
        assert built_index.n_items == small_vectors.n_rows
        assert built_index.nbytes > 0
        assert built_index.build_times["hashing"] > 0
        assert built_index.build_times["insertion"] > 0

    def test_hasher_dim_mismatch_raises(self, small_params, built_index):
        with pytest.raises(ValueError):
            PLSHIndex(99, small_params, hasher=built_index.hasher)


class TestDeterminism:
    def test_same_seed_same_results(self, small_vectors, small_queries):
        _, queries = small_queries
        params = PLSHParams(k=8, m=6, radius=0.9, seed=77)
        a = PLSHIndex(small_vectors.n_cols, params).build(small_vectors)
        b = PLSHIndex(small_vectors.n_cols, params).build(small_vectors)
        for r in range(5):
            ra = a.engine.query_row(queries, r)
            rb = b.engine.query_row(queries, r)
            np.testing.assert_array_equal(
                np.sort(ra.indices), np.sort(rb.indices)
            )

    def test_different_seed_different_tables(self, small_vectors):
        a = PLSHIndex(
            small_vectors.n_cols, PLSHParams(k=8, m=6, seed=1)
        ).build(small_vectors)
        b = PLSHIndex(
            small_vectors.n_cols, PLSHParams(k=8, m=6, seed=2)
        ).build(small_vectors)
        assert not np.array_equal(a.u_values, b.u_values)

    def test_prebuilt_u_values_short_circuit_hashing(
        self, built_index, small_vectors
    ):
        index = PLSHIndex(
            small_vectors.n_cols, built_index.params, hasher=built_index.hasher
        )
        index.build(small_vectors, u_values=built_index.u_values)
        assert "hashing" not in index.build_times
        np.testing.assert_array_equal(
            index.tables.entries, built_index.tables.entries
        )


class TestRecall:
    def test_no_false_positives(self, built_index, small_queries, small_vectors):
        """LSH may miss neighbors but must never report a non-neighbor."""
        _, queries = small_queries
        exact = ExhaustiveSearch(small_vectors, built_index.params.radius)
        for r in range(10):
            approx = set(
                built_index.engine.query_row(queries, r).indices.tolist()
            )
            truth = set(exact.query(*queries.row(r)).indices.tolist())
            assert approx <= truth

    def test_recall_matches_theory(self, built_index, small_queries, small_vectors):
        """Measured recall must track the mean of P'(t, k, m) over the true
        neighbors (the per-point retrieval probability of Section 7.2)."""
        ids, queries = small_queries
        params = built_index.params
        exact = ExhaustiveSearch(small_vectors, params.radius)
        found, predicted, total = 0, 0.0, 0
        for r in range(queries.n_rows):
            truth = exact.query(*queries.row(r))
            approx = set(
                built_index.engine.query_row(queries, r).indices.tolist()
            )
            for idx, dist in zip(truth.indices.tolist(), truth.distances.tolist()):
                total += 1
                predicted += float(recall_probability(dist, params.k, params.m))
                if idx in approx:
                    found += 1
        assert total >= 50, "fixture corpus must contain enough near pairs"
        measured = found / total
        expected = predicted / total
        # Binomial noise at n>=50 is well under 0.15.
        assert measured == pytest.approx(expected, abs=0.15)
        assert measured > 0.5
