"""Unit tests for the parallel execution layer (repro.parallel).

The executor protocol is the contract every parallel call site leans on:
results in task order, state shared with workers, errors surfaced, pools
persistent-but-closable.  These tests exercise the layer in isolation with
plain functions; the query/build call sites have their own parity tests.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.parallel import (
    ForkPoolExecutor,
    SerialExecutor,
    ThreadExecutor,
    default_backend,
    default_workers,
    fork_available,
    make_executor,
    resolve_backend,
)

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="platform without fork"
)


def _add(state, x, y):
    return state + x + y


def _scale_row(state, i):
    # state is a shared numpy array; workers read it.
    return float(state[i] * 2)


def _boom(state):
    raise RuntimeError("task exploded")


ALL_BACKENDS = ["serial", "thread", "fork_pool"]


def _make(backend, state, workers=3):
    if backend == "fork_pool" and not fork_available():
        pytest.skip("platform without fork")
    return make_executor(backend, workers, state)


class TestProtocol:
    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_results_in_task_order(self, backend):
        with _make(backend, 100) as ex:
            out = ex.run(_add, [(i, 2 * i) for i in range(17)])
        assert out == [100 + 3 * i for i in range(17)]

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_shared_array_state(self, backend):
        arr = np.arange(10, dtype=np.float64)
        with _make(backend, arr) as ex:
            out = ex.run(_scale_row, [(i,) for i in range(10)])
        assert out == [2.0 * i for i in range(10)]

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_empty_task_list(self, backend):
        with _make(backend, None) as ex:
            assert ex.run(_add, []) == []

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_more_tasks_than_workers(self, backend):
        with _make(backend, 0, workers=2) as ex:
            out = ex.run(_add, [(i, 0) for i in range(11)])
        assert out == list(range(11))

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_pool_survives_consecutive_batches(self, backend):
        """A warm pool must answer correctly across >= 3 batches."""
        with _make(backend, 5) as ex:
            for batch in range(3):
                out = ex.run(_add, [(batch, i) for i in range(6)])
                assert out == [5 + batch + i for i in range(6)]

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_close_is_idempotent_and_run_after_close_raises(self, backend):
        ex = _make(backend, 1)
        ex.run(_add, [(1, 1)])
        ex.close()
        ex.close()  # idempotent
        assert ex.closed
        with pytest.raises(RuntimeError):
            ex.run(_add, [(1, 1)])


class TestErrors:
    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_task_exception_propagates(self, backend):
        ex = _make(backend, None)
        try:
            with pytest.raises(RuntimeError, match="task exploded"):
                ex.run(_boom, [()])
        finally:
            ex.close()

    def test_bad_workers_rejected(self):
        with pytest.raises(ValueError):
            SerialExecutor(None, 0)


class TestForkPool:
    @needs_fork
    def test_state_transferred_by_fork_not_pickle(self):
        """An unpicklable state object must still reach the workers —
        that is the whole point of fork copy-on-write transfer."""
        state = {"fn": lambda x: x + 1, "arr": np.arange(4)}  # lambda: unpicklable
        with ForkPoolExecutor(state, 2) as ex:
            out = ex.run(_apply_state_fn, [(3,), (7,)])
        assert out == [4, 8]

    @needs_fork
    def test_worker_processes_die_on_close(self):
        ex = ForkPoolExecutor(None, 2)
        procs = list(ex._procs)
        assert all(p.is_alive() for p in procs)
        ex.close()
        assert all(not p.is_alive() for p in procs)

    @needs_fork
    def test_worker_death_surfaces(self):
        ex = ForkPoolExecutor(None, 2)
        try:
            with pytest.raises(RuntimeError, match="died"):
                ex.run(_exit_hard, [()])
        finally:
            ex.close()

    @needs_fork
    def test_many_large_payload_tasks_do_not_deadlock(self):
        """More tasks than workers with multi-megabyte requests AND
        replies: run() must keep at most one task in flight per worker,
        otherwise both sides block on full pipe buffers (64 KB) forever."""
        big = np.ones(1 << 19, dtype=np.float64)  # 4 MB per direction
        with ForkPoolExecutor(None, 2) as ex:
            out = ex.run(_echo_sum, [(big, i) for i in range(7)])
        assert [s for s, _ in out] == [float(big.sum())] * 7
        assert all(arr.nbytes == big.nbytes for _, arr in out)


def _apply_state_fn(state, x):
    return state["fn"](x)


def _exit_hard(state):
    os._exit(3)


def _echo_sum(state, arr, i):
    return float(arr.sum()), arr


class TestFactory:
    def test_workers_one_is_always_serial(self):
        for backend in (None, "thread", "fork_pool", "process"):
            ex = make_executor(backend, 1, None)
            assert isinstance(ex, SerialExecutor)
            ex.close()

    def test_aliases_resolve(self):
        assert resolve_backend("threads") == "thread"
        if fork_available():
            assert resolve_backend("process") == "fork_pool"
            assert resolve_backend("fork") == "fork_pool"
            assert resolve_backend(None) == "fork_pool"
            assert default_backend() == "fork_pool"

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError):
            resolve_backend("mpi")

    def test_fork_pool_degrades_to_thread_without_fork(self, monkeypatch):
        import repro.parallel as par

        monkeypatch.setattr(par, "fork_available", lambda: False)
        assert par.resolve_backend("fork_pool") == "thread"
        assert par.default_backend() == "thread"
        ex = par.make_executor(None, 2, None)
        try:
            assert isinstance(ex, ThreadExecutor)
        finally:
            ex.close()

    def test_default_workers_env(self, monkeypatch):
        monkeypatch.delenv("PLSH_WORKERS", raising=False)
        assert default_workers() == 1
        monkeypatch.setenv("PLSH_WORKERS", "4")
        assert default_workers() == 4
        monkeypatch.setenv("PLSH_WORKERS", "junk")
        assert default_workers() == 1
