"""Host calibration tests: fitted constants and model sanity."""

from __future__ import annotations

import pytest

from repro.params import PLSHParams
from repro.perfmodel.calibrate import HostCostModel, _fit_line, calibrate_host

import numpy as np


@pytest.fixture(scope="module")
def host_model(small_vectors):
    params = PLSHParams(k=8, m=6, radius=0.9, seed=71)
    return calibrate_host(
        small_vectors, params, n_calibration_queries=30, seed=0
    )


def test_constants_are_nonnegative(host_model):
    assert host_model.q2_per_collision_s >= 0
    assert host_model.q2_fixed_s >= 0
    assert host_model.q3_per_unique_s >= 0
    assert host_model.q3_fixed_s >= 0
    assert host_model.hash_per_nnz_bit_s > 0
    assert host_model.partition_per_item_pass_s >= 0
    assert host_model.partition_fixed_per_pass_s >= 0


def test_query_cost_monotone_in_counts(host_model):
    small = host_model.query_cost(1000, 100, 50)
    large = host_model.query_cost(1000, 10_000, 5_000)
    assert large.total_s >= small.total_s


def test_creation_cost_scales_with_n(host_model):
    a = host_model.creation_cost(1_000, 7.2, 8, 6)
    b = host_model.creation_cost(10_000, 7.2, 8, 6)
    assert b.total_s > a.total_s
    assert b.hashing_s == pytest.approx(10 * a.hashing_s, rel=1e-6)


def test_creation_cost_scales_with_tables(host_model):
    a = host_model.creation_cost(1_000, 7.2, 8, 6)    # L = 15
    b = host_model.creation_cost(1_000, 7.2, 8, 12)   # L = 66
    assert b.insertion_s > a.insertion_s


def test_prediction_in_plausible_range(host_model, small_vectors):
    """Calibrated on this corpus, predicting the same workload must land
    within an order of magnitude of reality (tight checks happen in the
    Figure 6 bench with real measurement on the same scale)."""
    pred = host_model.creation_cost(small_vectors.n_rows,
                                    small_vectors.nnz / small_vectors.n_rows,
                                    8, 6)
    assert 1e-4 < pred.total_s < 60.0


class TestFitLine:
    def test_recovers_slope_intercept(self):
        x = np.asarray([1.0, 2.0, 3.0, 4.0])
        y = 2.0 * x + 1.0
        slope, intercept = _fit_line(x, y)
        assert slope == pytest.approx(2.0)
        assert intercept == pytest.approx(1.0)

    def test_clamps_negative_slope(self):
        x = np.asarray([1.0, 2.0, 3.0])
        y = np.asarray([3.0, 2.0, 1.0])
        slope, _ = _fit_line(x, y)
        assert slope == 0.0

    def test_degenerate_constant_x(self):
        x = np.asarray([2.0, 2.0])
        y = np.asarray([4.0, 6.0])
        slope, intercept = _fit_line(x, y)
        assert slope == pytest.approx(2.5)  # mean_y / mean_x
        assert intercept == 0.0

    def test_empty(self):
        slope, intercept = _fit_line(np.asarray([]), np.asarray([]))
        assert slope == 0.0 and intercept == 0.0
