"""The coordinator: query broadcast and answer concatenation (Section 4).

"As queries arrive from different clients, they are broadcast by the
coordinator to all nodes, with each node querying its data.  The individual
query responses from each structure are concatenated by the coordinator node
and sent back to the user."

The coordinator drives **node handles** — anything implementing the node
handle protocol (see :mod:`repro.cluster.node`): in-process
:class:`ClusterNode` objects (the simulated deployment, kept for the
perf model) or :class:`~repro.cluster.client.RemoteNodeHandle` stubs
speaking the binary protocol to real :class:`NodeServer` processes.  The
broadcast/merge logic is identical for both.

``query_batch`` broadcasts **concurrently**: every node's request is in
flight at once on a thread pool from :mod:`repro.parallel`, so broadcast
wall-clock tracks the *slowest* node (the modeled
``critical_path_seconds``) instead of the sum over nodes.  For in-process
nodes the per-node kernels release the GIL in their numpy calls, so the
overlap is real on multi-core hosts; for remote handles each thread just
blocks on its socket.

Per-node wall-clock is measured for every broadcast so the Figure 9
load-balance ratio (max/avg ≤ 1.3) can be reported.  The
:class:`NetworkModel` charges the query broadcast through its
``broadcast`` primitive (one modeled send per node) and each node's
response through ``send``, which yields the paper's "communication is
<1 % of overall runtime" accounting; remote handles additionally count
*real* bytes on the wire (``transport_totals``) so modeled and measured
traffic can be compared.

A node that fails mid-broadcast (a dead server process, a torn
connection, a server-side exception) surfaces as a per-node entry in
``BroadcastOutcome.node_errors`` — the broadcast itself completes with
the answers of the surviving nodes.

The coordinator is safe to drive from **multiple threads at once** (the
serving gateway of :mod:`repro.serve` dispatches overlapping
micro-batches): the broadcast thread pool is acquired under a lock — a
sibling broadcast finding the cached pool busy runs on a private
short-lived pool instead of swap-closing the shared one mid-flight — the
:class:`NetworkModel` counters are internally locked, per-node request
framing is serialized by each handle's own request lock, and in-process
nodes serialize their engine access per node (concurrency across nodes
is preserved either way).  ``tests/cluster/test_coordinator_concurrency.py``
hammers both deployments for bit-identity with serial execution.

The coordinator itself stays write-agnostic: mutations (inserts,
deletes, retirement) are the :class:`PLSHCluster` object's job, which
serializes them under its write lock and holds its retirement gate's
read side across every broadcast it routes here — so a fan-out launched
through the cluster can never observe a half-retired window.  Callers
driving a bare coordinator concurrently with handle mutation forgo that
gate and get per-node atomicity only.

With PR 5 the coordinator is fault-aware: it only fans out to
**broadcast-ready** handles (circuit breaker CLOSED — see
:mod:`repro.cluster.health`), drives :class:`ReplicaGroup` shards exactly
like plain nodes (failover happens *inside* the group, invisibly), and
reports honestly when data went unsearched: any data-holding shard that
was skipped (breaker open) or failed mid-broadcast lands in
``BroadcastOutcome.missing_shards`` and flips ``degraded`` — the answer
is then exact over the *surviving* shards, and the caller knows exactly
which slice of the corpus was missing.  ``health()`` snapshots every
handle's state machine for monitoring.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from repro.cluster.network import NetworkModel
from repro.core.query import QueryResult
from repro.parallel import ThreadExecutor
from repro.sparse.csr import CSRMatrix

__all__ = ["Coordinator", "BroadcastOutcome"]


class BroadcastOutcome:
    """One broadcast query: merged result + per-node timing and comm cost.

    ``node_errors`` maps node id → error string for nodes that failed to
    answer this broadcast (empty when every live node answered);
    ``wall_seconds`` is the measured wall-clock of this broadcast's
    fan-out — for a vectorized batch, the amortized (1/B) share of the
    batch fan-out.

    ``missing_shards`` lists data-holding shards whose answers are absent
    from ``result`` — skipped before fan-out (circuit breaker open) or
    failed during it.  ``degraded`` is the honest-serving flag: False
    means ``result`` is exact over the full corpus; True means exact over
    every shard *except* those listed.  A degraded broadcast still
    returns normally — partial answers plus the report, never an
    exception.
    """

    def __init__(
        self,
        result: QueryResult,
        node_seconds: dict[int, float],
        network_seconds: float,
        *,
        node_errors: dict[int, str] | None = None,
        wall_seconds: float | None = None,
        missing_shards: list[int] | None = None,
    ) -> None:
        self.result = result
        self.node_seconds = node_seconds
        self.network_seconds = network_seconds
        self.node_errors = dict(node_errors) if node_errors else {}
        self.wall_seconds = wall_seconds
        self.missing_shards = sorted(missing_shards) if missing_shards else []

    @property
    def ok(self) -> bool:
        """True when every live node answered this broadcast."""
        return not self.node_errors

    @property
    def degraded(self) -> bool:
        """True when some data-holding shard went unsearched — the answer
        is exact over the surviving shards only (see missing_shards)."""
        return bool(self.missing_shards)

    @property
    def critical_path_seconds(self) -> float:
        """Modeled parallel latency: slowest node + communication."""
        slowest = max(self.node_seconds.values()) if self.node_seconds else 0.0
        return slowest + self.network_seconds


def _query_node(_state, node, q_cols, q_vals, radius, time_range):
    """Fan-out task: one node's single-query answer, timed, errors caught."""
    start = time.perf_counter()
    try:
        res = node.query(q_cols, q_vals, radius=radius, time_range=time_range)
        return node, res, time.perf_counter() - start, None
    except Exception as exc:
        return node, None, time.perf_counter() - start, exc


def _query_node_batch(
    _state, node, queries, radius, workers, backend, mode, time_range
):
    """Fan-out task: one node's whole-batch answer, timed, errors caught."""
    start = time.perf_counter()
    try:
        results = node.query_batch(
            queries, radius=radius, workers=workers, backend=backend,
            mode=mode, time_range=time_range,
        )
        return node, results, time.perf_counter() - start, None
    except Exception as exc:
        return node, None, time.perf_counter() - start, exc


class Coordinator:
    """Broadcasts queries to cluster node handles and merges partial answers."""

    #: bytes per reported match in a node response: int32 id + float32
    #: dist (the transport narrows int64 ids on the wire; float16 scores
    #: would make this 6 — the model charges the default config).
    RESPONSE_BYTES_PER_MATCH = 8
    #: bytes per query row in a response (the int32 result indptr entry).
    RESPONSE_BYTES_PER_ROW = 4
    #: bytes per CSR nonzero in a query-batch request: int32 col + f32 val.
    REQUEST_BYTES_PER_NNZ = 8
    #: bytes per query row in a request (the int32 CSR indptr entry).
    REQUEST_BYTES_PER_ROW = 4
    #: per-message framing + meta overhead: 8B frame length, 1B code,
    #: 4B meta length, ~70B meta JSON, 1B array count, ~10B per array
    #: header × 3 arrays.  Calibrated against the measured framed-TCP
    #: wire (tests/cluster/test_rpc_cluster.py holds model and measured
    #: within 2x of each other).
    MESSAGE_HEADER_BYTES = 112

    def __init__(
        self,
        nodes: list,
        network: NetworkModel,
        *,
        concurrent: bool = True,
    ) -> None:
        self.nodes = nodes
        self.network = network
        #: False forces the pre-transport serial fan-out (kept so the
        #: concurrency win is measurable; bench_fig9 compares the two).
        self.concurrent = concurrent
        self._pool: ThreadExecutor | None = None
        #: guards the cached broadcast pool: ``_pool_busy`` marks a
        #: broadcast currently running on it, so a concurrent broadcast
        #: never swap-closes a pool with sibling tasks in flight (it runs
        #: on a private pool instead) and ``close`` waits the owner out.
        self._pool_cond = threading.Condition()
        self._pool_busy = False

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Release the broadcast thread pool (idempotent).  Waits for a
        broadcast currently on the cached pool rather than shutting the
        pool down under it."""
        with self._pool_cond:
            while self._pool_busy:
                self._pool_cond.wait()
            if self._pool is not None:
                self._pool.close()
                self._pool = None

    def __enter__(self) -> "Coordinator":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def _live_nodes(self) -> list:
        """Nodes worth broadcasting to: broadcast-ready (breaker CLOSED,
        for remote handles; replica groups are ready while any replica
        is) and non-empty.  Tripped handles are skipped without probing —
        recovery is the heartbeat's job, so a dead node costs each
        broadcast nothing after the failure that tripped it."""
        live, _ = self._partition_nodes()
        return live

    def _partition_nodes(self) -> tuple[list, list[int]]:
        """Split nodes into (broadcast-ready and non-empty, missing shard
        ids).  A shard is *missing* when it holds data — by its handle's
        last-known count, which survives the node's death — but cannot be
        queried right now; empty skipped nodes are not missing (nothing
        of theirs is absent from the answer)."""
        live: list = []
        missing: list[int] = []
        for node in self.nodes:
            ready = getattr(
                node, "broadcast_ready", getattr(node, "alive", True)
            )
            if ready and node.n_items > 0:
                live.append(node)
            elif not ready and node.n_items > 0:
                missing.append(node.node_id)
        return live, missing

    def _acquire_pool(self, n_tasks: int) -> tuple[ThreadExecutor, bool]:
        """Claim the cached broadcast pool, or build a private one.

        Returns ``(pool, temporary)``.  The cached pool is handed out to
        at most one broadcast at a time; if it is too small it is
        replaced *here*, under the lock, where no sibling broadcast can
        hold tasks on it.  A broadcast arriving while the cached pool is
        busy gets a temporary pool torn down by :meth:`_release_pool` —
        correctness over reuse for the contended case.
        """
        with self._pool_cond:
            if not self._pool_busy:
                pool = self._pool
                if pool is not None and (pool.closed or pool.workers < n_tasks):
                    pool.close()
                    pool = self._pool = None
                if pool is None:
                    pool = self._pool = ThreadExecutor(None, n_tasks)
                self._pool_busy = True
                return pool, False
        return ThreadExecutor(None, n_tasks), True

    def _release_pool(self, pool: ThreadExecutor, temporary: bool) -> None:
        if temporary:
            pool.close()
            return
        with self._pool_cond:
            self._pool_busy = False
            self._pool_cond.notify_all()

    def _fan_out(self, fn, tasks: list[tuple]) -> list:
        """Run one task per node, all in flight at once where possible."""
        if len(tasks) <= 1 or not self.concurrent:
            return [fn(None, *task) for task in tasks]
        pool, temporary = self._acquire_pool(len(tasks))
        try:
            return pool.run(fn, tasks)
        finally:
            self._release_pool(pool, temporary)

    # -- monitoring --------------------------------------------------------

    def node_stats(self) -> list[dict]:
        """Per-node monitoring rows (sizes, deletions, merge state).

        ``merge_in_flight`` reports nodes currently overlapping a
        delta→static merge with query serving; the broadcast path needs
        no special casing for them — every node keeps answering against
        ``static + frozen + fresh`` with stable local ids, so merged
        broadcast answers are bit-identical whether or not any node is
        mid-merge.
        """
        return [node.stats() for node in self.nodes]

    def health(self) -> list[dict]:
        """Per-shard health rows: breaker/state-machine snapshots for
        remote handles and replica groups; in-process nodes (which cannot
        fail independently of this process) report a static UP row."""
        rows = []
        for node in self.nodes:
            snap = getattr(node, "health_snapshot", None)
            if snap is not None:
                rows.append(snap())
            else:
                rows.append(
                    {
                        "node_id": node.node_id,
                        "state": "up",
                        "breaker": "closed",
                        "n_items": node.n_items,
                    }
                )
        return rows

    def transport_totals(self) -> dict | None:
        """Real traffic summed over remote handles, or ``None`` when
        every node is in-process.  ``bytes_*`` are TCP socket bytes,
        ``shm_bytes_*`` are array payloads moved through shared-memory
        rings, and ``total_bytes`` is their sum — the honest number to
        compare against ``network.stats`` (shm payloads are moved bytes
        even though they never touch a socket)."""
        totals = {
            "n_messages": 0,
            "bytes_sent": 0,
            "bytes_received": 0,
            "shm_bytes_sent": 0,
            "shm_bytes_received": 0,
        }
        saw_remote = False
        for node in self.nodes:
            stats = getattr(node, "transport_stats", None)
            if stats is None:
                continue
            saw_remote = True
            totals["n_messages"] += stats.n_sent + stats.n_received
            totals["bytes_sent"] += stats.bytes_sent
            totals["bytes_received"] += stats.bytes_received
            totals["shm_bytes_sent"] += stats.shm_bytes_sent
            totals["shm_bytes_received"] += stats.shm_bytes_received
        if not saw_remote:
            return None
        totals["total_bytes"] = (
            totals["bytes_sent"] + totals["bytes_received"]
            + totals["shm_bytes_sent"] + totals["shm_bytes_received"]
        )
        return totals

    def reset_transport_stats(self) -> None:
        """Zero every remote handle's byte counters (batch isolation:
        reset, run one broadcast, read :meth:`transport_totals`)."""
        for node in self.nodes:
            reset = getattr(node, "reset_transport_stats", None)
            if reset is not None:
                reset()

    # -- broadcast ---------------------------------------------------------

    def query(
        self,
        q_cols: np.ndarray,
        q_vals: np.ndarray,
        *,
        radius: float | None = None,
        time_range: tuple[int, int] | None = None,
    ) -> BroadcastOutcome:
        """Broadcast one query and concatenate every node's answer.

        ``time_range=(t0, t1)`` forwards a half-open insert-time window to
        every node; nodes prune non-overlapping partitions and screen the
        rest exactly, so the merged answer equals the time-windowed oracle."""
        q_cols = np.asarray(q_cols, dtype=np.int64)
        q_vals = np.asarray(q_vals, dtype=np.float32)
        # The single-query op is not dtype-compacted: int64 col + f32 val.
        query_bytes = self.MESSAGE_HEADER_BYTES + 12 * q_cols.size
        live, missing = self._partition_nodes()
        net_seconds = (
            self.network.broadcast(len(live), query_bytes) if live else 0.0
        )

        wall_start = time.perf_counter()
        rows = self._fan_out(
            _query_node,
            [(node, q_cols, q_vals, radius, time_range) for node in live],
        )
        wall = time.perf_counter() - wall_start

        node_seconds: dict[int, float] = {}
        node_errors: dict[int, str] = {}
        ids: list[np.ndarray] = []
        dists: list[np.ndarray] = []
        for node, res, seconds, error in rows:
            if error is not None:
                node_errors[node.node_id] = f"{type(error).__name__}: {error}"
                continue
            node_seconds[node.node_id] = seconds
            # Uncompacted response: int64 id + f32 dist per match.
            net_seconds += self.network.send(
                self.MESSAGE_HEADER_BYTES + 12 * len(res)
            )
            ids.append(res.indices)
            dists.append(res.distances)

        merged = _merge_results(ids, dists)
        return BroadcastOutcome(
            merged, node_seconds, net_seconds,
            node_errors=node_errors, wall_seconds=wall,
            missing_shards=missing + list(node_errors),
        )

    def query_batch(
        self,
        queries: CSRMatrix,
        *,
        radius: float | None = None,
        mode: str | None = None,
        workers: int | None = None,
        backend: str | None = None,
        time_range: tuple[int, int] | None = None,
    ) -> list[BroadcastOutcome]:
        """Broadcast a whole query batch to every node **concurrently**.

        ``mode="vectorized"`` (the default) ships the batch to each node as
        one message and runs the node's vectorized batch kernel; all node
        requests are in flight at once (see module docstring), so the
        broadcast wall-clock tracks the slowest node.  Per-query
        ``BroadcastOutcome``s report the amortized (1/B) share of each
        node's batch wall-clock and of the network cost, which keeps the
        Figure 9 load-balance ratio (max/avg over nodes) meaningful.
        ``mode="loop"`` broadcasts query-by-query — serial across queries,
        though each per-query broadcast still fans out across nodes unless
        ``concurrent=False`` — and ``workers``/``backend`` apply to the
        vectorized path only.

        ``workers > 1`` additionally shards each node's batch across cores
        through that node's persistent worker pool (the paper's two-level
        parallelism: across nodes, then across threads within a node).
        """
        if mode is None:
            mode = "vectorized"
        if mode == "loop":
            return [
                self.query(*queries.row(r), radius=radius, time_range=time_range)
                for r in range(queries.n_rows)
            ]
        if mode not in ("vectorized", "pipelined"):
            raise ValueError(
                f"unknown mode {mode!r}; expected 'vectorized', "
                f"'pipelined' or 'loop'"
            )
        n = queries.n_rows
        if n == 0:
            return []
        # One broadcast message per node carries the whole CSR batch
        # (compact wire dtypes: int32 cols + f32 vals + int32 indptr).
        batch_bytes = (
            self.MESSAGE_HEADER_BYTES
            + self.REQUEST_BYTES_PER_NNZ * queries.nnz
            + self.REQUEST_BYTES_PER_ROW * (n + 1)
        )
        live, missing = self._partition_nodes()
        net_seconds = (
            self.network.broadcast(len(live), batch_bytes) if live else 0.0
        )
        if self.concurrent and len(live) > 1:
            # Warm per-node worker pools serially: a pool fork()ed while a
            # sibling node's broadcast thread is mid numpy kernel inherits
            # locks held by threads that don't exist in the child.
            for node in live:
                prepare = getattr(node, "prepare_workers", None)
                if prepare is not None:
                    prepare(workers, backend)

        wall_start = time.perf_counter()
        rows = self._fan_out(
            _query_node_batch,
            [
                (node, queries, radius, workers, backend, mode, time_range)
                for node in live
            ],
        )
        wall = time.perf_counter() - wall_start

        node_batch_seconds: dict[int, float] = {}
        node_errors: dict[int, str] = {}
        per_node: list[list[QueryResult]] = []
        for node, results, seconds, error in rows:
            if error is not None:
                node_errors[node.node_id] = f"{type(error).__name__}: {error}"
                continue
            node_batch_seconds[node.node_id] = seconds
            n_matches = sum(len(res) for res in results)
            net_seconds += self.network.send(
                self.MESSAGE_HEADER_BYTES
                + self.RESPONSE_BYTES_PER_MATCH * n_matches
                + self.RESPONSE_BYTES_PER_ROW * (n + 1)
            )
            per_node.append(results)

        share = {nid: secs / n for nid, secs in node_batch_seconds.items()}
        net_share = net_seconds / n
        wall_share = wall / n
        missing_all = missing + list(node_errors)
        outcomes: list[BroadcastOutcome] = []
        for r in range(n):
            merged = _merge_results(
                [results[r].indices for results in per_node],
                [results[r].distances for results in per_node],
            )
            outcomes.append(
                BroadcastOutcome(
                    merged, dict(share), net_share,
                    node_errors=node_errors, wall_seconds=wall_share,
                    missing_shards=missing_all,
                )
            )
        return outcomes


def _merge_results(
    ids: list[np.ndarray], dists: list[np.ndarray]
) -> QueryResult:
    """Concatenate per-node partial answers (node order, hence global-id
    order within each node block — deterministic for bit-identity checks)."""
    if ids:
        return QueryResult(np.concatenate(ids), np.concatenate(dists))
    return QueryResult(
        np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float32)
    )
