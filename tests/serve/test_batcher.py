"""MicroBatcher semantics: when does a batch flush, and why.

The contract: a batch flushes at ``max_batch`` (full) or when its OLDEST
query has waited ``max_delay`` (timeout) — whichever first — and
``drain()`` flushes the remainder and waits out every in-flight batch.
No pytest-asyncio in the image: each test drives its own loop with
``asyncio.run``.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.serve.batcher import MicroBatcher, PendingQuery


def _item(loop) -> PendingQuery:
    return PendingQuery(
        np.asarray([0], dtype=np.int64),
        np.asarray([1.0], dtype=np.float32),
        None,
        "t",
        loop.create_future(),
    )


def _recording_runner(batches, *, delay: float = 0.0):
    async def run_batch(batch):
        if delay:
            await asyncio.sleep(delay)
        batches.append(batch)
        for item in batch:
            item.future.set_result(len(batch))
    return run_batch


def test_flush_on_full_is_immediate():
    async def main():
        batches: list = []
        # max_delay absurdly long: only the size trigger can flush.
        batcher = MicroBatcher(
            _recording_runner(batches), max_batch=3, max_delay=60.0
        )
        loop = asyncio.get_running_loop()
        items = [_item(loop) for _ in range(7)]
        for item in items:
            batcher.submit(item)
        await asyncio.gather(*[i.future for i in items[:6]])
        assert [len(b) for b in batches] == [3, 3]
        assert batcher.stats.flush_full == 2
        assert batcher.stats.flush_timeout == 0
        assert batcher.n_pending == 1  # the 7th waits for its timer
        await batcher.drain()
        assert items[6].future.result() == 1
        assert batcher.stats.flush_drain == 1

    asyncio.run(main())


def test_flush_on_timeout_bounds_oldest_wait():
    async def main():
        batches: list = []
        batcher = MicroBatcher(
            _recording_runner(batches), max_batch=1000, max_delay=0.02
        )
        loop = asyncio.get_running_loop()
        first = _item(loop)
        batcher.submit(first)
        # A second query arriving inside the budget joins the SAME batch
        # (the clock started with the first query, not this one).
        await asyncio.sleep(0.005)
        second = _item(loop)
        batcher.submit(second)
        assert await first.future == 2
        assert await second.future == 2
        assert len(batches) == 1 and len(batches[0]) == 2
        assert batcher.stats.flush_timeout == 1
        assert batcher.stats.flush_full == 0

    asyncio.run(main())


def test_drain_flushes_remainder_and_waits():
    async def main():
        batches: list = []
        batcher = MicroBatcher(
            _recording_runner(batches, delay=0.05),
            max_batch=1000,
            max_delay=60.0,
        )
        loop = asyncio.get_running_loop()
        items = [_item(loop) for _ in range(4)]
        for item in items:
            batcher.submit(item)
        await batcher.drain()
        # After drain: everything flushed AND resolved (the slow dispatch
        # finished before drain returned).
        assert len(batches) == 1
        assert all(i.future.done() for i in items)
        assert batcher.stats.flush_drain == 1
        assert batcher.stats.n_queries == 4
        assert batcher.stats.mean_batch_size == 4.0

    asyncio.run(main())


def test_concurrent_batch_cap():
    async def main():
        running = 0
        peak = 0

        async def run_batch(batch):
            nonlocal running, peak
            running += 1
            peak = max(peak, running)
            await asyncio.sleep(0.02)
            running -= 1
            for item in batch:
                item.future.set_result(None)

        batcher = MicroBatcher(
            run_batch, max_batch=2, max_delay=60.0, max_concurrent=2
        )
        loop = asyncio.get_running_loop()
        items = [_item(loop) for _ in range(12)]  # 6 full batches
        for item in items:
            batcher.submit(item)
        await batcher.drain()
        assert all(i.future.done() for i in items)
        assert peak <= 2
        assert batcher.stats.flush_full == 6

    asyncio.run(main())


def test_constructor_validation():
    async def noop(batch):
        pass

    with pytest.raises(ValueError):
        MicroBatcher(noop, max_batch=0)
    with pytest.raises(ValueError):
        MicroBatcher(noop, max_delay=-1.0)
    with pytest.raises(ValueError):
        MicroBatcher(noop, max_concurrent=0)
