"""Honest serving through the gateway under node failure.

A dead or stalled node must never stall the gateway: the broadcast
layer's deadlines and circuit breakers turn it into per-query
``degraded`` answers (with the missing shard named), and the gateway
keeps flushing batches for everyone else.  These run against real
spawned node-server processes with crash/hang injection.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro import PLSHParams
from repro.cluster import spawn_local_cluster
from repro.parallel import fork_available
from repro.serve import Gateway, GatewayClient

PARAMS = PLSHParams(k=8, m=6, radius=0.9, seed=77)

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="spawn_local_cluster requires fork()"
)


@pytest.fixture()
def rpc_cluster(small_vectors):
    cluster = spawn_local_cluster(
        3, 250, small_vectors.n_cols, PARAMS,
        insert_window=2, op_timeout=1.0, retries=0,
        heartbeat_interval=0.25, health_cooldown=0.5,
    )
    # 400 rows stay inside the first insert window (nodes 0 and 1, 200
    # each) — no retirement, so killing node 0 removes real data.
    cluster.insert(small_vectors.slice_rows(0, 400))
    try:
        yield cluster
    finally:
        cluster.close()


def test_killed_node_degrades_answers_not_gateway(rpc_cluster, small_vectors):
    with Gateway(rpc_cluster, small_vectors.n_cols) as gw:
        with GatewayClient(gw.host, gw.port) as client:
            cols, vals = small_vectors.row(2)
            healthy = client.query(cols, vals)
            assert not healthy.degraded

            rpc_cluster.kill_node(0)

            degraded = client.query(cols, vals)
            assert degraded.degraded
            assert degraded.missing_shards
            # The survivors' shards still answer: the degraded result is
            # a subset of the healthy one, never garbage.
            assert set(degraded.ids).issubset(set(healthy.ids))

            # The gateway itself is unharmed: subsequent queries answer
            # promptly (breaker open, no deadline re-paid per query).
            start = time.perf_counter()
            for r in range(4):
                cols, vals = small_vectors.row(r)
                answer = client.query(cols, vals)
                assert answer.degraded
            assert time.perf_counter() - start < 2.0
            assert client.ping()
            assert client.stats()["degraded"] >= 5


def test_paused_node_costs_one_deadline_not_a_stall(
    rpc_cluster, small_vectors
):
    """A SIGSTOPped node is a *hang*: the first broadcast through it pays
    the 1s op deadline, the breaker trips, and everything after answers
    fast and degraded — the gateway never wedges behind the stall."""
    with Gateway(rpc_cluster, small_vectors.n_cols) as gw:
        with GatewayClient(gw.host, gw.port) as client:
            cols, vals = small_vectors.row(5)
            assert not client.query(cols, vals).degraded

            rpc_cluster.pause_node(1)
            try:
                start = time.perf_counter()
                first = client.query(cols, vals)
                first_elapsed = time.perf_counter() - start
                assert first.degraded
                # Paid roughly one deadline, not an unbounded wait.
                assert first_elapsed < 5.0

                start = time.perf_counter()
                after = client.query(cols, vals)
                assert after.degraded
                assert time.perf_counter() - start < 1.0
            finally:
                rpc_cluster.resume_node(1)

            # Recovery: the resumed node rejoins on the next probe-able
            # broadcast (the breaker's cooldown handles re-admission);
            # answers stay well-formed throughout.
            deadline = time.monotonic() + 10.0
            recovered = False
            while time.monotonic() < deadline:
                answer = client.query(cols, vals)
                if not answer.degraded:
                    recovered = True
                    break
                time.sleep(0.25)
            assert recovered, "paused node never rejoined after SIGCONT"
            np.testing.assert_array_equal(
                np.sort(answer.ids),
                np.sort(client.query(cols, vals).ids),
            )
