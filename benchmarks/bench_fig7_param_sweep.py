"""Figure 7 — estimated vs actual query runtimes across (k, m).

Paper: for (k, m) in {(12,21), (14,29), (16,40), (18,55)} on Twitter and
Wikipedia data, the model tracks the measured 1000-query runtime, and the
minimum sits at (16, 40) for the 10.5 M-tweet corpus.

This bench sweeps the same four pairs on both synthetic corpora (scaled),
printing estimated vs actual per pair.  Shape to check: the model ranks the
pairs in the same order as the measurement, and both curves are U-ish —
small k explodes collisions, large k pays for more tables.
"""

from __future__ import annotations

import os

from repro import PLSHIndex, PLSHParams
from repro.bench.reporting import format_table, print_section
from repro.bench.runner import measure
from repro.perfmodel.calibrate import calibrate_host
from repro.perfmodel.collisions import estimate_collision_stats

PAPER_PAIRS = [(12, 21), (14, 29), (16, 40), (18, 55)]


def _sweep(workload, pairs, seed):
    n_cap = int(os.environ.get("PLSH_BENCH_FIG7_N", "30000"))
    vectors = workload.vectors.slice_rows(0, min(workload.n, n_cap))
    queries = workload.queries.slice_rows(0, min(100, workload.queries.n_rows))

    calib_params = PLSHParams(k=14, m=29, radius=0.9, seed=seed)
    calib = calibrate_host(
        vectors.slice_rows(0, max(vectors.n_rows // 4, 1000)),
        calib_params,
        n_calibration_queries=30,
        seed=seed,
    )

    rows = []
    for k, m in pairs:
        params = PLSHParams(k=k, m=m, radius=0.9, seed=seed)
        stats = estimate_collision_stats(
            vectors, queries, k, m,
            n_query_sample=queries.n_rows, n_data_sample=500, seed=seed,
        )
        predicted = calib.query_cost(
            vectors.n_rows,
            stats.expected_collisions,
            stats.expected_unique,
            n_tables=params.n_tables,
        )
        index = PLSHIndex(vectors.n_cols, params).build(vectors)
        engine = index.engine
        assert engine is not None
        engine.query_batch(queries, mode="loop")  # warm
        # mode="loop": the cost model predicts the per-query pipeline.
        _, actual_s = measure(lambda e=engine: e.query_batch(queries, mode="loop"))
        per_query = actual_s / queries.n_rows
        rows.append(
            [f"({k},{m})", params.n_tables, predicted.total_s * 1e3,
             per_query * 1e3,
             abs(predicted.total_s - per_query) / per_query * 100]
        )
    return rows, vectors.n_rows, queries.n_rows


def test_fig7_twitter(benchmark, twitter):
    rows, n, nq = _sweep(twitter, PAPER_PAIRS, seed=17)
    print_section(
        f"Figure 7 — (k, m) sweep, Twitter-like (N={n:,}, {nq} queries)",
        format_table(
            ["(k,m)", "L", "est ms/query", "actual ms/query", "error %"], rows
        )
        + "\npaper: model tracks actual within 15 % on Twitter data",
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    # Shape: estimates must rank the pairs like the measurements do, at
    # least for the extremes.
    est = [r[2] for r in rows]
    act = [r[3] for r in rows]
    assert (est.index(min(est)) == act.index(min(act))) or (
        abs(est.index(min(est)) - act.index(min(act))) <= 1
    )


def test_fig7_wikipedia(benchmark, wikipedia):
    rows, n, nq = _sweep(wikipedia, PAPER_PAIRS, seed=18)
    print_section(
        f"Figure 7 — (k, m) sweep, Wikipedia-like (N={n:,}, {nq} queries)",
        format_table(
            ["(k,m)", "L", "est ms/query", "actual ms/query", "error %"], rows
        )
        + "\npaper: model tracks actual within 25 % on Wikipedia data",
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert all(r[3] > 0 for r in rows)
