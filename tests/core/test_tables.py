"""StaticTableSet tests: structure, lookups, batched collision gather."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.hashing import AllPairsHasher
from repro.core.tables import StaticTableSet
from repro.params import PLSHParams


@pytest.fixture(scope="module")
def setup():
    params = PLSHParams(k=6, m=5, seed=0)
    rng = np.random.default_rng(0)
    u = rng.integers(0, params.n_buckets_per_level, size=(200, params.m)).astype(
        np.uint16
    )
    tables = StaticTableSet.build(u, params)
    return params, u, tables


class TestBuild:
    def test_shapes(self, setup):
        params, u, tables = setup
        assert tables.n_tables == params.n_tables
        assert tables.n_items == 200
        assert tables.entries.shape == (params.n_tables, 200)
        assert tables.offsets.shape == (params.n_tables, params.n_buckets + 1)

    def test_validate_passes(self, setup):
        _, _, tables = setup
        tables.validate()

    def test_each_bucket_holds_matching_keys(self, setup):
        params, u, tables = setup
        hasher_pairs = params.table_pairs()
        b = params.bits_per_function
        for l in (0, 3, params.n_tables - 1):
            i, j = hasher_pairs[l]
            keys = (u[:, i].astype(np.uint32) << b) | u[:, j]
            for key in np.unique(keys):
                bucket = tables.bucket(l, int(key))
                assert set(bucket.tolist()) == set(
                    np.nonzero(keys == key)[0].tolist()
                )

    def test_unknown_strategy_raises(self, setup):
        params, u, _ = setup
        with pytest.raises(ValueError):
            StaticTableSet.build(u, params, strategy="quantum")

    def test_wrong_u_shape_raises(self, setup):
        params, u, _ = setup
        with pytest.raises(ValueError):
            StaticTableSet.build(u[:, :2], params)

    def test_nbytes_matches_equation_7_4(self, setup):
        params, _, tables = setup
        expected = (params.n_tables * 200 + params.n_buckets * params.n_tables) * 4
        # offsets have one extra column per table beyond the 2^k of Eq 7.4.
        assert abs(tables.nbytes - expected) <= params.n_tables * 4


class TestCollisions:
    def test_matches_per_table_concatenation(self, setup):
        params, u, tables = setup
        rng = np.random.default_rng(7)
        query_u = rng.integers(
            0, params.n_buckets_per_level, size=params.m
        ).astype(np.uint16)
        b = params.bits_per_function
        keys = np.asarray(
            [
                (int(query_u[i]) << b) | int(query_u[j])
                for i, j in params.table_pairs()
            ],
            dtype=np.int64,
        )
        batched = tables.collisions(keys)
        per_table = tables.collisions_per_table(keys)
        expected = np.concatenate([p for p in per_table]) if per_table else []
        np.testing.assert_array_equal(batched, expected)

    def test_empty_buckets_give_empty_result(self, setup):
        params, _, tables = setup
        # Probe an impossible key pattern by using a key with no occupants:
        # find one empty bucket per table.
        keys = []
        for l in range(params.n_tables):
            counts = np.diff(tables.offsets[l])
            empty = int(np.nonzero(counts == 0)[0][0])
            keys.append(empty)
        assert tables.collisions(np.asarray(keys)).size == 0

    def test_wrong_key_count_raises(self, setup):
        _, _, tables = setup
        with pytest.raises(ValueError):
            tables.collisions(np.asarray([0, 1]))


class TestValidation:
    def test_bad_offsets_rejected(self, setup):
        params, u, tables = setup
        with pytest.raises(ValueError):
            StaticTableSet(
                tables.entries, tables.offsets[:, :-1], params
            )

    def test_validate_catches_corruption(self, setup):
        params, u, tables = setup
        corrupted = StaticTableSet(
            tables.entries.copy(), tables.offsets.copy(), params
        )
        corrupted.entries[0, 0] = corrupted.entries[0, 1]  # break permutation
        with pytest.raises(ValueError):
            corrupted.validate()

    def test_empty_tables(self):
        params = PLSHParams(k=4, m=3, seed=0)
        tables = StaticTableSet.build(
            np.empty((0, 3), dtype=np.uint16), params
        )
        tables.validate()
        keys = np.zeros(params.n_tables, dtype=np.int64)
        assert tables.collisions(keys).size == 0
