#!/usr/bin/env python
"""Streaming ingest: a single node riding a tweet firehose (Section 6).

Simulates the paper's streaming deployment on one node: batches of new
tweets arrive continuously, land in the insert-optimized delta table, and
are periodically merged into the static structure when the delta reaches
eta = 10 % of capacity.  Queries are served throughout — including *during*
merges: with ``overlap_merges=True`` a threshold crossing freezes the
delta and builds the merged tables on a background thread
(``begin_merge``), queries keep answering against
``static + frozen + fresh`` with bit-identical results, and the finished
build lands in a short ``commit_merge`` swap on a later insert — no batch
ever stalls for the full rebuild (the paper's concurrent-serving scenario,
Figure 11).  A deletion shows the tombstone bitvector at work; tombstones
are keyed by stable local ids, so they apply mid-merge without replay.

Run:  python examples/streaming_firehose.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import PLSHParams, SyntheticCorpus
from repro.streaming.node import StreamingPLSH

CAPACITY = 40_000
BATCH = 2_000
SEED = 11


def main() -> None:
    corpus = SyntheticCorpus.generate(CAPACITY, seed=SEED)
    vectors = corpus.vectors()
    params = PLSHParams(k=16, m=16, radius=0.9, seed=SEED)

    node = StreamingPLSH(
        corpus.vocab_size,
        params,
        capacity=CAPACITY,
        delta_fraction=0.1,  # eta: merge when delta reaches 10 % of C
        overlap_merges=True,  # merges build off the serving path
    )
    print(
        f"streaming node: capacity {CAPACITY:,}, merge threshold "
        f"{node.delta_threshold:,} (eta=10%), non-blocking merges"
    )

    query_ids, queries = corpus.query_vectors(5, seed=SEED + 1)
    n_batches = CAPACITY // BATCH
    for b in range(n_batches):
        start = time.perf_counter()
        merges_before = node.n_merges
        node.insert_batch(vectors.slice_rows(b * BATCH, (b + 1) * BATCH))
        elapsed = (time.perf_counter() - start) * 1e3
        events = ""
        if node.n_merges > merges_before:
            events += " [committed background merge]"
        if node.merge_in_flight:
            events += " [merge building in background]"
        if b % 4 == 0 or events:
            print(
                f"batch {b + 1:>3}/{n_batches}: insert {BATCH} docs in "
                f"{elapsed:6.1f} ms; static={node.n_static:>6,} "
                f"frozen={node.n_frozen:>5,} delta={node.n_delta:>5,}{events}"
            )
        if b == n_batches // 2:
            # Mid-stream query: answers span static + delta seamlessly.
            res = node.query(*queries.row(0))
            print(
                f"    mid-stream query -> {len(res)} neighbors "
                f"(static+delta combined)"
            )

    node.commit_merge()  # settle any build still in flight
    build_s = node.times["merge_build"] if "merge_build" in node.times else 0.0
    commit_s = node.times["merge_commit"] if "merge_commit" in node.times else 0.0
    print(
        f"\ningest complete: {node.n_total:,} docs, {node.n_merges} merges, "
        f"insert time {node.times['insert']:.2f}s; merge builds spent "
        f"{build_s:.2f}s on the background thread, commits "
        f"{commit_s:.2f}s on the serving path"
    )

    # Deletion: tombstone a document and show it disappears from results.
    target = int(query_ids[1])
    before = node.query(*queries.row(1))
    node.delete(np.asarray([target]))
    after = node.query(*queries.row(1))
    print(
        f"\ndeleted doc {target}: in results before={target in before.indices}, "
        f"after={target in after.indices} "
        f"({node.deletions.n_deleted} tombstone)"
    )

    # Steady-state query benchmark.
    start = time.perf_counter()
    node.query_batch(queries)
    per_query = (time.perf_counter() - start) / queries.n_rows * 1e3
    print(f"steady-state query latency: {per_query:.2f} ms/query")


if __name__ == "__main__":
    main()
