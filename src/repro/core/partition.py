"""Partitioning primitives and table-construction strategies (Section 5.1.2).

A static PLSH table is a permutation of the data indexes grouped by table
key (``entries``) plus bucket boundaries (``offsets``).  Building it is a
stable counting partition; the paper's contribution is *how* the L
partitions are produced:

* ``one_level``   — each table independently partitions on its full k-bit
  key (the paper's unoptimized baseline; suffers TLB pressure from 2^k
  buckets, modeled here by the 2^k-bucket bookkeeping cost).
* ``two_level``   — each table partitions on the first k/2 bits, then each
  first-level bucket on the second k/2 bits (MSB-radix style; 2^{k/2}
  buckets per pass).
* ``shared``      — the production strategy: because tables (i, j) and
  (i, j') share the function u_i, first-level work is shared.  We realize
  the sharing as an LSD radix: the pass over the *second* function u_j is
  computed once per function and reused by every table that uses u_j,
  leaving one k/2-bit pass per table.  Total passes fall from 2L to L + m,
  the economics of Section 5.1.2.

Each strategy exists in a vectorized (numpy radix) and a reference
(pure-Python histogram → prefix-sum → scatter, literally the paper's
three-step loop) flavor; the Figure 4 ablation runs
``one_level/two_level/shared`` on the reference kernel and then switches the
shared strategy to the vectorized kernel as its "+vectorization" rung.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.parallel import make_executor

__all__ = [
    "partition_stable",
    "partition_reference",
    "bucket_offsets",
    "build_tables_one_level",
    "build_tables_two_level",
    "build_tables_shared",
    "BUILD_STRATEGIES",
]


# ---------------------------------------------------------------------------
# primitives
# ---------------------------------------------------------------------------

def bucket_offsets(keys: np.ndarray, n_buckets: int) -> np.ndarray:
    """Bucket start offsets (length ``n_buckets + 1``) via histogram+prefix."""
    counts = np.bincount(keys, minlength=n_buckets)
    if counts.size > n_buckets:
        raise ValueError(
            f"key {int(keys.max())} out of range for {n_buckets} buckets"
        )
    offsets = np.zeros(n_buckets + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    return offsets


def partition_stable(
    keys: np.ndarray, n_buckets: int
) -> tuple[np.ndarray, np.ndarray]:
    """Stable counting partition, vectorized.

    Returns ``(order, offsets)`` where ``order`` lists item indexes grouped
    by key (ties in original order) and ``offsets[b]:offsets[b+1]`` bounds
    bucket ``b``.  numpy's stable argsort on integer keys is a radix sort,
    so this is O(N) per key byte — the vectorized analogue of the paper's
    histogram/prefix-sum/scatter.
    """
    offsets = bucket_offsets(keys, n_buckets)
    order = np.argsort(keys, kind="stable").astype(np.int64)
    return order, offsets


def partition_reference(
    keys: np.ndarray, n_buckets: int
) -> tuple[np.ndarray, np.ndarray]:
    """The paper's literal three-step partition, in pure Python.

    Step 1: scan and histogram.  Step 2: prefix-sum for bucket starts.
    Step 3: re-scan and scatter each item to its bucket cursor.  Note the
    cost has an ``n_buckets`` term (the prefix sum) — this is the knob that
    makes one-level partitioning with 2^k buckets pay the way TLB misses do
    in the paper's native implementation.
    """
    key_list = keys.tolist()
    counts = [0] * n_buckets
    for key in key_list:  # Step 1: histogram
        counts[key] += 1
    offsets = [0] * (n_buckets + 1)
    for b in range(n_buckets):  # Step 2: prefix sum
        offsets[b + 1] = offsets[b] + counts[b]
    cursors = offsets[:-1].copy()
    order = [0] * len(key_list)
    for idx, key in enumerate(key_list):  # Step 3: scatter
        order[cursors[key]] = idx
        cursors[key] += 1
    return (
        np.asarray(order, dtype=np.int64),
        np.asarray(offsets, dtype=np.int64),
    )


_PARTITION_KERNELS: dict[bool, Callable[[np.ndarray, int], tuple[np.ndarray, np.ndarray]]] = {
    True: partition_stable,
    False: partition_reference,
}


# ---------------------------------------------------------------------------
# construction strategies
# ---------------------------------------------------------------------------
#
# All three return (entries, offsets):
#   entries : int32 (L, N)      — data indexes grouped by table key
#   offsets : int32 (L, 2^k+1)  — per-table bucket boundaries


def _combined_key(u: np.ndarray, i: int, j: int, b: int) -> np.ndarray:
    return (u[:, i].astype(np.uint32) << b) | u[:, j].astype(np.uint32)


def _pairs(m: int) -> list[tuple[int, int]]:
    return [(i, j) for i in range(m) for j in range(i + 1, m)]


def build_tables_one_level(
    u: np.ndarray, k: int, *, vectorized: bool = True
) -> tuple[np.ndarray, np.ndarray]:
    """Unoptimized construction: one full-k-bit partition per table."""
    partition = _PARTITION_KERNELS[vectorized]
    n, m = u.shape
    b = k // 2
    pairs = _pairs(m)
    entries = np.empty((len(pairs), n), dtype=np.int32)
    offsets = np.empty((len(pairs), (1 << k) + 1), dtype=np.int32)
    for l, (i, j) in enumerate(pairs):
        keys = _combined_key(u, i, j, b)
        order, offs = partition(keys, 1 << k)
        entries[l] = order
        offsets[l] = offs
    return entries, offsets


def build_tables_two_level(
    u: np.ndarray, k: int, *, vectorized: bool = True
) -> tuple[np.ndarray, np.ndarray]:
    """Two-level construction without sharing: 2 k/2-bit passes per table.

    Realized as an LSD radix: stable-partition by the second function, then
    stable-partition that ordering by the first.  Equivalent to the paper's
    MSB formulation (first level u_i, buckets refined by u_j) because both
    passes are stable.
    """
    partition = _PARTITION_KERNELS[vectorized]
    n, m = u.shape
    b = k // 2
    pairs = _pairs(m)
    entries = np.empty((len(pairs), n), dtype=np.int32)
    offsets = np.empty((len(pairs), (1 << k) + 1), dtype=np.int32)
    for l, (i, j) in enumerate(pairs):
        low_order, _ = partition(u[:, j], 1 << b)
        high_order, _ = partition(u[low_order, i], 1 << b)
        order = low_order[high_order]
        entries[l] = order
        offsets[l] = bucket_offsets(_combined_key(u, i, j, b), 1 << k)
    return entries, offsets


def build_tables_shared(
    u: np.ndarray, k: int, *, vectorized: bool = True, workers: int = 1
) -> tuple[np.ndarray, np.ndarray]:
    """Production construction: shared passes, L + m partitions total.

    The low-significance pass for function ``u_j`` is computed once (Step I1
    of the paper — m partitions) and reused by every table whose second
    function is ``u_j``; each table then needs a single k/2-bit pass on the
    first function (Steps I2+I3 — L partitions).

    ``workers > 1`` parallelizes the per-table work through the
    :mod:`repro.parallel` execution layer's thread backend (the paper
    parallelizes Step I3 over first-level partitions with work-stealing
    task queues; tables are the coarser unit that suits numpy's
    GIL-releasing kernels, and threads — not the fork pool — are the right
    backend because every task writes into the shared output arrays).
    Output tables are bitwise identical regardless of ``workers``.
    """
    partition = _PARTITION_KERNELS[vectorized]
    n, m = u.shape
    b = k // 2
    pairs = _pairs(m)
    entries = np.empty((len(pairs), n), dtype=np.int32)
    offsets = np.empty((len(pairs), (1 << k) + 1), dtype=np.int32)
    # Step I1: one shared partition per function (used as the LSD low pass).
    shared_low: list[np.ndarray | None] = [None] * m
    for j in range(1, m):  # j = 0 is never a second function
        shared_low[j], _ = partition(u[:, j], 1 << b)

    def build_one(l: int) -> None:
        i, j = pairs[l]
        low_order = shared_low[j]
        assert low_order is not None
        # Steps I2+I3: rearrange the first-function hashes into the shared
        # order, then one k/2-bit partition.
        high_order, _ = partition(u[low_order, i], 1 << b)
        entries[l] = low_order[high_order]
        offsets[l] = bucket_offsets(_combined_key(u, i, j, b), 1 << k)

    if workers <= 1:
        for l in range(len(pairs)):
            build_one(l)
    else:
        with make_executor("thread", workers, None) as ex:
            ex.run(lambda _state, l: build_one(l), [(l,) for l in range(len(pairs))])
    return entries, offsets


BUILD_STRATEGIES: dict[str, Callable[..., tuple[np.ndarray, np.ndarray]]] = {
    "one_level": build_tables_one_level,
    "two_level": build_tables_two_level,
    "shared": build_tables_shared,
}
