"""Index save/load round-trip tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro import PLSHIndex, PLSHParams
from repro.persistence import load_index, save_index


@pytest.fixture(scope="module")
def saved_path(built_index, tmp_path_factory):
    path = tmp_path_factory.mktemp("idx") / "index.npz"
    save_index(built_index, path)
    return path


def test_roundtrip_query_equivalence(saved_path, built_index, small_queries):
    _, queries = small_queries
    loaded = load_index(saved_path)
    for r in range(8):
        a = built_index.engine.query_row(queries, r)
        b = loaded.engine.query_row(queries, r)
        np.testing.assert_array_equal(np.sort(a.indices), np.sort(b.indices))
        np.testing.assert_allclose(
            np.sort(a.distances), np.sort(b.distances), rtol=1e-6
        )


def test_roundtrip_preserves_structures(saved_path, built_index):
    loaded = load_index(saved_path)
    np.testing.assert_array_equal(loaded.u_values, built_index.u_values)
    np.testing.assert_array_equal(
        loaded.tables.entries, built_index.tables.entries
    )
    np.testing.assert_array_equal(
        loaded.tables.offsets, built_index.tables.offsets
    )
    np.testing.assert_array_equal(
        loaded.hasher.bank.planes, built_index.hasher.bank.planes
    )
    assert loaded.params == built_index.params
    assert loaded.n_items == built_index.n_items


def test_loaded_index_accepts_new_queries(saved_path, small_vectors):
    loaded = load_index(saved_path)
    cols, vals = small_vectors.row(99)
    res = loaded.query(cols.astype(np.int64), vals)
    assert 99 in res.indices.tolist()


def test_save_unbuilt_raises(tmp_path, small_params):
    index = PLSHIndex(100, small_params)
    with pytest.raises(ValueError):
        save_index(index, tmp_path / "x.npz")


def test_version_check(saved_path, tmp_path):
    import json

    with np.load(saved_path) as archive:
        payload = {k: archive[k] for k in archive.files}
    meta = json.loads(bytes(payload["meta"]).decode("utf-8"))
    meta["format_version"] = 999
    payload["meta"] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    )
    bad = tmp_path / "bad.npz"
    np.savez(bad, **payload)
    with pytest.raises(ValueError):
        load_index(bad)


def test_none_seed_roundtrip(tmp_path, small_vectors, small_queries):
    """Hyperplanes are stored, so seed=None indexes reload faithfully."""
    _, queries = small_queries
    params = PLSHParams(k=8, m=6, radius=0.9, seed=None)
    index = PLSHIndex(small_vectors.n_cols, params).build(small_vectors)
    path = tmp_path / "noseed.npz"
    save_index(index, path)
    loaded = load_index(path)
    for r in range(3):
        a = index.engine.query_row(queries, r)
        b = loaded.engine.query_row(queries, r)
        np.testing.assert_array_equal(np.sort(a.indices), np.sort(b.indices))
