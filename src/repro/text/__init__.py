"""Text substrate: preprocessing and synthetic corpora.

The paper's corpus is 1.05 B real tweets "cleaned by removing non-alphabet
characters, duplicates and stop words", vocab ≈ 500 k, ≈ 7.2 words per tweet.
We cannot ship that data, so :mod:`repro.text.corpus` synthesizes corpora
with the same statistical profile (Zipf term skew, matched document-length
distributions, planted near-duplicate clusters so R-near neighbors exist),
while :mod:`repro.text.tokenizer` implements the paper's cleaning pipeline
for real text input in the examples.
"""

from repro.text.corpus import CorpusSpec, SyntheticCorpus, TWITTER_SPEC, WIKIPEDIA_SPEC
from repro.text.tokenizer import Tokenizer
from repro.text.vocabulary import Vocabulary

__all__ = [
    "CorpusSpec",
    "SyntheticCorpus",
    "TWITTER_SPEC",
    "WIKIPEDIA_SPEC",
    "Tokenizer",
    "Vocabulary",
]
