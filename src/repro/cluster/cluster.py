"""``PLSHCluster`` — the full multi-node system of Figure 1.

Policy, per Sections 4 and 6:

* Data is sharded by item: every node holds all L tables over its shard.
* Inserts go to a **rolling window of M nodes** in round-robin order; when
  the window's nodes reach capacity the window advances by M.
* When every node is full, the window wraps to the *oldest* M nodes, whose
  contents are retired (erased) wholesale — this is the paper's graceful
  expiration: no per-item timestamps, oldest data lives on known nodes.
* Queries are broadcast to all non-empty nodes via the coordinator,
  **concurrently** — every node's request in flight at once.

The cluster drives *node handles*: the default constructor builds
in-process :class:`ClusterNode` objects (the simulated deployment whose
:class:`NetworkModel` charges modeled bytes), while
:meth:`PLSHCluster.from_handles` accepts any prebuilt handles — notably
:class:`~repro.cluster.client.RemoteNodeHandle` stubs talking to real
``NodeServer`` processes, which is what
:func:`~repro.cluster.client.spawn_local_cluster` wires up.  Window
policy, retirement, deletes and broadcast logic are byte-for-byte the
same code either way, so a multi-process cluster fed the same op
sequence answers bit-identically to the simulation.

**Concurrency contract (PR 9).**  The cluster object is safe to mutate
and query from different threads at once — the serving gateway applies
write micro-batches on one executor thread while query broadcasts run on
others.  Two primitives provide it:

* a cluster **write lock** serializes every mutation of shared window
  state (``insert``/``insert_many``, ``delete``, window advancement,
  retirement bookkeeping, merge control), so concurrent writers cannot
  interleave round-robin cursors or double-retire a window;
* a **retirement gate** (:class:`~repro.parallel.ReadWriteGate`) makes
  window retirement atomic with respect to broadcasts: queries hold the
  read side for the whole fan-out, retirement takes the write side — a
  broadcast observes the shard set either entirely before or entirely
  after a retirement, never a half-erased window.

Ordering is defined by **acknowledgment**: once an ``insert`` call (or a
gateway insert op) has returned, every row it carried is fully applied,
and any query *started after that return* includes those rows (unless
deleted or retired since) — read-your-writes.  A query overlapping an
insert that has not yet returned may see any per-(op × shard) prefix of
it; per-node application is atomic (each node's op lock), so a row is
never half-visible.  The same holds through remote handles: a node
server applies ``insert_batch`` before answering it.

``replication=R`` (PR 5) places every logical shard on R nodes: the
node list is partitioned into :class:`~repro.cluster.replication.ReplicaGroup`
objects of R consecutive handles, and the window/insert/broadcast
machinery runs over **shards** — a replica group speaks the same node
handle protocol, so nothing above this constructor knows replication
exists.  Inserts fan out to every replica of the owning shard; the
coordinator's broadcast takes one live replica per shard, failing over
to siblings, so with R≥2 any single node's crash leaves query answers
bit-identical to the healthy cluster's.  ``R=1`` (the default) keeps
raw handles as the shards — the pre-replication cluster, unchanged.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.cluster.coordinator import BroadcastOutcome, Coordinator
from repro.cluster.network import NetworkModel
from repro.cluster.node import ClusterNode
from repro.cluster.replication import group_handles
from repro.core.hashing import AllPairsHasher
from repro.parallel import ReadWriteGate
from repro.params import PLSHParams
from repro.sparse.csr import CSRMatrix

__all__ = ["PLSHCluster"]


class PLSHCluster:
    """A simulated multi-node PLSH deployment."""

    def __init__(
        self,
        n_nodes: int,
        node_capacity: int,
        dim: int,
        params: PLSHParams,
        *,
        insert_window: int = 4,
        delta_fraction: float = 0.1,
        overlap_merges: bool = False,
        network: NetworkModel | None = None,
        replication: int = 1,
        retired_retention: int = 8,
    ) -> None:
        if n_nodes <= 0:
            raise ValueError(f"n_nodes must be positive, got {n_nodes}")
        self.params = params
        self.dim = dim
        self.insert_window = insert_window
        self.network = network if network is not None else NetworkModel()
        self.hasher = AllPairsHasher(params, dim)
        self.nodes = [
            ClusterNode(
                i, dim, params, node_capacity, self.hasher,
                delta_fraction=delta_fraction,
                overlap_merges=overlap_merges,
            )
            for i in range(n_nodes)
        ]
        self.replication = replication
        self.shards = group_handles(self.nodes, replication)
        if not 1 <= insert_window <= len(self.shards):
            raise ValueError(
                f"insert_window must be in [1, {len(self.shards)}], "
                f"got {insert_window}"
            )
        self.coordinator = Coordinator(self.shards, self.network)
        #: index of the first node of the current insert window
        self._window_start = 0
        #: round-robin cursor within the window
        self._window_cursor = 0
        self._next_global_id = 0
        #: cluster logical clock — one tick per logical insert op; every
        #: row of an op carries the same timestamp on every shard, so all
        #: nodes share one timeline and ``retire_before``/time-filtered
        #: queries mean the same instant cluster-wide.
        self._clock = 0
        self.n_retirements = 0
        #: the last ``retired_retention`` retirement batches (newest last);
        #: ``n_retired_items`` keeps the running total beyond the window.
        self.retired_ids: list[np.ndarray] = []
        self.retired_retention = self._check_retention(retired_retention)
        self.n_retired_items = 0
        self._init_write_sync()

    def _init_write_sync(self) -> None:
        """The two write-path primitives (see the module docstring):
        the cluster write lock and the retirement gate."""
        self._write_lock = threading.RLock()
        self._retire_gate = ReadWriteGate()

    @staticmethod
    def _check_retention(retired_retention: int) -> int:
        if retired_retention < 1:
            raise ValueError(
                f"retired_retention must be >= 1, got {retired_retention}"
            )
        return int(retired_retention)

    @classmethod
    def from_handles(
        cls,
        nodes: list,
        dim: int,
        params: PLSHParams,
        *,
        insert_window: int = 4,
        network: NetworkModel | None = None,
        replication: int = 1,
        retired_retention: int = 8,
    ) -> "PLSHCluster":
        """Cluster over prebuilt node handles (e.g. remote stubs).

        The handles own their engines and hash functions — they must all
        have been built over the same hasher (``spawn_local_cluster``
        guarantees this by forking after the bank is drawn).  With
        ``replication=R``, consecutive runs of R handles become one
        replica group / logical shard."""
        if not nodes:
            raise ValueError("from_handles needs at least one node handle")
        self = cls.__new__(cls)
        self.params = params
        self.dim = dim
        self.insert_window = insert_window
        self.network = network if network is not None else NetworkModel()
        self.hasher = None  # handles own their hash functions
        self.nodes = list(nodes)
        self.replication = replication
        self.shards = group_handles(self.nodes, replication)
        if not 1 <= insert_window <= len(self.shards):
            raise ValueError(
                f"insert_window must be in [1, {len(self.shards)}], "
                f"got {insert_window}"
            )
        self.coordinator = Coordinator(self.shards, self.network)
        self._window_start = 0
        self._window_cursor = 0
        self._next_global_id = 0
        self._clock = 0
        self.n_retirements = 0
        self.retired_ids = []
        self.retired_retention = self._check_retention(retired_retention)
        self.n_retired_items = 0
        self._init_write_sync()
        return self

    # -- capacity ----------------------------------------------------------

    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    @property
    def n_shards(self) -> int:
        """Logical shards: ``n_nodes / replication`` (== n_nodes at R=1)."""
        return len(self.shards)

    @property
    def n_items(self) -> int:
        return sum(shard.n_items for shard in self.shards)

    @property
    def total_capacity(self) -> int:
        """Logical capacity — one shard counts once, however many
        replicas carry its copy."""
        return sum(shard.capacity for shard in self.shards)

    def window_nodes(self) -> list:
        """The M shards currently accepting inserts (raw nodes at R=1)."""
        return [
            self.shards[(self._window_start + i) % self.n_shards]
            for i in range(self.insert_window)
        ]

    # -- inserts -----------------------------------------------------------

    def insert(self, vectors: CSRMatrix) -> np.ndarray:
        """Stream rows into the cluster; returns their global ids.

        Rows are spread over the insert window round-robin in sub-batches;
        the window advances (retiring old nodes once the cluster has
        wrapped) whenever its nodes fill up.  Thread-safe: mutations are
        serialized by the cluster write lock, and on return every row is
        applied and queryable (read-your-writes for later queries).
        """
        return self.insert_many([vectors])[0]

    def insert_many(self, batches: list[CSRMatrix]) -> list[np.ndarray]:
        """Apply several logical insert ops in order, as one critical
        section; returns each op's global ids.

        This is the gateway write micro-batcher's entry point: N coalesced
        client inserts become ONE lock acquisition and (at most) one
        ``insert_batch`` call per target shard, instead of N of each.
        Placement is computed op by op with exactly the same round-robin /
        window-advance walk as sequential :meth:`insert` calls, so the
        row → shard assignment — and therefore every future broadcast
        answer — is bit-identical to applying the ops one at a time;
        only the per-shard row deliveries are fused.  Buffered rows are
        flushed *before* any window advance, so retirement sees (and
        drops) exactly the rows a serial execution would have.
        """
        with self._write_lock:
            # shard index -> buffered (row/id/timestamp blocks, row count).
            buf_rows: dict[int, list[CSRMatrix]] = {}
            buf_ids: dict[int, list[np.ndarray]] = {}
            buf_ts: dict[int, list[np.ndarray]] = {}
            buf_n: dict[int, int] = {}

            def flush_buffers() -> None:
                for si in list(buf_rows):
                    self.shards[si].insert_batch(
                        CSRMatrix.vstack(buf_rows[si]),
                        np.concatenate(buf_ids[si]),
                        np.concatenate(buf_ts[si]),
                    )
                buf_rows.clear()
                buf_ids.clear()
                buf_ts.clear()
                buf_n.clear()

            out: list[np.ndarray] = []
            for vectors in batches:
                n = vectors.n_rows
                global_ids = np.arange(
                    self._next_global_id,
                    self._next_global_id + n,
                    dtype=np.int64,
                )
                self._next_global_id += n
                # Every row of this op shares one cluster-clock tick, on
                # whichever shard it lands — the cluster-wide timeline.
                op_ts = self._clock
                self._clock += 1
                # Round-robin sub-batches across the window, as in Figure 1.
                per_node = max(1, -(-n // self.insert_window))
                pos = 0
                while pos < n:
                    si = self._next_insert_shard(buf_n, flush_buffers)
                    free = self.shards[si].free_capacity - buf_n.get(si, 0)
                    take = min(free, n - pos, per_node)
                    if take > 0:
                        buf_rows.setdefault(si, []).append(
                            vectors.slice_rows(pos, pos + take)
                        )
                        buf_ids.setdefault(si, []).append(
                            global_ids[pos : pos + take]
                        )
                        buf_ts.setdefault(si, []).append(
                            np.full(take, op_ts, dtype=np.int64)
                        )
                        buf_n[si] = buf_n.get(si, 0) + take
                        pos += take
                    self._window_cursor = (
                        self._window_cursor + 1
                    ) % self.insert_window
                out.append(global_ids)
            flush_buffers()
            return out

    def _next_insert_shard(self, buf_n: dict[int, int], flush) -> int:
        """Pick the next window shard with space — net of rows already
        buffered for it — advancing windows as needed (an R>1 shard is
        full when its replicas are).  ``flush`` lands buffered rows
        before any retirement."""
        for _ in range(2 * self.n_shards):  # bounded: must terminate
            start = self._window_start
            for i in range(self.insert_window):
                slot = (self._window_cursor + i) % self.insert_window
                si = (start + slot) % self.n_shards
                if self.shards[si].free_capacity - buf_n.get(si, 0) > 0:
                    return si
            self._advance_window(flush)
        raise RuntimeError("no insert capacity found after full rotation")

    def _advance_window(self, flush=None) -> None:
        """Move the window forward by M, retiring its target if occupied.

        Retirement runs under the retirement gate's exclusive side: every
        in-flight broadcast drains first, and broadcasts admitted
        meanwhile wait — so no query ever observes a half-retired window
        (the torn-window hazard of concurrent serving)."""
        if flush is not None:
            # Rows buffered by insert_many must land before the window
            # moves: a retirement may target their shards, and serial
            # execution would have inserted them first.
            flush()
        self._window_start = (self._window_start + self.insert_window) % self.n_shards
        self._window_cursor = 0
        incoming = self.window_nodes()
        if any(shard.n_items > 0 for shard in incoming):
            # Wrapped onto the oldest data: retire those shards (Figure 1),
            # atomically with respect to query broadcasts.  retire_window
            # drops the shard's partitions in O(1) each — no table rebuild,
            # no node teardown; the global-id map stays aligned (dropped
            # ranges become holes) so the shard keeps serving immediately.
            with self._retire_gate.write():
                dropped = [shard.retire_window() for shard in incoming]
            retired = (
                np.concatenate(dropped) if dropped else np.empty(0, dtype=np.int64)
            )
            self.retired_ids.append(retired)
            self.n_retired_items += int(retired.size)
            self.n_retirements += 1
            # Bounded retention: a long-running service retires forever —
            # keep the last K batches for observability/persistence, count
            # the rest (satellite fix for the unbounded-growth leak).
            if len(self.retired_ids) > self.retired_retention:
                del self.retired_ids[: len(self.retired_ids) - self.retired_retention]

    # -- time-based retirement ---------------------------------------------

    @property
    def clock(self) -> int:
        """The cluster-clock tick the next insert op will be stamped with."""
        return self._clock

    def retire_before(self, cutoff: int) -> np.ndarray:
        """Retire every row inserted before cluster-clock tick ``cutoff``
        across all shards; returns the retired global ids (sorted).

        On each node, partitions wholly older than the cutoff are dropped
        in O(1) per partition — no table is read or rebuilt — and only
        the ragged edge (the boundary partition and delta rows) is
        tombstoned.  Runs under the write lock (serialized with inserts)
        and the retirement gate's exclusive side (atomic with respect to
        broadcasts — a query sees the cluster entirely before or entirely
        after the cutoff, never half-retired).  Repeating a cutoff is a
        no-op: each node tracks its retirement watermark and never
        double-reports.
        """
        cutoff = int(cutoff)
        with self._write_lock:
            with self._retire_gate.write():
                dropped = [
                    shard.retire_before(cutoff) for shard in self.shards
                ]
            retired = (
                np.concatenate(dropped)
                if dropped
                else np.empty(0, dtype=np.int64)
            )
            retired.sort()
            # Future inserts must not predate the watermark (the nodes
            # enforce it; keep the cluster clock ahead of the cutoff).
            self._clock = max(self._clock, cutoff)
            if retired.size:
                self.retired_ids.append(retired)
                self.n_retired_items += int(retired.size)
                self.n_retirements += 1
                if len(self.retired_ids) > self.retired_retention:
                    del self.retired_ids[
                        : len(self.retired_ids) - self.retired_retention
                    ]
            return retired

    # -- deletes / queries ----------------------------------------------------

    def delete(self, global_ids: np.ndarray) -> int:
        """Tombstone by global id across all shards; returns deleted count
        (each item counted once, not once per replica).  Serialized with
        other mutations by the write lock; a query overlapping the call
        may see the tombstones of some shards and not others, but each id
        lives on one shard, so per-id visibility is atomic."""
        with self._write_lock:
            return sum(shard.delete_global(global_ids) for shard in self.shards)

    def query(
        self,
        q_cols: np.ndarray,
        q_vals: np.ndarray,
        *,
        radius: float | None = None,
        time_range: tuple[int, int] | None = None,
    ) -> BroadcastOutcome:
        with self._retire_gate.read():
            return self.coordinator.query(
                q_cols, q_vals, radius=radius, time_range=time_range
            )

    def query_batch(
        self,
        queries: CSRMatrix,
        *,
        radius: float | None = None,
        mode: str | None = None,
        workers: int | None = None,
        backend: str | None = None,
        time_range: tuple[int, int] | None = None,
    ) -> list[BroadcastOutcome]:
        """Broadcast a batch to all nodes (vectorized kernel by default;
        ``mode="loop"`` broadcasts query-by-query).  ``workers > 1`` also
        shards each node's batch across cores via per-node persistent
        worker pools (see Coordinator).  ``time_range=(t0, t1)`` restricts
        answers to rows inserted at cluster-clock ticks in ``[t0, t1)`` —
        every node prunes non-overlapping partitions and screens the rest
        exactly."""
        with self._retire_gate.read():
            return self.coordinator.query_batch(
                queries, radius=radius, mode=mode, workers=workers,
                backend=backend, time_range=time_range,
            )

    def merge_all(self) -> None:
        """Force-merge every node's delta (used by benches for steady
        state).  Drains any in-flight background merges first —
        :meth:`StreamingPLSH.merge_now` commits the pending build, then
        folds the fresh delta in synchronously."""
        with self._write_lock:
            for shard in self.shards:
                shard.merge_now()

    def begin_merge_all(self) -> int:
        """Kick off a non-blocking merge on every node with a non-empty
        delta; returns how many merges are now in flight.  Queries keep
        being served by every node throughout; finished builds land via
        :meth:`commit_merges` (or opportunistically on the nodes' own
        insert paths when ``overlap_merges`` is set)."""
        with self._write_lock:
            return sum(1 for shard in self.shards if shard.begin_merge())

    def commit_merges(self, *, wait: bool = False) -> int:
        """Commit pending merges across the cluster; returns how many
        landed.  ``wait=False`` (the default) commits only builds that
        already finished — the coordinator's periodic maintenance tick."""
        with self._write_lock:
            return sum(
                1 for shard in self.shards if shard.commit_merge(wait=wait)
            )

    def stats(self) -> list[dict]:
        """Per-shard monitoring rows, including ``merge_in_flight``."""
        return self.coordinator.node_stats()

    def health(self) -> list[dict]:
        """Per-shard health rows (breaker / state machine / replicas)."""
        return self.coordinator.health()

    def close(self) -> None:
        """Release every node's worker pools and the broadcast pool."""
        self.coordinator.close()
        for shard in self.shards:
            shard.close()

    def __enter__(self) -> "PLSHCluster":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
