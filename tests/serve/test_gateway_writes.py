"""The gateway write path: inserts/deletes/flushes through the front door.

The contracts under test, per the PR 9 serving design:

* **bit identity** — a sequence of writes through the gateway (single
  client, pipelined, or coalesced) leaves the cluster in EXACTLY the
  state the same logical op sequence produces applied directly: same
  global ids, same shard placement, same retirements, bit-identical
  broadcast answers.  The JSON wire round-trips float32 exactly and
  ``insert_many`` replays the serial placement walk, so coalescing
  changes RPC counts, never answers.
* **read-your-writes** — an insert's acknowledgment is the ordering
  contract: a query issued after the ack sees the row; ``flush`` is the
  explicit barrier for unacked writes.
* **shared admission** — writes ride the queries' admission control
  (same backlog bound, same tenant quotas, explicit rejections), and a
  read-only provider (a bare coordinator) answers writes with an
  explicit error instead of pretending.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro import PLSHCluster, PLSHParams
from repro.cluster import spawn_local_cluster
from repro.parallel import fork_available
from repro.serve import (
    Gateway,
    GatewayClient,
    GatewayError,
    protocol,
    run_closed_loop,
)
from repro.sparse.csr import CSRMatrix

from tests.serve.test_gateway import RawConn

PARAMS = PLSHParams(k=8, m=6, radius=0.9, seed=77)
N_NODES = 3
CAPACITY = 60  # small on purpose: write tests must cross retirements
WINDOW = 2


def _make_cluster(dim: int) -> PLSHCluster:
    return PLSHCluster(N_NODES, CAPACITY, dim, PARAMS, insert_window=WINDOW)


def _assert_same_answers(cluster_a, cluster_b, queries) -> None:
    """Broadcast answers over both clusters must match bit for bit."""
    out_a = cluster_a.query_batch(queries)
    out_b = cluster_b.query_batch(queries)
    for oa, ob in zip(out_a, out_b):
        np.testing.assert_array_equal(oa.result.indices, ob.result.indices)
        np.testing.assert_array_equal(
            oa.result.distances, ob.result.distances
        )
        assert not oa.node_errors and not ob.node_errors


class TestWriteBitIdentity:
    def test_serial_ops_match_direct(self, small_vectors):
        """Inserts + deletes through the gateway == the same sequence
        applied directly, across window retirements."""
        dim = small_vectors.n_cols
        via_gateway = _make_cluster(dim)
        direct = _make_cluster(dim)
        try:
            gw_gids: list[np.ndarray] = []
            with Gateway(via_gateway, dim) as gw:
                with GatewayClient(gw.host, gw.port) as client:
                    # 300 rows >> 3*60 capacity: several retirements.
                    for r in range(300):
                        cols, vals = small_vectors.row(r)
                        gw_gids.append(client.insert(cols, vals))
                        if r % 50 == 49:
                            # Delete a recently acked row mid-stream.
                            client.delete(gw_gids[r - 5])
            direct_gids = []
            for r in range(300):
                direct_gids.append(
                    direct.insert(
                        CSRMatrix.from_rows([small_vectors.row(r)], dim)
                    )
                )
                if r % 50 == 49:
                    direct.delete(direct_gids[r - 5])
            for g1, g2 in zip(gw_gids, direct_gids):
                np.testing.assert_array_equal(g1, g2)
            assert via_gateway.n_retirements == direct.n_retirements
            assert via_gateway.n_retirements > 0
            assert via_gateway.n_retired_items == direct.n_retired_items
            for r1, r2 in zip(via_gateway.retired_ids, direct.retired_ids):
                np.testing.assert_array_equal(r1, r2)
            _assert_same_answers(
                via_gateway, direct, small_vectors.slice_rows(250, 290)
            )
        finally:
            via_gateway.close()
            direct.close()

    def test_pipelined_inserts_coalesce_and_match(self, small_vectors):
        """Pipelined inserts coalesce into multi-op write batches — and
        the coalescing is answer-invisible (same ids, same answers)."""
        dim = small_vectors.n_cols
        via_gateway = _make_cluster(dim)
        direct = _make_cluster(dim)
        n = 80
        try:
            with Gateway(via_gateway, dim, write_max_delay=0.02) as gw:
                conn = RawConn(gw.host, gw.port)
                try:
                    for r in range(n):
                        cols, vals = small_vectors.row(r)
                        conn.send(
                            protocol.insert_request(cols, vals, request_id=r)
                        )
                    responses = conn.recv_all(n)
                finally:
                    conn.close()
                stats = gw.stats()
            by_id = {resp["id"]: resp for resp in responses}
            assert all(by_id[r]["status"] == "ok" for r in range(n))
            direct_gids = [
                direct.insert(CSRMatrix.from_rows([small_vectors.row(r)], dim))
                for r in range(n)
            ]
            for r in range(n):
                # Admission order == connection order: ids match serially.
                np.testing.assert_array_equal(
                    np.asarray(by_id[r]["global_ids"]), direct_gids[r]
                )
            # The point of the micro-batcher: fewer cluster critical
            # sections than client ops.
            assert stats["write_batcher"]["n_batches"] < n
            assert stats["write_batcher"]["mean_batch_size"] > 1.0
            assert stats["inserted_rows"] == n
            _assert_same_answers(
                via_gateway, direct, small_vectors.slice_rows(0, 30)
            )
        finally:
            via_gateway.close()
            direct.close()

    def test_spawned_cluster_writes_match_direct(self, small_vectors):
        """The same bit-identity against real spawned node servers."""
        if not fork_available():
            pytest.skip("spawn_local_cluster requires fork()")
        dim = small_vectors.n_cols
        spawned = spawn_local_cluster(
            N_NODES, CAPACITY, dim, PARAMS, insert_window=WINDOW
        )
        direct = PLSHCluster(
            N_NODES, CAPACITY, dim, PARAMS, insert_window=WINDOW
        )
        try:
            gw_gids = []
            with Gateway(spawned, dim) as gw:
                with GatewayClient(gw.host, gw.port) as client:
                    for r in range(150):
                        cols, vals = small_vectors.row(r)
                        gw_gids.append(client.insert(cols, vals))
                    client.delete(np.concatenate(gw_gids[10:20]))
            direct_gids = [
                direct.insert(CSRMatrix.from_rows([small_vectors.row(r)], dim))
                for r in range(150)
            ]
            direct.delete(np.concatenate(direct_gids[10:20]))
            for g1, g2 in zip(gw_gids, direct_gids):
                np.testing.assert_array_equal(g1, g2)
            assert spawned.n_retirements == direct.n_retirements
            _assert_same_answers(
                spawned, direct, small_vectors.slice_rows(100, 130)
            )
        finally:
            spawned.close()
            direct.close()


class TestWriteSemantics:
    def test_read_your_writes_after_ack(self, small_vectors):
        dim = small_vectors.n_cols
        cluster = _make_cluster(dim)
        try:
            with Gateway(cluster, dim) as gw:
                with GatewayClient(gw.host, gw.port) as client:
                    cols, vals = small_vectors.row(7)
                    gids = client.insert(cols, vals)
                    assert gids.size == 1
                    # The ack IS the contract: this query must see the row.
                    answer = client.query(cols, vals)
                    assert int(gids[0]) in set(answer.ids.tolist())
        finally:
            cluster.close()

    def test_flush_is_a_write_barrier(self, small_vectors):
        """With a long write delay, an unflushed insert would sit
        collecting; ``flush`` forces it through and answers only once it
        is applied."""
        dim = small_vectors.n_cols
        cluster = _make_cluster(dim)
        try:
            with Gateway(cluster, dim, write_max_delay=30.0) as gw:
                conn = RawConn(gw.host, gw.port)
                try:
                    cols, vals = small_vectors.row(3)
                    conn.send(protocol.insert_request(cols, vals, request_id=1))
                    conn.send(protocol.flush_request(request_id=2))
                    by_id = {r["id"]: r for r in conn.recv_all(2)}
                finally:
                    conn.close()
            assert by_id[1]["status"] == "ok"
            assert by_id[2]["status"] == "ok"
            assert by_id[2]["n_flushed"] == 1
            # The flush completed => the row is in the cluster.
            assert cluster.n_items == 1
        finally:
            cluster.close()

    def test_delete_removes_from_answers(self, small_vectors):
        dim = small_vectors.n_cols
        cluster = _make_cluster(dim)
        try:
            with Gateway(cluster, dim) as gw:
                with GatewayClient(gw.host, gw.port) as client:
                    gids = []
                    for r in range(10):
                        cols, vals = small_vectors.row(r)
                        gids.append(int(client.insert(cols, vals)[0]))
                    cols, vals = small_vectors.row(4)
                    before = client.query(cols, vals)
                    assert gids[4] in set(before.ids.tolist())
                    assert client.delete([gids[4]]) == 1
                    after = client.query(cols, vals)
                    assert gids[4] not in set(after.ids.tolist())
                    # Idempotent: already-tombstoned ids count zero.
                    assert client.delete([gids[4]]) == 0
        finally:
            cluster.close()


class SlowWriteCluster:
    """Delegates writes after a delay — piles up a write backlog so
    admission tests are deterministic."""

    def __init__(self, cluster, delay: float) -> None:
        self._cluster = cluster
        self.delay = delay

    def query_batch(self, queries, *, radius=None):
        return self._cluster.query_batch(queries, radius=radius)

    def insert(self, vectors):
        return self._cluster.insert(vectors)

    def insert_many(self, batches):
        time.sleep(self.delay)
        return self._cluster.insert_many(batches)

    def delete(self, global_ids):
        time.sleep(self.delay)
        return self._cluster.delete(global_ids)


class TestWriteAdmission:
    def test_readonly_provider_rejects_writes_explicitly(self, small_vectors):
        """A bare coordinator has no write surface: writes answer an
        explicit error, queries keep working."""
        dim = small_vectors.n_cols
        cluster = _make_cluster(dim)
        cluster.insert(small_vectors.slice_rows(0, 50))
        try:
            with Gateway(cluster.coordinator, dim) as gw:
                assert gw.stats()["writable"] is False
                with GatewayClient(gw.host, gw.port) as client:
                    cols, vals = small_vectors.row(0)
                    with pytest.raises(GatewayError) as excinfo:
                        client.insert(cols, vals)
                    assert "read-only" in str(excinfo.value)
                    with pytest.raises(GatewayError):
                        client.delete([0])
                    # The read path is untouched.
                    assert len(client.query(cols, vals)) > 0
                    assert client.stats()["rejected_readonly"] == 2
        finally:
            cluster.close()

    def test_writes_share_tenant_quota(self, small_vectors):
        dim = small_vectors.n_cols
        slow = SlowWriteCluster(_make_cluster(dim), delay=0.3)
        try:
            with Gateway(
                slow, dim,
                write_max_batch=1, write_max_delay=0.0, tenant_quota=1,
            ) as gw:
                conn = RawConn(gw.host, gw.port)
                try:
                    cols, vals = small_vectors.row(0)
                    for i in range(3):
                        conn.send(
                            protocol.insert_request(
                                cols, vals, request_id=i, tenant="ingest"
                            )
                        )
                    responses = conn.recv_all(3)
                finally:
                    conn.close()
            statuses = sorted(r["status"] for r in responses)
            assert "ok" in statuses
            rejected = [r for r in responses if r["status"] == "rejected"]
            assert rejected and all(r["reason"] == "quota" for r in rejected)
        finally:
            slow._cluster.close()

    def test_malformed_writes_get_errors(self, small_vectors):
        dim = small_vectors.n_cols
        cluster = _make_cluster(dim)
        try:
            with Gateway(cluster, dim) as gw:
                conn = RawConn(gw.host, gw.port)
                try:
                    conn.send({"op": "insert", "cols": [0, 1]})  # no vals
                    assert conn.recv()["status"] == "error"
                    conn.send(
                        {"op": "insert", "cols": [dim + 5], "vals": [1.0]}
                    )
                    assert conn.recv()["status"] == "error"
                    conn.send({"op": "delete"})  # no ids
                    assert conn.recv()["status"] == "error"
                    conn.send({"op": "delete", "ids": []})  # empty
                    assert conn.recv()["status"] == "error"
                    conn.send({"op": "delete", "ids": ["seven"]})
                    assert conn.recv()["status"] == "error"
                    # The connection survived all of it.
                    conn.send({"op": "ping"})
                    assert conn.recv()["status"] == "ok"
                finally:
                    conn.close()
            assert cluster.n_items == 0  # nothing leaked into the cluster
        finally:
            cluster.close()

    def test_tenant_pending_map_stays_bounded(self, small_vectors):
        """Regression: one entry per tenant EVER SEEN would grow without
        bound in a long-running gateway; entries must drop at zero."""
        dim = small_vectors.n_cols
        cluster = _make_cluster(dim)
        try:
            with Gateway(cluster, dim) as gw:
                with GatewayClient(gw.host, gw.port) as client:
                    for t in range(50):
                        cols, vals = small_vectors.row(t)
                        client.insert(cols, vals, tenant=f"tenant-{t}")
                        client.query(cols, vals, tenant=f"tenant-{t}")
                    stats = client.stats()
                assert stats["pending"] == 0
                # All 100 requests answered; no tenant entry left behind.
                assert gw._tenant_pending == {}
        finally:
            cluster.close()


class TestMixedLoad:
    def test_mixed_closed_loop_report(self, small_vectors):
        dim = small_vectors.n_cols
        cluster = _make_cluster(dim)
        cluster.insert(small_vectors.slice_rows(0, 40))
        queries = CSRMatrix.from_rows(
            [small_vectors.row(r) for r in range(16)], dim
        )
        pool = CSRMatrix.from_rows(
            [small_vectors.row(200 + r) for r in range(32)], dim
        )
        try:
            with Gateway(cluster, dim, max_batch=32) as gw:
                report = run_closed_loop(
                    gw.host, gw.port, queries,
                    n_clients=8, requests_per_client=6,
                    write_fraction=0.4, insert_pool=pool, seed=5,
                )
            assert report.n_errors == 0
            assert report.n_ok + report.n_write_ok == 48
            assert report.n_write_ok > 0 and report.n_ok > 0
            assert report.wps > 0
            assert report.write_latency_ms(50) > 0
            # Every acked insert landed in the cluster.
            assert cluster.n_items == 40 + report.n_write_ok
        finally:
            cluster.close()

    def test_empty_query_pool_rejected(self, small_vectors):
        with pytest.raises(ValueError, match="empty"):
            run_closed_loop(
                "127.0.0.1", 1, CSRMatrix.empty(small_vectors.n_cols),
                n_clients=1, requests_per_client=1,
            )

    def test_write_fraction_needs_pool(self, small_vectors):
        queries = CSRMatrix.from_rows(
            [small_vectors.row(0)], small_vectors.n_cols
        )
        with pytest.raises(ValueError, match="insert_pool"):
            run_closed_loop(
                "127.0.0.1", 1, queries,
                n_clients=1, requests_per_client=1, write_fraction=0.5,
            )
        with pytest.raises(ValueError, match="write_fraction"):
            run_closed_loop(
                "127.0.0.1", 1, queries,
                n_clients=1, requests_per_client=1, write_fraction=1.5,
            )
