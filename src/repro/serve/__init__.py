"""Async serving gateway: request coalescing in front of the cluster.

The paper's batch kernel is 3x+ faster *per query* than the single-query
path at paper-sized batches — but real serving traffic arrives as single
queries from independent clients.  This package closes that gap without
asking clients to batch:

* :class:`~repro.serve.gateway.Gateway` — an asyncio TCP server (JSON
  lines, :mod:`repro.serve.protocol`) that admits queries, coalesces the
  in-flight ones into micro-batches
  (:class:`~repro.serve.batcher.MicroBatcher`: flush at the latency
  budget or a full batch, whichever first), runs each batch through one
  ``Coordinator.query_batch`` broadcast, and de-multiplexes answers back
  per request — with each query's ``degraded``/``missing_shards`` report
  intact.  Admission control sheds load honestly: a bounded pending
  queue and per-tenant quotas produce explicit ``rejected`` responses
  with a ``retry_after`` hint, never silent drops.
* :class:`~repro.serve.client.GatewayClient` /
  :class:`~repro.serve.client.AsyncGatewayClient` — blocking and asyncio
  clients returning :class:`~repro.serve.client.GatewayAnswer`.
* :func:`~repro.serve.loadgen.run_closed_loop` — a closed-loop
  multi-client load generator reporting p50/p99 latency and throughput,
  used to compare coalesced serving against the uncoalesced baseline
  (same gateway, ``max_batch=1``).

Coalescing is *correctness-free*: the vectorized batch kernel is
bit-identical to the per-query loop, and the wire protocol round-trips
float32 exactly, so a gateway answer equals a direct
``Coordinator.query`` answer bit for bit (the test suite asserts it).

**Writes go through the same front door** (PR 9): ``insert`` /
``delete`` / ``flush`` ops share the queries' admission control and
coalesce in a write micro-batcher that applies batches in strict
admission order (``max_concurrent=1``) via
:meth:`~repro.cluster.cluster.PLSHCluster.insert_many` — placement-exact
fusing, so gateway-mediated writes are bit-identical to the same op
sequence applied directly to the cluster.  An insert's acknowledgment is
the ordering contract: queries admitted after the ack see the row
(read-your-writes); ``flush`` is the explicit write barrier.
"""

from repro.serve.batcher import (
    BatcherStats,
    MicroBatcher,
    PendingQuery,
    PendingWrite,
)
from repro.serve.client import (
    AsyncGatewayClient,
    GatewayAnswer,
    GatewayError,
    GatewayRejected,
    GatewayClient,
)
from repro.serve.gateway import Gateway
from repro.serve.loadgen import LoadReport, run_closed_loop

__all__ = [
    "AsyncGatewayClient",
    "BatcherStats",
    "Gateway",
    "GatewayAnswer",
    "GatewayError",
    "GatewayRejected",
    "GatewayClient",
    "LoadReport",
    "MicroBatcher",
    "PendingQuery",
    "PendingWrite",
    "run_closed_loop",
]
