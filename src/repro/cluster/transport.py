"""Framed TCP transport for the cluster protocol.

One frame = an 8-byte big-endian length prefix followed by a protocol
message body (:mod:`repro.cluster.protocol`).  :class:`Connection` wraps a
connected socket with send/receive of whole messages and counts real
bytes on the wire in a :class:`TransportStats`, so the simulated
:class:`~repro.cluster.network.NetworkModel` accounting can be compared
against measured traffic (EXPERIMENTS.md does exactly that).

``send_message``/``recv_message`` take an optional **deadline** (a
``time.monotonic()`` instant): every socket operation runs under the
remaining budget and a blown deadline raises :class:`TimeoutError`.  A
timed-out connection is *poisoned* — closed on the spot — because a
half-written request or half-read reply leaves the stream mid-frame, and
a late reply landing after the caller moved on would desynchronize every
subsequent exchange.  Callers reconnect instead (the client handle does
this automatically).  Without a deadline the old fully-blocking behavior
is preserved.

The transport is deliberately dumb: no multiplexing, no retries, one
request in flight per connection.  Retry, backoff, and circuit breaking
live a layer up in :mod:`repro.cluster.client`; the coordinator gets its
concurrency by holding one connection per node and broadcasting from a
thread pool, which matches the paper's one-coordinator/N-nodes topology.
"""

from __future__ import annotations

import socket
import struct
import time
from dataclasses import dataclass

import numpy as np

from repro.cluster import protocol

__all__ = ["Connection", "TransportStats", "FRAME_HEADER_BYTES", "MAX_FRAME_BYTES"]

_LEN = struct.Struct(">Q")

#: bytes of framing overhead per message (the length prefix).
FRAME_HEADER_BYTES = _LEN.size

#: sanity ceiling on one frame (a corrupt length prefix should fail fast,
#: not attempt a 2**63-byte allocation).
MAX_FRAME_BYTES = 1 << 33


@dataclass
class TransportStats:
    """Real bytes/messages moved over one connection."""

    n_sent: int = 0
    n_received: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0

    def reset(self) -> None:
        self.n_sent = 0
        self.n_received = 0
        self.bytes_sent = 0
        self.bytes_received = 0


class Connection:
    """A connected socket speaking length-prefixed protocol messages."""

    def __init__(self, sock: socket.socket) -> None:
        try:
            # Request/response over small frames: Nagle hurts, disable it.
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass  # non-TCP socket (e.g. a Unix socketpair in tests)
        self._sock = sock
        self.stats = TransportStats()
        self._closed = False

    @classmethod
    def connect(
        cls, host: str, port: int, *, timeout: float | None = None
    ) -> "Connection":
        sock = socket.create_connection((host, port), timeout=timeout)
        sock.settimeout(None)
        return cls(sock)

    @property
    def closed(self) -> bool:
        return self._closed

    def _arm_timeout(self, deadline: float | None, what: str) -> None:
        """Point the socket at the remaining deadline budget (or block)."""
        if deadline is None:
            self._sock.settimeout(None)
            return
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            self.close()
            raise TimeoutError(f"deadline expired before {what}")
        self._sock.settimeout(remaining)

    def send_message(
        self,
        code: int,
        meta: dict | None = None,
        arrays=(),
        *,
        deadline: float | None = None,
    ) -> int:
        """Encode + frame + send one message; returns bytes on the wire.

        ``deadline`` is a ``time.monotonic()`` instant; blowing it raises
        :class:`TimeoutError` and closes the connection (a half-written
        frame cannot be resumed).
        """
        body = protocol.encode_message(code, meta, arrays)
        n = FRAME_HEADER_BYTES + len(body)
        self._arm_timeout(deadline, "send")
        try:
            self._sock.sendall(_LEN.pack(len(body)) + body)
        except TimeoutError:
            self.close()
            raise TimeoutError(f"send timed out mid-frame ({n} bytes)") from None
        except OSError as exc:
            self._closed = True
            raise ConnectionError(f"send failed: {exc}") from exc
        self.stats.n_sent += 1
        self.stats.bytes_sent += n
        return n

    def recv_message(
        self, *, deadline: float | None = None
    ) -> tuple[int, dict, list[np.ndarray]]:
        """Receive one whole frame and decode it.

        Raises :class:`ConnectionError` on EOF or a torn frame — the
        caller decides whether that is a clean shutdown (EOF between
        frames) or a node failure — and :class:`TimeoutError` when
        ``deadline`` expires first (the connection is closed: a late
        reply would desynchronize the frame stream).
        """
        header = self._recv_exact(FRAME_HEADER_BYTES, eof_ok=True, deadline=deadline)
        if header is None:
            self._closed = True
            raise ConnectionError("connection closed by peer")
        (length,) = _LEN.unpack(header)
        if length > MAX_FRAME_BYTES:
            self._closed = True
            raise ConnectionError(f"frame length {length} exceeds sanity cap")
        body = self._recv_exact(int(length), eof_ok=False, deadline=deadline)
        assert body is not None
        self.stats.n_received += 1
        self.stats.bytes_received += FRAME_HEADER_BYTES + len(body)
        return protocol.decode_message(body)

    def _recv_exact(
        self, n: int, *, eof_ok: bool, deadline: float | None = None
    ) -> bytes | None:
        buf = bytearray(n)
        view = memoryview(buf)
        got = 0
        while got < n:
            self._arm_timeout(deadline, "recv")
            try:
                chunk = self._sock.recv_into(view[got:], n - got)
            except TimeoutError:
                self.close()
                raise TimeoutError(
                    f"recv timed out mid-frame ({got}/{n} bytes)"
                ) from None
            except OSError as exc:
                self._closed = True
                raise ConnectionError(f"recv failed: {exc}") from exc
            if chunk == 0:
                if eof_ok and got == 0:
                    return None
                self._closed = True
                raise ConnectionError(
                    f"connection closed mid-frame ({got}/{n} bytes)"
                )
            got += chunk
        return bytes(buf)

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            try:
                self._sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
        self._sock.close()

    def __enter__(self) -> "Connection":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
