"""StreamingPLSH batch queries: the vectorized static+delta path.

The node's ``query_batch`` hashes the batch once, shares the key matrix
between the static and delta structures, and screens deletions with one
vectorized bitvector test — it must agree exactly with the per-query loop,
including across a merge boundary (answers invariant to where rows sit).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.parallel import fork_available
from repro.params import PLSHParams
from repro.streaming.node import StreamingPLSH

PARAMS = PLSHParams(k=8, m=6, radius=0.9, seed=77)

PARALLEL_BACKENDS = [
    "thread",
    pytest.param(
        "fork_pool",
        marks=pytest.mark.skipif(
            not fork_available(), reason="platform without fork"
        ),
    ),
]


def _assert_bit_identical(a_list, b_list):
    assert len(a_list) == len(b_list)
    for a, b in zip(a_list, b_list):
        np.testing.assert_array_equal(a.indices, b.indices)
        np.testing.assert_array_equal(a.distances, b.distances)


def test_batch_matches_loop_with_static_and_delta(small_vectors, small_queries):
    _, queries = small_queries
    node = StreamingPLSH(
        small_vectors.n_cols, PARAMS, capacity=4000, delta_fraction=0.9,
        auto_merge=False,
    )
    node.insert_batch(small_vectors.slice_rows(0, 1200))
    node.merge_now()
    node.insert_batch(small_vectors.slice_rows(1200, 2000))  # stays in delta
    assert node.n_static == 1200 and node.n_delta == 800

    _assert_bit_identical(
        node.query_batch(queries, mode="loop"),
        node.query_batch(queries, mode="vectorized"),
    )


def test_batch_spans_merge_boundary(small_vectors, small_queries):
    """A batch answered before and after a merge must be identical: local
    ids are stable under merge, so only the structure holding the rows
    changes, never the answer."""
    _, queries = small_queries
    node = StreamingPLSH(
        small_vectors.n_cols, PARAMS, capacity=4000, delta_fraction=0.9,
        auto_merge=False,
    )
    node.insert_batch(small_vectors.slice_rows(0, 1000))
    node.merge_now()
    node.insert_batch(small_vectors.slice_rows(1000, 2000))

    before = node.query_batch(queries)
    node.merge_now()  # delta rows fold into the static structure
    assert node.n_delta == 0 and node.n_static == 2000
    after = node.query_batch(queries)
    for a, b in zip(before, after):
        order_a, order_b = np.argsort(a.indices), np.argsort(b.indices)
        np.testing.assert_array_equal(a.indices[order_a], b.indices[order_b])
        np.testing.assert_allclose(
            a.distances[order_a], b.distances[order_b], rtol=1e-6, atol=1e-7
        )


def test_batch_respects_deletions(small_vectors, small_queries):
    _, queries = small_queries
    node = StreamingPLSH(
        small_vectors.n_cols, PARAMS, capacity=4000, delta_fraction=0.9,
        auto_merge=False,
    )
    node.insert_batch(small_vectors.slice_rows(0, 1000))
    node.merge_now()
    node.insert_batch(small_vectors.slice_rows(1000, 2000))
    # Tombstone rows on both sides of the static/delta split.
    deleted = np.concatenate(
        [np.arange(0, 1000, 7), np.arange(1000, 2000, 11)]
    )
    node.delete(deleted)

    results = node.query_batch(queries, mode="vectorized")
    _assert_bit_identical(node.query_batch(queries, mode="loop"), results)
    gone = set(deleted.tolist())
    for res in results:
        assert gone.isdisjoint(res.indices.tolist())


def test_empty_node_and_empty_batch(small_vectors, small_queries):
    _, queries = small_queries
    node = StreamingPLSH(small_vectors.n_cols, PARAMS, capacity=100)
    results = node.query_batch(queries)
    assert len(results) == queries.n_rows
    assert all(len(r) == 0 for r in results)
    assert node.query_batch(small_vectors.slice_rows(0, 0)) == []


# -- parallel sharding (the repro.parallel execution layer) -----------------


def _mid_merge_node(small_vectors) -> StreamingPLSH:
    """A node caught between merges: 1200 static rows + 800 delta rows."""
    node = StreamingPLSH(
        small_vectors.n_cols, PARAMS, capacity=4000, delta_fraction=0.9,
        auto_merge=False,
    )
    node.insert_batch(small_vectors.slice_rows(0, 1200))
    node.merge_now()
    node.insert_batch(small_vectors.slice_rows(1200, 2000))
    return node


@pytest.mark.parametrize("backend", PARALLEL_BACKENDS)
def test_sharded_matches_serial_mid_merge(small_vectors, small_queries, backend):
    """Sharded batches on a node holding static AND delta rows must be
    bit-identical to workers=1: every shard sees the same static/delta
    boundary because all shards share one key matrix and one node state."""
    _, queries = small_queries
    node = _mid_merge_node(small_vectors)
    try:
        serial = node.query_batch(queries, workers=1)
        sharded = node.query_batch(queries, workers=3, backend=backend)
        _assert_bit_identical(serial, sharded)
    finally:
        node.close()


@pytest.mark.parametrize("backend", PARALLEL_BACKENDS)
def test_sharded_respects_deletions(small_vectors, small_queries, backend):
    _, queries = small_queries
    node = _mid_merge_node(small_vectors)
    try:
        deleted = np.concatenate(
            [np.arange(0, 1200, 7), np.arange(1200, 2000, 11)]
        )
        node.delete(deleted)
        serial = node.query_batch(queries, workers=1)
        sharded = node.query_batch(queries, workers=2, backend=backend)
        _assert_bit_identical(serial, sharded)
        gone = set(deleted.tolist())
        for res in sharded:
            assert gone.isdisjoint(res.indices.tolist())
    finally:
        node.close()


@pytest.mark.parametrize("backend", PARALLEL_BACKENDS)
def test_pool_survives_batches_and_mutations(small_vectors, small_queries, backend):
    """A node pool stays warm across >= 3 consecutive batches, and any
    mutation (insert/merge/delete) invalidates it so the next parallel
    batch sees the new state instead of a stale fork snapshot."""
    _, queries = small_queries
    node = _mid_merge_node(small_vectors)
    try:
        serial = node.query_batch(queries, workers=1)
        first_ex = node._executor(2, backend)
        for _ in range(3):
            _assert_bit_identical(
                serial, node.query_batch(queries, workers=2, backend=backend)
            )
        assert node._executor(2, backend) is first_ex  # stayed warm

        node.merge_now()  # mutation: snapshot stale -> pool dropped
        assert not node._executors
        _assert_bit_identical(
            node.query_batch(queries, workers=1),
            node.query_batch(queries, workers=2, backend=backend),
        )

        node.delete(np.arange(0, 2000, 5))  # mutation again
        assert not node._executors
        _assert_bit_identical(
            node.query_batch(queries, workers=1),
            node.query_batch(queries, workers=2, backend=backend),
        )
    finally:
        node.close()


@pytest.mark.parametrize("backend", PARALLEL_BACKENDS)
def test_sharded_empty_shards_and_empty_node(small_vectors, small_queries, backend):
    _, queries = small_queries
    node = _mid_merge_node(small_vectors)
    try:
        tiny = queries.slice_rows(0, 2)
        _assert_bit_identical(
            node.query_batch(tiny, workers=1),
            node.query_batch(tiny, workers=8, backend=backend),
        )
    finally:
        node.close()
    empty = StreamingPLSH(small_vectors.n_cols, PARAMS, capacity=100)
    try:
        results = empty.query_batch(queries, workers=2, backend=backend)
        assert len(results) == queries.n_rows
        assert all(len(r) == 0 for r in results)
    finally:
        empty.close()


def test_worker_stats_merged_into_engine(small_vectors, small_queries):
    """Engine counters and stage times observed under sharding must match
    the serial accounting (PR 1's fork contract, kept by the pool)."""
    _, queries = small_queries
    serial_node = _mid_merge_node(small_vectors)
    sharded_node = _mid_merge_node(small_vectors)
    try:
        serial_node.query_batch(queries, workers=1)
        sharded_node.query_batch(queries, workers=2, backend="thread")
        s = serial_node.static.engine.stats
        p = sharded_node.static.engine.stats
        assert p.n_queries == s.n_queries
        assert p.n_collisions == s.n_collisions
        assert p.n_unique == s.n_unique
        assert p.n_matches == s.n_matches
        for name in ("q2_dedup", "q3_distance", "q4_filter"):
            assert name in p.stage_times
        assert "query_static" in sharded_node.times
        assert "query_delta" in sharded_node.times
    finally:
        serial_node.close()
        sharded_node.close()
