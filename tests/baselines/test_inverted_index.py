"""Inverted index baseline tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.exhaustive import ExhaustiveSearch
from repro.baselines.inverted_index import InvertedIndex
from repro.sparse.csr import CSRMatrix


@pytest.fixture(scope="module")
def tiny_index():
    # doc0: {0,1}, doc1: {1,2}, doc2: {3}, doc3: {0,3}
    rows = [
        ([0, 1], [0.8, 0.6]),
        ([1, 2], [0.6, 0.8]),
        ([3], [1.0]),
        ([0, 3], [0.6, 0.8]),
    ]
    data = CSRMatrix.from_rows(rows, 4)
    return InvertedIndex(data, radius=1.2), data


class TestPostings:
    def test_posting_lists(self, tiny_index):
        idx, _ = tiny_index
        np.testing.assert_array_equal(idx.posting_list(0), [0, 3])
        np.testing.assert_array_equal(idx.posting_list(1), [0, 1])
        np.testing.assert_array_equal(idx.posting_list(2), [1])
        np.testing.assert_array_equal(idx.posting_list(3), [2, 3])

    def test_candidates_are_union(self, tiny_index):
        idx, _ = tiny_index
        np.testing.assert_array_equal(
            idx.candidates(np.asarray([0, 2])), [0, 1, 3]
        )

    def test_candidates_empty_query(self, tiny_index):
        idx, _ = tiny_index
        assert idx.candidates(np.empty(0, dtype=np.int64)).size == 0

    def test_candidate_count_tracks_distance_computations(self, tiny_index):
        idx, _ = tiny_index
        before = idx.n_distance_computations
        idx.query(np.asarray([0]), np.asarray([1.0], np.float32))
        assert idx.n_distance_computations - before == 2  # docs 0 and 3


class TestAgainstExhaustive:
    def test_same_results_when_terms_overlap(self, small_vectors, small_queries):
        """For corpus-drawn queries every true neighbor shares >= 1 term
        (dot > 0 requires an overlapping term), so the inverted index is
        exact here and must match exhaustive search."""
        _, queries = small_queries
        inv = InvertedIndex(small_vectors, 0.9)
        exact = ExhaustiveSearch(small_vectors, 0.9)
        for r in range(8):
            a = inv.query(*queries.row(r))
            b = exact.query(*queries.row(r))
            # Neighbors at dist < pi/2 share a term; at R=0.9 < pi/2 the
            # candidate union covers all of them.
            np.testing.assert_array_equal(
                np.sort(a.indices), np.sort(b.indices)
            )

    def test_fewer_distance_computations_than_exhaustive(
        self, small_vectors, small_queries
    ):
        _, queries = small_queries
        inv = InvertedIndex(small_vectors, 0.9)
        inv.query_batch(queries.slice_rows(0, 10))
        assert inv.n_distance_computations < 10 * small_vectors.n_rows

    def test_stage_times_populated(self, small_vectors, small_queries):
        _, queries = small_queries
        inv = InvertedIndex(small_vectors, 0.9)
        inv.query(*queries.row(0))
        assert inv.stage_times["candidate_generation"] >= 0
        assert inv.stage_times["distance_filter"] > 0


def test_invalid_radius(small_vectors):
    with pytest.raises(ValueError):
        InvertedIndex(small_vectors, -1.0)
