"""The executor protocol and its in-process implementations.

An :class:`Executor` owns a fixed *state* object (the read-only structure
the tasks operate on — a query engine, a streaming node, a table-build
workspace) and runs batches of independent tasks against it:

    ``run(fn, tasks)``  calls ``fn(state, *task)`` for every task and
    returns the results in task order.

The state is bound at construction because the expensive backend
(:class:`repro.parallel.fork_pool.ForkPoolExecutor`) transfers it to the
workers exactly once, by ``fork()`` copy-on-write — the paper's "multiple
cores concurrently access the same set of hash tables" realized without
pickling gigabytes of tables per batch.  The in-process executors here
share the state directly; ``fn`` must therefore treat it as read-only (or
clone the mutable parts, as the query layer does).

Lifecycle: executors hold OS resources (threads, processes, pipes) and must
be released with :meth:`Executor.close` or a ``with`` block.  ``close`` is
idempotent; a closed executor raises on ``run``.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Sequence

__all__ = ["Executor", "SerialExecutor", "ThreadExecutor"]


class Executor:
    """Base class / protocol: run independent tasks against shared state."""

    #: degree of parallelism this executor was built with.
    workers: int = 1
    #: backend name, for reporting ("serial" / "thread" / "fork_pool").
    backend: str = "serial"

    def __init__(self, state: Any, workers: int = 1) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self._state = state
        self._closed = False

    def run(
        self, fn: Callable[..., Any], tasks: Sequence[tuple]
    ) -> list[Any]:
        """Execute ``fn(state, *task)`` for every task, results in order."""
        raise NotImplementedError

    def close(self) -> None:
        """Release worker resources (idempotent)."""
        self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError(f"{type(self).__name__} is closed")

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class SerialExecutor(Executor):
    """Runs every task in the calling thread (the ``workers == 1`` path)."""

    backend = "serial"

    def run(
        self, fn: Callable[..., Any], tasks: Sequence[tuple]
    ) -> list[Any]:
        self._check_open()
        return [fn(self._state, *task) for task in tasks]


class ThreadExecutor(Executor):
    """A persistent thread pool sharing the state in-process.

    Threads see the *live* state object, so mutations made between batches
    (e.g. a streaming merge) are visible immediately — no re-fork needed.
    The flip side is the GIL: this backend only scales when ``fn`` spends
    its time in GIL-releasing kernels (large numpy calls), which is true
    for the vectorized batch kernel on large shards and for table
    construction, but not for the per-query loop (EXPERIMENTS.md records
    the measured reality).
    """

    backend = "thread"

    def __init__(self, state: Any, workers: int) -> None:
        super().__init__(state, workers)
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="plsh-worker"
        )

    def run(
        self, fn: Callable[..., Any], tasks: Sequence[tuple]
    ) -> list[Any]:
        self._check_open()
        state = self._state
        futures = [self._pool.submit(fn, state, *task) for task in tasks]
        return [f.result() for f in futures]

    def close(self) -> None:
        if not self._closed:
            self._pool.shutdown(wait=True)
        super().close()
