"""Remote node handles and the localhost cluster spawner.

:class:`RemoteNodeHandle` implements the node handle protocol (see
:mod:`repro.cluster.node`) over one TCP connection to a
:class:`~repro.cluster.server.NodeServer` process, so the coordinator and
:class:`~repro.cluster.cluster.PLSHCluster` drive in-process and remote
nodes through identical call sites.  Capacity bookkeeping (``n_items``,
``free_capacity``) is mirrored client-side from authoritative counts the
server returns with every mutating response — the cluster's rolling insert
window needs those without a round trip per check — and the mirror is
*kept* after a failure, because a dead shard's last-known size is what
tells the coordinator the shard is missing rather than empty.

Every request is **hardened** (PR 5):

* a per-request deadline (``op_timeout``; merge ops use the longer
  ``merge_timeout``) — a hung server surfaces as :class:`TimeoutError`
  instead of blocking a broadcast thread forever, and the blown deadline
  trips the handle's circuit breaker immediately (re-probing a hung node
  costs a whole deadline, so one strike is enough);
* automatic retry with exponential backoff + jitter for **idempotent**
  ops (query / query_batch / stats / ping), reconnecting on torn frames
  and resets — a single flaky exchange never surfaces to the caller;
  mutating ops are never auto-retried (a torn insert may or may not have
  been applied; the replica layer evicts instead of guessing);
* a per-handle :class:`~repro.cluster.health.NodeHealth` record — the
  UP/SUSPECT/DOWN state machine plus CLOSED/OPEN/HALF_OPEN breaker the
  broadcast path consults (``broadcast_ready``); recovery happens only
  through :meth:`probe` (a deadline-bounded ping the
  :class:`~repro.cluster.health.HealthMonitor` heartbeat calls), which is
  the single path allowed to half-open an open breaker.

:func:`spawn_local_cluster` is the zero-config deployment for tests and
benches: it forks one ``NodeServer`` process per node on localhost and
returns a :class:`SpawnedLocalCluster` (a :class:`PLSHCluster` whose nodes
are remote handles), optionally replicated (``replication=R`` places each
logical shard on R node processes) and optionally watched by a heartbeat
(``heartbeat_interval``).  Fork-based spawning shares the parent's
hyperplane bank copy-on-write, so every node hashes queries identically
even when ``params.seed`` is ``None``.

For failure drills the spawned cluster carries knobs: ``kill_node`` (hard
SIGKILL), ``pause_node``/``resume_node`` (SIGSTOP/SIGCONT — a *hang*, the
failure mode deadlines exist for), and per-node
:class:`~repro.cluster.faults.FaultPlan` wrapping (seeded drops, torn
replies, delays, after-send hooks) via ``fault_plans``.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import threading
import time

import numpy as np

from repro.cluster import protocol
from repro.cluster.cluster import PLSHCluster
from repro.cluster.faults import FaultPlan, FaultyConnection
from repro.cluster.health import (
    CircuitOpenError,
    HealthMonitor,
    NodeHealth,
    backoff_delays,
)
from repro.cluster.network import NetworkModel
from repro.cluster.node import ClusterNode
from repro.cluster.server import NodeServer
from repro.cluster.shm import DEFAULT_RING_BYTES, ShmRing, shm_available
from repro.cluster.transport import Connection, ShmConnection, TransportStats
from repro.core.hashing import AllPairsHasher
from repro.core.query import QueryResult
from repro.params import PLSHParams
from repro.sparse.csr import CSRMatrix

__all__ = [
    "RemoteNodeError",
    "RemoteNodeHandle",
    "SpawnedLocalCluster",
    "spawn_local_cluster",
]

_UNSET = object()


class RemoteNodeError(RuntimeError):
    """The server answered a request with an application-level error."""


class RemoteNodeHandle:
    """The node handle protocol spoken over one TCP connection.

    Thread-safe: a per-handle request lock serializes the wire, so any
    number of broadcast threads may share one handle and a connection can
    never carry two interleaved frames (see ``_lock`` below;
    regression-tested by ``tests/cluster/test_coordinator_concurrency.py``).
    """

    def __init__(
        self,
        node_id: int,
        host: str,
        port: int,
        capacity: int,
        *,
        connect_timeout: float = 10.0,
        op_timeout: float | None = 30.0,
        merge_timeout: float | None = 600.0,
        retries: int = 2,
        probe_timeout: float = 1.0,
        health: NodeHealth | None = None,
        fault_plan: FaultPlan | None = None,
        shm: bool | str = "auto",
        shm_size: int = DEFAULT_RING_BYTES,
        score_dtype: str = "float32",
    ) -> None:
        self.node_id = node_id
        self.host = host
        self.port = port
        self._capacity = int(capacity)
        self._n_items = 0
        self._closed = False
        #: shared-memory transport policy: ``"auto"``/True negotiates shm
        #: rings at handshake and silently falls back to framed TCP when
        #: /dev/shm or the server declines; False never offers.
        self._shm_enabled = shm in ("auto", True)
        self.shm_size = int(shm_size)
        #: client-owned ring pair ``(request, response)`` — created once,
        #: reused across reconnects, unlinked in :meth:`close`.
        self._shm_rings: tuple[ShmRing, ShmRing] | None = None
        #: True while the current connection actually speaks shm.
        self.shm_active = False
        if score_dtype not in ("float32", "float16"):
            raise ValueError(f"unknown score_dtype {score_dtype!r}")
        #: wire dtype for result distances: ``"float16"`` halves the
        #: response score column (rounded; radius-tolerance validated).
        self.score_dtype = score_dtype
        #: per-request deadline for regular ops (None = block forever).
        self.op_timeout = op_timeout
        #: deadline for merge ops, which legitimately run long.
        self.merge_timeout = merge_timeout
        #: extra attempts for idempotent ops after a connection failure.
        self.retries = int(retries)
        self.probe_timeout = float(probe_timeout)
        self.connect_timeout = float(connect_timeout)
        #: health record: state machine + circuit breaker (shared with
        #: the heartbeat monitor and the replica failover layer).
        self.health = health if health is not None else NodeHealth()
        #: fault-injection plan re-applied to every (re)connection.
        self.fault_plan = fault_plan
        #: server-side compute seconds of the last query_batch (excludes
        #: the wire), for measured communication-share accounting.
        self.last_compute_seconds: float | None = None
        # The per-handle request lock: AT MOST ONE frame in flight per
        # connection, ever.  Concurrent broadcasts (the serving gateway
        # dispatches overlapping micro-batches through one coordinator),
        # the heartbeat and reset_transport_stats all serialize here —
        # without it two broadcast threads would interleave request
        # frames on one socket and pair responses with the wrong caller
        # (or tear a frame mid-write).  Held across send+recv+retries so
        # request/response pairing is by construction, not by luck.
        self._lock = threading.Lock()
        #: wire totals folded in from connections already torn down.
        self._stats_base = TransportStats()
        self._conn = self._wrap(
            Connection.connect(host, port, timeout=connect_timeout)
        )
        self._negotiate_shm()
        # Sync the client-side mirror from the server's authoritative
        # counts: a handle (re)connected to an already-populated server
        # must not report 0 items (the coordinator would silently skip
        # the node and the insert window would over-fill it).
        self.stats()

    # -- plumbing ----------------------------------------------------------

    def _wrap(self, conn: Connection):
        if self.fault_plan is not None:
            return FaultyConnection(conn, self.fault_plan)
        return conn

    @property
    def alive(self) -> bool:
        """False while the handle is closed or its breaker is open.  Not
        terminal: a successful :meth:`probe` (heartbeat) revives it."""
        return not self._closed and self.health.allow_request()

    @property
    def broadcast_ready(self) -> bool:
        """Should a broadcast include this node right now?  Only a
        CLOSED breaker qualifies — recovery probes are the heartbeat's
        job, never the query path's."""
        return self.alive

    @property
    def transport_stats(self) -> TransportStats:
        """Real bytes/messages over this handle's wire (TCP + shm),
        summed across reconnects (a snapshot; not live-updating)."""
        total = TransportStats()
        total.add(self._stats_base)
        conn = self._conn
        if conn is not None:
            total.add(conn.stats)
        return total

    def reset_transport_stats(self) -> None:
        """Zero the byte/message counters (batch-isolated measurements:
        reset, run one exchange, read :attr:`transport_stats`)."""
        with self._lock:
            self._stats_base.reset()
            conn = self._conn
            if conn is not None:
                conn.stats.reset()

    def health_snapshot(self) -> dict:
        """This handle's health row for ``Coordinator.health()``."""
        snap = self.health.snapshot()
        snap["node_id"] = self.node_id
        snap["closed"] = self._closed
        snap["n_items"] = self._n_items
        return snap

    def _drop_connection(self) -> None:
        """Tear down the current connection now (first failure closes the
        socket; nothing is left half-open for GC to find)."""
        conn, self._conn = self._conn, None
        self.shm_active = False
        if conn is not None:
            self._stats_base.add(conn.stats)
            conn.close()

    def _reconnect(self) -> None:
        self._drop_connection()
        try:
            self._conn = self._wrap(
                Connection.connect(
                    self.host, self.port, timeout=self.connect_timeout
                )
            )
        except OSError as exc:  # refused, unreachable, connect timeout
            raise ConnectionError(
                f"reconnect to node {self.node_id} failed: {exc}"
            ) from exc
        self._negotiate_shm()

    def _negotiate_shm(self) -> None:
        """Offer shared-memory rings on the fresh connection (OP_HELLO).

        The client creates (and later unlinks) both rings, so a node
        process dying by SIGKILL can never leak a /dev/shm entry.  Any
        decline — no /dev/shm, ring creation failure, server error —
        degrades to the framed-TCP path; connection-level failures
        propagate (the caller's reconnect machinery owns those).
        """
        self.shm_active = False
        if not self._shm_enabled:
            return
        if self._shm_rings is None:
            if not shm_available():
                self._shm_enabled = False
                return
            try:
                req = ShmRing.create(self.shm_size)
            except OSError:
                self._shm_enabled = False
                return
            try:
                resp = ShmRing.create(self.shm_size)
            except OSError:
                req.close(unlink=True)
                self._shm_enabled = False
                return
            self._shm_rings = (req, resp)
        req, resp = self._shm_rings
        deadline = time.monotonic() + self.connect_timeout
        self._conn.send_message(
            protocol.OP_HELLO,
            {"shm": {"req": req.name, "resp": resp.name, "size": req.size}},
            deadline=deadline,
        )
        status, meta, _ = self._conn.recv_message(deadline=deadline)
        if status == protocol.STATUS_OK and meta.get("shm"):
            self._conn = ShmConnection(self._conn, out_ring=req, in_ring=resp)
            self.shm_active = True

    def _release_shm(self) -> None:
        rings, self._shm_rings = self._shm_rings, None
        self.shm_active = False
        if rings is not None:
            for ring in rings:
                ring.close(unlink=True)

    def _call(
        self,
        code: int,
        meta: dict | None = None,
        arrays=(),
        *,
        idempotent: bool = False,
        timeout=_UNSET,
        probe: bool = False,
    ) -> tuple[dict, list[np.ndarray]]:
        if self._closed:
            raise ConnectionError(f"node {self.node_id} handle is closed")
        if timeout is _UNSET:
            timeout = self.op_timeout
        op = protocol.OP_NAMES.get(code, str(code))
        health = self.health
        if probe:
            if not health.allow_probe():
                raise CircuitOpenError(
                    f"node {self.node_id} breaker open (cooling down)"
                )
            # Never let the heartbeat block behind a long in-flight op:
            # skip this round instead (the op's outcome updates health).
            if not self._lock.acquire(timeout=0.1):
                health.abort_probe()
                raise CircuitOpenError(
                    f"node {self.node_id} busy; probe skipped"
                )
        else:
            if not health.allow_request():
                raise CircuitOpenError(
                    f"node {self.node_id} circuit open after "
                    f"{health.consecutive_failures} consecutive failures"
                )
            self._lock.acquire()
        try:
            attempts = 1 + (self.retries if idempotent else 0)
            delays = backoff_delays(max(0, attempts - 1))
            for attempt in range(attempts):
                deadline = (
                    time.monotonic() + timeout if timeout is not None else None
                )
                try:
                    if self._conn is None or self._conn.closed:
                        self._reconnect()
                    self._conn.send_message(
                        code, meta, arrays, deadline=deadline
                    )
                    status, out_meta, out_arrays = self._conn.recv_message(
                        deadline=deadline
                    )
                except TimeoutError as exc:
                    # A blown deadline is hang evidence: trip the breaker
                    # outright and never retry (each retry would pay the
                    # full deadline again against a stuck peer).
                    self._drop_connection()
                    health.record_failure(
                        f"{op}: {exc}", weight=health.down_after
                    )
                    raise TimeoutError(
                        f"node {self.node_id} {op}: {exc}"
                    ) from exc
                except ConnectionError as exc:
                    self._drop_connection()
                    health.record_failure(f"{op}: {exc}")
                    if attempt + 1 < attempts and not self._closed:
                        time.sleep(next(delays))
                        continue
                    raise ConnectionError(
                        f"node {self.node_id} {op}: {exc}"
                        + (f" (after {attempts} attempts)" if attempts > 1 else "")
                    ) from exc
                health.record_success()
                if status == protocol.STATUS_ERROR:
                    raise RemoteNodeError(
                        f"node {self.node_id} {out_meta.get('op', '?')}: "
                        f"{out_meta.get('type', 'Error')}: "
                        f"{out_meta.get('error', '')}"
                    )
                return out_meta, out_arrays
            raise AssertionError("unreachable: retry loop fell through")
        finally:
            self._lock.release()

    # -- node handle protocol ----------------------------------------------

    @property
    def n_items(self) -> int:
        return self._n_items

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def free_capacity(self) -> int:
        return self._capacity - self._n_items

    @property
    def is_full(self) -> bool:
        return self.free_capacity <= 0

    def ping(self) -> int:
        meta, _ = self._call(protocol.OP_PING, idempotent=True)
        return int(meta["node_id"])

    def probe(self, *, timeout: float | None = None) -> bool:
        """One health-check ping under a short deadline; the only request
        allowed through an OPEN breaker (as its half-open probe).  Returns
        True when the node answered — which also closes the breaker."""
        if self._closed:
            return False
        try:
            self._call(
                protocol.OP_PING,
                probe=True,
                timeout=self.probe_timeout if timeout is None else timeout,
            )
            return True
        except (ConnectionError, TimeoutError):
            return False

    def insert_batch(
        self,
        vectors: CSRMatrix,
        global_ids: np.ndarray,
        timestamps: np.ndarray | None = None,
    ) -> None:
        ids = np.ascontiguousarray(global_ids, dtype=np.int64)
        arrays = protocol.csr_to_arrays(vectors, compact=True) + [
            protocol.compact_ids(ids)
        ]
        if timestamps is not None:
            ts = np.ascontiguousarray(timestamps, dtype=np.int64)
            arrays.append(protocol.compact_ids(ts))
        meta, _ = self._call(
            protocol.OP_INSERT_BATCH, {"n_cols": vectors.n_cols}, arrays
        )
        self._n_items = int(meta["n_items"])

    def query(
        self,
        q_cols: np.ndarray,
        q_vals: np.ndarray,
        *,
        radius: float | None = None,
        time_range: tuple[int, int] | None = None,
    ) -> QueryResult:
        meta = {"radius": radius}
        if time_range is not None:
            meta["time_range"] = [int(time_range[0]), int(time_range[1])]
        _, (ids, dists) = self._call(
            protocol.OP_QUERY,
            meta,
            [
                np.ascontiguousarray(q_cols, dtype=np.int64),
                np.ascontiguousarray(q_vals, dtype=np.float32),
            ],
            idempotent=True,
        )
        return QueryResult(ids, dists)

    def query_batch(
        self,
        queries: CSRMatrix,
        *,
        radius: float | None = None,
        mode: str | None = None,
        workers: int | None = None,
        backend: str | None = None,
        time_range: tuple[int, int] | None = None,
    ) -> list[QueryResult]:
        meta = {"n_cols": queries.n_cols, "radius": radius}
        # Omitted fields defer to the server's own defaults.
        if mode is not None:
            meta["mode"] = mode
        if workers is not None:
            meta["workers"] = workers
        if backend is not None:
            meta["backend"] = backend
        if time_range is not None:
            meta["time_range"] = [int(time_range[0]), int(time_range[1])]
        if self.score_dtype != "float32":
            meta["score_dtype"] = self.score_dtype
        out_meta, (indptr, ids, dists) = self._call(
            protocol.OP_QUERY_BATCH,
            meta,
            protocol.csr_to_arrays(queries, compact=True),
            idempotent=True,
        )
        self.last_compute_seconds = float(out_meta["seconds"])
        # Widen compact wire dtypes back to engine dtypes (ids exactly;
        # float16 scores keep their rounded values as float32).
        ids = protocol.widen_ids(ids)
        if dists.dtype != np.float32:
            dists = dists.astype(np.float32)
        return [
            QueryResult(ids[int(s) : int(e)], dists[int(s) : int(e)])
            for s, e in zip(indptr[:-1], indptr[1:])
        ]

    def delete_global(self, global_ids: np.ndarray) -> int:
        ids = np.ascontiguousarray(global_ids, dtype=np.int64)
        meta, _ = self._call(
            protocol.OP_DELETE_GLOBAL, None, [protocol.compact_ids(ids)]
        )
        return int(meta["n_deleted"])

    def begin_merge(self) -> bool:
        meta, _ = self._call(
            protocol.OP_BEGIN_MERGE, timeout=self.merge_timeout
        )
        return bool(meta["started"])

    def commit_merge(self, *, wait: bool = False) -> bool:
        meta, _ = self._call(
            protocol.OP_COMMIT_MERGE, {"wait": wait},
            timeout=self.merge_timeout,
        )
        return bool(meta["committed"])

    def merge_now(self) -> None:
        self._call(protocol.OP_MERGE_NOW, timeout=self.merge_timeout)

    def stats(self) -> dict:
        meta, _ = self._call(protocol.OP_STATS, idempotent=True)
        stats = meta["stats"]
        self._n_items = int(stats["n_items"])
        return stats

    def retire(self) -> np.ndarray:
        _, (dropped,) = self._call(protocol.OP_RETIRE)
        self._n_items = 0
        return dropped

    def retire_window(self) -> np.ndarray:
        _, (dropped,) = self._call(protocol.OP_RETIRE_WINDOW)
        self._n_items = 0
        return protocol.widen_ids(dropped)

    def retire_before(self, cutoff: int) -> np.ndarray:
        meta, (dropped,) = self._call(
            protocol.OP_RETIRE_BEFORE, {"cutoff": int(cutoff)}
        )
        self._n_items = int(meta["n_items"])
        return protocol.widen_ids(dropped)

    def export_state(self) -> dict:
        """Pull the server node's full state as ``{name: array}`` — the
        replica-resync source side.  Uses the merge deadline: the server
        drains any in-flight merge before snapshotting."""
        meta, arrays = self._call(
            protocol.OP_EXPORT_STATE, idempotent=True,
            timeout=self.merge_timeout,
        )
        return dict(zip(meta["keys"], arrays))

    def import_state(self, payload: dict) -> None:
        """Push an exported sibling state into the server node wholesale —
        the replica-resync target side."""
        keys = sorted(payload)
        meta, _ = self._call(
            protocol.OP_IMPORT_STATE,
            {"keys": keys},
            [np.ascontiguousarray(payload[k]) for k in keys],
            timeout=self.merge_timeout,
        )
        self._n_items = int(meta["n_items"])

    def shutdown(self, *, timeout: float = 2.0) -> None:
        """Ask the server process to exit cleanly (idempotent).  Bounded
        by a short deadline of its own: teardown must not wait a full op
        timeout on a hung node (the spawner escalates to SIGKILL)."""
        try:
            self._call(protocol.OP_SHUTDOWN, timeout=timeout)
        except (ConnectionError, TimeoutError, RemoteNodeError):
            pass  # already gone (CircuitOpenError is a ConnectionError)
        self.close()

    def close(self) -> None:
        """Drop the connection (the server keeps running; see shutdown).
        Idempotent — a spawned cluster torn down twice must not raise."""
        if self._closed:
            return
        self._closed = True
        self._drop_connection()
        self._release_shm()


# -- localhost spawning ----------------------------------------------------


def _node_server_main(
    node_id: int,
    dim: int,
    params: PLSHParams,
    capacity: int,
    hasher: AllPairsHasher,
    delta_fraction: float,
    overlap_merges: bool,
    workers: int | None,
    backend: str | None,
    ready,
) -> None:
    """Child-process entry: build the node, report the port, serve."""
    node = ClusterNode(
        node_id,
        dim,
        params,
        capacity,
        hasher,
        delta_fraction=delta_fraction,
        overlap_merges=overlap_merges,
    )
    server = NodeServer(node, workers=workers, backend=backend)
    ready.send((server.host, server.port))
    ready.close()
    server.serve_forever()


class SpawnedLocalCluster(PLSHCluster):
    """A :class:`PLSHCluster` whose nodes live in forked server processes.

    Carries the failure-injection knobs the chaos harness drives:
    :meth:`kill_node` (crash), :meth:`pause_node`/:meth:`resume_node`
    (hang via SIGSTOP/SIGCONT), and per-node :class:`FaultPlan` objects
    (flaky-network injection) installed at spawn time.  ``monitor`` is
    the optional heartbeat; :meth:`close` is idempotent.
    """

    #: one multiprocessing.Process per node, index-aligned with ``nodes``.
    processes: list
    #: optional background heartbeat over the remote handles.
    monitor: HealthMonitor | None
    #: spawn-time arguments kept for :meth:`respawn_node`.
    _spawn_spec: dict
    _spawn_closed: bool

    def respawn_node(self, index: int) -> RemoteNodeHandle:
        """Fork a fresh, **empty** server process for node ``index`` and
        return a new handle pointed at it (the replacement half of
        replica resync: pass the handle to
        :meth:`~repro.cluster.replication.ReplicaGroup.resync`, which
        copies a surviving sibling's state into it).

        The old process is reaped and its handle closed;
        ``self.processes[index]`` / ``self.nodes[index]`` are swapped to
        the new ones.  Replica groups in ``self.shards`` still reference
        the old handle — ``resync(replica_index, replacement=handle)``
        is what re-wires the shard."""
        spec = self._spawn_spec
        ctx = multiprocessing.get_context("fork")
        recv_end, send_end = ctx.Pipe(duplex=False)
        proc = ctx.Process(
            target=_node_server_main,
            args=(
                index, spec["dim"], spec["params"], spec["node_capacity"],
                spec["hasher"], spec["delta_fraction"],
                spec["overlap_merges"], spec["node_workers"],
                spec["node_backend"], send_end,
            ),
            daemon=True,
            name=f"plsh-node-{index}-respawn",
        )
        proc.start()
        send_end.close()
        try:
            if not recv_end.poll(spec["connect_timeout"]):
                raise TimeoutError(
                    f"respawned node {index} did not report a port in time"
                )
            host, port = recv_end.recv()
        except BaseException:
            proc.terminate()
            proc.join(timeout=5.0)
            raise
        finally:
            recv_end.close()
        old_proc = self.processes[index]
        try:
            os.kill(old_proc.pid, signal.SIGCONT)  # wake a paused child
        except (OSError, TypeError):
            pass
        if old_proc.is_alive():
            old_proc.terminate()
        old_proc.join(timeout=5.0)
        self.processes[index] = proc
        handle = RemoteNodeHandle(
            index, host, port, spec["node_capacity"],
            connect_timeout=spec["connect_timeout"],
            op_timeout=spec["op_timeout"],
            merge_timeout=spec["merge_timeout"],
            retries=spec["retries"],
            probe_timeout=spec["probe_timeout"],
            health=NodeHealth(
                down_after=spec["health_down_after"],
                cooldown=spec["health_cooldown"],
            ),
            shm=spec["shm"] if not isinstance(spec["shm"], dict) else "auto",
            shm_size=spec["shm_size"],
            score_dtype=spec["score_dtype"],
        )
        old_handle = self.nodes[index]
        self.nodes[index] = handle
        try:
            old_handle.close()
        except Exception:
            pass
        return handle

    def kill_node(self, index: int) -> None:
        """Hard-kill one node's process (crash injection).  The handle is
        left untouched on purpose: the next request observes the death,
        closes the socket, and reports the per-node error."""
        proc = self.processes[index]
        proc.kill()
        proc.join(timeout=5.0)

    def pause_node(self, index: int) -> None:
        """SIGSTOP one node's process — a *hang*, not a crash: the socket
        stays open and requests stall until the deadline trips."""
        os.kill(self.processes[index].pid, signal.SIGSTOP)

    def resume_node(self, index: int) -> None:
        """SIGCONT a paused node; the heartbeat's next probe revives it."""
        os.kill(self.processes[index].pid, signal.SIGCONT)

    def close(self) -> None:
        if getattr(self, "_spawn_closed", False):
            return
        self._spawn_closed = True
        if self.monitor is not None:
            self.monitor.stop()
        for node in self.nodes:
            try:
                node.shutdown()
            except Exception:
                pass
        for proc in self.processes:
            # A SIGSTOPped child never processes the shutdown: wake it so
            # join() cannot hang, then escalate.
            try:
                os.kill(proc.pid, signal.SIGCONT)
            except (OSError, TypeError):
                pass
            proc.join(timeout=5.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5.0)
        super().close()


def spawn_local_cluster(
    n_nodes: int,
    node_capacity: int,
    dim: int,
    params: PLSHParams,
    *,
    insert_window: int = 4,
    delta_fraction: float = 0.1,
    overlap_merges: bool = False,
    network: NetworkModel | None = None,
    node_workers: int | None = None,
    node_backend: str | None = None,
    connect_timeout: float = 10.0,
    replication: int = 1,
    op_timeout: float | None = 30.0,
    merge_timeout: float | None = 600.0,
    retries: int = 2,
    probe_timeout: float = 1.0,
    health_down_after: int = 3,
    health_cooldown: float = 2.0,
    heartbeat_interval: float | None = None,
    fault_plans: dict[int, FaultPlan] | None = None,
    shm: bool | str | dict[int, bool] = "auto",
    shm_size: int = DEFAULT_RING_BYTES,
    score_dtype: str = "float32",
) -> SpawnedLocalCluster:
    """Fork ``n_nodes`` :class:`NodeServer` processes and cluster them.

    Every child is forked *after* the parent draws the hyperplane bank, so
    all nodes share identical hash functions by copy-on-write inheritance
    (required for broadcast querying; works even with ``params.seed=None``).
    Requires a platform with ``fork`` (Linux/macOS); call it before any
    background merge builds are running (fork-while-threaded hazard, same
    rule the fork pool follows).

    ``replication=R`` groups consecutive nodes into replica sets: nodes
    ``[s*R, (s+1)*R)`` form logical shard ``s``, inserts fan out to every
    replica, and broadcasts fail over between them (see
    :mod:`repro.cluster.replication`).  ``heartbeat_interval`` starts a
    :class:`HealthMonitor` pinging every handle — without one, a node
    marked DOWN stays down (failover still works; *recovery* needs the
    heartbeat).  ``fault_plans`` maps node index to a
    :class:`FaultPlan` wrapped around that handle's connections.

    ``shm`` selects the zero-copy shared-memory payload transport:
    ``"auto"`` (default) negotiates per connection and falls back to
    framed TCP when /dev/shm is unavailable (or ``PLSH_SHM=0``); a
    ``dict`` maps node index → policy for mixed shm/TCP clusters.
    ``score_dtype="float16"`` halves the result-score wire column
    (half-precision rounding; ids stay exact).
    """
    from repro.parallel import fork_available

    if not fork_available():
        raise RuntimeError(
            "spawn_local_cluster requires the fork start method "
            "(unavailable on this platform)"
        )
    ctx = multiprocessing.get_context("fork")
    hasher = AllPairsHasher(params, dim)
    processes = []
    ready_ends = []
    handles = []
    monitor = None
    try:
        for i in range(n_nodes):
            recv_end, send_end = ctx.Pipe(duplex=False)
            proc = ctx.Process(
                target=_node_server_main,
                args=(
                    i, dim, params, node_capacity, hasher,
                    delta_fraction, overlap_merges,
                    node_workers, node_backend, send_end,
                ),
                daemon=True,
                name=f"plsh-node-{i}",
            )
            proc.start()
            send_end.close()
            processes.append(proc)
            ready_ends.append(recv_end)
        deadline = time.monotonic() + connect_timeout
        for i, recv_end in enumerate(ready_ends):
            if not recv_end.poll(max(0.0, deadline - time.monotonic())):
                raise TimeoutError(f"node {i} did not report a port in time")
            host, port = recv_end.recv()
            recv_end.close()
            node_shm = shm.get(i, "auto") if isinstance(shm, dict) else shm
            handles.append(
                RemoteNodeHandle(
                    i, host, port, node_capacity,
                    connect_timeout=connect_timeout,
                    op_timeout=op_timeout,
                    merge_timeout=merge_timeout,
                    retries=retries,
                    probe_timeout=probe_timeout,
                    health=NodeHealth(
                        down_after=health_down_after,
                        cooldown=health_cooldown,
                    ),
                    fault_plan=(fault_plans or {}).get(i),
                    shm=node_shm,
                    shm_size=shm_size,
                    score_dtype=score_dtype,
                )
            )
        if heartbeat_interval is not None:
            monitor = HealthMonitor(handles, interval=heartbeat_interval)
            monitor.start()
    except BaseException:
        if monitor is not None:
            monitor.stop()
        for handle in handles:
            handle.close()
        for recv_end in ready_ends:
            recv_end.close()
        for proc in processes:
            if proc.is_alive():
                proc.terminate()
        for proc in processes:
            proc.join(timeout=5.0)
        raise
    cluster = SpawnedLocalCluster.from_handles(
        handles, dim, params,
        insert_window=insert_window, network=network,
        replication=replication,
    )
    cluster.processes = processes
    cluster.monitor = monitor
    cluster._spawn_spec = {
        "dim": dim,
        "params": params,
        "node_capacity": node_capacity,
        "hasher": hasher,
        "delta_fraction": delta_fraction,
        "overlap_merges": overlap_merges,
        "node_workers": node_workers,
        "node_backend": node_backend,
        "connect_timeout": connect_timeout,
        "op_timeout": op_timeout,
        "merge_timeout": merge_timeout,
        "retries": retries,
        "probe_timeout": probe_timeout,
        "health_down_after": health_down_after,
        "health_cooldown": health_cooldown,
        "shm": shm,
        "shm_size": shm_size,
        "score_dtype": score_dtype,
    }
    cluster._spawn_closed = False
    return cluster
