"""Vectorized CSR kernels, plus pure-Python reference implementations.

Two kernels carry the whole system:

* :func:`sparse_dense_matmul` — ``CSR (N×D) @ dense (D×H)`` used to evaluate
  all ``m·k/2`` hyperplane dot products in one pass (Section 5.1.1, where the
  paper observes hashing "can be treated as a matrix multiply").  Implemented
  as a chunked gather/cumsum kernel so peak memory is bounded regardless of N.

* :func:`row_dots_dense` — dot products of a set of CSR rows against a dense
  vector.  This is Step Q3: the dense vector is the paper's "query bitvector
  in the vocabulary space", generalized to carry IDF weights so the lookup
  produces the dot-product contribution directly.

The ``*_reference`` twins are intentionally naive Python loops: they are the
ground truth for property tests and serve as the "no vectorization" rungs of
the Figure 4/5 ablations.
"""

from __future__ import annotations

import numpy as np

from repro.sparse.csr import CSRMatrix, ranges_to_indices
from repro.utils.chunking import chunk_bounds

__all__ = [
    "sparse_dense_matmul",
    "sparse_dense_matmul_reference",
    "row_dots_dense",
    "row_dots_dense_batch",
    "row_dots_dense_reference",
    "densify_query",
]

#: Rows per chunk for the matmul kernel; keeps the gathered (nnz_chunk × H)
#: temporary under ~100 MB for typical tweet sparsity and H ≈ 320.
_DEFAULT_CHUNK_ROWS = 8192

#: Dense query-block budget for the batch dot kernel: the scattered
#: (block, D) float32 lookup plane stays under this many bytes.  Small
#: enough to sit in L2/L3 — the per-element gathers hit cache instead of
#: RAM, which measures ~1.7x faster than a RAM-sized plane at tweet scale —
#: while large enough that per-block dispatch overhead stays negligible.
_DEFAULT_DENSE_BLOCK_BYTES = 8 << 20


def sparse_dense_matmul(
    csr: CSRMatrix,
    dense: np.ndarray,
    *,
    chunk_rows: int = _DEFAULT_CHUNK_ROWS,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Compute ``csr @ dense`` → float32 array of shape ``(n_rows, H)``.

    Row chunks are processed with a gather of the needed dense rows followed
    by a prefix-sum difference, which is empty-row-safe (unlike
    ``np.add.reduceat``) and fully vectorized.
    """
    dense = np.asarray(dense, dtype=np.float32)
    if dense.ndim != 2:
        raise ValueError(f"dense operand must be 2-D, got shape {dense.shape}")
    if dense.shape[0] != csr.n_cols:
        raise ValueError(
            f"dimension mismatch: csr has {csr.n_cols} cols, dense has "
            f"{dense.shape[0]} rows"
        )
    n, h = csr.n_rows, dense.shape[1]
    if out is None:
        out = np.empty((n, h), dtype=np.float32)
    elif out.shape != (n, h):
        raise ValueError(f"out has shape {out.shape}, expected {(n, h)}")

    for start, stop in chunk_bounds(n, chunk_rows):
        s, e = int(csr.indptr[start]), int(csr.indptr[stop])
        if s == e:
            out[start:stop] = 0.0
            continue
        # (nnz_chunk + 1, H) contributions of every stored element, plus a
        # zero sentinel row so reduceat start indexes of trailing empty rows
        # (== nnz_chunk) stay in range without disturbing earlier segments.
        contrib = np.empty((e - s + 1, h), dtype=np.float32)
        np.multiply(dense[csr.indices[s:e]], csr.data[s:e, None], out=contrib[:-1])
        contrib[-1] = 0.0
        bounds = (csr.indptr[start : stop + 1] - s).astype(np.int64)
        # Row-wise segmented sum.  np.add.reduceat returns contrib[start]
        # for empty segments instead of 0; zero those rows afterwards.
        sums = np.add.reduceat(contrib, bounds[:-1], axis=0)
        empty = bounds[1:] == bounds[:-1]
        if empty.any():
            sums[empty] = 0.0
        out[start:stop] = sums
    return out


def sparse_dense_matmul_reference(csr: CSRMatrix, dense: np.ndarray) -> np.ndarray:
    """Per-row Python-loop matmul (ground truth / "unvectorized" ablation)."""
    dense = np.asarray(dense, dtype=np.float32)
    out = np.zeros((csr.n_rows, dense.shape[1]), dtype=np.float32)
    for i in range(csr.n_rows):
        cols, vals = csr.row(i)
        acc = np.zeros(dense.shape[1], dtype=np.float64)
        for c, v in zip(cols.tolist(), vals.tolist()):
            acc += float(v) * dense[c].astype(np.float64)
        out[i] = acc.astype(np.float32)
    return out


def densify_query(
    cols: np.ndarray, vals: np.ndarray, n_cols: int, out: np.ndarray | None = None
) -> np.ndarray:
    """Scatter a sparse query into a dense float32 lookup vector.

    The paper's Step-Q3 optimization builds a bitvector over the vocabulary
    for O(1) membership checks; carrying the IDF value instead of a bit gives
    the dot-product contribution in the same single lookup.
    """
    if out is None:
        out = np.zeros(n_cols, dtype=np.float32)
    else:
        out.fill(0.0)
    out[cols] = vals
    return out


def row_dots_dense(csr: CSRMatrix, row_ids: np.ndarray, dense_vec: np.ndarray) -> np.ndarray:
    """Dot product of each listed CSR row with a dense vector (vectorized).

    Gathers all candidate rows' elements at once and reduces per-row with
    ``np.bincount`` over row labels — no Python-level loop over candidates.
    """
    row_ids = np.asarray(row_ids, dtype=np.int64)
    if row_ids.size == 0:
        return np.empty(0, dtype=np.float32)
    starts = csr.indptr[row_ids]
    lengths = (csr.indptr[row_ids + 1] - starts).astype(np.int64)
    total = int(lengths.sum())
    if total == 0:
        return np.zeros(row_ids.size, dtype=np.float32)
    ends = np.cumsum(lengths)
    labels = np.repeat(np.arange(row_ids.size), lengths)
    within = np.arange(total) - np.repeat(np.concatenate(([0], ends[:-1])), lengths)
    take = starts[labels] + within
    prods = csr.data[take].astype(np.float64) * dense_vec[csr.indices[take]]
    return np.bincount(labels, weights=prods, minlength=row_ids.size).astype(
        np.float32
    )


def row_dots_dense_batch(
    csr: CSRMatrix,
    row_ids: np.ndarray,
    seg_offsets: np.ndarray,
    queries: CSRMatrix,
    *,
    dense_block_bytes: int = _DEFAULT_DENSE_BLOCK_BYTES,
) -> np.ndarray:
    """Step Q3 for a whole query batch: segmented candidate dot products.

    ``row_ids[seg_offsets[b]:seg_offsets[b+1]]`` are the candidate rows of
    query ``b`` (row ``b`` of ``queries``); the result is a flat float32
    array of the same segmented layout holding ``<candidate, query_b>`` for
    every candidate.

    The kernel is *blocked* over queries: each block scatters its query rows
    into a dense ``(block, D)`` float32 lookup plane (bounded by
    ``dense_block_bytes``), gathers every candidate element of the block in
    one pass and segment-reduces with ``np.bincount`` — the batched-gather
    structure of :func:`row_dots_dense` amortized over all queries of the
    block, so dispatch cost is O(B / block), not O(total candidates).

    Numerically identical to calling :func:`row_dots_dense` per query: the
    same float32 operands are multiplied in float64 and accumulated in CSR
    element order.
    """
    row_ids = np.asarray(row_ids, dtype=np.int64)
    seg_offsets = np.asarray(seg_offsets, dtype=np.int64)
    n_queries = seg_offsets.size - 1
    if queries.n_rows != n_queries:
        raise ValueError(
            f"{n_queries} candidate segments but {queries.n_rows} query rows"
        )
    if row_ids.size != (0 if n_queries == 0 else int(seg_offsets[-1])):
        raise ValueError(
            f"row_ids has {row_ids.size} entries, offsets end at "
            f"{int(seg_offsets[-1]) if n_queries else 0}"
        )
    out = np.zeros(row_ids.size, dtype=np.float32)
    if row_ids.size == 0 or n_queries == 0:
        return out
    block = max(1, int(dense_block_bytes // (4 * max(csr.n_cols, 1))))
    plane = np.zeros((min(block, n_queries), csr.n_cols), dtype=np.float32)
    for b0 in range(0, n_queries, block):
        b1 = min(b0 + block, n_queries)
        # Scatter the block's query rows into the dense plane.
        qs, qe = int(queries.indptr[b0]), int(queries.indptr[b1])
        q_rows = np.repeat(
            np.arange(b1 - b0), np.diff(queries.indptr[b0 : b1 + 1])
        )
        q_cols = queries.indices[qs:qe]
        plane[q_rows, q_cols] = queries.data[qs:qe]
        # Gather every candidate element of the block in one pass.
        s, e = int(seg_offsets[b0]), int(seg_offsets[b1])
        rids = row_ids[s:e]
        if rids.size:
            cand_query = np.repeat(
                np.arange(b1 - b0), np.diff(seg_offsets[b0 : b1 + 1])
            )
            starts = csr.indptr[rids]
            lengths = (csr.indptr[rids + 1] - starts).astype(np.int64)
            total = int(lengths.sum())
            if total:
                bounds = np.cumsum(lengths) - lengths
                take = ranges_to_indices(starts, lengths)
                # float64 products in CSR element order + an in-order
                # segmented reduce: the exact accumulation sequence of the
                # per-query row_dots_dense/bincount path, so results stay
                # bit-identical.  The trailing 0.0 sentinel keeps reduceat
                # starts of empty trailing segments in range.
                prods = np.empty(total + 1, dtype=np.float64)
                # The explicit float64 cast of the left operand forces the
                # float64 multiply loop (f32*f32 with a float64 ``out``
                # would compute in float32 and only widen the result,
                # breaking bit-identity with the per-query path).
                np.multiply(
                    csr.data[take].astype(np.float64),
                    plane[np.repeat(cand_query, lengths), csr.indices[take]],
                    out=prods[:-1],
                )
                prods[-1] = 0.0
                sums = np.add.reduceat(prods, bounds)
                empty_rows = lengths == 0
                if empty_rows.any():
                    sums[empty_rows] = 0.0
                out[s:e] = sums.astype(np.float32)
        # Reset only the touched plane positions for the next block.
        plane[q_rows, q_cols] = 0.0
    return out


def row_dots_dense_reference(
    csr: CSRMatrix, row_ids: np.ndarray, dense_vec: np.ndarray
) -> np.ndarray:
    """Per-candidate Python-loop dots (ground truth / "naive sparse DP")."""
    out = np.zeros(len(row_ids), dtype=np.float32)
    for pos, r in enumerate(np.asarray(row_ids, dtype=np.int64).tolist()):
        cols, vals = csr.row(r)
        acc = 0.0
        for c, v in zip(cols.tolist(), vals.tolist()):
            acc += float(v) * float(dense_vec[c])
        out[pos] = acc
    return out
