"""Parameter selection (Section 7.3).

"The values of k, L are chosen as a function of the data set to minimize
the running time of a query while ensuring that each R-near neighbor is
reported with probability 1 - delta":

1. enumerate even ``k = 2, 4, ..., k_max``;
2. for each k, take the smallest ``m`` with ``P'(R, k, m) >= 1 - delta``
   (Equation 7.3);
3. reject candidates whose tables exceed the memory budget
   (Equation 7.4: ``(L*N + 2^k * L) * 4`` bytes);
4. estimate the query cost ``TQ2 * E[#collisions] + TQ3 * E[#unique]``
   from one shared distance sample and pick the minimum.

A note recorded in EXPERIMENTS.md: with the paper's own formula, the
parameter pairs the paper reports — (12,21), (14,29), (16,40), (18,55) —
give ``P'(0.9, k, m) ≈ 0.75-0.79``, not 0.90.  The paper's effective recall
target was evidently evaluated against the *distribution* of true-neighbor
distances (mostly well inside R, where P' is much higher — hence its
measured 92 % end-to-end recall), not at the boundary.  The tuner therefore
accepts a ``boundary_recall`` override; targets around 0.76-0.78 reproduce
the paper's pairs to within ±1 in m (exact values recorded in
EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.perfmodel.collisions import (
    estimate_collision_stats,
    recall_probability,
    sample_pairwise_distances,
)
from repro.sparse.csr import CSRMatrix

__all__ = ["ParameterTuner", "TuningCandidate", "minimum_m"]


def minimum_m(radius: float, delta: float, k: int, *, m_max: int = 512,
              boundary_recall: float | None = None) -> int | None:
    """Smallest m with ``P'(R, k, m) >= target`` or None if none ≤ m_max."""
    target = (1.0 - delta) if boundary_recall is None else boundary_recall
    for m in range(2, m_max + 1):
        if recall_probability(radius, k, m) >= target:
            return m
    return None


@dataclass(frozen=True)
class TuningCandidate:
    """One enumerated (k, m) pair with its predictions."""

    k: int
    m: int
    L: int
    expected_collisions: float
    expected_unique: float
    predicted_query_s: float
    table_bytes: int
    feasible: bool          # within the memory budget
    recall_at_radius: float


class ParameterTuner:
    """Enumerates (k, m) candidates and ranks them by predicted query time."""

    def __init__(
        self,
        data: CSRMatrix,
        queries: CSRMatrix,
        cost_model,
        *,
        radius: float = 0.9,
        delta: float = 0.1,
        memory_bytes: float = 64e9,
        k_max: int = 24,
        m_max: int = 512,
        boundary_recall: float | None = None,
        n_query_sample: int = 1000,
        n_data_sample: int = 1000,
        seed: int | None = 0,
    ) -> None:
        self.data = data
        self.queries = queries
        self.cost_model = cost_model
        self.radius = radius
        self.delta = delta
        self.memory_bytes = memory_bytes
        self.k_max = k_max
        self.m_max = m_max
        self.boundary_recall = boundary_recall
        # One distance sample shared by every candidate (Section 7.3).
        self._distances = sample_pairwise_distances(
            data,
            queries,
            n_query_sample=n_query_sample,
            n_data_sample=n_data_sample,
            seed=seed,
        )

    def candidates(self) -> list[TuningCandidate]:
        """All enumerated candidates, in increasing k."""
        out = []
        for k in range(2, self.k_max + 1, 2):
            m = minimum_m(
                self.radius,
                self.delta,
                k,
                m_max=self.m_max,
                boundary_recall=self.boundary_recall,
            )
            if m is None:
                continue
            out.append(self.evaluate(k, m))
        return out

    def evaluate(self, k: int, m: int) -> TuningCandidate:
        """Predict the query cost of one (k, m) pair."""
        stats = estimate_collision_stats(
            self.data, self.queries, k, m, distances=self._distances
        )
        L = m * (m - 1) // 2
        try:
            cost = self.cost_model.query_cost(
                self.data.n_rows,
                stats.expected_collisions,
                stats.expected_unique,
                n_tables=L,
            )
        except TypeError:
            # Models without a per-table term (e.g. the paper cycle model).
            cost = self.cost_model.query_cost(
                self.data.n_rows,
                stats.expected_collisions,
                stats.expected_unique,
            )
        table_bytes = (L * self.data.n_rows + (1 << k) * L) * 4
        return TuningCandidate(
            k=k,
            m=m,
            L=L,
            expected_collisions=stats.expected_collisions,
            expected_unique=stats.expected_unique,
            predicted_query_s=cost.total_s,
            table_bytes=table_bytes,
            feasible=table_bytes <= self.memory_bytes,
            recall_at_radius=float(recall_probability(self.radius, k, m)),
        )

    def best(self) -> TuningCandidate:
        """The feasible candidate with minimal predicted query time."""
        feasible = [c for c in self.candidates() if c.feasible]
        if not feasible:
            raise ValueError(
                "no (k, m) candidate fits the memory budget "
                f"({self.memory_bytes / 1e9:.1f} GB)"
            )
        return min(feasible, key=lambda c: c.predicted_query_s)
