"""Replica groups: fan-out writes, failover reads, eviction policy, and
the R=2 == R=1 bit-identity contract for in-process clusters, plus the
cluster-level persistence round trip."""

from __future__ import annotations

import numpy as np
import pytest

from repro import PLSHCluster, PLSHParams
from repro.cluster.replication import (
    ReplicaGroup,
    ShardUnavailableError,
    group_handles,
)
from repro.persistence import load_cluster, save_cluster
from repro.sparse.csr import CSRMatrix

PARAMS = PLSHParams(k=6, m=4, radius=0.9, seed=11)


class FakeReplica:
    """A scriptable node handle: records calls, fails on demand."""

    def __init__(self, node_id: int, capacity: int = 100) -> None:
        self.node_id = node_id
        self._capacity = capacity
        self.inserted: list = []
        self.deleted: list = []
        self.n_items = 0
        self.fail_next: Exception | None = None
        self.always_fail: Exception | None = None
        self.broadcast_ready = True
        self.closed = False
        self.merges = 0

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def free_capacity(self) -> int:
        return self._capacity - self.n_items

    @property
    def is_full(self) -> bool:
        return self.free_capacity <= 0

    def _maybe_fail(self):
        if self.always_fail is not None:
            raise self.always_fail
        if self.fail_next is not None:
            exc, self.fail_next = self.fail_next, None
            raise exc

    def insert_batch(self, vectors, global_ids, timestamps=None):
        self._maybe_fail()
        self.inserted.append(np.asarray(global_ids))
        self.n_items += len(global_ids)

    def delete_global(self, global_ids):
        self._maybe_fail()
        self.deleted.append(np.asarray(global_ids))
        return len(global_ids)

    def retire(self):
        self._maybe_fail()
        dropped = (
            np.concatenate(self.inserted)
            if self.inserted
            else np.empty(0, dtype=np.int64)
        )
        self.inserted, self.n_items = [], 0
        return dropped

    def query(self, q_cols, q_vals, *, radius=None, time_range=None):
        self._maybe_fail()
        from repro.core.query import QueryResult

        return QueryResult(
            np.asarray([self.node_id], dtype=np.int64),
            np.asarray([0.5], dtype=np.float32),
        )

    def query_batch(
        self, queries, *, radius=None, workers=None, backend=None,
        time_range=None,
    ):
        self._maybe_fail()
        return [self.query(None, None) for _ in range(queries.n_rows)]

    def ping(self):
        self._maybe_fail()
        return self.node_id

    def stats(self):
        self._maybe_fail()
        return {"node_id": self.node_id, "n_items": self.n_items}

    def begin_merge(self):
        self._maybe_fail()
        self.merges += 1
        return True

    def commit_merge(self, *, wait=False):
        self._maybe_fail()
        return False

    def merge_now(self):
        self._maybe_fail()
        self.merges += 1

    def close(self):
        self.closed = True


@pytest.fixture
def group():
    return ReplicaGroup(0, [FakeReplica(0), FakeReplica(1)])


class TestGrouping:
    def test_r1_returns_raw_handles(self):
        handles = [FakeReplica(i) for i in range(3)]
        assert group_handles(handles, 1) == handles

    def test_r2_partitions_consecutively(self):
        handles = [FakeReplica(i) for i in range(6)]
        shards = group_handles(handles, 2)
        assert len(shards) == 3
        assert [r.node_id for r in shards[1].replicas] == [2, 3]
        assert shards[2].shard_id == 2

    def test_indivisible_count_rejected(self):
        with pytest.raises(ValueError, match="replica groups"):
            group_handles([FakeReplica(i) for i in range(5)], 2)

    def test_zero_replication_rejected(self):
        with pytest.raises(ValueError, match="replication"):
            group_handles([FakeReplica(0)], 0)

    def test_empty_group_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            ReplicaGroup(0, [])


class TestWrites:
    def test_insert_fans_to_all_replicas(self, group):
        ids = np.arange(5, dtype=np.int64)
        group.insert_batch(None, ids)
        for replica in group.replicas:
            np.testing.assert_array_equal(replica.inserted[0], ids)
        assert group.n_items == 5

    def test_write_failure_evicts_permanently(self, group):
        bad = group.replicas[1]
        bad.fail_next = ConnectionError("crashed mid-insert")
        group.insert_batch(None, np.arange(3, dtype=np.int64))
        assert group.evicted == {1: "insert_batch: crashed mid-insert"}
        # The survivor applied it; the group keeps serving.
        assert group.n_items == 3
        # Even after the replica "recovers", it stays evicted: its copy
        # may have diverged and exactness beats capacity.
        group.insert_batch(None, np.arange(3, 6, dtype=np.int64))
        assert len(bad.inserted) == 0
        assert len(group.replicas[0].inserted) == 2

    def test_timeout_also_evicts(self, group):
        group.replicas[0].fail_next = TimeoutError("hung mid-insert")
        group.insert_batch(None, np.arange(2, dtype=np.int64))
        assert 0 in group.evicted

    def test_all_replicas_failing_raises_shard_unavailable(self, group):
        for replica in group.replicas:
            replica.always_fail = ConnectionError("gone")
        with pytest.raises(ShardUnavailableError, match="shard 0"):
            group.insert_batch(None, np.arange(2, dtype=np.int64))

    def test_application_error_reraised_without_eviction(self, group):
        group.replicas[0].fail_next = ValueError("capacity exceeded")
        with pytest.raises(ValueError, match="capacity"):
            group.insert_batch(None, np.arange(2, dtype=np.int64))
        assert group.evicted == {}

    def test_delete_returns_single_count(self, group):
        # Each tombstone counted once, not once per replica.
        assert group.delete_global(np.arange(4, dtype=np.int64)) == 4

    def test_retire_empties_all(self, group):
        group.insert_batch(None, np.arange(5, dtype=np.int64))
        dropped = group.retire()
        assert len(dropped) == 5
        assert group.n_items == 0


class TestReads:
    def test_primary_serves_by_default(self, group):
        res = group.query(None, None)
        assert res.indices[0] == 0  # replica 0 is the primary

    def test_failover_to_sibling_without_eviction(self, group):
        group.replicas[0].fail_next = ConnectionError("flaky")
        res = group.query(None, None)
        assert res.indices[0] == 1  # the sibling answered
        assert group.evicted == {}  # reads never evict

    def test_breaker_open_replica_skipped(self, group):
        group.replicas[0].broadcast_ready = False
        res = group.query(None, None)
        assert res.indices[0] == 1
        assert group.n_live_replicas == 1

    def test_all_down_raises_shard_unavailable(self, group):
        for replica in group.replicas:
            replica.always_fail = TimeoutError("hung")
        with pytest.raises(ShardUnavailableError, match="query"):
            group.query(None, None)
        assert group.alive  # unavailable != evicted; probes may revive

    def test_not_ready_when_no_replica_usable(self, group):
        for replica in group.replicas:
            replica.broadcast_ready = False
        assert not group.broadcast_ready
        assert not group.alive


class TestMaintenance:
    def test_merge_failure_never_evicts(self, group):
        group.replicas[0].always_fail = ConnectionError("down")
        assert group.begin_merge() is True  # sibling started
        group.merge_now()
        assert group.evicted == {}
        assert group.replicas[1].merges == 2

    def test_stats_annotated_with_shard_info(self, group):
        stats = group.stats()
        assert stats["shard_id"] == 0
        assert stats["replication"] == 2
        assert stats["live_replicas"] == 2
        assert stats["evicted_replicas"] == []

    def test_health_snapshot_rows(self, group):
        group.replicas[1].broadcast_ready = False
        group.insert_batch(None, np.arange(2, dtype=np.int64))
        snap = group.health_snapshot()
        assert snap["shard_id"] == 0
        assert snap["replication"] == 2
        assert len(snap["replicas"]) == 2
        assert snap["replicas"][0]["evicted"] is False

    def test_close_closes_every_replica(self, group):
        group.close()
        assert all(r.closed for r in group.replicas)


class TestInProcessBitIdentity:
    """An R=2 in-process cluster answers bit-identically to the R=1
    cluster with the same shard count — replication is unobservable."""

    def test_replicated_cluster_matches_unreplicated(
        self, small_vectors, small_queries
    ):
        dim = small_vectors.n_cols
        _, queries = small_queries
        batch = queries.slice_rows(0, 10)
        ref = PLSHCluster(3, 200, dim, PARAMS, insert_window=2)
        rep = PLSHCluster(
            6, 200, dim, PARAMS, insert_window=2, replication=2
        )
        try:
            assert rep.n_shards == 3 and rep.n_nodes == 6
            for start in range(0, 800, 100):
                block = small_vectors.slice_rows(start, start + 100)
                np.testing.assert_array_equal(
                    ref.insert(block), rep.insert(block)
                )
            doomed = np.asarray([13, 250, 400], dtype=np.int64)
            assert ref.delete(doomed) == rep.delete(doomed)
            assert ref.n_retirements == rep.n_retirements
            for a, b in zip(ref.query_batch(batch), rep.query_batch(batch)):
                np.testing.assert_array_equal(
                    a.result.indices, b.result.indices
                )
                np.testing.assert_array_equal(
                    a.result.distances, b.result.distances
                )
                assert not b.degraded
        finally:
            rep.close()
            ref.close()

    def test_insert_window_validated_against_shards(self):
        with pytest.raises(ValueError, match="insert_window"):
            PLSHCluster(4, 100, 32, PARAMS, insert_window=3, replication=2)

    def test_indivisible_nodes_rejected(self):
        with pytest.raises(ValueError, match="replica groups"):
            PLSHCluster(5, 100, 32, PARAMS, replication=2)


class TestClusterPersistence:
    def test_round_trip_and_stream_continuation(
        self, tmp_path, small_vectors, small_queries
    ):
        dim = small_vectors.n_cols
        _, queries = small_queries
        batch = queries.slice_rows(0, 8)
        cluster = PLSHCluster(
            4, 150, dim, PARAMS, insert_window=2, replication=2
        )
        try:
            cluster.insert(small_vectors.slice_rows(0, 250))
            cluster.delete(np.asarray([7, 99], dtype=np.int64))
            save_cluster(cluster, tmp_path / "clu")
            restored = load_cluster(tmp_path / "clu")
            try:
                assert restored.replication == 2
                assert restored.n_shards == cluster.n_shards
                for a, b in zip(
                    cluster.query_batch(batch), restored.query_batch(batch)
                ):
                    np.testing.assert_array_equal(
                        a.result.indices, b.result.indices
                    )
                    np.testing.assert_array_equal(
                        a.result.distances, b.result.distances
                    )
                # The stream continues identically: same ids, same shard
                # placement, same answers.
                block = small_vectors.slice_rows(250, 400)
                np.testing.assert_array_equal(
                    cluster.insert(block), restored.insert(block)
                )
                for a, b in zip(
                    cluster.query_batch(batch), restored.query_batch(batch)
                ):
                    np.testing.assert_array_equal(
                        a.result.indices, b.result.indices
                    )
            finally:
                restored.close()
        finally:
            cluster.close()

    def test_replication_override_rebuilds_full_strength(
        self, tmp_path, small_vectors, small_queries
    ):
        """Reloading with a higher R is the offline re-sync path."""
        dim = small_vectors.n_cols
        _, queries = small_queries
        batch = queries.slice_rows(0, 5)
        cluster = PLSHCluster(2, 150, dim, PARAMS, insert_window=1)
        try:
            cluster.insert(small_vectors.slice_rows(0, 200))
            expected = cluster.query_batch(batch)
            save_cluster(cluster, tmp_path / "clu")
        finally:
            cluster.close()
        restored = load_cluster(tmp_path / "clu", replication=2)
        try:
            assert restored.n_nodes == 4 and restored.n_shards == 2
            for a, b in zip(expected, restored.query_batch(batch)):
                np.testing.assert_array_equal(
                    a.result.indices, b.result.indices
                )
        finally:
            restored.close()

    def test_remote_cluster_refused(self, tmp_path):
        class NotANode:
            pass

        cluster = PLSHCluster(2, 50, 32, PARAMS, insert_window=1)
        try:
            cluster.shards[0] = NotANode()  # simulate a remote handle
            with pytest.raises(ValueError, match="in-process"):
                save_cluster(cluster, tmp_path / "clu")
        finally:
            pass  # shard 0 was replaced; close the real nodes directly
        for node in cluster.nodes:
            node.close()
        cluster.coordinator.close()
