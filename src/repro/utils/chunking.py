"""Chunk iteration helpers for bounded-memory vectorized kernels."""

from __future__ import annotations

from typing import Iterator

__all__ = ["chunk_bounds", "iter_chunks"]


def chunk_bounds(n: int, chunk_size: int) -> Iterator[tuple[int, int]]:
    """Yield ``(start, stop)`` half-open ranges covering ``0..n``."""
    if chunk_size <= 0:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")
    for start in range(0, n, chunk_size):
        yield start, min(start + chunk_size, n)


def iter_chunks(items, chunk_size: int):
    """Yield successive slices of a sequence of length ``chunk_size``."""
    if chunk_size <= 0:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")
    for start in range(0, len(items), chunk_size):
        yield items[start : start + chunk_size]
