"""Cluster-level metrics: load imbalance, communication fraction, and
serving availability under faults."""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = [
    "load_imbalance",
    "communication_fraction",
    "aggregate_node_seconds",
    "degraded_fraction",
    "missing_shard_histogram",
]


def load_imbalance(per_node_seconds: Sequence[float]) -> float:
    """The paper's load-balance metric: max / average runtime (ideal 1.0)."""
    values = [s for s in per_node_seconds if s >= 0]
    if not values:
        return 1.0
    avg = sum(values) / len(values)
    if avg == 0:
        return 1.0
    return max(values) / avg


def communication_fraction(network_seconds: float, compute_seconds: float) -> float:
    """Share of modeled runtime spent in communication (paper: < 1 %)."""
    total = network_seconds + compute_seconds
    if total == 0:
        return 0.0
    return network_seconds / total


def aggregate_node_seconds(outcomes: Iterable) -> dict[int, float]:
    """Sum per-node seconds across a batch of BroadcastOutcomes."""
    totals: dict[int, float] = {}
    for outcome in outcomes:
        for node_id, secs in outcome.node_seconds.items():
            totals[node_id] = totals.get(node_id, 0.0) + secs
    return totals


def degraded_fraction(outcomes: Iterable) -> float:
    """Share of broadcasts that served a degraded (shard-missing) answer.

    The availability headline of EXPERIMENTS.md: 0.0 means every query in
    the batch was exact over the full corpus, 1.0 means every answer was
    missing at least one data-holding shard.
    """
    total = degraded = 0
    for outcome in outcomes:
        total += 1
        if getattr(outcome, "degraded", False):
            degraded += 1
    return degraded / total if total else 0.0


def missing_shard_histogram(outcomes: Iterable) -> dict[int, int]:
    """How often each shard went unsearched, across a batch of
    BroadcastOutcomes — localizes *which* replica group is losing data
    rather than just how often answers degrade."""
    counts: dict[int, int] = {}
    for outcome in outcomes:
        for shard in getattr(outcome, "missing_shards", ()):
            counts[shard] = counts.get(shard, 0) + 1
    return counts
