"""NetworkModel accounting tests."""

from __future__ import annotations

import pytest

from repro.cluster.network import NetworkModel


def test_send_charges_latency_plus_bytes():
    net = NetworkModel(latency_s=1e-6, bandwidth_bytes_per_s=1e9)
    cost = net.send(1000)
    assert cost == pytest.approx(1e-6 + 1000 / 1e9)
    assert net.stats.n_messages == 1
    assert net.stats.bytes_sent == 1000
    assert net.stats.seconds == pytest.approx(cost)


def test_broadcast_is_n_sends():
    net = NetworkModel(latency_s=1e-6, bandwidth_bytes_per_s=1e9)
    cost = net.broadcast(5, 100)
    assert net.stats.n_messages == 5
    assert net.stats.bytes_sent == 500
    assert cost == pytest.approx(5 * (1e-6 + 100 / 1e9))


def test_zero_byte_message_is_latency_only():
    net = NetworkModel(latency_s=3e-6, bandwidth_bytes_per_s=1e9)
    assert net.send(0) == pytest.approx(3e-6)


def test_negative_bytes_rejected():
    with pytest.raises(ValueError):
        NetworkModel().send(-1)


def test_stats_reset():
    net = NetworkModel()
    net.send(10)
    net.stats.reset()
    assert net.stats.n_messages == 0
    assert net.stats.bytes_sent == 0
    assert net.stats.seconds == 0.0
