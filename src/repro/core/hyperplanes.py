"""Random hyperplane bank: the angular LSH family (Section 3).

Each hash function ``h_a(v) = sign(a . v)`` is defined by a random unit-less
Gaussian vector ``a``; for two unit vectors at angle ``t`` the collision
probability is ``P[h_a(p) = h_a(q)] = 1 - t/pi`` (Charikar).  A bank holds
all ``m * k/2`` hyperplanes as one dense ``(D, H)`` matrix so evaluating all
functions over a CSR corpus is a single sparse × dense matmul
(Section 5.1.1: "evaluating the hash functions over all data points can be
treated as a matrix multiply").
"""

from __future__ import annotations

import numpy as np

from repro.sparse.csr import CSRMatrix
from repro.sparse.ops import sparse_dense_matmul, sparse_dense_matmul_reference
from repro.utils.rng import rng_for

__all__ = ["HyperplaneBank"]


class HyperplaneBank:
    """A ``(dim, n_planes)`` bank of Gaussian hyperplanes."""

    def __init__(self, dim: int, n_planes: int, seed: int | None = 0) -> None:
        if dim <= 0:
            raise ValueError(f"dim must be positive, got {dim}")
        if n_planes <= 0:
            raise ValueError(f"n_planes must be positive, got {n_planes}")
        self.dim = dim
        self.n_planes = n_planes
        self.seed = seed
        rng = rng_for(seed, "hyperplanes")
        # float32 halves memory; sign() is insensitive to the precision loss.
        self.planes = rng.standard_normal((dim, n_planes), dtype=np.float32)

    @property
    def nbytes(self) -> int:
        return int(self.planes.nbytes)

    def projections(self, vectors: CSRMatrix, *, vectorized: bool = True) -> np.ndarray:
        """Raw dot products ``vectors @ planes`` → ``(n, n_planes)`` float32."""
        if vectors.n_cols != self.dim:
            raise ValueError(
                f"dimension mismatch: vectors have {vectors.n_cols} cols, "
                f"bank has {self.dim}"
            )
        if vectorized:
            return sparse_dense_matmul(vectors, self.planes)
        return sparse_dense_matmul_reference(vectors, self.planes)

    def sign_bits(self, vectors: CSRMatrix, *, vectorized: bool = True) -> np.ndarray:
        """Hash bits ``(n, n_planes)`` uint8 in {0, 1}.

        The sign convention maps ``a . v > 0`` to bit 1 and ``<= 0`` to 0;
        any fixed tie-break works because ties have measure zero for
        continuous data and consistency is all that collision analysis needs.
        """
        return (self.projections(vectors, vectorized=vectorized) > 0).astype(np.uint8)
