"""Legacy setup shim: lets ``pip install -e .`` work without the ``wheel``
package (this environment is offline, so PEP 517 editable builds cannot
fetch build dependencies).  All metadata lives in pyproject.toml."""

from setuptools import setup

setup()
