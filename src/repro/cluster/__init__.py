"""Multi-node PLSH (Sections 4 and 5.3) — simulated *and* real.

The paper runs 100 nodes over Infiniband/MPI.  This package provides the
same topology at two levels of realism behind one node-handle protocol:

**In-process simulation** (the default :class:`PLSHCluster` constructor):
each node is a real :class:`repro.streaming.StreamingPLSH` instance in
this process, and a :class:`NetworkModel` charges every message for bytes
and latency so the paper's "communication is <1 % of runtime" claim can
be checked analytically.

**Real multi-process deployment**: :func:`spawn_local_cluster` forks one
:class:`NodeServer` process per node; each owns its :class:`ClusterNode`
and serves a length-prefixed binary protocol over TCP
(:mod:`repro.cluster.protocol` / :mod:`repro.cluster.transport` — raw
CSR and result buffers on the hot path, never pickle).  The coordinator
drives :class:`RemoteNodeHandle` stubs through the same broadcast/merge
code as the simulation, so answers are bit-identical between the two
backends on the same op sequence.

Either way, the :class:`Coordinator` broadcasts queries **concurrently**
(every node's request in flight at once on a :mod:`repro.parallel`
thread pool) and concatenates partial answers; a node that dies
mid-broadcast surfaces as a per-node error in the
:class:`BroadcastOutcome` instead of killing the broadcast.

Partitioning follows the paper's chosen scheme: every node holds *all* L
tables over a shard of the data (scheme 2 of Section 5.3); data is
distributed in arrival order to a rolling window of M insert nodes; when
all nodes are full, the window wraps and the oldest M nodes are retired
wholesale (Figure 1).
"""

from repro.cluster.client import (
    RemoteNodeError,
    RemoteNodeHandle,
    SpawnedLocalCluster,
    spawn_local_cluster,
)
from repro.cluster.cluster import PLSHCluster
from repro.cluster.coordinator import BroadcastOutcome, Coordinator
from repro.cluster.network import NetworkModel, NetworkStats
from repro.cluster.node import ClusterNode
from repro.cluster.server import NodeServer
from repro.cluster.stats import load_imbalance
from repro.cluster.transport import Connection, TransportStats

__all__ = [
    "BroadcastOutcome",
    "ClusterNode",
    "Connection",
    "Coordinator",
    "NetworkModel",
    "NetworkStats",
    "NodeServer",
    "PLSHCluster",
    "RemoteNodeError",
    "RemoteNodeHandle",
    "SpawnedLocalCluster",
    "TransportStats",
    "load_imbalance",
    "spawn_local_cluster",
]
