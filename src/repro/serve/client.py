"""Gateway clients: a blocking socket client and an asyncio counterpart.

:class:`GatewayClient` is the simple synchronous client application code
uses (the first-story-detection example, quick scripts, tests): one
request in flight at a time over one connection, answers returned as
numpy arrays with the honest-serving report attached.  A rejection
raises :class:`GatewayRejected` (carrying the server's ``retry_after``
hint) so callers cannot mistake shed load for an empty answer.

:class:`AsyncGatewayClient` is the same surface for asyncio code — the
closed-loop load generator runs dozens of them on one event loop, which
is exactly the concurrency the gateway coalesces into batches.
"""

from __future__ import annotations

import asyncio
import socket

import numpy as np

from repro.serve import protocol

__all__ = [
    "AsyncGatewayClient",
    "GatewayAnswer",
    "GatewayError",
    "GatewayRejected",
    "GatewayClient",
]


class GatewayError(RuntimeError):
    """The gateway answered ``status="error"`` (or broke protocol)."""


class GatewayRejected(RuntimeError):
    """Admission control shed the request; back off ``retry_after``
    seconds before retrying."""

    def __init__(self, reason: str, retry_after: float) -> None:
        super().__init__(f"rejected ({reason}); retry after {retry_after}s")
        self.reason = reason
        self.retry_after = float(retry_after)


class GatewayAnswer:
    """One answered query: global ids, distances, honest-serving report."""

    __slots__ = ("ids", "distances", "degraded", "missing_shards")

    def __init__(self, message: dict) -> None:
        self.ids = np.asarray(message.get("ids", ()), dtype=np.int64)
        self.distances = np.asarray(
            message.get("dists", ()), dtype=np.float32
        )
        self.degraded = bool(message.get("degraded", False))
        self.missing_shards = list(message.get("missing_shards", ()))

    def __len__(self) -> int:
        return int(self.ids.size)

    def __repr__(self) -> str:
        flag = ", degraded" if self.degraded else ""
        return f"GatewayAnswer({len(self)} matches{flag})"


def _raise_for_status(message: dict) -> dict:
    status = message.get("status")
    if status == "ok":
        return message
    if status == "rejected":
        raise GatewayRejected(
            str(message.get("reason", "?")),
            float(message.get("retry_after", 0.0)),
        )
    raise GatewayError(str(message.get("error", f"bad response: {message}")))


class GatewayClient:
    """Blocking JSON-lines client over one TCP connection."""

    def __init__(
        self, host: str, port: int, *, timeout: float | None = 30.0
    ) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")
        self._next_id = 0

    def _exchange(self, message: dict) -> dict:
        self._file.write(protocol.encode(message))
        self._file.flush()
        line = self._file.readline(protocol.MAX_LINE_BYTES)
        if not line:
            raise ConnectionError("gateway closed the connection")
        return protocol.decode(line)

    def query(
        self,
        cols,
        vals,
        *,
        radius: float | None = None,
        tenant: str | None = None,
        time_range: tuple[int, int] | None = None,
    ) -> GatewayAnswer:
        """One similarity query; raises :class:`GatewayRejected` on shed
        load and :class:`GatewayError` on failure.  ``time_range``
        restricts the answer to rows inserted in the half-open logical
        window ``[t0, t1)``."""
        self._next_id += 1
        message = self._exchange(
            protocol.query_request(
                cols, vals,
                request_id=self._next_id, radius=radius, tenant=tenant,
                time_range=time_range,
            )
        )
        return GatewayAnswer(_raise_for_status(message))

    def insert(self, cols, vals, *, tenant: str | None = None) -> np.ndarray:
        """Insert one sparse row; returns the assigned global ids (one
        per row).  Once this returns, the row is applied and visible to
        any query sent afterwards (read-your-writes)."""
        self._next_id += 1
        message = self._exchange(
            protocol.insert_request(
                cols, vals, request_id=self._next_id, tenant=tenant
            )
        )
        return np.asarray(
            _raise_for_status(message)["global_ids"], dtype=np.int64
        )

    def delete(self, global_ids, *, tenant: str | None = None) -> int:
        """Tombstone rows by global id; returns how many were present."""
        self._next_id += 1
        message = self._exchange(
            protocol.delete_request(
                global_ids, request_id=self._next_id, tenant=tenant
            )
        )
        return int(_raise_for_status(message)["n_deleted"])

    def flush(self) -> int:
        """Write barrier: returns once every write admitted before this
        call has been applied; the result is how many writes were still
        collecting when the flush arrived."""
        self._next_id += 1
        message = self._exchange(
            protocol.flush_request(request_id=self._next_id)
        )
        return int(_raise_for_status(message)["n_flushed"])

    def ping(self) -> bool:
        return self._exchange({"op": "ping"}).get("status") == "ok"

    def stats(self) -> dict:
        """The gateway's counters (admission, coalescing, batching)."""
        return _raise_for_status(self._exchange({"op": "stats"}))["stats"]

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "GatewayClient":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class AsyncGatewayClient:
    """The same client surface for asyncio callers (one request in
    flight per instance; run many instances for concurrency)."""

    def __init__(self) -> None:
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._next_id = 0

    async def connect(self, host: str, port: int) -> "AsyncGatewayClient":
        self._reader, self._writer = await asyncio.open_connection(
            host, port, limit=protocol.MAX_LINE_BYTES
        )
        return self

    async def _exchange(self, message: dict) -> dict:
        self._writer.write(protocol.encode(message))
        await self._writer.drain()
        line = await self._reader.readline()
        if not line:
            raise ConnectionError("gateway closed the connection")
        return protocol.decode(line)

    async def query(
        self,
        cols,
        vals,
        *,
        radius: float | None = None,
        tenant: str | None = None,
        time_range: tuple[int, int] | None = None,
    ) -> GatewayAnswer:
        self._next_id += 1
        message = await self._exchange(
            protocol.query_request(
                cols, vals,
                request_id=self._next_id, radius=radius, tenant=tenant,
                time_range=time_range,
            )
        )
        return GatewayAnswer(_raise_for_status(message))

    async def query_raw(
        self,
        cols,
        vals,
        *,
        radius: float | None = None,
        tenant: str | None = None,
        time_range: tuple[int, int] | None = None,
    ) -> dict:
        """Like :meth:`query` but returns the raw response message
        without raising — the load generator classifies ok / rejected /
        error itself."""
        self._next_id += 1
        return await self._exchange(
            protocol.query_request(
                cols, vals,
                request_id=self._next_id, radius=radius, tenant=tenant,
                time_range=time_range,
            )
        )

    async def insert(
        self, cols, vals, *, tenant: str | None = None
    ) -> np.ndarray:
        """Insert one sparse row; returns the assigned global ids."""
        self._next_id += 1
        message = await self._exchange(
            protocol.insert_request(
                cols, vals, request_id=self._next_id, tenant=tenant
            )
        )
        return np.asarray(
            _raise_for_status(message)["global_ids"], dtype=np.int64
        )

    async def insert_raw(
        self, cols, vals, *, tenant: str | None = None
    ) -> dict:
        """Like :meth:`insert` but returns the raw response without
        raising — the mixed-load generator classifies outcomes itself."""
        self._next_id += 1
        return await self._exchange(
            protocol.insert_request(
                cols, vals, request_id=self._next_id, tenant=tenant
            )
        )

    async def delete(self, global_ids, *, tenant: str | None = None) -> int:
        """Tombstone rows by global id; returns how many were present."""
        self._next_id += 1
        message = await self._exchange(
            protocol.delete_request(
                global_ids, request_id=self._next_id, tenant=tenant
            )
        )
        return int(_raise_for_status(message)["n_deleted"])

    async def flush(self) -> int:
        """Write barrier (see :meth:`GatewayClient.flush`)."""
        self._next_id += 1
        message = await self._exchange(
            protocol.flush_request(request_id=self._next_id)
        )
        return int(_raise_for_status(message)["n_flushed"])

    async def stats(self) -> dict:
        return _raise_for_status(await self._exchange({"op": "stats"}))["stats"]

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
