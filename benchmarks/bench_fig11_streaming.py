"""Figure 11 — streaming query performance as the delta table fills.

Paper: a node with capacity C = 10.5 M and max delta size eta*C = 1 M is
queried while the delta fills from 0 to 100 %.  With 50 % of capacity in
static tables there is no visible penalty versus fully-static; with 90 %
static the worst case reaches ~1.3x; the design bound is 1.5x (Section 6.3).

This bench reproduces both series plus the 100 %-static reference line.
Shape to check: query time grows with delta fill; the (90 %, full-delta)
worst case stays within ~1.5x of the full static reference.
"""

from __future__ import annotations

import numpy as np

from repro.bench.reporting import format_table, print_section
from repro.bench.runner import measure_median
from repro.streaming.node import StreamingPLSH
from repro import PLSHIndex


def _series(vectors, queries, params, capacity, static_frac, fills):
    node = StreamingPLSH(
        vectors.n_cols, params, capacity, delta_fraction=0.1, auto_merge=False
    )
    n_static = int(capacity * static_frac)
    node.insert_batch(vectors.slice_rows(0, n_static))
    node.merge_now()
    delta_cap = int(capacity * 0.1)
    out = []
    inserted = 0
    for fill in fills:
        target = int(delta_cap * fill)
        if target > inserted:
            node.insert_batch(
                vectors.slice_rows(n_static + inserted, n_static + target)
            )
            inserted = target
        secs = measure_median(
            lambda: node.query_batch(queries), repeats=2, warmup=1
        )
        out.append(secs)
    return out


def test_fig11_streaming(benchmark, twitter, scale):
    params = scale.params()
    vectors = twitter.vectors
    queries = twitter.queries.slice_rows(0, min(50, twitter.queries.n_rows))
    capacity = int(vectors.n_rows * 0.8)
    fills = [0.0, 0.2, 0.4, 0.6, 0.8, 1.0]

    # 100 % static reference line.
    reference = PLSHIndex(vectors.n_cols, params)
    reference.build(vectors.slice_rows(0, capacity))
    engine = reference.engine
    assert engine is not None
    static_s = measure_median(
        lambda: engine.query_batch(queries), repeats=2, warmup=1
    )

    series_50 = _series(vectors, queries, params, capacity, 0.5, fills)
    series_90 = _series(vectors, queries, params, capacity, 0.9, fills)

    benchmark.pedantic(
        lambda: engine.query_batch(queries), rounds=2, iterations=1
    )

    rows = [
        [
            f"{int(f * 100)}%",
            s50 * 1e3,
            s50 / static_s,
            s90 * 1e3,
            s90 / static_s,
        ]
        for f, s50, s90 in zip(fills, series_50, series_90)
    ]
    print_section(
        f"Figure 11 — streaming query perf (C={capacity:,}, "
        f"delta cap=10% of C, {queries.n_rows} queries; "
        f"100% static reference = {static_s * 1e3:.1f} ms)",
        format_table(
            ["delta fill", "50% static ms", "vs static", "90% static ms",
             "vs static"],
            rows,
        )
        + "\npaper: 50% static shows no penalty; 90% static worst case"
          " ~1.3x; bound 1.5x",
    )

    # Shape assertions.  Query time must grow with delta fill.
    assert series_90[-1] >= series_90[0] * 0.9
    # The paper's ratio claims hold when the static search is heavy enough
    # to amortize the per-query delta probing (its static query is ~1.4 ms);
    # at toy scales the fixed Python overhead of the delta path dominates
    # and only the monotone shape is meaningful, so gate the ratio bounds.
    if static_s / queries.n_rows >= 0.5e-3:
        # 50%-static nodes hold half the data: within the 1.5x design bound.
        assert max(series_50) <= static_s * 1.6
        # 90%-static + full delta: the case the paper bounds at 1.5x.
        assert series_90[-1] <= static_s * 2.0
