"""StreamingPLSH node tests: policy (eta threshold, capacity), correctness
(static+delta query equivalence), deletion and retirement."""

from __future__ import annotations

import numpy as np
import pytest

from repro import PLSHIndex, PLSHParams
from repro.streaming.node import CapacityError, StreamingPLSH

PARAMS = PLSHParams(k=8, m=6, radius=0.9, seed=31)


def test_auto_merge_at_eta_threshold(small_vectors):
    node = StreamingPLSH(
        small_vectors.n_cols, PARAMS, capacity=1000, delta_fraction=0.1
    )
    node.insert_batch(small_vectors.slice_rows(0, 99))
    assert node.n_delta == 99 and node.n_merges == 0
    node.insert_batch(small_vectors.slice_rows(99, 100))  # hits 100 = eta*C
    assert node.n_delta == 0
    assert node.n_static == 100
    assert node.n_merges == 1


def test_manual_merge_mode(small_vectors):
    node = StreamingPLSH(
        small_vectors.n_cols, PARAMS, capacity=1000, delta_fraction=0.1,
        auto_merge=False,
    )
    node.insert_batch(small_vectors.slice_rows(0, 500))
    assert node.n_delta == 500 and node.n_merges == 0
    node.merge_now()
    assert node.n_static == 500 and node.n_delta == 0


def test_capacity_enforced(small_vectors):
    node = StreamingPLSH(small_vectors.n_cols, PARAMS, capacity=50)
    node.insert_batch(small_vectors.slice_rows(0, 50))
    with pytest.raises(CapacityError):
        node.insert_batch(small_vectors.slice_rows(50, 51))
    assert node.is_full


def test_query_spans_static_and_delta(small_vectors, small_queries):
    """Results must be identical to a monolithic static index over the same
    rows, regardless of how the rows are split between static and delta."""
    _, queries = small_queries
    node = StreamingPLSH(
        small_vectors.n_cols, PARAMS, capacity=5000, delta_fraction=0.5,
        auto_merge=False,
    )
    node.insert_batch(small_vectors.slice_rows(0, 1500))
    node.merge_now()
    node.insert_batch(small_vectors.slice_rows(1500, 2000))  # stays in delta
    assert node.n_static == 1500 and node.n_delta == 500

    reference = PLSHIndex(small_vectors.n_cols, PARAMS, hasher=node.hasher)
    reference.build(small_vectors)
    for r in range(8):
        a = node.query(*queries.row(r))
        b = reference.engine.query_row(queries, r)
        np.testing.assert_array_equal(np.sort(a.indices), np.sort(b.indices))
        np.testing.assert_allclose(
            np.sort(a.distances), np.sort(b.distances), rtol=1e-4, atol=1e-5
        )


def test_local_ids_stable_across_merge(small_vectors):
    node = StreamingPLSH(
        small_vectors.n_cols, PARAMS, capacity=5000, delta_fraction=0.5,
        auto_merge=False,
    )
    ids1 = node.insert_batch(small_vectors.slice_rows(0, 100))
    np.testing.assert_array_equal(ids1, np.arange(100))
    node.merge_now()
    ids2 = node.insert_batch(small_vectors.slice_rows(100, 150))
    np.testing.assert_array_equal(ids2, np.arange(100, 150))
    node.merge_now()
    # Row content at a stable local id must not change after merges.
    cols_before, vals_before = small_vectors.row(120)
    cols_after, vals_after = node.static.data.row(120)
    np.testing.assert_array_equal(cols_before, cols_after)
    np.testing.assert_array_equal(vals_before, vals_after)


def test_deleted_rows_never_returned(small_vectors, small_queries):
    ids, queries = small_queries
    node = StreamingPLSH(
        small_vectors.n_cols, PARAMS, capacity=5000, delta_fraction=0.5,
        auto_merge=False,
    )
    node.insert_batch(small_vectors.slice_rows(0, 1500))
    node.merge_now()
    node.insert_batch(small_vectors.slice_rows(1500, 2000))
    # Delete both a static-resident and a delta-resident row.
    target_static = int(ids[0]) if ids[0] < 1500 else 10
    target_delta = 1600
    node.delete(np.asarray([target_static, target_delta]))
    for r in range(queries.n_rows):
        res = node.query(*queries.row(r))
        assert target_static not in res.indices.tolist()
        assert target_delta not in res.indices.tolist()


def test_delete_survives_merge(small_vectors):
    node = StreamingPLSH(
        small_vectors.n_cols, PARAMS, capacity=5000, delta_fraction=0.5,
        auto_merge=False,
    )
    node.insert_batch(small_vectors.slice_rows(0, 200))
    node.delete(np.asarray([7]))
    node.merge_now()
    cols, vals = small_vectors.row(7)
    res = node.query(cols.astype(np.int64), vals)
    assert 7 not in res.indices.tolist()
    assert node.n_live == 199


def test_retire_erases_everything(small_vectors):
    node = StreamingPLSH(small_vectors.n_cols, PARAMS, capacity=500)
    node.insert_batch(small_vectors.slice_rows(0, 300))
    node.delete(np.asarray([1]))
    node.retire()
    assert node.n_total == 0
    assert node.deletions.n_deleted == 0
    cols, vals = small_vectors.row(5)
    assert len(node.query(cols.astype(np.int64), vals)) == 0
    # Node must be reusable after retirement.
    node.insert_batch(small_vectors.slice_rows(0, 10))
    assert node.n_total == 10


def test_validation():
    with pytest.raises(ValueError):
        StreamingPLSH(10, PARAMS, capacity=0)
    with pytest.raises(ValueError):
        StreamingPLSH(10, PARAMS, capacity=10, delta_fraction=0.0)


def test_delta_threshold():
    node = StreamingPLSH(100, PARAMS, capacity=200, delta_fraction=0.15)
    assert node.delta_threshold == 30


def test_times_recorded(small_vectors):
    node = StreamingPLSH(
        small_vectors.n_cols, PARAMS, capacity=1000, delta_fraction=0.05
    )
    node.insert_batch(small_vectors.slice_rows(0, 100))  # triggers merge
    assert node.times["insert"] > 0
    assert node.times["merge"] > 0
    cols, vals = small_vectors.row(0)
    node.query(cols.astype(np.int64), vals)
    assert node.times["query_static"] >= 0
    assert node.times["query_delta"] >= 0
