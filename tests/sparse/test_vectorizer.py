"""IDFVectorizer tests: weighting, normalization, edge cases."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sparse.vectorizer import IDFVectorizer


def test_rows_are_unit_norm():
    docs = [[0, 1, 2], [2, 3], [0, 4, 4]]
    vecs = IDFVectorizer(5).fit_transform(docs)
    np.testing.assert_allclose(vecs.row_norms(), 1.0, rtol=1e-5)


def test_rare_words_weigh_more():
    # token 0 appears in every doc, token 3 in only one.
    docs = [[0, 1], [0, 2], [0, 3]]
    vec = IDFVectorizer(4).fit(docs)
    row = vec.transform([[0, 3]])
    cols, vals = row.row(0)
    weight = dict(zip(cols.tolist(), vals.tolist()))
    assert weight[3] > weight[0]


def test_common_everywhere_token_gets_zero_idf():
    docs = [[0], [0], [0]]
    vec = IDFVectorizer(2).fit(docs)
    assert vec.idf is not None
    # idf = ln((N+1)/N) is near zero but positive (smoothed).
    assert 0 < vec.idf[0] < 0.4


def test_empty_document_becomes_empty_row():
    vecs = IDFVectorizer(4).fit_transform([[0, 1], []])
    assert vecs.row_lengths().tolist() == [2, 0]


def test_term_frequency_counts():
    docs = [[0, 0, 1], [1]]
    vecs = IDFVectorizer(2).fit(docs).transform([[0, 0, 1]])
    cols, vals = vecs.row(0)
    weight = dict(zip(cols.tolist(), vals.tolist()))
    # token 0 occurs twice and is rarer -> strictly larger weight.
    assert weight[0] > weight[1]


def test_unseen_token_keeps_max_idf():
    vec = IDFVectorizer(3).fit([[0], [0, 1]])
    assert vec.idf is not None
    assert vec.idf[2] == pytest.approx(np.log(3.0))


def test_transform_before_fit_raises():
    with pytest.raises(RuntimeError):
        IDFVectorizer(3).transform([[0]])


def test_fit_empty_corpus_raises():
    with pytest.raises(ValueError):
        IDFVectorizer(3).fit([])


def test_out_of_vocab_raises():
    with pytest.raises(ValueError):
        IDFVectorizer(3).fit([[5]])
    v = IDFVectorizer(3).fit([[0]])
    with pytest.raises(ValueError):
        v.transform([[3]])


def test_invalid_vocab_size_raises():
    with pytest.raises(ValueError):
        IDFVectorizer(0)


def test_deterministic():
    docs = [[0, 1], [1, 2], [0, 2, 3]]
    a = IDFVectorizer(4).fit_transform(docs)
    b = IDFVectorizer(4).fit_transform(docs)
    np.testing.assert_array_equal(a.data, b.data)
    np.testing.assert_array_equal(a.indices, b.indices)
