"""Property tests for distance kernels and LSH collision structure."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.distance import angular_distance, candidate_dots_naive
from repro.sparse.csr import CSRMatrix
from repro.sparse.ops import densify_query, row_dots_dense


@settings(max_examples=80, deadline=None)
@given(dots=st.lists(st.floats(-2, 2, allow_nan=False), max_size=30))
def test_angular_distance_range_property(dots):
    arr = np.asarray(dots, dtype=np.float64)
    out = angular_distance(arr)
    assert (out >= 0).all() and (out <= np.pi).all()


@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_dot_symmetry_property(data):
    """dot(a, b) computed via the candidate kernels == dot(b, a)."""
    n_cols = data.draw(st.integers(2, 16))
    rng = np.random.default_rng(data.draw(st.integers(0, 2**16)))
    dense = rng.standard_normal((2, n_cols)).astype(np.float32)
    mask = rng.random((2, n_cols)) < 0.5
    dense = dense * mask
    m = CSRMatrix.from_dense(dense)
    a_cols, a_vals = m.row(0)
    b_cols, b_vals = m.row(1)
    ab = candidate_dots_naive(
        m, np.asarray([1]), a_cols.astype(np.int64), a_vals
    )[0]
    ba = candidate_dots_naive(
        m, np.asarray([0]), b_cols.astype(np.int64), b_vals
    )[0]
    assert ab == np.float32(ba) or abs(ab - ba) < 1e-5


@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_row_dots_match_dense_matvec_property(data):
    n_rows = data.draw(st.integers(1, 10))
    n_cols = data.draw(st.integers(1, 12))
    rng = np.random.default_rng(data.draw(st.integers(0, 2**16)))
    dense = (rng.random((n_rows, n_cols)) < 0.4) * rng.standard_normal(
        (n_rows, n_cols)
    )
    m = CSRMatrix.from_dense(dense.astype(np.float32))
    vec = rng.standard_normal(n_cols).astype(np.float32)
    ours = row_dots_dense(m, np.arange(n_rows), vec)
    np.testing.assert_allclose(
        ours, dense.astype(np.float32) @ vec, rtol=1e-4, atol=1e-5
    )


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 2**16))
def test_identical_vectors_collide_everywhere(seed):
    """Two equal vectors share all m hash values for any hash draw."""
    from repro.core.hashing import AllPairsHasher
    from repro.params import PLSHParams

    rng = np.random.default_rng(seed)
    dim = 24
    v = rng.standard_normal(dim).astype(np.float32)
    v /= np.linalg.norm(v)
    m = CSRMatrix.from_dense(np.vstack([v, v]))
    hasher = AllPairsHasher(PLSHParams(k=6, m=5, seed=seed), dim)
    u = hasher.hash_functions(m)
    np.testing.assert_array_equal(u[0], u[1])
