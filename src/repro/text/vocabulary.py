"""Vocabulary: token <-> id mapping with document frequencies."""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["Vocabulary"]


class Vocabulary:
    """Mutable token registry assigning dense integer ids.

    Supports a frozen mode so query-time encoding cannot silently grow the
    vocabulary: after :meth:`freeze`, unknown tokens map to ``None`` and are
    dropped by :meth:`encode` (the paper's "words that are not part of the
    vocabulary" yielding possibly-empty queries).
    """

    def __init__(self) -> None:
        self._token_to_id: dict[str, int] = {}
        self._id_to_token: list[str] = []
        self._doc_freq: list[int] = []
        self._frozen = False

    def __len__(self) -> int:
        return len(self._id_to_token)

    def __contains__(self, token: str) -> bool:
        return token in self._token_to_id

    @property
    def frozen(self) -> bool:
        return self._frozen

    def freeze(self) -> "Vocabulary":
        """Stop admitting new tokens."""
        self._frozen = True
        return self

    def add_document(self, tokens: Sequence[str]) -> list[int]:
        """Register a document's tokens; returns their ids.

        Updates document frequencies (each distinct token counted once per
        document).  Raises if frozen.
        """
        if self._frozen:
            raise RuntimeError("cannot add documents to a frozen vocabulary")
        ids = []
        seen: set[int] = set()
        for token in tokens:
            tid = self._token_to_id.get(token)
            if tid is None:
                tid = len(self._id_to_token)
                self._token_to_id[token] = tid
                self._id_to_token.append(token)
                self._doc_freq.append(0)
            ids.append(tid)
            if tid not in seen:
                seen.add(tid)
                self._doc_freq[tid] += 1
        return ids

    def build(self, documents: Iterable[Sequence[str]]) -> list[list[int]]:
        """Register a corpus; returns the encoded documents."""
        return [self.add_document(doc) for doc in documents]

    def encode(self, tokens: Sequence[str]) -> list[int]:
        """Map tokens to ids, dropping unknown tokens (for frozen vocabs)."""
        out = []
        for token in tokens:
            tid = self._token_to_id.get(token)
            if tid is not None:
                out.append(tid)
        return out

    def token(self, token_id: int) -> str:
        return self._id_to_token[token_id]

    def id_of(self, token: str) -> int:
        return self._token_to_id[token]

    def doc_frequency(self, token_id: int) -> int:
        return self._doc_freq[token_id]
