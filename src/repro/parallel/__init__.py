"""The parallel execution layer (Section 5.2 "Parallelism", Figure 8).

The paper treats the executor as a first-class subsystem separate from the
hash structures — the same split SLASH and distributed-LSH systems make —
and this package is that layer for the reproduction.  Everything that
shards work across cores (batch querying, per-table construction, per-node
cluster broadcast) goes through one :class:`~repro.parallel.executor.Executor`
protocol with three implementations:

``serial``
    Runs tasks in the caller; the ``workers == 1`` degenerate case, kept so
    call sites have exactly one code path.
``thread``
    A persistent in-process thread pool.  Scales only where the work
    releases the GIL (large numpy kernels: table construction, big
    vectorized shards); also the automatic fallback where ``fork`` does
    not exist.
``fork_pool``
    A persistent pool of fork()ed workers sharing the index copy-on-write
    — forked once per state object, warm across batches.  The production
    backend for parallel querying on Linux.

One-shot off-path jobs (the streaming node's non-blocking merge build)
use :class:`~repro.parallel.background.BackgroundTask` instead of a pool:
a single daemon thread whose numpy-heavy work overlaps the foreground
under the GIL and whose result is joined inside a short critical section.

Pick with :func:`make_executor`; ``backend=None`` resolves to
:func:`default_backend` (``fork_pool`` where available, else ``thread``).
``PLSH_WORKERS`` in the environment sets the fleet-wide default degree of
parallelism that :func:`default_workers` reports (used by ``query_batch``
call sites when the caller does not pass ``workers``); CI runs the whole
suite under ``PLSH_WORKERS=2`` so this layer cannot rot on the serial
path.  EXPERIMENTS.md records the scaling each backend actually achieves.
"""

from __future__ import annotations

import os

import numpy as np

from repro.parallel.background import BackgroundTask
from repro.parallel.executor import Executor, SerialExecutor, ThreadExecutor
from repro.parallel.fork_pool import ForkPoolExecutor, fork_available
from repro.parallel.gate import ReadWriteGate

__all__ = [
    "BackgroundTask",
    "Executor",
    "ReadWriteGate",
    "ExecutorCache",
    "ForkPoolExecutor",
    "SerialExecutor",
    "ThreadExecutor",
    "default_backend",
    "default_workers",
    "fork_available",
    "make_executor",
    "resolve_backend",
    "shard_bounds",
]

#: accepted backend aliases -> canonical names.
_ALIASES = {
    "serial": "serial",
    "thread": "thread",
    "threads": "thread",
    "fork_pool": "fork_pool",
    "fork": "fork_pool",
    # historical name from the pre-refactor per-batch fork path
    "process": "fork_pool",
}


def default_backend() -> str:
    """The production backend for this platform and process context."""
    return "fork_pool" if _fork_pool_usable() else "thread"


def default_workers() -> int:
    """Degree of parallelism used when a call site does not specify one.

    Reads ``PLSH_WORKERS`` (default 1 — parallelism is opt-in because the
    vectorized kernel already saturates one core's memory bandwidth and
    small batches do not amortize shard/merge overhead).
    """
    try:
        return max(1, int(os.environ.get("PLSH_WORKERS", "1")))
    except ValueError:
        return 1


def _fork_pool_usable() -> bool:
    """fork_pool needs the fork start method AND a non-daemonic process:
    multiprocessing forbids daemons from having children, and the cluster
    node *servers* are daemonic children themselves — inside one, pools
    degrade to threads (bit-identical results)."""
    if not fork_available():
        return False
    import multiprocessing

    return not multiprocessing.current_process().daemon


def resolve_backend(backend: str | None) -> str:
    """Canonicalize a backend name, degrading ``fork_pool`` wherever the
    platform or process context cannot fork worker children."""
    if backend is None:
        return default_backend()
    try:
        name = _ALIASES[backend]
    except KeyError:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of "
            f"{sorted(set(_ALIASES))}"
        ) from None
    if name == "fork_pool" and not _fork_pool_usable():
        return "thread"
    return name


def make_executor(backend: str | None, workers: int, state) -> Executor:
    """Build an executor over ``state`` (see the class docstrings).

    ``workers <= 1`` always yields a :class:`SerialExecutor` regardless of
    ``backend`` — one worker has nothing to parallelize, and skipping the
    pool keeps the degenerate case free.
    """
    if workers <= 1:
        return SerialExecutor(state, 1)
    name = resolve_backend(backend)
    if name == "serial":
        return SerialExecutor(state, 1)
    if name == "thread":
        return ThreadExecutor(state, workers)
    if BackgroundTask.any_active():
        # fork() while any background task (e.g. a streaming merge build)
        # is mid numpy/BLAS call can deadlock the child on locks held by
        # a thread that doesn't exist there.  The hazard is process-wide,
        # so the factory itself degrades to threads whenever any build is
        # running — whichever node or engine asked for the pool.
        return ThreadExecutor(state, workers)
    return ForkPoolExecutor(state, workers)


class ExecutorCache:
    """Lazily-created persistent executors over one state object.

    The pattern every parallel call site needs: keep one warm executor per
    ``(backend, workers)`` pair, recreate it transparently if it was
    closed, and release everything on ``close()``.  Owners that mutate
    their state (the streaming node) call ``close()`` to invalidate; the
    next request re-creates (for the fork pool: re-forks) the executor.
    """

    def __init__(self, state) -> None:
        self._state = state
        self._cache: dict[tuple[str, int], Executor] = {}

    def get(self, workers: int, backend: str | None = None) -> Executor:
        name = "serial" if workers <= 1 else resolve_backend(backend)
        key = (name, max(workers, 1))
        ex = self._cache.get(key)
        if ex is None or ex.closed:
            ex = make_executor(name, workers, self._state)
            self._cache[key] = ex
        return ex

    def peek(self, workers: int, backend: str | None = None) -> Executor | None:
        """The cached open executor for this key, or None — never creates.

        Lets owners that must avoid creating a particular backend at a
        particular moment (the streaming node won't fork a new pool while
        its merge-builder thread runs) still reuse a pool that already
        exists."""
        name = "serial" if workers <= 1 else resolve_backend(backend)
        ex = self._cache.get((name, max(workers, 1)))
        if ex is None or ex.closed:
            return None
        return ex

    def close(self) -> None:
        """Close and forget every cached executor (idempotent)."""
        for ex in self._cache.values():
            ex.close()
        self._cache.clear()

    def __bool__(self) -> bool:
        return bool(self._cache)

    def __len__(self) -> int:
        return len(self._cache)


def shard_bounds(n: int, workers: int) -> np.ndarray:
    """Contiguous row boundaries splitting ``n`` items over ``workers``.

    Returns ``workers + 1`` int64 offsets; shard ``w`` is
    ``[bounds[w], bounds[w + 1])``.  ``n < workers`` yields empty shards
    (tasks must tolerate zero-row inputs) — never an error, so tiny
    batches stay correct on wide pools.
    """
    return np.linspace(0, n, workers + 1).astype(np.int64)
