"""Insert-optimized delta tables (Section 6.1).

"For delta tables, we use a streaming variant of LSH that has a set of
``2^k x L`` resizeable vectors.  Every new tweet is hashed and inserted into
L of these bins."

Representation: one dict per table mapping bucket key -> Python list of
local row indexes.  Only non-empty bins exist (the paper applies the same
standard-hashing trick to static tables), so memory stays proportional to
insertions, and appends are amortized O(1) — the insert-optimized tradeoff
that makes delta queries slower than static ones (every lookup walks a dict
and materializes a list instead of slicing one contiguous array).

The delta table also keeps the inserted rows (CSR blocks) and their cached
hash-function values, so the periodic merge can rebuild the static structure
without re-hashing anything (Section 6.2).
"""

from __future__ import annotations

import numpy as np

from repro.core.hashing import AllPairsHasher
from repro.params import PLSHParams
from repro.sparse.csr import CSRMatrix

__all__ = ["DeltaTable"]


class DeltaTable:
    """The streaming (insert-optimized) LSH structure of one node."""

    def __init__(self, dim: int, params: PLSHParams, hasher: AllPairsHasher) -> None:
        self.dim = dim
        self.params = params
        self.hasher = hasher
        #: per-table bucket map: key -> list of delta-local row ids
        self._bins: list[dict[int, list[int]]] = [
            {} for _ in range(params.n_tables)
        ]
        self._blocks: list[CSRMatrix] = []
        self._u_blocks: list[np.ndarray] = []
        self._n_rows = 0
        self._vectors_cache: CSRMatrix | None = None

    # -- state ---------------------------------------------------------------

    def __len__(self) -> int:
        return self._n_rows

    @property
    def n_rows(self) -> int:
        return self._n_rows

    def vectors(self) -> CSRMatrix:
        """All inserted rows as one CSR matrix (cached between inserts)."""
        if self._vectors_cache is None:
            if not self._blocks:
                self._vectors_cache = CSRMatrix.empty(self.dim)
            else:
                self._vectors_cache = CSRMatrix.vstack(self._blocks)
        return self._vectors_cache

    def u_values(self) -> np.ndarray:
        """Cached hash-function values ``(n_rows, m)`` for all inserted rows."""
        if not self._u_blocks:
            return np.empty((0, self.params.m), dtype=np.uint16)
        return np.concatenate(self._u_blocks, axis=0)

    # -- insertion -------------------------------------------------------------

    def insert_batch(self, vectors: CSRMatrix) -> np.ndarray:
        """Insert a batch of rows; returns their delta-local ids.

        Insertion is batched (the paper buffers ~100 k tweets per insert
        call): the batch is hashed in one matmul, then each table groups the
        batch by key with one stable partition and extends its bins — L
        passes over the batch, not L passes per tweet.
        """
        if vectors.n_cols != self.dim:
            raise ValueError(
                f"batch has {vectors.n_cols} columns, delta expects {self.dim}"
            )
        u = self.hasher.hash_functions(vectors) if vectors.n_rows else None
        return self._insert_hashed(vectors, u)

    def _insert_hashed(
        self, vectors: CSRMatrix, u: np.ndarray | None
    ) -> np.ndarray:
        """Insert rows whose hash-function values are already computed.

        The restore path (:meth:`restore`) re-populates a delta from
        persisted rows + cached ``u`` values without re-hashing — the same
        no-rehash property the merge relies on.
        """
        n = vectors.n_rows
        if n == 0:
            return np.empty(0, dtype=np.int64)
        assert u is not None and u.shape == (n, self.params.m)
        base = self._n_rows
        local_ids = np.arange(base, base + n, dtype=np.int64)
        for l in range(self.params.n_tables):
            keys = self.hasher.table_key(u, l)
            order = np.argsort(keys, kind="stable")
            sorted_keys = keys[order]
            # Group boundaries of equal keys within the sorted batch.
            boundaries = np.nonzero(np.diff(sorted_keys))[0] + 1
            starts = np.concatenate(([0], boundaries))
            stops = np.concatenate((boundaries, [n]))
            bins = self._bins[l]
            for s, e in zip(starts.tolist(), stops.tolist()):
                key = int(sorted_keys[s])
                ids = local_ids[order[s:e]].tolist()
                bucket = bins.get(key)
                if bucket is None:
                    bins[key] = ids
                else:
                    bucket.extend(ids)
        self._blocks.append(vectors)
        self._u_blocks.append(u)
        self._n_rows += n
        self._vectors_cache = None
        return local_ids

    @classmethod
    def restore(
        cls,
        dim: int,
        params: PLSHParams,
        hasher: AllPairsHasher,
        vectors: CSRMatrix,
        u_values: np.ndarray,
    ) -> "DeltaTable":
        """Rebuild a delta from persisted rows and their cached hashes.

        Bin membership *and* in-bin ordering round-trip exactly: ids are
        assigned in row order and the per-table grouping sort is stable,
        so every bucket lists its rows in ascending insertion order — the
        same layout incremental inserts produce.
        """
        if u_values.shape != (vectors.n_rows, params.m):
            raise ValueError(
                f"u_values shape {u_values.shape} != "
                f"{(vectors.n_rows, params.m)}"
            )
        table = cls(dim, params, hasher)
        if vectors.n_rows:
            table._insert_hashed(vectors, np.ascontiguousarray(u_values))
        return table

    # -- querying -----------------------------------------------------------------

    def collisions(self, query_keys: np.ndarray) -> np.ndarray:
        """Concatenated bucket contents across tables (with duplicates)."""
        out: list[list[int]] = []
        for l in range(self.params.n_tables):
            bucket = self._bins[l].get(int(query_keys[l]))
            if bucket:
                out.append(bucket)
        if not out:
            return np.empty(0, dtype=np.int64)
        return np.asarray([i for bucket in out for i in bucket], dtype=np.int64)

    def collisions_batch(
        self, query_keys: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Bucket contents for a ``(B, L)`` key matrix, segmented per query.

        Returns ``(values, seg_offsets)`` in the same layout as
        :meth:`StaticTableSet.collisions_batch`.  The bins are hash maps, so
        the walk is B x L dict lookups — cheap python work proportional to
        the (small) delta structure, not to collision counts; the heavy
        per-collision arrays are materialized in one pass.
        """
        query_keys = np.asarray(query_keys, dtype=np.int64)
        if query_keys.ndim != 2 or query_keys.shape[1] != self.params.n_tables:
            raise ValueError(
                f"expected (B, {self.params.n_tables}) keys, got shape "
                f"{query_keys.shape}"
            )
        n_queries = query_keys.shape[0]
        bins = self._bins
        flat: list[int] = []
        seg_offsets = np.zeros(n_queries + 1, dtype=np.int64)
        for b, row in enumerate(query_keys.tolist()):
            for l, key in enumerate(row):
                bucket = bins[l].get(key)
                if bucket:
                    flat.extend(bucket)
            seg_offsets[b + 1] = len(flat)
        return np.asarray(flat, dtype=np.int64), seg_offsets

    def bucket_sizes(self) -> dict[int, int]:
        """Histogram: number of non-empty bins per table (diagnostics)."""
        return {l: len(bins) for l, bins in enumerate(self._bins)}

    def clear(self) -> None:
        """Drop all contents (after a merge into the static structure)."""
        self._bins = [{} for _ in range(self.params.n_tables)]
        self._blocks = []
        self._u_blocks = []
        self._n_rows = 0
        self._vectors_cache = None
