"""Figure 9 — scaling on multiple nodes (weak scaling).

Paper: with the data per node fixed at 10.5 M tweets, creation and query
times stay flat from 1 to 100 nodes ("flat lines indicate perfect
scaling"), load balance (max/avg) stays below 1.3, and query communication
is under 20 ms per 1000-query batch (< 1 % of runtime).

This bench holds data-per-node constant and sweeps the node count,
reporting per-node init times (min/avg/max), per-node query times
(min/avg/max), load imbalance, and the modeled communication fraction.
Nodes are simulated in-process, so per-node compute is real measured work
and "parallel" time is the max over nodes (the coordinator's critical
path).
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.bench.reporting import format_table, print_section
from repro.cluster.cluster import PLSHCluster
from repro.cluster.stats import aggregate_node_seconds, load_imbalance


def test_fig9_node_scaling(benchmark, twitter, scale):
    params = scale.params()
    per_node = int(os.environ.get("PLSH_BENCH_FIG9_PER_NODE", "10000"))
    max_nodes = int(os.environ.get("PLSH_BENCH_FIG9_MAX_NODES", "8"))
    node_counts = [n for n in (1, 2, 4, 8, 16) if n <= max_nodes]
    queries = twitter.queries.slice_rows(0, min(50, twitter.queries.n_rows))

    rows = []
    last_cluster = None
    for n_nodes in node_counts:
        need = n_nodes * per_node
        reps = -(-need // twitter.n)
        if reps > 1:
            from repro.sparse.csr import CSRMatrix

            data = CSRMatrix.vstack([twitter.vectors] * reps).slice_rows(0, need)
        else:
            data = twitter.vectors.slice_rows(0, need)

        cluster = PLSHCluster(
            n_nodes=n_nodes,
            node_capacity=per_node,
            dim=twitter.vectors.n_cols,
            params=params,
            insert_window=min(4, n_nodes),
        )
        # Per-node init: fill each node and force the merge (rebuild).
        init_times = []
        pos = 0
        for node in cluster.nodes:
            start = time.perf_counter()
            node.insert_batch(
                data.slice_rows(pos, pos + per_node),
                np.arange(pos, pos + per_node),
            )
            node.plsh.merge_now()
            init_times.append(time.perf_counter() - start)
            pos += per_node
        # Two passes, keeping each node's faster total: one-off scheduler
        # pauses on a small shared host would otherwise masquerade as load
        # imbalance.
        cluster.query_batch(queries.slice_rows(0, 5))  # warmup
        totals_a = aggregate_node_seconds(cluster.query_batch(queries))
        outcomes = cluster.query_batch(queries)
        totals_b = aggregate_node_seconds(outcomes)
        node_totals = {
            nid: min(totals_a[nid], totals_b[nid]) for nid in totals_a
        }
        query_times = list(node_totals.values())
        net_s = sum(o.network_seconds for o in outcomes)
        compute_s = sum(query_times)
        rows.append(
            [
                n_nodes,
                min(init_times) * 1e3,
                sum(init_times) / len(init_times) * 1e3,
                max(init_times) * 1e3,
                min(query_times) * 1e3,
                sum(query_times) / len(query_times) * 1e3,
                max(query_times) * 1e3,
                load_imbalance(query_times),
                net_s / max(net_s + max(query_times), 1e-12) * 100,
            ]
        )
        last_cluster = cluster

    assert last_cluster is not None
    benchmark.pedantic(
        lambda: last_cluster.query_batch(queries.slice_rows(0, 10)),
        rounds=2,
        iterations=1,
    )

    print_section(
        f"Figure 9 — node scaling ({per_node:,} docs/node, "
        f"{queries.n_rows} queries)",
        format_table(
            ["nodes", "init min ms", "init avg ms", "init max ms",
             "query min ms", "query avg ms", "query max ms",
             "load imbal", "comm %"],
            rows,
        )
        + "\npaper: flat init/query vs node count; load balance <= 1.3;"
          " communication < 1 % at 100 nodes",
    )

    # Shape: weak scaling — per-node init times stay flat (within 2x) as the
    # node count grows, and load imbalance stays moderate.
    init_avgs = [r[2] for r in rows]
    assert max(init_avgs) < 2.0 * min(init_avgs)
    assert all(r[7] < 2.0 for r in rows)
