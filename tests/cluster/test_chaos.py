"""Seeded chaos suite: random op sequences under injected faults, every
query checked against an in-process shadow oracle.

Each sequence drives a spawned RPC cluster and a bit-identical in-process
shadow through the same inserts/deletes/merges, while injecting faults —
node kills (bounded so at least one replica per shard survives by
construction when R=2), SIGSTOP pauses, dropped requests, torn replies —
chosen by a seeded RNG, so every run is reproducible from its seed.

The invariant after **every** query broadcast:

* if every data-holding shard had at least one *guaranteed* replica (not
  killed, not paused, not evicted, breaker closed, no fault injection
  active), the answers are **bit-identical** to the shadow's and the
  outcome is not degraded;
* otherwise the broadcast still completes (no exception, ever), any
  missing shards are a subset of the shards we actually made suspect,
  and the answers equal the shadow restricted to the surviving shards —
  degraded, but exact over what was searched and honest about the rest.

``PLSH_CHAOS_SEQUENCES`` scales the sequence count (default 4 for
tier-1; the CI chaos-smoke job runs 30).
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro import PLSHCluster, PLSHParams
from repro.cluster import FaultPlan, spawn_local_cluster
from repro.cluster.coordinator import Coordinator
from repro.cluster.network import NetworkModel
from repro.parallel import fork_available

PARAMS = PLSHParams(k=6, m=4, radius=0.9, seed=23)
N_SHARDS = 3
CAPACITY = 150
N_SEQUENCES = int(os.environ.get("PLSH_CHAOS_SEQUENCES", "4"))
OPS_PER_SEQUENCE = 14

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="spawn_local_cluster requires fork()"
)


class ChaosHarness:
    """One sequence: an RPC cluster, its shadow oracle, fault bookkeeping."""

    def __init__(self, seed: int, vectors, queries) -> None:
        self.rng = np.random.default_rng(10_000 + seed)
        self.replication = 2 if seed % 2 else 1
        self.vectors = vectors
        self.queries = queries
        self.cursor = 0
        self.killed: set[int] = set()
        self.paused: set[int] = set()
        self.faulty: set[int] = set()  # nodes with rate-faults active now
        self.kills_used = 0
        self.n_checked = self.n_degraded = 0
        n_nodes = N_SHARDS * self.replication
        self.plans = {i: FaultPlan(seed=seed * 100 + i) for i in range(n_nodes)}
        self.shadow = PLSHCluster(
            N_SHARDS, CAPACITY, vectors.n_cols, PARAMS, insert_window=2
        )
        self.rpc = spawn_local_cluster(
            n_nodes, CAPACITY, vectors.n_cols, PARAMS,
            insert_window=2, replication=self.replication,
            op_timeout=2.0, retries=2,
            health_cooldown=0.3, heartbeat_interval=0.1,
            fault_plans=self.plans,
        )

    def close(self) -> None:
        self.rpc.close()
        self.shadow.close()

    # -- fault bookkeeping -------------------------------------------------

    def _evicted_indices(self, shard: int) -> set[int]:
        if self.replication == 1:
            return set()
        group = self.rpc.shards[shard]
        return {shard * self.replication + j for j in group.evicted}

    def _shard_guaranteed(self, shard: int) -> bool:
        """Does this shard have a replica nothing can take down mid-op?"""
        evicted = self._evicted_indices(shard)
        for j in range(self.replication):
            idx = shard * self.replication + j
            handle = self.rpc.nodes[idx]
            if idx in self.killed or idx in self.paused:
                continue
            if idx in self.faulty or idx in evicted:
                continue
            if not handle.broadcast_ready:
                continue
            return True
        return False

    def _suspect_shards(self) -> set[int]:
        return {
            s for s in range(N_SHARDS) if not self._shard_guaranteed(s)
        }

    def _all_shards_writable(self, deadline_s: float = 4.0) -> bool:
        """Mutations need every shard to accept writes; give the
        heartbeat a moment to close breakers that rate-faults tripped."""
        deadline = time.monotonic() + deadline_s
        while time.monotonic() < deadline:
            if all(
                self.rpc.shards[s].broadcast_ready for s in range(N_SHARDS)
            ):
                return True
            time.sleep(0.1)
        return False

    # -- ops ---------------------------------------------------------------

    def op_insert(self) -> None:
        if self.cursor + 60 > self.vectors.n_rows:
            return
        block = self.vectors.slice_rows(self.cursor, self.cursor + 60)
        self.cursor += 60
        np.testing.assert_array_equal(
            self.shadow.insert(block), self.rpc.insert(block)
        )

    def op_delete(self) -> None:
        upper = self.shadow._next_global_id
        if upper == 0:
            return
        doomed = np.unique(
            self.rng.integers(0, upper, size=4)
        ).astype(np.int64)
        assert self.shadow.delete(doomed) == self.rpc.delete(doomed)

    def op_merge(self) -> None:
        self.shadow.begin_merge_all()
        self.rpc.begin_merge_all()
        self.shadow.commit_merges(wait=True)
        self.rpc.commit_merges(wait=True)

    def op_query(self) -> None:
        lo = int(self.rng.integers(0, self.queries.n_rows - 6))
        batch = self.queries.slice_rows(lo, lo + 6)
        suspects = self._suspect_shards()
        outcomes = self.rpc.query_batch(batch)
        self.n_checked += len(outcomes)
        for out in outcomes:
            missing = set(out.missing_shards)
            # Never blame a shard we did nothing to.
            assert missing <= suspects, (
                f"missing {missing} not within suspect set {suspects}"
            )
            assert set(out.node_errors) <= suspects
        missing = set(outcomes[0].missing_shards)
        if not suspects:
            assert not any(out.degraded for out in outcomes)
        if missing:
            self.n_degraded += len(outcomes)
        expected = self._expected(batch, missing)
        for a, b in zip(expected, outcomes):
            np.testing.assert_array_equal(a.result.indices, b.result.indices)
            np.testing.assert_array_equal(
                a.result.distances, b.result.distances
            )

    def _expected(self, batch, missing: set[int]):
        if not missing:
            return self.shadow.query_batch(batch)
        survivors = [
            n for n in self.shadow.nodes if n.node_id not in missing
        ]
        restricted = Coordinator(survivors, NetworkModel())
        try:
            return restricted.query_batch(batch)
        finally:
            restricted.close()

    def op_flaky_query(self) -> None:
        candidates = [
            i
            for i in range(len(self.rpc.nodes))
            if i not in self.killed and i not in self.paused
        ]
        if not candidates:
            return
        victim = int(self.rng.choice(candidates))
        plan = self.plans[victim]
        plan.drop_rate = 0.25
        self.faulty.add(victim)
        try:
            if self.rng.random() < 0.5:
                plan.tear_next_reply()
            self.op_query()
        finally:
            plan.drop_rate = 0.0
            self.faulty.discard(victim)

    def op_pause_cycle(self) -> None:
        candidates = [
            i
            for i in range(len(self.rpc.nodes))
            if i not in self.killed and i not in self.paused
        ]
        if not candidates:
            return
        victim = int(self.rng.choice(candidates))
        self.rpc.pause_node(victim)
        self.paused.add(victim)
        try:
            self.op_query()
        finally:
            self.rpc.resume_node(victim)
            self.paused.discard(victim)

    def op_kill(self) -> None:
        limit = N_SHARDS if self.replication == 2 else 1
        if self.kills_used >= limit:
            return
        candidates = []
        for i in range(len(self.rpc.nodes)):
            if i in self.killed or i in self.paused:
                continue
            if self.replication == 2:
                # Never orphan a shard: the sibling must be intact.
                shard, j = divmod(i, 2)
                sibling = shard * 2 + (1 - j)
                if sibling in self.killed or sibling in self.paused:
                    continue
                if sibling in self._evicted_indices(shard):
                    continue
            candidates.append(i)
        if not candidates:
            return
        victim = int(self.rng.choice(candidates))
        self.rpc.kill_node(victim)
        self.killed.add(victim)
        self.kills_used += 1
        self.op_query()

    # -- the sequence ------------------------------------------------------

    def run(self) -> None:
        self.op_insert()  # never start empty
        self.op_query()
        mutations_allowed = True
        for _ in range(OPS_PER_SEQUENCE):
            if self.replication == 1 and self.killed:
                # An R=1 kill is unrecoverable: from here the contract is
                # honest degraded *queries*; mutations would (correctly)
                # raise on the dead shard.
                mutations_allowed = False
            roll = self.rng.random()
            if roll < 0.30 and mutations_allowed:
                if self._all_shards_writable():
                    self.op_insert()
            elif roll < 0.40 and mutations_allowed:
                if self._all_shards_writable():
                    self.op_delete()
            elif roll < 0.48 and mutations_allowed:
                if self._all_shards_writable():
                    self.op_merge()
            elif roll < 0.70:
                self.op_query()
            elif roll < 0.82:
                self.op_flaky_query()
            elif roll < 0.92:
                self.op_pause_cycle()
            else:
                self.op_kill()
        self.op_query()
        assert self.n_checked > 0


@pytest.mark.parametrize("seed", range(N_SEQUENCES))
def test_chaos_sequence(seed, small_vectors, small_queries):
    _, queries = small_queries
    harness = ChaosHarness(seed, small_vectors, queries)
    try:
        harness.run()
    finally:
        harness.close()
