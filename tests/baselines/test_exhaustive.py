"""Exhaustive search baseline tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.exhaustive import ExhaustiveSearch


def test_counts_every_distance_computation(small_vectors, small_queries):
    _, queries = small_queries
    search = ExhaustiveSearch(small_vectors, 0.9)
    search.query(*queries.row(0))
    search.query(*queries.row(1))
    assert search.n_distance_computations == 2 * small_vectors.n_rows


def test_finds_self_at_zero(small_vectors):
    search = ExhaustiveSearch(small_vectors, 0.9)
    cols, vals = small_vectors.row(42)
    res = search.query(cols.astype(np.int64), vals)
    pos = res.indices.tolist().index(42)
    assert res.distances[pos] == pytest.approx(0.0, abs=1e-3)


def test_all_within_radius(small_vectors, small_queries):
    _, queries = small_queries
    search = ExhaustiveSearch(small_vectors, 0.7)
    for r in range(5):
        res = search.query(*queries.row(r))
        assert (res.distances <= 0.7 + 1e-6).all()


def test_radius_monotonicity(small_vectors, small_queries):
    _, queries = small_queries
    tight = ExhaustiveSearch(small_vectors, 0.5)
    loose = ExhaustiveSearch(small_vectors, 1.1)
    for r in range(3):
        nt = len(tight.query(*queries.row(r)))
        nl = len(loose.query(*queries.row(r)))
        assert nt <= nl


def test_query_batch(small_vectors, small_queries):
    _, queries = small_queries
    search = ExhaustiveSearch(small_vectors, 0.9)
    batch = search.query_batch(queries.slice_rows(0, 4))
    assert len(batch) == 4


def test_ground_truth_sets(small_vectors, small_queries):
    _, queries = small_queries
    search = ExhaustiveSearch(small_vectors, 0.9)
    sets = search.ground_truth_sets(queries.slice_rows(0, 3))
    assert len(sets) == 3
    assert all(isinstance(s, set) for s in sets)


def test_invalid_radius():
    import repro.sparse.csr as csr

    with pytest.raises(ValueError):
        ExhaustiveSearch(csr.CSRMatrix.empty(5), 0.0)
