"""Cluster write-path invariants: fused inserts, bounded retirement log.

``insert_many`` is the gateway write micro-batcher's critical section —
its whole value rests on being *placement-exact*: N coalesced ops must
leave the cluster bit-identical to N sequential ``insert`` calls (same
global ids, same shard placement, same retirements), with only the
per-shard deliveries fused.  And a long-running service retires forever,
so the retirement log must stay bounded (keep the last K batches, count
the rest) without losing the running totals across save/load.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import PLSHCluster, PLSHParams
from repro.persistence import load_cluster, save_cluster
from repro.sparse.csr import CSRMatrix

PARAMS = PLSHParams(k=8, m=6, radius=0.9, seed=77)


def _make(dim, *, capacity=50, retention=8):
    return PLSHCluster(
        3, capacity, dim, PARAMS, insert_window=2,
        retired_retention=retention,
    )


def _assert_same_state(a: PLSHCluster, b: PLSHCluster, queries) -> None:
    assert a.n_items == b.n_items
    assert a.n_retirements == b.n_retirements
    assert a.n_retired_items == b.n_retired_items
    assert a._window_start == b._window_start
    assert a._window_cursor == b._window_cursor
    assert len(a.retired_ids) == len(b.retired_ids)
    for r1, r2 in zip(a.retired_ids, b.retired_ids):
        np.testing.assert_array_equal(r1, r2)
    for oa, ob in zip(a.query_batch(queries), b.query_batch(queries)):
        np.testing.assert_array_equal(oa.result.indices, ob.result.indices)
        np.testing.assert_array_equal(
            oa.result.distances, ob.result.distances
        )


class TestInsertMany:
    @pytest.mark.parametrize(
        "op_sizes",
        [
            [1] * 40,              # the gateway's shape: single-row ops
            [7, 1, 30, 1, 1, 12],  # mixed op widths
            [120, 80, 120],        # ops wider than the whole window
        ],
    )
    def test_bit_identical_to_sequential(self, small_vectors, op_sizes):
        dim = small_vectors.n_cols
        fused = _make(dim)
        serial = _make(dim)
        try:
            batches = []
            start = 0
            for size in op_sizes:
                batches.append(small_vectors.slice_rows(start, start + size))
                start += size
            fused_gids = fused.insert_many(batches)
            serial_gids = [serial.insert(b) for b in batches]
            for g1, g2 in zip(fused_gids, serial_gids):
                np.testing.assert_array_equal(g1, g2)
            _assert_same_state(
                fused, serial, small_vectors.slice_rows(0, 20)
            )
        finally:
            fused.close()
            serial.close()

    def test_buffered_rows_land_before_retirement(self, small_vectors):
        """One giant op that wraps the window mid-buffer: rows buffered
        for a shard that is about to retire must flush first (serial
        execution would have inserted them before the wrap)."""
        dim = small_vectors.n_cols
        fused = _make(dim)
        serial = _make(dim)
        try:
            big = small_vectors.slice_rows(0, 400)  # >> 150 capacity
            (gids,) = fused.insert_many([big])
            expected = serial.insert(big)
            np.testing.assert_array_equal(gids, expected)
            assert fused.n_retirements == serial.n_retirements > 0
            _assert_same_state(
                fused, serial, small_vectors.slice_rows(350, 380)
            )
        finally:
            fused.close()
            serial.close()


class TestRetiredRetention:
    def test_log_bounded_count_running(self, small_vectors):
        dim = small_vectors.n_cols
        cluster = _make(dim, capacity=20, retention=3)
        try:
            total_retired = 0
            for start in range(0, 600, 10):
                cluster.insert(small_vectors.slice_rows(start, start + 10))
            # Plenty of wraps: the log is trimmed, the count is not.
            assert cluster.n_retirements > 3
            assert len(cluster.retired_ids) == 3
            total_retired = cluster.n_retired_items
            kept = sum(ids.size for ids in cluster.retired_ids)
            assert total_retired > kept  # older batches counted, not kept
            # Conservation: every row is either resident or retired.
            assert cluster.n_items + total_retired == 600
        finally:
            cluster.close()

    def test_retention_validated(self, small_vectors):
        with pytest.raises(ValueError, match="retired_retention"):
            _make(small_vectors.n_cols, retention=0)

    def test_persistence_roundtrip(self, small_vectors, tmp_path):
        dim = small_vectors.n_cols
        cluster = _make(dim, capacity=20, retention=2)
        try:
            cluster.insert(small_vectors.slice_rows(0, 300))
            assert cluster.n_retirements > 2
            save_cluster(cluster, tmp_path / "c")
            restored = load_cluster(tmp_path / "c")
            try:
                assert restored.retired_retention == 2
                assert restored.n_retired_items == cluster.n_retired_items
                assert restored.n_retirements == cluster.n_retirements
                assert len(restored.retired_ids) == len(cluster.retired_ids)
                for r1, r2 in zip(restored.retired_ids, cluster.retired_ids):
                    np.testing.assert_array_equal(r1, r2)
            finally:
                restored.close()
        finally:
            cluster.close()
