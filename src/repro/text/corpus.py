"""Synthetic corpora matching the paper's data profile (Section 8).

The paper evaluates on 1.05 B real tweets (vocab ≈ 500 k, ≈ 7.2 words per
tweet after cleaning) and 8 M Wikipedia abstracts (500 k vocab).  Neither
dataset can be shipped, so this module synthesizes corpora that preserve the
properties LSH behaviour actually depends on:

* **Zipf term skew** — natural-language word frequencies follow a Zipf law;
  the paper leans on this for cache behaviour (common words' hyperplane rows
  stay hot).  Tokens are drawn from a Zipf(s) distribution over the
  vocabulary via inverse-CDF sampling.
* **Document length distribution** — Poisson around the paper's means
  (7.2 for tweets, ~50 for abstracts), truncated to at least 1 token.
* **Near-duplicate structure** — a configurable fraction of documents are
  mutations of earlier documents (token dropout + a few fresh tokens), so
  that R-near neighbors at R ≈ 0.9 exist, as retweets/quotes provide in the
  real feed.  Without planted neighbors a random sparse corpus has almost no
  R-near pairs and every query returns only itself.

Documents are emitted as integer token-id arrays; use
:class:`repro.sparse.IDFVectorizer` (or :meth:`SyntheticCorpus.vectors`) to
produce IDF-weighted unit CSR rows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sparse.csr import CSRMatrix
from repro.sparse.vectorizer import IDFVectorizer
from repro.utils.rng import rng_for

__all__ = ["CorpusSpec", "SyntheticCorpus", "TWITTER_SPEC", "WIKIPEDIA_SPEC"]


@dataclass(frozen=True)
class CorpusSpec:
    """Statistical profile of a synthetic corpus."""

    vocab_size: int = 50_000
    mean_doc_length: float = 7.2
    zipf_exponent: float = 1.07
    near_duplicate_fraction: float = 0.35
    #: Probability that each token of a source document survives mutation.
    duplicate_keep_probability: float = 0.85
    #: Mean count of fresh tokens appended to a mutated document.
    duplicate_extra_tokens: float = 0.7

    def __post_init__(self) -> None:
        if self.vocab_size < 2:
            raise ValueError(f"vocab_size must be >= 2, got {self.vocab_size}")
        if self.mean_doc_length <= 0:
            raise ValueError(
                f"mean_doc_length must be positive, got {self.mean_doc_length}"
            )
        if self.zipf_exponent <= 0:
            raise ValueError(
                f"zipf_exponent must be positive, got {self.zipf_exponent}"
            )
        if not 0.0 <= self.near_duplicate_fraction < 1.0:
            raise ValueError(
                "near_duplicate_fraction must be in [0, 1), got "
                f"{self.near_duplicate_fraction}"
            )
        if not 0.0 < self.duplicate_keep_probability <= 1.0:
            raise ValueError(
                "duplicate_keep_probability must be in (0, 1], got "
                f"{self.duplicate_keep_probability}"
            )


#: Tweet-like profile: 7.2 tokens/doc over the configured vocabulary.
TWITTER_SPEC = CorpusSpec(mean_doc_length=7.2)

#: Wikipedia-abstract-like profile (Section 8.3's second dataset): longer
#: documents, slightly flatter term distribution.
WIKIPEDIA_SPEC = CorpusSpec(mean_doc_length=50.0, zipf_exponent=1.02,
                            near_duplicate_fraction=0.15)


class SyntheticCorpus:
    """A generated corpus: token-id documents + helpers to vectorize/query."""

    def __init__(self, documents: list[np.ndarray], spec: CorpusSpec, seed: int | None):
        self.documents = documents
        self.spec = spec
        self.seed = seed
        self._vectorizer: IDFVectorizer | None = None
        self._vectors: CSRMatrix | None = None

    # -- generation -------------------------------------------------------

    @classmethod
    def generate(
        cls, n_documents: int, spec: CorpusSpec = TWITTER_SPEC, seed: int | None = 0
    ) -> "SyntheticCorpus":
        """Generate ``n_documents`` documents under ``spec``.

        Base documents draw i.i.d. Zipf tokens; near-duplicates mutate a
        previously generated document.  Tokens are deduplicated per document
        (tweets are token sets after the paper's cleaning step).
        """
        if n_documents <= 0:
            raise ValueError(f"n_documents must be positive, got {n_documents}")
        rng = rng_for(seed, "corpus")
        cdf = _zipf_cdf(spec.vocab_size, spec.zipf_exponent)

        lengths = np.maximum(rng.poisson(spec.mean_doc_length, size=n_documents), 1)
        # Pre-draw the full token budget in one vectorized pass.
        token_pool = _sample_zipf(rng, cdf, int(lengths.sum()))
        pool_pos = 0

        is_dup = rng.random(n_documents) < spec.near_duplicate_fraction
        is_dup[0] = False  # the first document has no possible source
        dup_sources = rng.integers(0, np.maximum(np.arange(n_documents), 1))

        documents: list[np.ndarray] = []
        for i in range(n_documents):
            if is_dup[i]:
                src = documents[int(dup_sources[i])]
                keep = rng.random(src.size) < spec.duplicate_keep_probability
                doc = src[keep]
                n_extra = int(rng.poisson(spec.duplicate_extra_tokens))
                if n_extra:
                    doc = np.concatenate(
                        [doc, _sample_zipf(rng, cdf, n_extra)]
                    )
                if doc.size == 0:
                    doc = src[:1].copy()
            else:
                ln = int(lengths[i])
                doc = token_pool[pool_pos : pool_pos + ln]
                pool_pos += ln
            documents.append(np.unique(doc))
        return cls(documents, spec, seed)

    # -- views --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.documents)

    @property
    def vocab_size(self) -> int:
        return self.spec.vocab_size

    def mean_tokens(self) -> float:
        """Observed mean tokens per document (paper's NNZ ≈ 7.2)."""
        return float(np.mean([d.size for d in self.documents]))

    def vectorizer(self) -> IDFVectorizer:
        """The corpus-fit IDF vectorizer (cached)."""
        if self._vectorizer is None:
            self._vectorizer = IDFVectorizer(self.spec.vocab_size).fit(self.documents)
        return self._vectorizer

    def vectors(self) -> CSRMatrix:
        """IDF-weighted unit CSR rows for the whole corpus (cached)."""
        if self._vectors is None:
            self._vectors = self.vectorizer().transform(self.documents)
        return self._vectors

    def sample_query_ids(self, n_queries: int, seed: int | None = 1) -> np.ndarray:
        """Random non-empty corpus documents to use as queries.

        Mirrors the paper's methodology: "we use a random subset of 1000
        tweets from the database", dropping 0-length queries.
        """
        rng = rng_for(seed, "queries")
        nonempty = np.asarray(
            [i for i, d in enumerate(self.documents) if d.size > 0], dtype=np.int64
        )
        if nonempty.size == 0:
            raise ValueError("corpus has no non-empty documents")
        take = min(n_queries, nonempty.size)
        return rng.choice(nonempty, size=take, replace=False)

    def query_vectors(self, n_queries: int, seed: int | None = 1) -> tuple[np.ndarray, CSRMatrix]:
        """Sampled query ids plus their CSR rows."""
        ids = self.sample_query_ids(n_queries, seed)
        return ids, self.vectors().gather_rows(ids)


def _zipf_cdf(vocab_size: int, exponent: float) -> np.ndarray:
    """CDF of a Zipf(s) distribution over ranks ``1..vocab_size``."""
    weights = 1.0 / np.power(np.arange(1, vocab_size + 1, dtype=np.float64), exponent)
    cdf = np.cumsum(weights)
    cdf /= cdf[-1]
    return cdf


def _sample_zipf(rng: np.random.Generator, cdf: np.ndarray, n: int) -> np.ndarray:
    """Inverse-CDF draw of ``n`` token ids (rank 0 = most frequent)."""
    if n == 0:
        return np.empty(0, dtype=np.int64)
    return np.searchsorted(cdf, rng.random(n), side="left").astype(np.int64)
