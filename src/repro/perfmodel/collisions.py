"""Collision probability theory and sampled statistics (Sections 3 & 7).

For the angular family, two unit vectors at angle ``t`` collide under one
hash bit with probability ``p(t) = 1 - t/pi``.  A point is *retrieved* by
the all-pairs scheme iff it collides with the query on at least two of the
``m`` half-functions ``u_i`` (then some table ``g = (u_a, u_b)`` sees both
halves collide), giving Section 7.2's

    P'(t, k, m) = 1 - (1 - p^{k/2})^m - m p^{k/2} (1 - p^{k/2})^{m-1}

The cost model needs two data-dependent expectations, estimated from
samples exactly as Section 7.3 prescribes ("a random set of 1000 queries
and 1000 data points"):

    E[#collisions] = L * sum_v p(d(q,v))^k        (Equation 7.1)
    E[#unique]     = sum_v P'(d(q,v), k, m)       (Equation 7.2)
"""

from __future__ import annotations

from dataclasses import dataclass
from math import pi

import numpy as np

from repro.sparse.csr import CSRMatrix
from repro.sparse.ops import densify_query, row_dots_dense
from repro.utils.rng import rng_for

__all__ = [
    "collision_probability",
    "pair_collision_probability",
    "recall_probability",
    "CollisionStats",
    "estimate_collision_stats",
    "sample_pairwise_distances",
]


def collision_probability(t: np.ndarray | float) -> np.ndarray | float:
    """``p(t) = 1 - t/pi`` — single-bit collision probability at angle t."""
    return 1.0 - np.asarray(t) / pi


def pair_collision_probability(t: np.ndarray | float, k: int) -> np.ndarray | float:
    """``p(t)^k`` — probability a full k-bit table key collides."""
    return collision_probability(t) ** k


def recall_probability(t: np.ndarray | float, k: int, m: int) -> np.ndarray | float:
    """``P'(t, k, m)`` — probability a point at angle t is retrieved.

    The complement is the probability of colliding on zero or exactly one of
    the m half-functions.
    """
    q = collision_probability(t) ** (k // 2)
    miss = (1.0 - q) ** m + m * q * (1.0 - q) ** (m - 1)
    return 1.0 - miss


@dataclass(frozen=True)
class CollisionStats:
    """Sampled expectations scaled to the full dataset size N."""

    expected_collisions: float  # E[#collisions] per query (Eq 7.1)
    expected_unique: float      # E[#unique]     per query (Eq 7.2)
    n_data: int
    n_query_sample: int
    n_data_sample: int


def sample_pairwise_distances(
    data: CSRMatrix,
    queries: CSRMatrix,
    *,
    n_query_sample: int = 1000,
    n_data_sample: int = 1000,
    seed: int | None = 0,
) -> np.ndarray:
    """Angular distances between sampled query rows and sampled data rows.

    Returns a ``(q_sample, d_sample)`` matrix.  Rows of both inputs must be
    unit vectors (as produced by the vectorizer).
    """
    rng = rng_for(seed, "collision-sampling")
    q_ids = rng.choice(
        queries.n_rows, size=min(n_query_sample, queries.n_rows), replace=False
    )
    d_ids = rng.choice(
        data.n_rows, size=min(n_data_sample, data.n_rows), replace=False
    )
    sample = data.gather_rows(d_ids)
    out = np.empty((q_ids.size, d_ids.size), dtype=np.float64)
    dense = np.zeros(data.n_cols, dtype=np.float32)
    all_rows = np.arange(sample.n_rows, dtype=np.int64)
    for row, qid in enumerate(q_ids.tolist()):
        cols, vals = queries.row(int(qid))
        dense[cols] = vals
        dots = row_dots_dense(sample, all_rows, dense)
        dense[cols] = 0.0
        out[row] = np.arccos(np.clip(dots, -1.0, 1.0))
    return out


def estimate_collision_stats(
    data: CSRMatrix,
    queries: CSRMatrix,
    k: int,
    m: int,
    *,
    n_query_sample: int = 1000,
    n_data_sample: int = 1000,
    seed: int | None = 0,
    distances: np.ndarray | None = None,
) -> CollisionStats:
    """Estimate Equations 7.1 and 7.2 by sampling.

    Pass ``distances`` (from :func:`sample_pairwise_distances`) to reuse one
    distance sample across many (k, m) candidates — that is what makes the
    Section 7.3 enumeration cheap.
    """
    if distances is None:
        distances = sample_pairwise_distances(
            data,
            queries,
            n_query_sample=n_query_sample,
            n_data_sample=n_data_sample,
            seed=seed,
        )
    n = data.n_rows
    scale = n / distances.shape[1]
    L = m * (m - 1) // 2
    per_pair_collisions = pair_collision_probability(distances, k)
    per_pair_unique = recall_probability(distances, k, m)
    return CollisionStats(
        expected_collisions=float(L * per_pair_collisions.sum(axis=1).mean() * scale),
        expected_unique=float(per_pair_unique.sum(axis=1).mean() * scale),
        n_data=n,
        n_query_sample=distances.shape[0],
        n_data_sample=distances.shape[1],
    )
