"""Simulated interconnect cost accounting.

The paper's Infiniband fabric is modeled, not moved: every message is
charged ``latency + bytes / bandwidth`` seconds and tallied.  Defaults
approximate the paper's fabric (QDR Infiniband-class: ~2 us one-way
latency, ~3 GB/s effective point-to-point bandwidth).  A broadcast to n
nodes is n point-to-point messages (the paper's coordinator does the
same; at 100 nodes it measures <20 ms per 1000-query batch) — the
coordinator routes its query fan-out through :meth:`NetworkModel.broadcast`
and each node's response through :meth:`NetworkModel.send`.

The model coexists with the *real* transport
(:mod:`repro.cluster.transport`): a coordinator over remote handles
still charges this model per broadcast, and the handles count measured
bytes on the wire, so ``Coordinator.transport_totals()`` vs.
``network.stats`` compares modeled against real traffic (EXPERIMENTS.md
reports the comparison).

Accounting is **thread-safe**: one model instance is shared by every
broadcast through a coordinator, and the serving gateway
(:mod:`repro.serve`) legitimately runs overlapping broadcasts from
multiple dispatch threads.  :meth:`NetworkModel.send` updates its
counters under an internal lock so concurrent broadcasts never lose
charges (regression-tested by the coordinator concurrency hammer, which
asserts the exact final message count).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

__all__ = ["NetworkModel", "NetworkStats"]


@dataclass
class NetworkStats:
    """Totals accumulated by a :class:`NetworkModel`."""

    n_messages: int = 0
    bytes_sent: int = 0
    seconds: float = 0.0

    def reset(self) -> None:
        self.n_messages = 0
        self.bytes_sent = 0
        self.seconds = 0.0


@dataclass
class NetworkModel:
    """Latency + bandwidth cost model for cluster messages."""

    latency_s: float = 2e-6
    bandwidth_bytes_per_s: float = 3e9
    stats: NetworkStats = field(default_factory=NetworkStats)
    #: serializes counter updates — broadcasts from concurrent dispatch
    #: threads (the serving gateway) share one model instance.
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def send(self, n_bytes: int) -> float:
        """Charge one point-to-point message; returns its modeled seconds."""
        if n_bytes < 0:
            raise ValueError(f"message size must be non-negative, got {n_bytes}")
        cost = self.latency_s + n_bytes / self.bandwidth_bytes_per_s
        with self._lock:
            self.stats.n_messages += 1
            self.stats.bytes_sent += n_bytes
            self.stats.seconds += cost
        return cost

    def broadcast(self, n_nodes: int, n_bytes: int) -> float:
        """Charge a broadcast as ``n_nodes`` point-to-point sends."""
        return sum(self.send(n_bytes) for _ in range(n_nodes))
