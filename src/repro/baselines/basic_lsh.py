"""Unoptimized LSH — the paper's "basic implementation" baseline.

This is the strawman PLSH is measured against ("table construction times up
to 3.7x faster and query times 8.3x faster than a basic implementation"):

* construction: every table built independently by hashing into a dict of
  Python-list buckets (the "linked list of collisions" design the paper
  calls naive), one full k-bit key per table;
* querying: bucket contents merged with a tree/hash *set* (the C++ STL set
  of Section 8.2) and distances computed with the naive per-candidate
  index-intersection dot product.

It returns exactly the same result set as :class:`repro.core.index.PLSHIndex`
built with the same parameters and seed — only slower — which the test suite
asserts.
"""

from __future__ import annotations

import numpy as np

from repro.core.distance import angular_distance, candidate_dots_naive
from repro.core.hashing import AllPairsHasher
from repro.core.query import QueryResult
from repro.params import PLSHParams
from repro.sparse.csr import CSRMatrix

__all__ = ["BasicLSHIndex"]


class BasicLSHIndex:
    """Dict-of-buckets LSH with unoptimized construction and querying."""

    def __init__(
        self,
        dim: int,
        params: PLSHParams,
        *,
        hasher: AllPairsHasher | None = None,
    ) -> None:
        self.params = params
        self.dim = dim
        self.hasher = hasher if hasher is not None else AllPairsHasher(params, dim)
        self.data: CSRMatrix | None = None
        #: One dict per table: key -> Python list of data indexes.
        self.tables: list[dict[int, list[int]]] = []

    def build(self, data: CSRMatrix) -> "BasicLSHIndex":
        """Insert every item into every table, one at a time."""
        if data.n_cols != self.dim:
            raise ValueError(
                f"data has {data.n_cols} columns, index expects {self.dim}"
            )
        self.data = data
        u = self.hasher.hash_functions(data)
        self.tables = []
        for l in range(self.params.n_tables):
            keys = self.hasher.table_key(u, l).tolist()
            table: dict[int, list[int]] = {}
            for idx, key in enumerate(keys):
                bucket = table.get(key)
                if bucket is None:
                    table[key] = [idx]
                else:
                    bucket.append(idx)
            self.tables.append(table)
        return self

    def query(
        self, q_cols: np.ndarray, q_vals: np.ndarray, *, radius: float | None = None
    ) -> QueryResult:
        """Set-dedup + naive-dot query over the dict tables."""
        if self.data is None:
            raise RuntimeError("index must be built before querying")
        radius = self.params.radius if radius is None else radius
        q_cols = np.asarray(q_cols, dtype=np.int64)
        q_vals = np.asarray(q_vals, dtype=np.float32)
        q = CSRMatrix(
            np.asarray([0, q_cols.size], dtype=np.int64),
            q_cols.astype(np.int32),
            q_vals,
            self.dim,
            check=False,
        )
        u_row = self.hasher.hash_functions(q)[0]
        keys = self.hasher.table_keys_for_query(u_row)

        seen: set[int] = set()
        for l in range(self.params.n_tables):
            bucket = self.tables[l].get(int(keys[l]))
            if bucket:
                seen.update(bucket)
        unique = np.asarray(sorted(seen), dtype=np.int64)
        dots = candidate_dots_naive(self.data, unique, q_cols, q_vals)
        dists = angular_distance(dots)
        within = dists <= radius
        return QueryResult(unique[within], dists[within])

    def query_batch(self, queries: CSRMatrix, *, radius: float | None = None) -> list[QueryResult]:
        return [
            self.query(*queries.row(r), radius=radius) for r in range(queries.n_rows)
        ]
