"""Synthetic corpus tests: statistical profile and determinism."""

from __future__ import annotations

import numpy as np
import pytest

from repro.text.corpus import CorpusSpec, SyntheticCorpus, TWITTER_SPEC, WIKIPEDIA_SPEC
from repro.core.distance import exhaustive_dots, angular_distance


def test_generates_requested_count():
    c = SyntheticCorpus.generate(500, seed=0)
    assert len(c) == 500
    assert all(d.size >= 1 for d in c.documents)


def test_mean_length_tracks_spec():
    spec = CorpusSpec(vocab_size=20000, mean_doc_length=7.2,
                      near_duplicate_fraction=0.0)
    c = SyntheticCorpus.generate(3000, spec, seed=1)
    # Dedup within documents trims the mean slightly below the Poisson mean.
    assert 5.0 <= c.mean_tokens() <= 7.5


def test_wikipedia_documents_are_longer():
    tw = SyntheticCorpus.generate(
        400, CorpusSpec(vocab_size=8000, mean_doc_length=7.2), seed=2
    )
    wk = SyntheticCorpus.generate(
        400, CorpusSpec(vocab_size=8000, mean_doc_length=50.0), seed=2
    )
    assert wk.mean_tokens() > 3 * tw.mean_tokens()


def test_zipf_skew_head_tokens_dominate():
    spec = CorpusSpec(vocab_size=10000, near_duplicate_fraction=0.0)
    c = SyntheticCorpus.generate(2000, spec, seed=3)
    all_tokens = np.concatenate(c.documents)
    head_share = np.mean(all_tokens < 100)
    tail_share = np.mean(all_tokens >= 5000)
    assert head_share > 0.3          # top 1% of vocab carries a large share
    assert tail_share < head_share   # heavy head, light tail


def test_deterministic_per_seed():
    a = SyntheticCorpus.generate(200, seed=5)
    b = SyntheticCorpus.generate(200, seed=5)
    assert all(np.array_equal(x, y) for x, y in zip(a.documents, b.documents))
    c = SyntheticCorpus.generate(200, seed=6)
    assert any(
        not np.array_equal(x, y) for x, y in zip(a.documents, c.documents)
    )


def test_near_duplicates_create_r_near_neighbors():
    """Planted mutations must yield pairs within the paper's R = 0.9."""
    spec = CorpusSpec(vocab_size=20000, near_duplicate_fraction=0.5)
    c = SyntheticCorpus.generate(600, spec, seed=7)
    vecs = c.vectors()
    near_pairs = 0
    for q in range(0, 60):
        cols, vals = vecs.row(q)
        if cols.size == 0:
            continue
        dots = exhaustive_dots(vecs, cols.astype(np.int64), vals)
        dists = angular_distance(dots)
        near_pairs += int((dists <= 0.9).sum()) - 1  # minus self
    assert near_pairs > 10


def test_no_duplicates_when_fraction_zero():
    spec = CorpusSpec(vocab_size=500, near_duplicate_fraction=0.0)
    c = SyntheticCorpus.generate(100, spec, seed=8)
    assert len(c) == 100


def test_documents_are_sorted_unique_token_sets():
    c = SyntheticCorpus.generate(100, seed=9)
    for doc in c.documents:
        assert np.array_equal(doc, np.unique(doc))


def test_query_sampling_excludes_empty_and_is_deterministic():
    c = SyntheticCorpus.generate(300, seed=10)
    ids1 = c.sample_query_ids(50, seed=1)
    ids2 = c.sample_query_ids(50, seed=1)
    np.testing.assert_array_equal(ids1, ids2)
    assert all(c.documents[i].size > 0 for i in ids1)


def test_query_vectors_match_corpus_rows():
    c = SyntheticCorpus.generate(300, seed=11)
    ids, queries = c.query_vectors(10, seed=2)
    vecs = c.vectors()
    for row, idx in enumerate(ids.tolist()):
        qc, qv = queries.row(row)
        cc, cv = vecs.row(idx)
        np.testing.assert_array_equal(qc, cc)
        np.testing.assert_array_equal(qv, cv)


def test_spec_validation():
    with pytest.raises(ValueError):
        CorpusSpec(vocab_size=1)
    with pytest.raises(ValueError):
        CorpusSpec(mean_doc_length=0)
    with pytest.raises(ValueError):
        CorpusSpec(near_duplicate_fraction=1.0)
    with pytest.raises(ValueError):
        CorpusSpec(zipf_exponent=0)
    with pytest.raises(ValueError):
        CorpusSpec(duplicate_keep_probability=0.0)
    with pytest.raises(ValueError):
        SyntheticCorpus.generate(0)


def test_vectors_are_unit_and_cached():
    c = SyntheticCorpus.generate(100, seed=12)
    v1 = c.vectors()
    assert v1 is c.vectors()
    np.testing.assert_allclose(v1.row_norms(), 1.0, rtol=1e-5)


def test_wikipedia_spec_profile():
    assert WIKIPEDIA_SPEC.mean_doc_length > TWITTER_SPEC.mean_doc_length
