"""PLSHCluster tests: sharding, rolling window, retirement, equivalence."""

from __future__ import annotations

import numpy as np
import pytest

from repro import PLSHIndex, PLSHParams
from repro.cluster.cluster import PLSHCluster
from repro.cluster.stats import communication_fraction, load_imbalance

PARAMS = PLSHParams(k=8, m=6, radius=0.9, seed=61)


def make_cluster(small_vectors, **kw):
    defaults = dict(
        n_nodes=4,
        node_capacity=600,
        dim=small_vectors.n_cols,
        params=PARAMS,
        insert_window=2,
    )
    defaults.update(kw)
    return PLSHCluster(**defaults)


class TestInsertAndShard:
    def test_global_ids_sequential(self, small_vectors):
        cluster = make_cluster(small_vectors)
        g1 = cluster.insert(small_vectors.slice_rows(0, 100))
        g2 = cluster.insert(small_vectors.slice_rows(100, 150))
        np.testing.assert_array_equal(g1, np.arange(100))
        np.testing.assert_array_equal(g2, np.arange(100, 150))
        assert cluster.n_items == 150

    def test_inserts_spread_over_window(self, small_vectors):
        cluster = make_cluster(small_vectors)
        cluster.insert(small_vectors.slice_rows(0, 200))
        sizes = [n.n_items for n in cluster.nodes]
        # Window is nodes {0, 1}: both must hold data, the others none.
        assert sizes[0] > 0 and sizes[1] > 0
        assert sizes[2] == 0 and sizes[3] == 0

    def test_window_advances_when_full(self, small_vectors):
        cluster = make_cluster(small_vectors)
        cluster.insert(small_vectors.slice_rows(0, 1400))
        sizes = [n.n_items for n in cluster.nodes]
        assert sizes[0] == 600 and sizes[1] == 600  # first window full
        assert sizes[2] + sizes[3] == 200           # overflow into next window


class TestRetirement:
    def test_oldest_window_retired_on_wrap(self, small_vectors):
        cluster = make_cluster(small_vectors, node_capacity=400)
        # Fill the entire cluster (4 * 400 = 1600), then 200 more.
        cluster.insert(small_vectors.slice_rows(0, 1600))
        assert cluster.n_retirements == 0
        cluster.insert(small_vectors.slice_rows(1600, 1800))
        assert cluster.n_retirements == 1
        # The oldest window (nodes 0, 1) was erased and partially refilled.
        assert cluster.nodes[2].n_items == 400
        assert cluster.nodes[3].n_items == 400
        assert cluster.nodes[0].n_items + cluster.nodes[1].n_items == 200

    def test_retired_ids_are_the_oldest(self, small_vectors):
        cluster = make_cluster(small_vectors, node_capacity=400)
        cluster.insert(small_vectors.slice_rows(0, 1800))
        assert len(cluster.retired_ids) == 1
        retired = set(cluster.retired_ids[0].tolist())
        # The first window held global ids 0..799 (two nodes x 400).
        assert retired == set(range(800))

    def test_retired_data_not_returned_by_queries(self, small_vectors):
        cluster = make_cluster(small_vectors, node_capacity=400)
        cluster.insert(small_vectors.slice_rows(0, 1800))
        retired = set(cluster.retired_ids[0].tolist())
        for r in range(40, 44):
            cols, vals = small_vectors.row(r)
            out = cluster.query(cols.astype(np.int64), vals)
            assert not (set(out.result.indices.tolist()) & retired)


class TestQueryEquivalence:
    def test_union_of_shards_equals_single_node(
        self, small_vectors, small_queries
    ):
        _, queries = small_queries
        cluster = make_cluster(small_vectors)
        cluster.insert(small_vectors)
        cluster.merge_all()
        reference = PLSHIndex(
            small_vectors.n_cols, PARAMS, hasher=cluster.hasher
        )
        reference.build(small_vectors)
        for r in range(8):
            out = cluster.query(*queries.row(r))
            ref = reference.engine.query_row(queries, r)
            np.testing.assert_array_equal(
                np.sort(out.result.indices), np.sort(ref.indices)
            )

    def test_delete_across_nodes(self, small_vectors):
        cluster = make_cluster(small_vectors)
        gids = cluster.insert(small_vectors.slice_rows(0, 1000))
        assert cluster.delete(np.asarray([5, 700])) == 2
        cols, vals = small_vectors.row(5)
        out = cluster.query(cols.astype(np.int64), vals)
        assert 5 not in out.result.indices.tolist()


class TestStats:
    def test_load_imbalance(self):
        assert load_imbalance([1.0, 1.0, 1.0]) == 1.0
        assert load_imbalance([2.0, 1.0, 1.0]) == pytest.approx(1.5)
        assert load_imbalance([]) == 1.0

    def test_communication_fraction(self):
        assert communication_fraction(1.0, 99.0) == pytest.approx(0.01)
        assert communication_fraction(0.0, 0.0) == 0.0

    def test_network_accounting_on_queries(self, small_vectors, small_queries):
        _, queries = small_queries
        cluster = make_cluster(small_vectors)
        cluster.insert(small_vectors.slice_rows(0, 500))
        cluster.query_batch(queries.slice_rows(0, 5))
        assert cluster.network.stats.n_messages > 0
        assert cluster.network.stats.seconds > 0


class TestValidation:
    def test_bad_node_count(self, small_vectors):
        with pytest.raises(ValueError):
            make_cluster(small_vectors, n_nodes=0)

    def test_bad_window(self, small_vectors):
        with pytest.raises(ValueError):
            make_cluster(small_vectors, insert_window=9)
