"""Comparison baselines from the paper's evaluation.

* :mod:`repro.baselines.exhaustive` — linear-scan exact search (Table 2).
* :mod:`repro.baselines.inverted_index` — inverted-index candidate
  generation + distance filter (Table 2).
* :mod:`repro.baselines.basic_lsh` — a deliberately unoptimized LSH
  implementation (per-table dict buckets, set dedup, naive dots): the
  "no optimizations" rung of Figures 4 and 5.
"""

from repro.baselines.basic_lsh import BasicLSHIndex
from repro.baselines.exhaustive import ExhaustiveSearch
from repro.baselines.inverted_index import InvertedIndex

__all__ = ["BasicLSHIndex", "ExhaustiveSearch", "InvertedIndex"]
