"""StreamingPLSH batch queries: the vectorized static+delta path.

The node's ``query_batch`` hashes the batch once, shares the key matrix
between the static and delta structures, and screens deletions with one
vectorized bitvector test — it must agree exactly with the per-query loop,
including across a merge boundary (answers invariant to where rows sit).
"""

from __future__ import annotations

import numpy as np

from repro.params import PLSHParams
from repro.streaming.node import StreamingPLSH

PARAMS = PLSHParams(k=8, m=6, radius=0.9, seed=77)


def _assert_bit_identical(a_list, b_list):
    assert len(a_list) == len(b_list)
    for a, b in zip(a_list, b_list):
        np.testing.assert_array_equal(a.indices, b.indices)
        np.testing.assert_array_equal(a.distances, b.distances)


def test_batch_matches_loop_with_static_and_delta(small_vectors, small_queries):
    _, queries = small_queries
    node = StreamingPLSH(
        small_vectors.n_cols, PARAMS, capacity=4000, delta_fraction=0.9,
        auto_merge=False,
    )
    node.insert_batch(small_vectors.slice_rows(0, 1200))
    node.merge_now()
    node.insert_batch(small_vectors.slice_rows(1200, 2000))  # stays in delta
    assert node.n_static == 1200 and node.n_delta == 800

    _assert_bit_identical(
        node.query_batch(queries, mode="loop"),
        node.query_batch(queries, mode="vectorized"),
    )


def test_batch_spans_merge_boundary(small_vectors, small_queries):
    """A batch answered before and after a merge must be identical: local
    ids are stable under merge, so only the structure holding the rows
    changes, never the answer."""
    _, queries = small_queries
    node = StreamingPLSH(
        small_vectors.n_cols, PARAMS, capacity=4000, delta_fraction=0.9,
        auto_merge=False,
    )
    node.insert_batch(small_vectors.slice_rows(0, 1000))
    node.merge_now()
    node.insert_batch(small_vectors.slice_rows(1000, 2000))

    before = node.query_batch(queries)
    node.merge_now()  # delta rows fold into the static structure
    assert node.n_delta == 0 and node.n_static == 2000
    after = node.query_batch(queries)
    for a, b in zip(before, after):
        order_a, order_b = np.argsort(a.indices), np.argsort(b.indices)
        np.testing.assert_array_equal(a.indices[order_a], b.indices[order_b])
        np.testing.assert_allclose(
            a.distances[order_a], b.distances[order_b], rtol=1e-6, atol=1e-7
        )


def test_batch_respects_deletions(small_vectors, small_queries):
    _, queries = small_queries
    node = StreamingPLSH(
        small_vectors.n_cols, PARAMS, capacity=4000, delta_fraction=0.9,
        auto_merge=False,
    )
    node.insert_batch(small_vectors.slice_rows(0, 1000))
    node.merge_now()
    node.insert_batch(small_vectors.slice_rows(1000, 2000))
    # Tombstone rows on both sides of the static/delta split.
    deleted = np.concatenate(
        [np.arange(0, 1000, 7), np.arange(1000, 2000, 11)]
    )
    node.delete(deleted)

    results = node.query_batch(queries, mode="vectorized")
    _assert_bit_identical(node.query_batch(queries, mode="loop"), results)
    gone = set(deleted.tolist())
    for res in results:
        assert gone.isdisjoint(res.indices.tolist())


def test_empty_node_and_empty_batch(small_vectors, small_queries):
    _, queries = small_queries
    node = StreamingPLSH(small_vectors.n_cols, PARAMS, capacity=100)
    results = node.query_batch(queries)
    assert len(results) == queries.n_rows
    assert all(len(r) == 0 for r in results)
    assert node.query_batch(small_vectors.slice_rows(0, 0)) == []
