"""v1 (monolithic-static) archives load on the partitioned code (PR 10).

The fixtures under ``tests/data/`` were written by the **pre-partition**
persistence code (format version 1): ``legacy_v1_node.npz`` holds one
streaming node with a monolithic static tier, ``legacy_v1_cluster/`` a
3-shard cluster directory with one past window retirement.  The recipe
that produced them is replayed here against the current code, so every
assertion is against bits a real old deployment would hand us.

Contract: a v1 archive loads as a **single-partition** node (timestamps
zeroed, clock advanced past them) and answers unfiltered queries
bit-identically to a fresh current-code build of the same stream; the
partition lifecycle (time filters, ``retire_before``) works on the
loaded node from that point forward.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import PLSHCluster, PLSHParams, SyntheticCorpus
from repro.persistence import load_cluster, load_node
from repro.streaming.node import StreamingPLSH
from repro.text.corpus import CorpusSpec

LEGACY_NODE = "tests/data/legacy_v1_node.npz"
LEGACY_CLUSTER = "tests/data/legacy_v1_cluster"

SEED = 4242
PARAMS = PLSHParams(k=6, m=6, radius=0.9, delta=0.1, seed=SEED)


@pytest.fixture(scope="module")
def legacy_vectors():
    spec = CorpusSpec(vocab_size=2000, mean_doc_length=7.2)
    corpus = SyntheticCorpus.generate(500, spec, seed=SEED)
    return corpus.vectors()


def _fresh_node(vectors) -> StreamingPLSH:
    """The exact stream the v1 node fixture archived, replayed on the
    current (partitioned) code."""
    node = StreamingPLSH(
        vectors.n_cols, PARAMS, capacity=600,
        delta_fraction=0.25, auto_merge=False, overlap_merges=True,
    )
    node.insert_batch(vectors.slice_rows(0, 250))
    node.merge_now()
    node.insert_batch(vectors.slice_rows(250, 310))
    node.delete(np.asarray([3, 17, 255, 301]))
    return node


class TestLegacyNode:
    def test_loads_as_single_partition(self):
        node = load_node(LEGACY_NODE)
        try:
            assert node.n_partitions == 1
            assert node.n_static == 250
            assert node.n_static_resident == 250
            assert node.n_delta == 60
            assert node.n_total == 310
            assert node.deletions.n_deleted == 4
            # v1 predates timestamps: rows land at t=0, the clock just
            # past them, so the next insert is strictly newer.
            assert node.static.newest.t_min == 0
            assert node.static.newest.t_max == 0
            assert node.clock >= 1
        finally:
            node.close()

    def test_answers_bit_identical_to_fresh_build(self, legacy_vectors):
        loaded = load_node(LEGACY_NODE)
        fresh = _fresh_node(legacy_vectors)
        try:
            queries = legacy_vectors.slice_rows(0, 20)
            got = loaded.query_batch(queries)
            ref = fresh.query_batch(queries)
            for b, (x, y) in enumerate(zip(got, ref)):
                np.testing.assert_array_equal(
                    x.indices, y.indices,
                    err_msg=f"legacy-loaded node diverged on query {b}",
                )
                np.testing.assert_array_equal(
                    x.distances, y.distances,
                    err_msg=f"legacy-loaded node diverged on query {b}",
                )
        finally:
            loaded.close()
            fresh.close()

    def test_partition_lifecycle_works_from_v1_state(self, legacy_vectors):
        """Time filters and retirement engage on a loaded v1 archive."""
        node = load_node(LEGACY_NODE)
        try:
            q_cols, q_vals = legacy_vectors.row(0)
            q_cols = q_cols.astype(np.int64)
            # Everything in the archive lives at t=0 (static) or the
            # load-time clock (delta rows keep their v1-era stamp of 0).
            full = node.query(q_cols, q_vals)
            old = node.query(q_cols, q_vals, time_range=(0, 1))
            np.testing.assert_array_equal(full.indices, old.indices)
            future = node.query(q_cols, q_vals, time_range=(50, 60))
            assert future.indices.size == 0
            # New inserts are strictly newer than the archived rows, so a
            # cutoff at the load clock retires exactly the v1 corpus.
            clk = node.clock
            node.insert_batch(legacy_vectors.slice_rows(310, 320))
            retired = node.retire_before(clk)
            assert retired.size == 310
            # The 250-row static partition dropped outright; the 60 delta
            # rows are the ragged edge — tombstoned, still resident.
            assert node.n_total == 70
            assert node.n_live == 10
            got = node.query(q_cols, q_vals)
            assert got.indices.size == 0 or got.indices.min() >= 310
        finally:
            node.close()


class TestLegacyCluster:
    def _fresh_cluster(self, vectors) -> PLSHCluster:
        cluster = PLSHCluster(
            3, 120, vectors.n_cols, PARAMS,
            insert_window=2, delta_fraction=0.25,
        )
        cluster.insert(vectors.slice_rows(0, 400))
        cluster.delete(np.asarray([7, 31, 200]))
        return cluster

    def test_loads_with_derived_clock_and_exact_answers(
        self, legacy_vectors
    ):
        loaded = load_cluster(LEGACY_CLUSTER)
        fresh = self._fresh_cluster(legacy_vectors)
        try:
            assert loaded.n_items == 280
            assert loaded.n_retirements == 1
            # v1 manifests carry no cluster clock: it is rebuilt from the
            # shards' node clocks, monotone past every archived row.
            assert loaded.clock >= max(
                shard.plsh.clock for shard in loaded.shards
            )
            queries = legacy_vectors.slice_rows(0, 10)
            got = loaded.query_batch(queries)
            ref = fresh.query_batch(queries)
            for b, (x, y) in enumerate(zip(got, ref)):
                # The fresh cluster re-ran window retirement, so resident
                # ids match; distances are per-row float ops, identical.
                np.testing.assert_array_equal(
                    np.sort(x.result.indices), np.sort(y.result.indices),
                    err_msg=f"legacy-loaded cluster diverged on query {b}",
                )
        finally:
            loaded.close()
            fresh.close()

    def test_writes_and_retirement_continue_after_load(self, legacy_vectors):
        cluster = load_cluster(LEGACY_CLUSTER)
        try:
            clk = cluster.clock
            before = cluster.n_items
            cluster.insert(legacy_vectors.slice_rows(400, 420))
            assert cluster.n_items == before + 20
            # Cluster-wide cutoff at the pre-insert clock retires every
            # archived row but none of the fresh ones.
            retired = cluster.retire_before(clk)
            assert retired.size == before
            assert cluster.n_items == 20
            got = cluster.query_batch(legacy_vectors.slice_rows(400, 405))
            for outcome in got:
                ids = outcome.result.indices
                assert ids.size == 0 or ids.min() >= 400
        finally:
            cluster.close()
