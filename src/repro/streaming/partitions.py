"""Time-ranged static partitions behind the monolithic-static contract.

The static tier of a :class:`~repro.streaming.node.StreamingPLSH` used to
be one monolithic :class:`~repro.core.index.PLSHIndex`; retiring old rows
meant rebuilding the whole structure.  This module shards the static tier
into an ordered list of **time-ranged partitions** — each owns its local
tables, CSR slab, cached hash values and a sorted timestamp column — so:

* **retirement is a pointer drop**: :meth:`PartitionedStatic.drop_before`
  removes whole partitions whose newest row predates the cutoff in O(1)
  per partition (no table is rebuilt; the ragged boundary partition is
  tombstoned row-wise by the node), and
* **time-filtered queries prune**: a partition whose ``[t_min, t_max]``
  range does not overlap the query's half-open ``[t0, t1)`` window is
  skipped entirely (counted in :attr:`PartitionedStatic.n_pruned`), and
* **merges stay partition-scoped**: the frozen delta folds into the
  *newest* partition only, so merge cost tracks one partition instead of
  the whole corpus.

**Bit-identity contract.**  A full-range query over N partitions answers
bit-identically to the monolithic static over the same rows.  Why this
holds: the batch kernel's Q2 dedup (:func:`repro.core.candidates.
unique_segments`, and the pipelined kernel's equivalent) returns each
query's candidates *sorted ascending by local id*, and partitions occupy
disjoint ascending id ranges — so deduping per partition and
concatenating in base order yields exactly the monolith's deduped,
ascending candidate array (disjoint ranges mean no cross-partition
duplicates exist to collapse).  Q3 dots are computed per candidate row
from that row's CSR elements alone (same float64 widening, same
segmented reduce), so scoring rows partition-by-partition performs the
identical float ops per row.  Deletion and time screens apply before the
dots, exactly like the monolith's exclude mask.  The per-partition
deletion mask is the monolith mask's slice, and radius filtering is
per-candidate — every stage commutes with the partition split.

**Id space.**  Partition bases never shift: dropping a partition leaves a
*hole* in local-id space (``id_hi`` — the id-space high-water mark — is
unchanged), so local ids stay stable under retirement exactly as they are
stable under merge, and the cluster's append-only global-id map keeps
translating.  The newest partition always ends at ``id_hi``; frozen and
fresh delta rows address ``id_hi + f`` and ``id_hi + n_frozen + d``.
"""

from __future__ import annotations

import numpy as np

from repro.core.index import PLSHIndex
from repro.core.query import QueryResult
from repro.sparse.csr import CSRMatrix

__all__ = ["StaticPartition", "PartitionedStatic"]


def _empty_result() -> QueryResult:
    return QueryResult(
        np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float32)
    )


class StaticPartition:
    """One time-ranged slice of the static tier.

    ``index`` is a fully-built :class:`PLSHIndex` over the partition's own
    rows (local ids ``0..n_items`` inside the partition); ``base`` maps
    partition-local id ``i`` to node-local id ``base + i``.  ``timestamps``
    is the per-row insert-time column, non-decreasing (inserts are
    timestamp-ordered), so the partition's time range is just its first
    and last element and the ragged-retirement boundary is a
    ``searchsorted``.
    """

    __slots__ = ("index", "base", "timestamps", "seq")

    def __init__(
        self,
        index: PLSHIndex,
        base: int,
        timestamps: np.ndarray,
        seq: int,
    ) -> None:
        timestamps = np.ascontiguousarray(timestamps, dtype=np.int64)
        if timestamps.size != index.n_items:
            raise ValueError(
                f"{timestamps.size} timestamps for {index.n_items} rows"
            )
        if timestamps.size > 1 and np.any(np.diff(timestamps) < 0):
            raise ValueError("partition timestamps must be non-decreasing")
        self.index = index
        self.base = int(base)
        self.timestamps = timestamps
        self.seq = int(seq)

    @property
    def n_items(self) -> int:
        return self.index.n_items

    @property
    def t_min(self) -> int:
        """Oldest row's timestamp (undefined on an empty partition)."""
        return int(self.timestamps[0])

    @property
    def t_max(self) -> int:
        """Newest row's timestamp (undefined on an empty partition)."""
        return int(self.timestamps[-1])

    def overlaps(self, t0: int, t1: int) -> bool:
        """Whether any row's timestamp falls in half-open ``[t0, t1)``."""
        return (
            self.n_items > 0 and self.t_max >= t0 and self.t_min < t1
        )

    def manifest_row(self) -> dict:
        """Stable description (stats rows, persistence manifests)."""
        return {
            "seq": self.seq,
            "base": self.base,
            "n_items": self.n_items,
            "t_min": self.t_min if self.n_items else None,
            "t_max": self.t_max if self.n_items else None,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.n_items:
            rng = f"ts[{self.t_min}, {self.t_max}]"
        else:
            rng = "empty"
        return (
            f"StaticPartition(seq={self.seq}, base={self.base}, "
            f"n={self.n_items}, {rng})"
        )


class PartitionedStatic:
    """Ordered time-ranged partitions presenting the static-tier contract.

    The facade the streaming node queries and merges through.  Partitions
    are kept in ascending-``base`` order; the last one is the *open*
    (newest) partition — the only one merges fold into — and always ends
    at :attr:`id_hi`.  With a single partition and no drops the facade is
    the monolithic static, byte for byte (the compat properties
    ``tables`` / ``data`` / ``u_values`` delegate to it).
    """

    def __init__(
        self,
        dim: int,
        params,
        hasher,
        *,
        dedup: str = "bitvector",
        dots: str = "batched",
    ) -> None:
        self.dim = dim
        self.params = params
        self.hasher = hasher
        self._dedup = dedup
        self._dots = dots
        self.partitions: list[StaticPartition] = []
        self._next_seq = 0
        #: id-space high-water mark: static local ids live in ``[0, id_hi)``
        #: (with holes where partitions were dropped); bases never shift.
        self.id_hi = 0
        #: partition-probe counters (time-filtered pruning evidence).
        self.n_probed = 0
        self.n_pruned = 0
        self._open_partition()

    # -- construction / restore ---------------------------------------------

    def _new_index(self) -> PLSHIndex:
        index = PLSHIndex(
            self.dim,
            self.params,
            hasher=self.hasher,
            dedup=self._dedup,
            dots=self._dots,
        )
        return index.build(CSRMatrix.empty(self.dim))

    def _open_partition(self) -> StaticPartition:
        part = StaticPartition(
            self._new_index(),
            self.id_hi,
            np.empty(0, dtype=np.int64),
            self._next_seq,
        )
        self._next_seq += 1
        self.partitions.append(part)
        return part

    @classmethod
    def from_partitions(
        cls,
        dim: int,
        params,
        hasher,
        partitions: list[StaticPartition],
        *,
        id_hi: int | None = None,
        next_seq: int | None = None,
        dedup: str = "bitvector",
        dots: str = "batched",
    ) -> "PartitionedStatic":
        """Rebuild a facade from restored partitions (persistence path)."""
        self = cls.__new__(cls)
        self.dim = dim
        self.params = params
        self.hasher = hasher
        self._dedup = dedup
        self._dots = dots
        self.partitions = list(partitions)
        self.n_probed = 0
        self.n_pruned = 0
        if not self.partitions:
            self.id_hi = int(id_hi or 0)
            self._next_seq = int(next_seq or 0)
            self._open_partition()
            return self
        last = self.partitions[-1]
        end = last.base + last.n_items
        self.id_hi = int(id_hi) if id_hi is not None else end
        self._next_seq = (
            int(next_seq)
            if next_seq is not None
            else max(p.seq for p in self.partitions) + 1
        )
        if end != self.id_hi:
            raise ValueError(
                f"newest partition ends at {end}, id_hi is {self.id_hi}"
            )
        return self

    # -- sizes ---------------------------------------------------------------

    @property
    def n_items(self) -> int:
        """Id-space size ``id_hi`` — what the monolithic ``n_static`` was.

        Includes holes left by dropped partitions so local ids (and the
        frozen/fresh delta bases above them) never shift."""
        return self.id_hi

    @property
    def n_resident(self) -> int:
        """Rows actually held in partitions (excludes dropped holes)."""
        return sum(p.n_items for p in self.partitions)

    @property
    def n_partitions(self) -> int:
        return len(self.partitions)

    @property
    def newest(self) -> StaticPartition:
        return self.partitions[-1]

    @property
    def nbytes(self) -> int:
        return sum(
            p.index.nbytes + p.timestamps.nbytes for p in self.partitions
        )

    def manifest(self) -> list[dict]:
        return [p.manifest_row() for p in self.partitions]

    # -- monolith-compat views (single-partition facades only) ---------------

    def _sole(self) -> StaticPartition:
        if len(self.partitions) != 1:
            raise ValueError(
                "monolithic view unavailable: facade holds "
                f"{len(self.partitions)} partitions"
            )
        return self.partitions[0]

    @property
    def tables(self):
        return self._sole().index.tables

    @property
    def data(self):
        return self._sole().index.data

    @property
    def u_values(self):
        return self._sole().index.u_values

    @property
    def engine(self):
        """The newest partition's query engine (stats accounting hook; the
        exact monolithic engine when the facade holds one partition)."""
        return self.partitions[-1].index.engine

    @property
    def build_times(self):
        return self.partitions[-1].index.build_times

    def close(self) -> None:
        for p in self.partitions:
            if p.index.engine is not None:
                p.index.engine.close()

    # -- lifecycle: roll / commit / drop -------------------------------------

    def roll(self) -> StaticPartition:
        """Seal the newest partition and open an empty one at ``id_hi``.

        A no-op returning the already-open partition when the newest is
        still empty (rolling twice creates no degenerate partitions)."""
        if self.newest.n_items == 0:
            return self.newest
        return self._open_partition()

    def commit_newest(
        self, index: PLSHIndex, timestamps: np.ndarray
    ) -> PLSHIndex:
        """Swap a merged replacement into the newest partition.

        ``index`` holds the newest partition's rows followed by the merged
        frozen-delta rows; ``timestamps`` are the frozen rows' timestamps.
        Returns the replaced index (caller closes its engine).  The id
        space grows by the merged row count — exactly the ids the frozen
        rows already occupied above ``id_hi``.
        """
        newest = self.partitions[-1]
        timestamps = np.ascontiguousarray(timestamps, dtype=np.int64)
        added = index.n_items - newest.n_items
        if added != timestamps.size:
            raise ValueError(
                f"merged index adds {added} rows but {timestamps.size} "
                "timestamps were supplied"
            )
        merged_ts = (
            np.concatenate([newest.timestamps, timestamps])
            if newest.timestamps.size
            else timestamps
        )
        self.partitions[-1] = StaticPartition(
            index, newest.base, merged_ts, newest.seq
        )
        self.id_hi += added
        return newest.index

    def drop_before(
        self, cutoff: int, *, floor: int | None = None
    ) -> tuple[list[StaticPartition], np.ndarray]:
        """Drop partitions wholly older than ``cutoff``; find the ragged edge.

        Returns ``(dropped, ragged)``: the partitions removed from the
        list (an O(1) pointer drop each — no table is touched) and the
        node-local ids of *boundary-partition* rows with
        ``floor <= timestamp < cutoff`` (the caller tombstones those).
        ``floor`` excludes rows a previous ``retire_before`` already
        reported.  Keeps an open partition ending at ``id_hi`` so inserts
        and merges always have a target.
        """
        dropped: list[StaticPartition] = []
        kept: list[StaticPartition] = []
        ragged: list[np.ndarray] = []
        for p in self.partitions:
            if p.n_items == 0:
                kept.append(p)
                continue
            if p.t_max < cutoff:
                dropped.append(p)
                continue
            if p.t_min < cutoff:
                lo = (
                    int(np.searchsorted(p.timestamps, floor, side="left"))
                    if floor is not None
                    else 0
                )
                hi = int(np.searchsorted(p.timestamps, cutoff, side="left"))
                if hi > lo:
                    ragged.append(
                        np.arange(p.base + lo, p.base + hi, dtype=np.int64)
                    )
            kept.append(p)
        self.partitions = kept
        last_ends_at_hi = bool(self.partitions) and (
            self.partitions[-1].base + self.partitions[-1].n_items
            == self.id_hi
        )
        if not last_ends_at_hi:
            self._open_partition()
        out = (
            np.concatenate(ragged)
            if ragged
            else np.empty(0, dtype=np.int64)
        )
        return dropped, out

    def reset_window(self, *, absorb: int = 0) -> list[StaticPartition]:
        """Drop every partition (window retirement) without resetting ids.

        ``absorb`` extends the id space over delta rows the caller is
        clearing alongside, so the next insert continues after them and
        the cluster's append-only global-id map stays aligned.  A fresh
        open partition is created at the new ``id_hi``.
        """
        dropped = [p for p in self.partitions if p.n_items]
        self.partitions = []
        self.id_hi += int(absorb)
        self._open_partition()
        return dropped

    # -- queries --------------------------------------------------------------

    def _exclude_mask(self, part, deletions, time_range):
        """Partition-local exclude mask: deletions slice | time screen.

        Exactly the monolith's dense mask restricted to the partition's id
        range — an all-False mask and ``None`` screen identically, so the
        ``None`` fast path for no-deletions/no-filter is preserved."""
        excl = None
        if deletions is not None:
            excl = deletions.mask_range(part.base, part.base + part.n_items)
        if time_range is not None:
            t0, t1 = time_range
            ts = part.timestamps
            bad = (ts < t0) | (ts >= t1)
            if bad.any():
                excl = bad if excl is None else (excl | bad)
        return excl

    def count_scan(self, time_range=None) -> None:
        """Book one batch's probe/prune decisions without querying.

        The worker-sharded batch path probes private facade copies in
        forked children, so their counters are discarded; the parent
        calls this once per batch — the decision is identical in every
        shard — to keep ``n_probed``/``n_pruned`` real under
        parallelism (they feed the cluster ``stats`` rows)."""
        self._active(time_range)

    def _active(self, time_range, count=True):
        """Partitions a query must consult, counting probes and prunes
        (``count=False`` skips the tally — worker shards re-derive the
        same decision but the parent already booked it)."""
        active: list[StaticPartition] = []
        for p in self.partitions:
            if p.n_items == 0:
                continue
            if time_range is not None and not p.overlaps(*time_range):
                if count:
                    self.n_pruned += 1
                continue
            if count:
                self.n_probed += 1
            active.append(p)
        return active

    def query(
        self,
        q_cols: np.ndarray,
        q_vals: np.ndarray,
        *,
        radius: float,
        keys: np.ndarray | None = None,
        deletions=None,
        time_range: tuple[int, int] | None = None,
    ) -> QueryResult:
        """Single-query path: per-partition Q2-Q4 concatenated in base
        order (ascending ids — the monolith's candidate order)."""
        parts: list[tuple[int, QueryResult]] = []
        for p in self._active(time_range):
            excl = self._exclude_mask(p, deletions, time_range)
            res = p.index.engine.query(
                q_cols, q_vals, radius=radius, exclude=excl, keys=keys
            )
            parts.append((p.base, res))
        if not parts:
            return _empty_result()
        if len(parts) == 1 and parts[0][0] == 0:
            return parts[0][1]
        return QueryResult(
            np.concatenate(
                [r.indices + base if base else r.indices for base, r in parts]
            ),
            np.concatenate([r.distances for _, r in parts]),
        )

    def query_batch(
        self,
        queries: CSRMatrix,
        *,
        radius: float,
        keys: np.ndarray,
        mode: str = "vectorized",
        deletions=None,
        time_range: tuple[int, int] | None = None,
        engines: dict[int, object] | None = None,
    ) -> list[QueryResult]:
        """Batch path: each partition runs the batch kernel (vectorized or
        pipelined) over the shared key matrix; per-query segments are
        concatenated across partitions in base order.

        ``engines`` optionally substitutes private engine clones keyed by
        partition ``seq`` (worker threads/processes use this so scratch
        state is never shared)."""
        n = queries.n_rows
        parts: list[tuple[int, list[QueryResult]]] = []
        # Worker shards (identified by their private engine clones) must
        # not tally probes: the parent books the batch's decision once
        # (count_scan on the fork path, where child counters are
        # discarded; here on the thread path, where the facade is
        # shared), so counts match the serial run exactly.
        for p in self._active(time_range, count=engines is None):
            engine = (
                engines.get(p.seq)
                if engines is not None
                else p.index.engine
            )
            if engine is None:  # clone map misses an unseen partition
                engine = p.index.engine
            excl = self._exclude_mask(p, deletions, time_range)
            parts.append(
                (
                    p.base,
                    engine.query_batch(
                        queries,
                        radius=radius,
                        workers=1,
                        exclude=excl,
                        mode=mode,
                        keys=keys,
                    ),
                )
            )
        if not parts:
            empty = _empty_result()
            return [empty] * n
        if len(parts) == 1 and parts[0][0] == 0:
            return parts[0][1]
        out: list[QueryResult] = []
        for b in range(n):
            out.append(
                QueryResult(
                    np.concatenate(
                        [
                            r[b].indices + base if base else r[b].indices
                            for base, r in parts
                        ]
                    ),
                    np.concatenate([r[b].distances for _, r in parts]),
                )
            )
        return out

    def clone_engines(self) -> dict[int, object]:
        """Private engine clones per partition (worker-shard path)."""
        clones: dict[int, object] = {}
        for p in self.partitions:
            if p.n_items and p.index.engine is not None:
                clones[p.seq] = p.index.engine._clone()
        return clones
