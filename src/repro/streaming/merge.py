"""Merging delta tables into the static structure (Section 6.2).

"One way to perform the merge is simply to reinitialize the static LSH
structure, but with the streamed data added.  We can easily show that
although this is unoptimized, no merge algorithm can be more than 3x
better" — because initialization is bandwidth-bound and any merge must at
least read the old static tables and write the combined ones.

The implementation follows the paper exactly: concatenate the static rows
with the delta rows, concatenate their *cached* hash-function values (so no
re-hashing happens), and run the shared two-level table construction over
the union.  The merge is therefore partition-bound, the quantity the
paper's TI2/TI3 model prices.  Since the static tier became
time-partitioned (:mod:`repro.streaming.partitions`), ``static`` here is
the **newest partition's** index — older partitions are never read or
rebuilt, so merge cost tracks one partition instead of the whole corpus.

The work is split into two phases so the streaming node can overlap it
with query serving (Sections 4 & 6, Figure 11):

* :func:`prepare_merge` — the expensive phase.  A pure function of a
  *frozen* ``(static, delta)`` snapshot: it touches neither structure, so
  it can run on a background thread (or any executor) while queries keep
  being answered against ``static + frozen delta``.  Returns a
  :class:`PreparedMerge` holding the fully-built replacement index.
* commit — owned by the node (:meth:`StreamingPLSH.commit_merge`): a
  short critical section that swaps the prepared index in.  Nothing here
  needs replaying: deletions live in a bitvector keyed by node-local ids,
  which are *stable under merge*, so tombstones set mid-build apply to
  the new static the instant it lands.

:func:`merge_into_static` is the synchronous composition of the two and
remains the reference the overlapped path must match bit-for-bit.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.index import PLSHIndex
from repro.sparse.csr import CSRMatrix
from repro.streaming.delta import DeltaTable

__all__ = ["PreparedMerge", "merge_into_static", "prepare_merge"]


class PreparedMerge:
    """The result of the prepare phase, awaiting a commit swap.

    ``index`` is the fully-built replacement static structure (old static
    rows first, delta rows after, same local-id layout the synchronous
    merge produces); ``n_merged`` the number of delta rows folded in;
    ``build_seconds`` the wall-clock the build took *off* the query path
    (reported by the Figure 11 bench).
    """

    def __init__(
        self, index: PLSHIndex, n_merged: int, build_seconds: float
    ) -> None:
        self.index = index
        self.n_merged = n_merged
        self.build_seconds = build_seconds


def prepare_merge(static: PLSHIndex, delta: DeltaTable) -> PreparedMerge:
    """Build the merged replacement for ``static`` + ``delta`` (expensive).

    Reads both inputs but mutates neither — the caller must keep the
    snapshot frozen (no inserts into ``delta``) until the prepared index
    is committed or abandoned.  Delta rows receive local ids following the
    static rows: static row ids are stable across merges, delta-local id
    ``d`` becomes ``n_static + d`` — the mapping the streaming node relies
    on when translating to global ids.
    """
    if static.data is None or static.u_values is None:
        raise ValueError("static index must be built before merging")
    if delta.dim != static.dim:
        raise ValueError(
            f"dimension mismatch: delta {delta.dim} != static {static.dim}"
        )
    if len(delta) == 0:
        return PreparedMerge(static, 0, 0.0)

    start = time.perf_counter()
    combined_data = CSRMatrix.vstack([static.data, delta.vectors()])
    combined_u = np.concatenate([static.u_values, delta.u_values()], axis=0)
    merged = PLSHIndex(
        static.dim,
        static.params,
        hasher=static.hasher,
        dedup=static._dedup,
        dots=static._dots,
    )
    merged.build(combined_data, u_values=combined_u)
    return PreparedMerge(merged, len(delta), time.perf_counter() - start)


def merge_into_static(static: PLSHIndex, delta: DeltaTable) -> PLSHIndex:
    """Rebuild ``static`` to include everything in ``delta`` (synchronous).

    The blocking prepare+commit composition; kept as the reference path —
    the overlapped pipeline must return bit-identical query answers.
    """
    return prepare_merge(static, delta).index
