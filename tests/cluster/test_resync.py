"""Replica resync: rebuilding a lost replica from its surviving sibling.

PR 10 satellite: before this, a killed replica stayed evicted forever —
the shard ran un-replicated until operator intervention.  ``ReplicaGroup.
resync`` copies a surviving sibling's full state (``export_state`` →
``import_state``, every partition + delta + tombstones + global-id map)
into a replacement, un-evicts it, and from then on the rebuilt replica
answers **bit-identically** to its sibling.

Tested at two layers: in-process (real ``ClusterNode`` pairs, exact
state equality) and over real killed-and-respawned node processes
(``SpawnedLocalCluster.respawn_node`` + RPC state shipping).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import PLSHCluster, PLSHParams
from repro.cluster import spawn_local_cluster
from repro.cluster.node import ClusterNode
from repro.cluster.replication import ReplicaGroup, ShardUnavailableError
from repro.core.hashing import AllPairsHasher
from repro.parallel import fork_available

PARAMS = PLSHParams(k=6, m=4, radius=0.9, seed=42)
CAPACITY = 200


def _make_node(node_id: int, dim: int, hasher) -> ClusterNode:
    return ClusterNode(
        node_id, dim, PARAMS, CAPACITY, hasher, delta_fraction=0.25
    )


def _assert_nodes_identical(a: ClusterNode, b: ClusterNode, queries):
    for r in range(queries.n_rows):
        cols, vals = queries.row(r)
        x = a.query(cols.astype(np.int64), vals)
        y = b.query(cols.astype(np.int64), vals)
        np.testing.assert_array_equal(x.indices, y.indices)
        np.testing.assert_array_equal(x.distances, y.distances)


class TestInProcessResync:
    def _group(self, dim):
        hasher = AllPairsHasher(PARAMS, dim)
        group = ReplicaGroup(
            0, [_make_node(0, dim, hasher), _make_node(1, dim, hasher)]
        )
        return group, hasher

    def test_resync_rebuilds_bit_identical_state(
        self, small_vectors, small_queries
    ):
        dim = small_vectors.n_cols
        _, queries = small_queries
        group, hasher = self._group(dim)
        block = small_vectors.slice_rows(0, 150)
        group.insert_batch(block, np.arange(150), np.zeros(150, np.int64))
        group.merge_now()
        group.insert_batch(
            small_vectors.slice_rows(150, 180),
            np.arange(150, 180),
            np.ones(30, np.int64),
        )
        group.delete_global(np.asarray([5, 60, 170], dtype=np.int64))
        # Replica 1 "dies": evict it and stand up a blank replacement.
        group._evict(group.replicas[1], "killed")
        blank = _make_node(1, dim, hasher)
        group.resync(1, replacement=blank)
        assert 1 not in group.evicted
        probe = queries.slice_rows(0, 8)
        _assert_nodes_identical(group.replicas[0], group.replicas[1], probe)
        # State equality is deep: partitions, deltas, tombstones, id map.
        src, dst = group.replicas
        assert dst.n_items == src.n_items
        np.testing.assert_array_equal(dst._global_ids, src._global_ids)
        assert dst.plsh.n_partitions == src.plsh.n_partitions
        assert dst.plsh.clock == src.plsh.clock

    def test_resynced_replica_tracks_subsequent_writes(self, small_vectors):
        dim = small_vectors.n_cols
        group, hasher = self._group(dim)
        group.insert_batch(
            small_vectors.slice_rows(0, 100),
            np.arange(100),
            np.zeros(100, np.int64),
        )
        group._evict(group.replicas[0], "killed")
        group.resync(0, replacement=_make_node(0, dim, hasher))
        # Post-resync writes fan out to the rebuilt replica too.
        group.insert_batch(
            small_vectors.slice_rows(100, 140),
            np.arange(100, 140),
            np.ones(40, np.int64),
        )
        retired = group.retire_before(1)
        assert retired.size == 100
        assert group.replicas[0].n_items == group.replicas[1].n_items == 40

    def test_resync_with_no_surviving_sibling_raises(self, small_vectors):
        dim = small_vectors.n_cols
        group, hasher = self._group(dim)
        group._evict(group.replicas[0], "killed")
        group._evict(group.replicas[1], "killed")
        with pytest.raises(ShardUnavailableError, match="no surviving"):
            group.resync(0, replacement=_make_node(0, dim, hasher))

    def test_resync_index_out_of_range(self, small_vectors):
        group, _ = self._group(small_vectors.n_cols)
        with pytest.raises(IndexError):
            group.resync(7)


@pytest.mark.skipif(
    not fork_available(), reason="spawn_local_cluster requires fork()"
)
class TestSpawnedResync:
    """Kill a real node process, respawn it empty, resync over RPC."""

    def test_kill_respawn_resync_bit_identity(
        self, small_vectors, small_queries
    ):
        dim = small_vectors.n_cols
        _, queries = small_queries
        batch = queries.slice_rows(0, 10)
        shadow = PLSHCluster(2, CAPACITY, dim, PARAMS, insert_window=2)
        rpc = spawn_local_cluster(
            4, CAPACITY, dim, PARAMS,
            insert_window=2, replication=2, op_timeout=10.0,
        )
        try:
            for pos in range(0, 300, 100):
                block = small_vectors.slice_rows(pos, pos + 100)
                np.testing.assert_array_equal(
                    shadow.insert(block), rpc.insert(block)
                )
            expected = shadow.query_batch(batch)

            rpc.kill_node(0)  # replica 0 of shard 0
            # Writes after the kill land only on the survivor; the dead
            # replica is evicted on the first failed fan-write.
            block = small_vectors.slice_rows(300, 400)
            np.testing.assert_array_equal(
                shadow.insert(block), rpc.insert(block)
            )
            assert 0 in rpc.shards[0].evicted

            # Respawn an EMPTY process on a fresh port and resync it from
            # the surviving sibling over RPC.
            handle = rpc.respawn_node(0)
            assert handle.ping() == 0
            rpc.shards[0].resync(0, replacement=handle)
            assert 0 not in rpc.shards[0].evicted

            expected = shadow.query_batch(batch)
            got = rpc.query_batch(batch)
            assert len(got) == len(expected)
            for a, b in zip(expected, got):
                np.testing.assert_array_equal(
                    a.result.indices, b.result.indices
                )
                np.testing.assert_array_equal(
                    a.result.distances, b.result.distances
                )
                assert not b.degraded

            # The acid test: kill the SURVIVOR.  Only the resynced
            # replica can answer shard 0 now — bit-identically, including
            # the writes it missed while dead.
            rpc.kill_node(1)
            got = rpc.query_batch(batch)
            for a, b in zip(expected, got):
                np.testing.assert_array_equal(
                    a.result.indices, b.result.indices
                )
                np.testing.assert_array_equal(
                    a.result.distances, b.result.distances
                )
                assert not b.degraded
        finally:
            rpc.close()
            shadow.close()

    def test_remote_export_import_roundtrip(self, small_vectors):
        """The RPC state-shipping ops themselves: export from one live
        node, import into another, exact n_items and stats agreement."""
        rpc = spawn_local_cluster(
            2, CAPACITY, small_vectors.n_cols, PARAMS,
            insert_window=1, replication=2, op_timeout=10.0,
        )
        try:
            rpc.insert(small_vectors.slice_rows(0, 120))
            rpc.delete(np.asarray([3, 40], dtype=np.int64))
            src, dst = rpc.nodes[0], rpc.nodes[1]
            payload = src.export_state()
            assert all(isinstance(v, np.ndarray) for v in payload.values())
            dst.import_state(payload)
            assert dst.n_items == src.n_items
            s, d = src.stats(), dst.stats()
            for key in (
                "n_items", "n_static", "n_partitions", "n_delta", "n_deleted"
            ):
                assert s[key] == d[key], (key, s[key], d[key])
        finally:
            rpc.close()
