"""Figure 10 — latency vs throughput for batched query processing.

Paper: sweeping the batch size from 10 to 1000 queries, throughput rises
then saturates around 700 queries/second once ~30 queries are processed
together; latency keeps growing linearly with batch size past that point.

This bench sweeps the batch size and measures BOTH batch execution modes:

* ``mode="loop"``       — the per-query pipeline (the ablation baseline),
  whose batch throughput is dominated by interpreter/numpy-dispatch
  overhead.
* ``mode="vectorized"`` — the batch kernel: Q1-Q4 over the whole block in a
  constant number of numpy calls, so fixed costs amortize across the batch
  exactly like the paper's query-block processing.

Workload: a dedicated per-node shard of ``PLSH_BENCH_FIG10_N`` documents
(default 20,000) queried with ``PLSH_BENCH_FIG10_QUERIES`` queries
(default 1,000 — the paper's batch ceiling).  This is the regime Figure 10
studies — a memory-resident node shard answering large query blocks, where
per-query fixed costs are the battle — and it is where the loop-vs-
vectorized comparison is meaningful; larger shards shift time toward the
shared memory-bound gathers and compress the gap (measured 2026-07-29 on a
single-vCPU host: ~3.7-5.4x at 10k-20k docs, ~3.1-4.4x at 30k, ~1.7-2.4x
at 100k).

Shape to check: vectorized throughput grows with batch size then flattens
(saturation, not collapse); latency grows ~linearly; the loop-vs-vectorized
speedup at paper-sized batches is the headline number printed below the
table.
"""

from __future__ import annotations

import os
import time

from repro import PLSHIndex
from repro.bench.reporting import format_table, print_section
from repro.bench.runner import measure_median
from repro.bench.workloads import BenchScale, twitter_workload
from repro.parallel import fork_available


def test_fig10_latency_throughput(benchmark, scale):
    n_docs = int(os.environ.get("PLSH_BENCH_FIG10_N", "20000"))
    n_q = int(os.environ.get("PLSH_BENCH_FIG10_QUERIES", "1000"))
    fig10_scale = BenchScale(
        n=n_docs, vocab=scale.vocab, n_queries=scale.n_queries,
        k=scale.k, m=scale.m,
    )
    workload = twitter_workload(fig10_scale)
    index = PLSHIndex(workload.vectors.n_cols, fig10_scale.params())
    index.build(workload.vectors)
    engine = index.engine
    assert engine is not None
    ids = workload.corpus.sample_query_ids(n_q, seed=101)
    queries = workload.vectors.gather_rows(ids)
    batch_sizes = [b for b in (10, 20, 30, 50, 100, 200, 500, 1000)
                   if b <= queries.n_rows]

    rows = []
    for batch in batch_sizes:
        qs = queries.slice_rows(0, batch)
        loop_s = measure_median(
            lambda q=qs: engine.query_batch(q, mode="loop"),
            repeats=3,
            warmup=1,
        )
        vec_s = measure_median(
            lambda q=qs: engine.query_batch(q, mode="vectorized"),
            repeats=3,
            warmup=1,
        )
        rows.append(
            [batch, loop_s * 1e3, vec_s * 1e3, loop_s / vec_s, batch / vec_s]
        )

    benchmark.pedantic(
        lambda: engine.query_batch(
            queries.slice_rows(0, batch_sizes[-1]), mode="vectorized"
        ),
        rounds=2,
        iterations=1,
    )

    # Workers sweep at the paper-sized batch: the vectorized kernel
    # sharded over the persistent pool (repro.parallel), reporting the
    # warm per-batch time and the amortized one-off pool setup.
    big = queries.slice_rows(0, batch_sizes[-1])
    pool_backend = "fork_pool" if fork_available() else "thread"
    n_cpu = os.cpu_count() or 1
    worker_rows = []
    serial_big_s = measure_median(
        lambda: engine.query_batch(big, mode="vectorized", workers=1),
        repeats=3,
        warmup=1,
    )
    for w in [c for c in (1, 2, 4, 8, 16) if c <= max(n_cpu, 2)]:
        if w == 1:
            cold_s = warm_s = serial_big_s
        else:
            start = time.perf_counter()
            engine.query_batch(
                big, mode="vectorized", workers=w, backend=pool_backend
            )
            cold_s = time.perf_counter() - start  # pays pool creation
            warm_s = measure_median(
                lambda ww=w: engine.query_batch(
                    big, mode="vectorized", workers=ww, backend=pool_backend
                ),
                repeats=3,
                warmup=0,
            )
        worker_rows.append(
            [
                w,
                warm_s * 1e3,
                serial_big_s / warm_s,
                (cold_s - warm_s) * 1e3,
                big.n_rows / warm_s,
            ]
        )
    engine.close()

    speedup = rows[-1][3]
    paper_sized = [r for r in rows if r[0] >= 100]
    best = max(paper_sized, key=lambda r: r[3]) if paper_sized else rows[-1]
    print_section(
        f"Figure 10 — latency vs throughput (N={workload.n:,}, "
        f"{queries.n_rows} queries)",
        format_table(
            ["batch size", "loop ms", "vectorized ms", "speedup",
             "vec throughput q/s"],
            rows,
        )
        + f"\nvectorized batch kernel speedup at batch={batch_sizes[-1]}: "
        f"{speedup:.1f}x over mode='loop' "
        f"(best paper-sized operating point: {best[3]:.1f}x at "
        f"batch={best[0]})"
        + "\npaper: throughput saturates ~700 q/s at batch ~30, latency grows"
        + f"\n\nworkers sweep at batch={big.n_rows} (vectorized kernel "
        f"sharded over the persistent {pool_backend}; host has {n_cpu} "
        f"cpus):\n"
        + format_table(
            ["workers", "warm ms", "spd vs w=1", "pool setup ms",
             "throughput q/s"],
            worker_rows,
        )
        + "\n'pool setup ms' is the one-off cost the first batch pays "
        "(fork of the parent); warm batches ride the persistent pool",
    )

    # Shape: vectorized throughput at the largest batch must be at least
    # that of the smallest batch (saturation, not collapse), and latency
    # must increase with batch size overall.
    assert rows[-1][4] >= rows[0][4] * 0.8
    assert rows[-1][2] > rows[0][2]
    # The batch kernel is the point of this reproduction rung: on the
    # default workload (>= 10k docs, >= 1k queries) it must beat the
    # per-query loop by at least 3x at some paper-sized batch (>= 100
    # queries; measured 3.2-4.2x across batch sizes on an idle 1-vCPU
    # host, asserted at the best operating point so a noisy host's worst
    # row doesn't flake the guard).  Tiny smoke scales (CI) only exercise
    # the mechanics, so the bar applies in the Figure 10 regime only.
    if n_docs >= 10_000 and batch_sizes[-1] >= 500:
        assert best[3] >= 3.0, (
            f"vectorized batch kernel only {best[3]:.2f}x over loop at its "
            f"best paper-sized batch (batch={best[0]})"
        )
