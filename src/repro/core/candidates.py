"""Duplicate elimination strategies for Step Q2 (Section 5.2.1).

The paper weighs three designs and picks the histogram/bitvector:

1. sort-and-scan               — O(Q log Q)
2. a tree set (C++ ``std::set``) — O(Q log Q), pointer-chasing
3. histogram over data indexes — O(Q), realized as a bitvector

All three are implemented so the Figure 5 ablation and equivalence property
tests can run.  The bitvector backend keeps a persistent mask per engine and
clears only the touched positions after each query, so per-query cost stays
O(collisions) rather than O(N).
"""

from __future__ import annotations

import numpy as np

from repro.utils.bitvector import DedupMask

__all__ = ["Deduplicator", "SetDeduplicator", "SortDeduplicator", "BitvectorDeduplicator", "make_deduplicator"]


class Deduplicator:
    """Interface: return unique data indexes from a collision list."""

    def unique(self, collisions: np.ndarray) -> np.ndarray:
        raise NotImplementedError


class SetDeduplicator(Deduplicator):
    """Python-set dedup: the paper's unoptimized STL-set baseline."""

    def unique(self, collisions: np.ndarray) -> np.ndarray:
        seen: set[int] = set()
        out: list[int] = []
        for idx in collisions.tolist():
            if idx not in seen:
                seen.add(idx)
                out.append(idx)
        return np.asarray(sorted(out), dtype=np.int64)


class SortDeduplicator(Deduplicator):
    """Sort-based dedup (design (1) in Section 5.2.1)."""

    def unique(self, collisions: np.ndarray) -> np.ndarray:
        return np.unique(collisions).astype(np.int64)


class BitvectorDeduplicator(Deduplicator):
    """Histogram/bitvector dedup (design (3); the production path).

    Marks collision indexes in a boolean mask, scans the touched range for
    set positions (the paper's "scan the bitvector and store the non-zero
    items into a separate array" — which also yields the sorted order that
    the prefetch-friendly gather wants), then resets only the touched bits.
    """

    def __init__(self, n_items: int) -> None:
        self._mask = DedupMask(n_items)

    def unique(self, collisions: np.ndarray) -> np.ndarray:
        if collisions.size == 0:
            return np.empty(0, dtype=np.int64)
        self._mask.set(collisions)
        unique = self._mask.scan()  # full-vector scan, as in the paper
        self._mask.clear(unique)
        return unique


def make_deduplicator(strategy: str, n_items: int) -> Deduplicator:
    """Factory over the three Section 5.2.1 designs."""
    if strategy == "set":
        return SetDeduplicator()
    if strategy == "sort":
        return SortDeduplicator()
    if strategy == "bitvector":
        return BitvectorDeduplicator(n_items)
    raise ValueError(
        f"unknown dedup strategy {strategy!r}; expected 'set', 'sort' or 'bitvector'"
    )
