"""Partitioning tests: primitives, strategy equivalence, the paper's
worked example (Table 1 / Figure 2)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.partition import (
    BUILD_STRATEGIES,
    bucket_offsets,
    build_tables_one_level,
    build_tables_shared,
    build_tables_two_level,
    partition_reference,
    partition_stable,
)


class TestPrimitives:
    def test_bucket_offsets_simple(self):
        keys = np.asarray([2, 0, 2, 1, 2])
        np.testing.assert_array_equal(bucket_offsets(keys, 4), [0, 1, 2, 5, 5])

    def test_bucket_offsets_empty(self):
        np.testing.assert_array_equal(
            bucket_offsets(np.empty(0, dtype=np.int64), 3), [0, 0, 0, 0]
        )

    def test_bucket_offsets_out_of_range(self):
        with pytest.raises(ValueError):
            bucket_offsets(np.asarray([5]), 4)

    def test_partition_stable_groups_and_is_stable(self):
        keys = np.asarray([1, 0, 1, 0, 1])
        order, offsets = partition_stable(keys, 2)
        np.testing.assert_array_equal(order, [1, 3, 0, 2, 4])
        np.testing.assert_array_equal(offsets, [0, 2, 5])

    def test_reference_matches_stable_simple(self):
        keys = np.asarray([3, 1, 3, 0, 1, 1])
        o1, f1 = partition_stable(keys, 4)
        o2, f2 = partition_reference(keys, 4)
        np.testing.assert_array_equal(o1, o2)
        np.testing.assert_array_equal(f1, f2)

    @settings(max_examples=60, deadline=None)
    @given(
        keys=st.lists(st.integers(0, 15), max_size=100),
    )
    def test_reference_matches_stable_property(self, keys):
        arr = np.asarray(keys, dtype=np.uint16)
        o1, f1 = partition_stable(arr, 16)
        o2, f2 = partition_reference(arr, 16)
        np.testing.assert_array_equal(o1, o2)
        np.testing.assert_array_equal(f1, f2)

    @settings(max_examples=40, deadline=None)
    @given(keys=st.lists(st.integers(0, 31), min_size=1, max_size=120))
    def test_partition_invariants_property(self, keys):
        """Order is a permutation; each bucket slice holds exactly its key."""
        arr = np.asarray(keys, dtype=np.uint16)
        order, offsets = partition_stable(arr, 32)
        assert sorted(order.tolist()) == list(range(len(keys)))
        for b in range(32):
            segment = arr[order[offsets[b] : offsets[b + 1]]]
            assert (segment == b).all()


# Table 1 of the paper: k=4, m=4, L=6; 2-bit hashes of ten points t1..t10.
PAPER_U = np.asarray(
    [
        # u1  u2  u3  u4
        [0b10, 0b11, 0b11, 0b00],  # t1
        [0b00, 0b00, 0b10, 0b00],  # t2
        [0b00, 0b11, 0b01, 0b11],  # t3
        [0b10, 0b11, 0b11, 0b10],  # t4
        [0b11, 0b11, 0b10, 0b00],  # t5
        [0b11, 0b10, 0b10, 0b10],  # t6
        [0b10, 0b10, 0b10, 0b01],  # t7
        [0b10, 0b11, 0b00, 0b00],  # t8
        [0b10, 0b01, 0b11, 0b01],  # t9
        [0b00, 0b10, 0b01, 0b10],  # t10
    ],
    dtype=np.uint16,
)


class TestPaperWorkedExample:
    """Figure 2's shared first-level partition example, verified exactly."""

    def test_level1_partition_by_u1(self):
        order, offsets = partition_stable(PAPER_U[:, 0], 4)
        # Figure 2: bucket 00 = {t2, t3, t10}, 10 = {t1, t4, t7, t8, t9},
        # 11 = {t5, t6}; zero-based ids, stable (arrival) order.
        np.testing.assert_array_equal(order[offsets[0] : offsets[1]], [1, 2, 9])
        assert offsets[1] == offsets[2]  # bucket 01 empty
        np.testing.assert_array_equal(
            order[offsets[2] : offsets[3]], [0, 3, 6, 7, 8]
        )
        np.testing.assert_array_equal(order[offsets[3] : offsets[4]], [4, 5])

    def test_hash_table_u1_u2(self):
        entries, offsets = build_tables_shared(PAPER_U, 4)
        table_u1_u2 = entries[0]  # pair (0, 1) is table 0
        # Within u1-bucket 00: t2 (u2=00), t10 (u2=10), t3 (u2=11);
        # within u1-bucket 10: t9 (01), t7 (10), then t1, t4, t8 (11);
        # within u1-bucket 11: t6 (10), t5 (11).
        np.testing.assert_array_equal(
            table_u1_u2, [1, 9, 2, 8, 6, 0, 3, 7, 5, 4]
        )

    def test_six_tables_generated(self):
        entries, offsets = build_tables_shared(PAPER_U, 4)
        assert entries.shape == (6, 10)
        assert offsets.shape == (6, 17)

    def test_bucket_membership_table_u1_u3(self):
        entries, offsets = build_tables_shared(PAPER_U, 4)
        l = 1  # pair (0, 2) = (u1, u3)
        # t1 has u1=10, u3=11 -> key 0b1011 = 11.
        key = 0b1011
        bucket = entries[l, offsets[l, key] : offsets[l, key + 1]]
        assert set(bucket.tolist()) == {0, 3, 8}  # t1, t4, t9 share (10, 11)


class TestStrategyEquivalence:
    @pytest.mark.parametrize("strategy", sorted(BUILD_STRATEGIES))
    def test_matches_one_level_on_paper_example(self, strategy):
        expected_entries, expected_offsets = build_tables_one_level(PAPER_U, 4)
        entries, offsets = BUILD_STRATEGIES[strategy](PAPER_U, 4)
        np.testing.assert_array_equal(entries, expected_entries)
        np.testing.assert_array_equal(offsets, expected_offsets)

    @pytest.mark.parametrize("strategy", sorted(BUILD_STRATEGIES))
    def test_vectorized_matches_reference_kernel(self, strategy):
        build = BUILD_STRATEGIES[strategy]
        fast = build(PAPER_U, 4, vectorized=True)
        slow = build(PAPER_U, 4, vectorized=False)
        np.testing.assert_array_equal(fast[0], slow[0])
        np.testing.assert_array_equal(fast[1], slow[1])

    @settings(max_examples=20, deadline=None)
    @given(data=st.data())
    def test_all_strategies_agree_property(self, data):
        n = data.draw(st.integers(1, 40))
        m = data.draw(st.integers(2, 5))
        k = data.draw(st.sampled_from([2, 4, 6]))
        rng = np.random.default_rng(data.draw(st.integers(0, 2**16)))
        u = rng.integers(0, 1 << (k // 2), size=(n, m)).astype(np.uint16)
        results = {
            name: BUILD_STRATEGIES[name](u, k) for name in BUILD_STRATEGIES
        }
        base_entries, base_offsets = results["one_level"]
        for name, (entries, offsets) in results.items():
            np.testing.assert_array_equal(entries, base_entries, err_msg=name)
            np.testing.assert_array_equal(offsets, base_offsets, err_msg=name)

    def test_empty_input(self):
        u = np.empty((0, 3), dtype=np.uint16)
        for name, build in BUILD_STRATEGIES.items():
            entries, offsets = build(u, 4)
            assert entries.shape == (3, 0), name
            assert (offsets == 0).all(), name
