#!/usr/bin/env python
"""First-story detection as a *serving* workload: clients + gateway + cluster.

The application that motivated streaming LSH over Twitter (Petrovic et al.,
cited as [28] in the paper): as each tweet arrives, find its nearest
neighbor among everything seen so far; a tweet with *no* close neighbor is
a "first story" — the start of a new topic.

Earlier revisions of this example drove a single in-process
``StreamingPLSH`` node.  This one runs the full serving stack the paper
describes — a multi-node cluster behind the async gateway
(:mod:`repro.serve`) — and plays the *client*: each arrival window's
novelty queries are issued concurrently over many gateway connections,
exactly the traffic shape the gateway coalesces into batch-kernel blocks.
Detection results are identical to the sequential version, because every
query in a window runs against the same indexed prefix; the not-yet-
inserted tail is handled client-side (see below).

Run:  python examples/first_story_detection.py
"""

from __future__ import annotations

import asyncio

import numpy as np

from repro import IDFVectorizer, PLSHParams
from repro.cluster.cluster import PLSHCluster
from repro.serve import AsyncGatewayClient, Gateway
from repro.text.corpus import CorpusSpec, SyntheticCorpus
from repro.utils.rng import rng_for

VOCAB = 20_000
N_BACKGROUND = 6_000
N_EVENTS = 8
BURST = 40
NOVELTY_RADIUS = 0.85  # no neighbor within this angle -> first story
SEED = 23
N_NODES = 2
BATCH = 500  # arrival window: queried concurrently, then inserted
N_CONNECTIONS = 16  # concurrent gateway connections the "clients" use


def build_stream():
    """Background chatter with planted event bursts; returns (docs, labels).

    labels[i] is the event id if doc i starts or continues an event burst,
    with the burst's first document marked as the ground-truth first story.
    """
    rng = rng_for(SEED, "fsd-stream")
    background = SyntheticCorpus.generate(
        N_BACKGROUND,
        CorpusSpec(vocab_size=VOCAB, near_duplicate_fraction=0.0),
        seed=SEED,
    ).documents

    docs: list[np.ndarray] = []
    first_story_positions: list[int] = []
    bg_pos = 0
    for event in range(N_EVENTS):
        # Some background chatter before each event.
        take = int(rng.integers(N_BACKGROUND // (2 * N_EVENTS),
                                N_BACKGROUND // N_EVENTS))
        docs.extend(background[bg_pos : bg_pos + take])
        bg_pos += take
        # The event: a fresh template of rare-ish words, then mutations.
        template = rng.integers(VOCAB // 10, VOCAB, size=9)
        first_story_positions.append(len(docs))
        docs.append(np.unique(template))
        for _ in range(BURST - 1):
            keep = rng.random(template.size) < 0.85
            mutated = template[keep]
            extra = rng.integers(VOCAB // 10, VOCAB, size=int(rng.poisson(1)))
            docs.append(np.unique(np.concatenate([mutated, extra])))
    docs.extend(background[bg_pos:])
    return docs, set(first_story_positions)


def query_window(host: str, port: int, items) -> dict[int, int]:
    """Issue one window's queries concurrently over N gateway connections.

    ``items`` is ``[(position, cols, vals), ...]``; returns position →
    match count.  Each connection runs its share closed-loop; the window's
    concurrency is what the gateway coalesces into batches.
    """

    async def worker(client, share, out):
        for pos, cols, vals in share:
            answer = await client.query(cols, vals)
            out[pos] = len(answer)

    async def main():
        n_conns = min(N_CONNECTIONS, max(len(items), 1))
        clients = [
            await AsyncGatewayClient().connect(host, port)
            for _ in range(n_conns)
        ]
        out: dict[int, int] = {}
        try:
            await asyncio.gather(
                *[
                    worker(clients[c], items[c::n_conns], out)
                    for c in range(n_conns)
                ]
            )
        finally:
            for client in clients:
                await client.close()
        return out

    return asyncio.run(main())


def main() -> None:
    docs, truth = build_stream()
    vectorizer = IDFVectorizer(VOCAB).fit(docs)
    vectors = vectorizer.transform(docs)
    params = PLSHParams(k=16, m=24, radius=NOVELTY_RADIUS, seed=SEED)
    cluster = PLSHCluster(
        N_NODES, -(-len(docs) // N_NODES), VOCAB, params,
        insert_window=N_NODES, delta_fraction=0.05,
    )
    gateway = Gateway(cluster, VOCAB).start()
    print(
        f"cluster: {N_NODES} nodes; gateway on "
        f"{gateway.host}:{gateway.port}\n"
        f"streaming {len(docs):,} tweets ({N_EVENTS} planted events, "
        f"burst={BURST}) ...\n"
    )

    # Inserts are batched (the paper buffers ~100k tweets per insert, and
    # notes the resulting ~86 s visibility lag).  A first-story detector
    # cannot tolerate that lag — a burst fits inside one batch — so, as in
    # practice, novelty is checked against PLSH *plus* a client-side
    # linear scan of the small not-yet-inserted tail.  The tail scan is
    # sequential in arrival order; the PLSH queries of a window all see
    # the same indexed prefix, which is what makes issuing them
    # concurrently through the gateway result-identical to one at a time.
    flagged: list[int] = []
    pending: list[dict[int, float]] = []

    def near_pending(cols: np.ndarray, vals: np.ndarray) -> bool:
        q = dict(zip(cols.tolist(), vals.tolist()))
        threshold = float(np.cos(NOVELTY_RADIUS))
        for row in pending:
            dot = sum(v * row.get(c, 0.0) for c, v in q.items())
            if dot >= threshold:
                return True
        return False

    try:
        for batch_start in range(0, len(docs), BATCH):
            batch_end = min(batch_start + BATCH, len(docs))
            items = []
            for pos in range(batch_start, batch_end):
                cols, vals = vectors.row(pos)
                if cols.size:
                    items.append((pos, cols, vals))
            # Concurrent novelty queries against the indexed prefix...
            matches = query_window(gateway.host, gateway.port, items)
            # ... then the sequential pass over the window's own tail.
            for pos, cols, vals in items:
                if matches[pos] == 0 and not near_pending(cols, vals):
                    flagged.append(pos)
                pending.append(dict(zip(cols.tolist(), vals.tolist())))
            cluster.insert(vectors.slice_rows(batch_start, batch_end))
            pending.clear()
        stats = gateway.stats()
    finally:
        gateway.close()
        cluster.close()

    hits = [p for p in flagged if p in truth]
    print(f"flagged {len(flagged)} first-story candidates")
    print(
        f"event detection: {len(hits)}/{len(truth)} planted first stories "
        f"flagged"
    )
    # Background docs are random token sets, so many are genuinely novel —
    # what matters is that burst *followers* are NOT flagged:
    followers = [
        p for p in flagged
        if any(f < p < f + BURST for f in truth) and p not in truth
    ]
    print(f"burst follow-ups wrongly flagged as novel: {len(followers)}")
    batcher = stats["batcher"]
    print(
        f"gateway: {stats['answered']:,} queries answered in "
        f"{batcher['n_batches']:,} coalesced batches "
        f"(mean batch {batcher['mean_batch_size']:.1f}, "
        f"max {batcher['batch_size_max']})"
    )

    assert len(hits) == len(truth), "every planted first story must be flagged"
    # LSH is probabilistic: early burst followers have only 1-2 prior
    # neighbors, each found with probability P'(t,k,m) < 1, so a small
    # fraction of followers is inevitably (and acceptably) re-flagged.
    total_followers = N_EVENTS * (BURST - 1)
    assert len(followers) <= 0.15 * total_followers, (
        f"{len(followers)}/{total_followers} followers flagged; expected "
        "only the LSH-miss tail"
    )
    assert batcher["mean_batch_size"] > 1.0, "coalescing never engaged"
    print("\nfirst-story detection behaved as expected.")


if __name__ == "__main__":
    main()
