#!/usr/bin/env python
"""Distributed PLSH: an 8-node cluster with a rolling insert window.

Reproduces the system of Figure 1 in miniature: data streams into a rolling
window of M = 2 insert nodes; full windows advance; once every node is at
capacity, the window wraps around and the *oldest* two nodes are retired
wholesale to make room (the paper's timestamp-free expiration).  Queries
are broadcast to every node by the coordinator and the partial answers are
concatenated; the network model accounts for every message so the
communication share of runtime can be reported (paper: < 1 %).

Run:  python examples/distributed_search.py
"""

from __future__ import annotations

import numpy as np

from repro import PLSHParams, SyntheticCorpus
from repro.cluster.cluster import PLSHCluster
from repro.cluster.stats import aggregate_node_seconds, load_imbalance

N_NODES = 8
NODE_CAPACITY = 4_000
INSERT_WINDOW = 2
SEED = 31


def main() -> None:
    # Generate 1.5x the cluster capacity so retirement kicks in.
    total = int(N_NODES * NODE_CAPACITY * 1.5)
    corpus = SyntheticCorpus.generate(total, seed=SEED)
    vectors = corpus.vectors()
    params = PLSHParams(k=16, m=16, radius=0.9, seed=SEED)

    cluster = PLSHCluster(
        n_nodes=N_NODES,
        node_capacity=NODE_CAPACITY,
        dim=corpus.vocab_size,
        params=params,
        insert_window=INSERT_WINDOW,
    )
    print(
        f"cluster: {N_NODES} nodes x {NODE_CAPACITY:,} docs, "
        f"insert window M={INSERT_WINDOW}"
    )

    # Stream the data in; watch the window march and retirement fire.
    BATCH = 2_000
    for start in range(0, total, BATCH):
        cluster.insert(vectors.slice_rows(start, min(start + BATCH, total)))
    occupancy = " ".join(f"{n.n_items // 1000:>2}k" for n in cluster.nodes)
    print(f"after streaming {total:,} docs:")
    print(f"  node occupancy: [{occupancy}]")
    print(
        f"  retirements: {cluster.n_retirements} "
        f"(oldest window erased wholesale; "
        f"{sum(len(r) for r in cluster.retired_ids):,} docs expired)"
    )
    cluster.merge_all()

    # Broadcast queries (one warmup pass so first-touch page faults and
    # allocator warmup don't masquerade as load imbalance).
    _, queries = corpus.query_vectors(20, seed=SEED + 1)
    cluster.query_batch(queries.slice_rows(0, 5))
    outcomes = cluster.query_batch(queries)
    n_results = [len(o.result) for o in outcomes]
    print(
        f"\nbroadcast {queries.n_rows} queries: "
        f"mean {np.mean(n_results):.1f} neighbors/query"
    )

    per_node = aggregate_node_seconds(outcomes)
    imbalance = load_imbalance(list(per_node.values()))
    net_s = sum(o.network_seconds for o in outcomes)
    crit_s = sum(o.critical_path_seconds for o in outcomes)
    print(f"  load imbalance (max/avg node time): {imbalance:.2f}  (paper: <=1.3)")
    print(
        f"  modeled communication: {net_s * 1e3:.2f} ms of "
        f"{crit_s * 1e3:.1f} ms critical path "
        f"({net_s / crit_s:.2%}; paper: <1%)"
    )
    print(
        f"  network traffic: {cluster.network.stats.n_messages:,} messages, "
        f"{cluster.network.stats.bytes_sent / 1e6:.2f} MB"
    )

    # Retired (oldest) documents must be gone from query results.
    retired = set(int(g) for block in cluster.retired_ids for g in block)
    leaked = sum(
        len(set(o.result.indices.tolist()) & retired) for o in outcomes
    )
    print(f"  retired docs appearing in answers: {leaked} (must be 0)")
    assert leaked == 0


if __name__ == "__main__":
    main()
