"""Angular distance and candidate filtering kernels (Steps Q3/Q4).

The corpus rows are unit vectors, so the angular distance between query
``q`` and data item ``v`` is ``t = acos(q . v)``; Step Q3 computes the dot
products, Step Q4 keeps items with ``t <= R``.

Three dot-product strategies, matching the Figure 5 ablation rungs:

* ``naive``     — per-candidate sorted-merge intersection of index arrays in
  Python (the paper's "iterate over one sparse vector, search in the other").
* ``lookup``    — per-candidate loop, but each candidate's contribution is a
  vectorized gather from the dense query lookup vector (the paper's
  "+optimized sparse DP": O(1) membership via the vocabulary-space query
  bitvector, generalized to carry the IDF weight).
* ``batched``   — all candidates gathered and reduced in one vectorized pass
  (the paper's "+sw prefetch": batch the loads so latency is overlapped).
"""

from __future__ import annotations

import numpy as np

from repro.sparse.csr import CSRMatrix
from repro.sparse.ops import densify_query, row_dots_dense, row_dots_dense_batch

__all__ = [
    "angular_distance",
    "candidate_dots_naive",
    "candidate_dots_lookup",
    "candidate_dots_batched",
    "candidate_dots_segmented",
    "DOT_STRATEGIES",
]


def angular_distance(dots: np.ndarray) -> np.ndarray:
    """Angle (radians) from dot products of unit vectors, clipped for safety."""
    return np.arccos(np.clip(dots, -1.0, 1.0))


def candidate_dots_naive(
    data: CSRMatrix, candidates: np.ndarray, q_cols: np.ndarray, q_vals: np.ndarray
) -> np.ndarray:
    """Sorted-merge intersection per candidate, in pure Python."""
    q_cols_list = q_cols.tolist()
    q_vals_list = q_vals.tolist()
    nq = len(q_cols_list)
    out = np.zeros(len(candidates), dtype=np.float32)
    for pos, cand in enumerate(np.asarray(candidates, dtype=np.int64).tolist()):
        cols, vals = data.row(cand)
        acc = 0.0
        a = b = 0
        cols_list = cols.tolist()
        vals_list = vals.tolist()
        while a < len(cols_list) and b < nq:
            ca, cb = cols_list[a], q_cols_list[b]
            if ca == cb:
                acc += vals_list[a] * q_vals_list[b]
                a += 1
                b += 1
            elif ca < cb:
                a += 1
            else:
                b += 1
        out[pos] = acc
    return out


def candidate_dots_lookup(
    data: CSRMatrix,
    candidates: np.ndarray,
    q_cols: np.ndarray,
    q_vals: np.ndarray,
) -> np.ndarray:
    """Per-candidate loop with O(1) per-term query lookups.

    The paper forms a sparse bitvector over the vocabulary for O(1)
    membership checks per candidate term; the Python analogue of that O(1)
    lookup is a hash map from term to IDF weight.  Cost per candidate is
    O(nnz_candidate) versus the naive merge's O(nnz_candidate + nnz_query)
    comparison walk.  (The batched kernel below then vectorizes the whole
    candidate set at once.)
    """
    q_map = dict(zip(q_cols.tolist(), q_vals.tolist()))
    out = np.zeros(len(candidates), dtype=np.float32)
    indices, values, indptr = data.indices, data.data, data.indptr
    for pos, cand in enumerate(np.asarray(candidates, dtype=np.int64).tolist()):
        s, e = indptr[cand], indptr[cand + 1]
        acc = 0.0
        for c, v in zip(indices[s:e].tolist(), values[s:e].tolist()):
            w = q_map.get(c)
            if w is not None:
                acc += v * w
        out[pos] = acc
    return out


def candidate_dots_batched(
    data: CSRMatrix,
    candidates: np.ndarray,
    q_dense: np.ndarray,
) -> np.ndarray:
    """One vectorized gather+reduce over all candidates (production path)."""
    return row_dots_dense(data, candidates, q_dense)


def candidate_dots_segmented(
    data: CSRMatrix,
    candidates: np.ndarray,
    seg_offsets: np.ndarray,
    queries: CSRMatrix,
) -> np.ndarray:
    """Step Q3 for a whole batch: ``candidates`` is segmented per query.

    The batch-kernel generalization of :func:`candidate_dots_batched` — one
    blocked gather/segment-reduce over the CSR data for all queries (see
    :func:`repro.sparse.ops.row_dots_dense_batch`).
    """
    return row_dots_dense_batch(data, candidates, seg_offsets, queries)


#: strategy name -> needs_dense_query flag (used by the query engine)
DOT_STRATEGIES = {"naive": False, "lookup": True, "batched": True}


def exhaustive_dots(data: CSRMatrix, q_cols: np.ndarray, q_vals: np.ndarray) -> np.ndarray:
    """Dot products of the query against *every* row (exhaustive baseline)."""
    q_dense = densify_query(q_cols, q_vals, data.n_cols)
    return row_dots_dense(data, np.arange(data.n_rows), q_dense)
