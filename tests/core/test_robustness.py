"""Robustness / failure-injection tests for the core pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro import PLSHIndex, PLSHParams
from repro.sparse.csr import CSRMatrix


def test_non_unit_rows_do_not_break_distances(small_params):
    """Slightly non-normalized rows (float error, user input) must yield
    clipped, finite distances rather than NaNs from acos(>1)."""
    rng = np.random.default_rng(0)
    dense = rng.standard_normal((50, 30)).astype(np.float32)
    dense /= np.linalg.norm(dense, axis=1, keepdims=True)
    dense *= 1.001  # 0.1 % over unit norm
    vectors = CSRMatrix.from_dense(dense)
    index = PLSHIndex(30, small_params).build(vectors)
    cols, vals = vectors.row(0)
    res = index.query(cols.astype(np.int64), vals, radius=1.5)
    assert np.isfinite(res.distances).all()
    assert 0 in res.indices.tolist()


def test_empty_query_returns_nothing(built_index):
    res = built_index.query(
        np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float32)
    )
    # An empty query hashes to *some* bucket pattern but its dot products
    # are all zero, so nothing survives the R = 0.9 filter.
    assert len(res) == 0


def test_single_item_corpus(small_params):
    vectors = CSRMatrix.from_rows([([0, 1], [0.6, 0.8])], 10)
    index = PLSHIndex(10, small_params).build(vectors)
    cols, vals = vectors.row(0)
    res = index.query(cols.astype(np.int64), vals)
    assert res.indices.tolist() == [0]


def test_duplicate_rows_all_returned(small_params):
    row = ([2, 5, 7], [0.5, 0.5, 0.7071])
    vectors = CSRMatrix.from_rows([row] * 5, 10)
    index = PLSHIndex(10, small_params).build(vectors)
    cols, vals = vectors.row(0)
    res = index.query(cols.astype(np.int64), vals)
    assert set(res.indices.tolist()) == {0, 1, 2, 3, 4}
    # 0.7071 is not exactly sqrt(0.5); acos amplifies the epsilon near 1.
    np.testing.assert_allclose(res.distances, 0.0, atol=1e-2)


def test_all_identical_hash_buckets_survive(small_params):
    """A degenerate corpus where every row collides in every table (all
    rows identical) must not overflow or mis-partition."""
    vectors = CSRMatrix.from_rows([([1], [1.0])] * 64, 4)
    index = PLSHIndex(4, small_params).build(vectors)
    index.tables.validate()
    cols, vals = vectors.row(0)
    res = index.query(cols.astype(np.int64), vals)
    assert len(res) == 64


def test_rebuild_replaces_state(built_index, small_vectors, small_params):
    index = PLSHIndex(small_vectors.n_cols, small_params)
    index.build(small_vectors.slice_rows(0, 100))
    assert index.n_items == 100
    index.build(small_vectors.slice_rows(0, 300))
    assert index.n_items == 300
    cols, vals = small_vectors.row(250)
    assert 250 in index.query(cols.astype(np.int64), vals).indices.tolist()


def test_query_radius_zero_rejected_by_params():
    with pytest.raises(ValueError):
        PLSHParams(radius=0.0)
