"""Paper-style plain-text tables for bench output.

Every bench prints the rows/series the corresponding paper table or figure
reports, so EXPERIMENTS.md can be filled in by reading the bench logs.
"""

from __future__ import annotations

import sys
from typing import Sequence

__all__ = ["format_table", "print_section"]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Fixed-width table with right-aligned numeric columns."""
    cells = [[str(h) for h in headers]] + [[_fmt(v) for v in row] for row in rows]
    widths = [max(len(row[c]) for row in cells) for c in range(len(headers))]
    lines = []
    for r, row in enumerate(cells):
        lines.append("  ".join(cell.rjust(widths[c]) for c, cell in enumerate(row)))
        if r == 0:
            lines.append("  ".join("-" * widths[c] for c in range(len(headers))))
    return "\n".join(lines)


#: Sections recorded for re-emission in pytest's terminal summary, which is
#: never captured (pytest's default capture replaces fd 1 itself, so even
#: sys.__stdout__ is swallowed for passing tests).
_SECTIONS: list[str] = []


def print_section(title: str, body: str = "") -> None:
    """Banner + optional body: printed immediately and recorded for the
    bench conftest to replay in the terminal summary."""
    bar = "=" * max(len(title), 8)
    text = f"\n{bar}\n{title}\n{bar}"
    if body:
        text += f"\n{body}"
    _SECTIONS.append(text)
    out = sys.__stdout__ if sys.__stdout__ is not None else sys.stdout
    print(text, file=out, flush=True)


def consume_sections() -> list[str]:
    """Drain and return every section recorded since the last call."""
    out = list(_SECTIONS)
    _SECTIONS.clear()
    return out


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)
