"""Section 6.1's other rejected design: the append-only linear array.

"A commonly used structure is a simple linear array which is appended to as
data items arrive.  This is easy to update, but queries require a linear
scan of the data.  This leads to unacceptably poor performance — e.g., a 2x
slowdown with only eta = 1% of the data in the delta table."

The delta table exists precisely to avoid that scan.  This test verifies
the asymptotic claim structurally: the delta's candidate count for a query
is a tiny fraction of its size (bucket-bounded), whereas a linear array
must touch every buffered row.
"""

from __future__ import annotations

import numpy as np

from repro.core.hashing import AllPairsHasher
from repro.params import PLSHParams
from repro.streaming.delta import DeltaTable


def test_delta_candidates_are_sublinear(small_vectors, small_queries):
    _, queries = small_queries
    params = PLSHParams(k=8, m=8, radius=0.9, seed=161)
    hasher = AllPairsHasher(params, small_vectors.n_cols)
    delta = DeltaTable(small_vectors.n_cols, params, hasher)
    n = 1500
    delta.insert_batch(small_vectors.slice_rows(0, n))

    total_candidates = 0
    for r in range(queries.n_rows):
        cols, vals = queries.row(r)
        from repro.sparse.csr import CSRMatrix

        q = CSRMatrix(
            np.asarray([0, cols.size], dtype=np.int64),
            cols,
            vals,
            small_vectors.n_cols,
            check=False,
        )
        u = hasher.hash_functions(q)[0]
        keys = hasher.table_keys_for_query(u)
        total_candidates += np.unique(delta.collisions(keys)).size
    mean_fraction = total_candidates / queries.n_rows / n
    # A linear array scans 100 % of the buffer per query; the hashed delta
    # touches a small fraction (bucket-limited).
    assert mean_fraction < 0.25, (
        f"delta candidate fraction {mean_fraction:.1%} — not sublinear"
    )


def test_delta_query_cost_grows_slower_than_size(small_vectors, small_queries):
    """Candidate counts grow sublinearly as the delta fills (the linear
    array's scan grows exactly linearly)."""
    _, queries = small_queries
    params = PLSHParams(k=8, m=8, radius=0.9, seed=162)
    hasher = AllPairsHasher(params, small_vectors.n_cols)
    delta = DeltaTable(small_vectors.n_cols, params, hasher)

    def mean_candidates() -> float:
        total = 0
        for r in range(10):
            cols, vals = queries.row(r)
            from repro.sparse.csr import CSRMatrix

            q = CSRMatrix(
                np.asarray([0, cols.size], dtype=np.int64),
                cols,
                vals,
                small_vectors.n_cols,
                check=False,
            )
            u = hasher.hash_functions(q)[0]
            total += np.unique(
                delta.collisions(hasher.table_keys_for_query(u))
            ).size
        return total / 10

    delta.insert_batch(small_vectors.slice_rows(0, 500))
    at_500 = mean_candidates()
    delta.insert_batch(small_vectors.slice_rows(500, 2000))
    at_2000 = mean_candidates()
    # 4x the data must yield clearly less than 4x the candidates relative
    # to a full scan: candidates/size must not increase.
    assert at_2000 / 2000 <= at_500 / 500 * 1.5
