"""Saving and loading built PLSH indexes and streaming nodes.

The paper's system is memory-resident and rebuilt from the firehose, but an
adoptable library needs restartability: a built static index (tables,
cached hash values, data, hyperplanes) round-trips through one ``.npz``
archive.  Loading restores an index that answers queries identically —
including the hash functions, which are stored rather than re-drawn so a
reloaded index agrees with peers built from the same seed.

:func:`save_node` / :func:`load_node` round-trip a whole
:class:`~repro.streaming.node.StreamingPLSH` — static structure, delta
rows with their cached hash values (bins are rebuilt without re-hashing),
deletion tombstones, and merge bookkeeping.  A node with a merge in
flight is settled first: by default the pending build is *drained*
(committed) so the archive captures the post-merge state; pass
``on_pending="refuse"`` to make saving such a node an error instead.

:func:`save_cluster_node` / :func:`load_cluster_node` round-trip a whole
:class:`~repro.cluster.node.ClusterNode`: the wrapped streaming node
*plus* the local→global id map and the node id.  The map is what makes a
restored node answer queries in **global** ids — persisting only the
inner streaming node (an early bug) silently restored a node whose query
results were local row numbers.

:func:`save_cluster` / :func:`load_cluster` round-trip a whole in-process
:class:`~repro.cluster.cluster.PLSHCluster` as a directory: one archive
per **logical shard** (taken from the shard's first trusted replica —
replicas are bit-identical by construction, so one copy is the whole
shard) plus a manifest holding the window state (``window_start``,
cursor, ``next_global_id``, retirement history) that makes the restored
cluster continue the stream exactly where the saved one stopped.  A
cluster saved with ``replication=R`` reloads with R fresh, identical
replicas per shard — which is also the (manual, offline) path for
re-syncing after evictions: save, reload, every shard is back to full
strength.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.core.hashing import AllPairsHasher
from repro.core.index import PLSHIndex
from repro.core.tables import StaticTableSet
from repro.params import PLSHParams
from repro.sparse.csr import CSRMatrix

__all__ = [
    "save_index",
    "load_index",
    "save_node",
    "load_node",
    "save_cluster_node",
    "load_cluster_node",
    "save_cluster",
    "load_cluster",
]

_FORMAT_VERSION = 1
_NODE_FORMAT_VERSION = 1


def save_index(index: PLSHIndex, path: str | Path) -> None:
    """Serialize a built index to ``path`` (an ``.npz`` archive)."""
    if not index.is_built:
        raise ValueError("cannot save an index that has not been built")
    assert index.data is not None
    assert index.u_values is not None
    assert index.tables is not None
    meta = {
        "format_version": _FORMAT_VERSION,
        "dim": index.dim,
        "params": {
            "k": index.params.k,
            "m": index.params.m,
            "radius": index.params.radius,
            "delta": index.params.delta,
            "seed": index.params.seed,
        },
        "dedup": index._dedup,
        "dots": index._dots,
    }
    np.savez_compressed(
        Path(path),
        meta=np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8),
        data_indptr=index.data.indptr,
        data_indices=index.data.indices,
        data_values=index.data.data,
        u_values=index.u_values,
        entries=index.tables.entries,
        offsets=index.tables.offsets,
        hyperplanes=index.hasher.bank.planes,
    )


def load_index(path: str | Path) -> PLSHIndex:
    """Restore an index saved by :func:`save_index`."""
    with np.load(Path(path)) as archive:
        meta = json.loads(bytes(archive["meta"]).decode("utf-8"))
        if meta["format_version"] != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported index format {meta['format_version']} "
                f"(this build reads {_FORMAT_VERSION})"
            )
        params = PLSHParams(**meta["params"])
        dim = int(meta["dim"])
        data = CSRMatrix(
            archive["data_indptr"],
            archive["data_indices"],
            archive["data_values"],
            dim,
            check=False,
        )
        hasher = AllPairsHasher(params, dim)
        # Restore the exact hyperplanes (seeds may legitimately be None).
        hasher.bank.planes = np.ascontiguousarray(
            archive["hyperplanes"], dtype=np.float32
        )
        index = PLSHIndex(
            dim, params, hasher=hasher, dedup=meta["dedup"], dots=meta["dots"]
        )
        index.data = data
        index.u_values = np.ascontiguousarray(archive["u_values"])
        index.tables = StaticTableSet(
            np.ascontiguousarray(archive["entries"]),
            np.ascontiguousarray(archive["offsets"]),
            params,
        )
        from repro.core.query import QueryEngine

        index.engine = QueryEngine(
            index.tables,
            data,
            hasher,
            params,
            dedup=meta["dedup"],
            dots=meta["dots"],
        )
        return index


def save_node(
    node, path: str | Path, *, on_pending: str = "drain"
) -> None:
    """Serialize a :class:`StreamingPLSH` node to one ``.npz`` archive.

    Captures the static structure, the live delta (rows + cached hash
    values), the deletion tombstones, and the merge bookkeeping.  A merge
    in flight is settled first according to ``on_pending``:

    * ``"drain"`` (default) — commit the pending build (waiting for it if
      still running), so the archive holds the post-merge state the node
      would have reached anyway.
    * ``"refuse"`` — raise :class:`ValueError`; the caller chose to keep
      save points off the merge window.
    """
    np.savez_compressed(Path(path), **_node_payload(node, on_pending))


def _node_payload(node, on_pending: str) -> dict:
    """The archive entries of one StreamingPLSH (shared by node and
    cluster-node saving); settles a pending merge per ``on_pending``."""
    if on_pending not in ("drain", "refuse"):
        raise ValueError(
            f"on_pending must be 'drain' or 'refuse', got {on_pending!r}"
        )
    if node.merge_in_flight:
        if on_pending == "refuse":
            raise ValueError(
                "node has a merge in flight; commit it first or save with "
                "on_pending='drain'"
            )
        node.commit_merge(wait=True)
    static = node.static
    assert static.data is not None and static.u_values is not None
    assert static.tables is not None
    delta_vectors = node.delta.vectors()
    # Tombstones as explicit ids: small, and reapplying them on load
    # restores both the bitvector and the deleted-count.
    all_ids = np.arange(node.capacity, dtype=np.int64)
    deleted = all_ids[node.deletions.is_deleted(all_ids)]
    meta = {
        "format_version": _NODE_FORMAT_VERSION,
        "dim": node.dim,
        "params": {
            "k": node.params.k,
            "m": node.params.m,
            "radius": node.params.radius,
            "delta": node.params.delta,
            "seed": node.params.seed,
        },
        "capacity": node.capacity,
        "delta_fraction": node.delta_fraction,
        "auto_merge": node.auto_merge,
        "overlap_merges": node.overlap_merges,
        "n_merges": node.n_merges,
        "n_static": node.n_static,
        "n_delta": node.n_delta,
        "dedup": static._dedup,
        "dots": static._dots,
    }
    return dict(
        node_meta=np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8),
        static_indptr=static.data.indptr,
        static_indices=static.data.indices,
        static_values=static.data.data,
        static_u=static.u_values,
        static_entries=static.tables.entries,
        static_offsets=static.tables.offsets,
        hyperplanes=static.hasher.bank.planes,
        delta_indptr=delta_vectors.indptr,
        delta_indices=delta_vectors.indices,
        delta_values=delta_vectors.data,
        delta_u=node.delta.u_values(),
        deleted_ids=deleted,
    )


def load_node(path: str | Path):
    """Restore a node saved by :func:`save_node`.

    The loaded node answers queries bit-identically to the saved one:
    the static tables are restored verbatim, the delta bins are rebuilt
    from the persisted rows and *cached* hash values (no re-hashing, same
    bucket membership and order), and the tombstone bitvector is
    reapplied.  No merge is pending on a loaded node by construction.
    """
    with np.load(Path(path)) as archive:
        return _restore_node(archive)


def _restore_node(archive):
    """Rebuild a StreamingPLSH from its archive entries."""
    from repro.core.query import QueryEngine
    from repro.streaming.delta import DeltaTable
    from repro.streaming.node import StreamingPLSH

    meta = json.loads(bytes(archive["node_meta"]).decode("utf-8"))
    if meta["format_version"] != _NODE_FORMAT_VERSION:
        raise ValueError(
            f"unsupported node format {meta['format_version']} "
            f"(this build reads {_NODE_FORMAT_VERSION})"
        )
    params = PLSHParams(**meta["params"])
    dim = int(meta["dim"])
    hasher = AllPairsHasher(params, dim)
    hasher.bank.planes = np.ascontiguousarray(
        archive["hyperplanes"], dtype=np.float32
    )
    node = StreamingPLSH(
        dim,
        params,
        int(meta["capacity"]),
        delta_fraction=float(meta["delta_fraction"]),
        auto_merge=bool(meta["auto_merge"]),
        overlap_merges=bool(meta["overlap_merges"]),
        hasher=hasher,
    )
    if int(meta["n_static"]):
        data = CSRMatrix(
            archive["static_indptr"],
            archive["static_indices"],
            archive["static_values"],
            dim,
            check=False,
        )
        static = PLSHIndex(
            dim, params, hasher=hasher,
            dedup=meta["dedup"], dots=meta["dots"],
        )
        static.data = data
        static.u_values = np.ascontiguousarray(archive["static_u"])
        static.tables = StaticTableSet(
            np.ascontiguousarray(archive["static_entries"]),
            np.ascontiguousarray(archive["static_offsets"]),
            params,
        )
        static.engine = QueryEngine(
            static.tables,
            data,
            hasher,
            params,
            dedup=meta["dedup"],
            dots=meta["dots"],
        )
        node.static = static
    if int(meta["n_delta"]):
        delta_vectors = CSRMatrix(
            archive["delta_indptr"],
            archive["delta_indices"],
            archive["delta_values"],
            dim,
            check=False,
        )
        node.delta = DeltaTable.restore(
            dim, params, hasher, delta_vectors,
            np.ascontiguousarray(archive["delta_u"]),
        )
    deleted = np.ascontiguousarray(archive["deleted_ids"])
    if deleted.size:
        node.deletions.delete(deleted)
    node.n_merges = int(meta["n_merges"])
    return node


def save_cluster_node(
    cluster_node, path: str | Path, *, on_pending: str = "drain"
) -> None:
    """Serialize a :class:`~repro.cluster.node.ClusterNode` to one archive.

    Extends the :func:`save_node` payload with the node id and the
    local→global id map — the map is load-bearing: without it a restored
    node answers queries in local row numbers instead of cluster-wide ids
    (the regression :func:`load_cluster_node` exists to prevent).
    ``on_pending`` settles an in-flight merge exactly as in
    :func:`save_node`.
    """
    payload = _node_payload(cluster_node.plsh, on_pending)
    cluster_meta = {
        "format_version": _NODE_FORMAT_VERSION,
        "node_id": int(cluster_node.node_id),
    }
    payload["cluster_meta"] = np.frombuffer(
        json.dumps(cluster_meta).encode("utf-8"), dtype=np.uint8
    )
    payload["cluster_global_ids"] = cluster_node._global_ids
    np.savez_compressed(Path(path), **payload)


def load_cluster_node(path: str | Path):
    """Restore a cluster node saved by :func:`save_cluster_node`.

    The restored node answers queries bit-identically to the saved one —
    including the global ids its results carry.
    """
    from repro.cluster.node import ClusterNode

    with np.load(Path(path)) as archive:
        if "cluster_meta" not in archive:
            raise ValueError(
                "archive has no cluster node payload; use load_node for "
                "plain StreamingPLSH archives"
            )
        cluster_meta = json.loads(bytes(archive["cluster_meta"]).decode("utf-8"))
        if cluster_meta["format_version"] != _NODE_FORMAT_VERSION:
            raise ValueError(
                f"unsupported cluster node format "
                f"{cluster_meta['format_version']} "
                f"(this build reads {_NODE_FORMAT_VERSION})"
            )
        plsh = _restore_node(archive)
        return ClusterNode.restore(
            cluster_meta["node_id"],
            plsh,
            np.ascontiguousarray(archive["cluster_global_ids"]),
        )


_CLUSTER_FORMAT_VERSION = 1


def save_cluster(cluster, path: str | Path, *, on_pending: str = "drain") -> None:
    """Serialize an in-process :class:`PLSHCluster` to a directory.

    Writes ``manifest.json`` (topology + window state), one
    ``shard_<s>.npz`` per logical shard, and ``retired.npz`` (the
    retirement history, needed for exact continuation of the expiry
    policy).  Each shard is captured once, from its first trusted
    replica — replicas are identical, so the copy count is a *load-time*
    choice.  Remote clusters are refused: their data lives in the server
    processes, which own any persistence of it.
    """
    from repro.cluster.node import ClusterNode
    from repro.cluster.replication import ReplicaGroup

    path = Path(path)
    path.mkdir(parents=True, exist_ok=True)
    for s, shard in enumerate(cluster.shards):
        source = (
            shard._active()[0] if isinstance(shard, ReplicaGroup) else shard
        )
        if not isinstance(source, ClusterNode):
            raise ValueError(
                "save_cluster supports in-process clusters only (remote "
                "node data lives in the server processes)"
            )
        save_cluster_node(source, path / f"shard_{s}.npz", on_pending=on_pending)
    manifest = {
        "format_version": _CLUSTER_FORMAT_VERSION,
        "dim": cluster.dim,
        "params": {
            "k": cluster.params.k,
            "m": cluster.params.m,
            "radius": cluster.params.radius,
            "delta": cluster.params.delta,
            "seed": cluster.params.seed,
        },
        "n_shards": cluster.n_shards,
        "replication": cluster.replication,
        "insert_window": cluster.insert_window,
        "window_start": cluster._window_start,
        "window_cursor": cluster._window_cursor,
        "next_global_id": cluster._next_global_id,
        "n_retirements": cluster.n_retirements,
        "n_retired_items": cluster.n_retired_items,
        "retired_retention": cluster.retired_retention,
    }
    (path / "manifest.json").write_text(json.dumps(manifest, indent=2))
    np.savez_compressed(
        path / "retired.npz",
        **{f"r{i}": ids for i, ids in enumerate(cluster.retired_ids)},
    )


def load_cluster(path: str | Path, *, network=None, replication: int | None = None):
    """Restore a cluster saved by :func:`save_cluster`.

    The restored cluster continues the stream exactly: same window
    position, same next global id, same retirement history — inserting
    the same subsequent batches lands them on the same shards, and
    queries answer bit-identically to the saved cluster.  ``replication``
    overrides the saved R (each shard archive is loaded that many times
    into fresh, identical replicas), which is how a cluster that evicted
    replicas is brought back to full strength offline.
    """
    from repro.cluster.cluster import PLSHCluster

    path = Path(path)
    manifest = json.loads((path / "manifest.json").read_text())
    if manifest["format_version"] != _CLUSTER_FORMAT_VERSION:
        raise ValueError(
            f"unsupported cluster format {manifest['format_version']} "
            f"(this build reads {_CLUSTER_FORMAT_VERSION})"
        )
    params = PLSHParams(**manifest["params"])
    R = int(replication if replication is not None else manifest["replication"])
    handles = []
    for s in range(int(manifest["n_shards"])):
        for j in range(R):
            node = load_cluster_node(path / f"shard_{s}.npz")
            node.node_id = s * R + j
            handles.append(node)
    cluster = PLSHCluster.from_handles(
        handles,
        int(manifest["dim"]),
        params,
        insert_window=int(manifest["insert_window"]),
        network=network,
        replication=R,
    )
    cluster._window_start = int(manifest["window_start"])
    cluster._window_cursor = int(manifest["window_cursor"])
    cluster._next_global_id = int(manifest["next_global_id"])
    cluster.n_retirements = int(manifest["n_retirements"])
    cluster.retired_retention = int(manifest.get("retired_retention", 8))
    with np.load(path / "retired.npz") as retired:
        cluster.retired_ids = [
            np.ascontiguousarray(retired[f"r{i}"], dtype=np.int64)
            for i in range(len(retired.files))
        ]
    # Pre-retention archives carry only the retained blocks; their sum is
    # the best available running total.
    cluster.n_retired_items = int(
        manifest.get(
            "n_retired_items",
            sum(ids.size for ids in cluster.retired_ids),
        )
    )
    return cluster
