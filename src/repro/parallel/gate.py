"""A readers-writer gate for rare, state-tearing mutations.

The cluster's broadcast path is read-mostly: queries fan out to every
shard and must observe the *shard set* consistently, but they never
mutate it.  Window retirement is the opposite — it erases a whole window
of M shards at once, and a broadcast that catches some of those shards
pre-retirement and some post sees a corpus state that never existed
(the "torn window").  A per-node lock cannot fix that: the tear is
*across* nodes.

:class:`ReadWriteGate` is the minimal primitive for this shape:

* any number of **readers** (broadcasts) proceed concurrently;
* a **writer** (retirement) waits for in-flight readers to drain, runs
  exclusively, then lets readers resume;
* a waiting writer blocks *new* readers, so a steady query stream cannot
  starve retirement forever (writer preference).

It is deliberately not reentrant — neither side may nest acquisitions of
the same gate — and both sides are exposed as context managers so the
release can never be skipped on an exception path.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

__all__ = ["ReadWriteGate"]


class ReadWriteGate:
    """Many concurrent readers, one exclusive writer, writer-preferring."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    @property
    def readers(self) -> int:
        """In-flight readers (monitoring/tests only; racy by nature)."""
        return self._readers

    @property
    def writer_active(self) -> bool:
        """True while a writer holds the gate (monitoring/tests only)."""
        return self._writer_active

    @contextmanager
    def read(self):
        """Shared side: concurrent with other readers, excluded from
        writers.  New readers queue behind a *waiting* writer so a
        continuous reader stream cannot starve it."""
        with self._cond:
            while self._writer_active or self._writers_waiting:
                self._cond.wait()
            self._readers += 1
        try:
            yield
        finally:
            with self._cond:
                self._readers -= 1
                if self._readers == 0:
                    self._cond.notify_all()

    @contextmanager
    def write(self):
        """Exclusive side: waits out in-flight readers, blocks new ones."""
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._readers:
                    self._cond.wait()
                self._writer_active = True
            finally:
                self._writers_waiting -= 1
        try:
            yield
        finally:
            with self._cond:
                self._writer_active = False
                self._cond.notify_all()
