"""Concurrent broadcasts are safe: the serving-gateway prerequisite.

The gateway dispatches overlapping micro-batches through ONE coordinator
from multiple threads.  Before this PR that was quietly broken in three
places: ``Coordinator._fan_out`` could swap-and-close the shared
broadcast pool under a sibling broadcast, ``NetworkModel`` counter
updates could be lost, and in-process ``ClusterNode`` engines share
mutable query scratch (dense-query buffer, dedup bitvector) so
concurrent single queries could tear each other's answers.

The hammer here is the regression net: seeded iterations of N threads
banging ``query_batch`` + single ``query`` on one cluster, every answer
compared bit-for-bit against the serial reference — in-process *and*
against real spawned node servers — plus an exact-message-count check
that would catch a single lost network-counter update.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro import PLSHCluster, PLSHParams
from repro.cluster import spawn_local_cluster
from repro.parallel import fork_available
from repro.sparse.csr import CSRMatrix

PARAMS = PLSHParams(k=8, m=6, radius=0.9, seed=77)
N_NODES = 3
CAPACITY = 250
HAMMER_ITERATIONS = 50
HAMMER_THREADS = 4


def _reference(cluster, queries):
    """Serial per-query answers (indices, distances) — ground truth."""
    out = []
    for r in range(queries.n_rows):
        cols, vals = queries.row(r)
        outcome = cluster.query(cols.astype(np.int64), vals)
        out.append((outcome.result.indices, outcome.result.distances))
    return out


def _check_outcomes(outcomes, reference, rows):
    for outcome, r in zip(outcomes, rows):
        ref_ids, ref_dists = reference[r]
        np.testing.assert_array_equal(outcome.result.indices, ref_ids)
        np.testing.assert_array_equal(outcome.result.distances, ref_dists)
        assert not outcome.node_errors


def _hammer(cluster, queries, reference, *, iterations, n_threads):
    """N threads × (batch broadcast + single queries), seeded slices.

    Every thread's every answer must be bit-identical to the serial
    reference; any scratch-sharing tear, lost frame, or pool misuse
    shows up as a mismatched id/distance array or an exception.
    """
    rng = np.random.default_rng(4242)
    n_rows = queries.n_rows
    errors: list[BaseException] = []

    def batch_worker(rows, barrier):
        try:
            barrier.wait(timeout=30)
            batch = CSRMatrix.from_rows(
                [queries.row(int(r)) for r in rows], queries.n_cols
            )
            _check_outcomes(
                cluster.query_batch(batch), reference, rows
            )
        except BaseException as exc:  # noqa: BLE001 - collected for the test
            errors.append(exc)

    def single_worker(rows, barrier):
        try:
            barrier.wait(timeout=30)
            for r in rows:
                cols, vals = queries.row(int(r))
                outcome = cluster.query(cols.astype(np.int64), vals)
                _check_outcomes([outcome], reference, [int(r)])
        except BaseException as exc:  # noqa: BLE001
            errors.append(exc)

    for _ in range(iterations):
        barrier = threading.Barrier(n_threads)
        threads = []
        for t in range(n_threads):
            rows = rng.choice(n_rows, size=6, replace=False)
            # Half the threads broadcast batches, half hammer the
            # single-query path (the shared-scratch hazard).
            target = batch_worker if t % 2 == 0 else single_worker
            threads.append(
                threading.Thread(target=target, args=(rows, barrier))
            )
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
            assert not thread.is_alive(), "hammer thread hung"
        if errors:
            raise errors[0]


@pytest.fixture(scope="module")
def hammer_queries(small_vectors):
    return small_vectors.slice_rows(0, 40)


@pytest.fixture(scope="module")
def inprocess_cluster(small_vectors):
    cluster = PLSHCluster(N_NODES, CAPACITY, small_vectors.n_cols, PARAMS,
                          insert_window=2)
    cluster.insert(small_vectors.slice_rows(0, 600))
    try:
        yield cluster
    finally:
        cluster.close()


@pytest.fixture(scope="module")
def spawned_cluster(small_vectors):
    if not fork_available():
        pytest.skip("spawn_local_cluster requires fork()")
    cluster = spawn_local_cluster(
        N_NODES, CAPACITY, small_vectors.n_cols, PARAMS, insert_window=2
    )
    cluster.insert(small_vectors.slice_rows(0, 600))
    try:
        yield cluster
    finally:
        cluster.close()


class TestBroadcastHammer:
    def test_inprocess_bit_identity(self, inprocess_cluster, hammer_queries):
        reference = _reference(inprocess_cluster, hammer_queries)
        _hammer(
            inprocess_cluster, hammer_queries, reference,
            iterations=HAMMER_ITERATIONS, n_threads=HAMMER_THREADS,
        )

    def test_spawned_bit_identity(self, spawned_cluster, hammer_queries):
        reference = _reference(spawned_cluster, hammer_queries)
        _hammer(
            spawned_cluster, hammer_queries, reference,
            iterations=HAMMER_ITERATIONS, n_threads=HAMMER_THREADS,
        )

    def test_network_accounting_exact(self, inprocess_cluster, hammer_queries):
        """Concurrent broadcasts must not lose a single counter update.

        One broadcast's message/byte charge is deterministic (fixed
        cluster, fixed batch), so after T×I identical concurrent calls
        the totals must equal exactly T×I times one call's delta — a
        single lost increment fails this.
        """
        cluster = inprocess_cluster
        batch = hammer_queries.slice_rows(0, 8)
        stats = cluster.network.stats
        stats.reset()
        cluster.query_batch(batch)
        per_call_messages = stats.n_messages
        per_call_bytes = stats.bytes_sent
        assert per_call_messages > 0

        stats.reset()
        n_threads, n_iterations = 4, 12
        with ThreadPoolExecutor(max_workers=n_threads) as pool:
            futures = [
                pool.submit(cluster.query_batch, batch)
                for _ in range(n_threads * n_iterations)
            ]
            for future in futures:
                future.result()
        assert stats.n_messages == per_call_messages * n_threads * n_iterations
        assert stats.bytes_sent == per_call_bytes * n_threads * n_iterations


class TestFanOutPool:
    def test_contention_uses_temporary_pools(self, inprocess_cluster):
        """Overlapping ``_fan_out`` calls share the persistent pool when
        free and fall back to private temporary pools under contention —
        never submit-after-shutdown, never a task dropped."""
        coord = inprocess_cluster.coordinator

        def slow_double(_state, value):
            time.sleep(0.01)
            return value * 2

        def one_call(base):
            tasks = [(base + i,) for i in range(3)]
            return coord._fan_out(slow_double, tasks)

        with ThreadPoolExecutor(max_workers=6) as pool:
            futures = [pool.submit(one_call, base * 10) for base in range(12)]
            results = [f.result(timeout=30) for f in futures]
        for base, result in zip(range(12), results):
            assert result == [(base * 10 + i) * 2 for i in range(3)]
        # Contention resolved: the persistent pool is free again and the
        # next broadcast reuses it.
        assert coord._pool_busy is False
        pool_before = coord._pool
        assert one_call(0) == [0, 2, 4]
        assert coord._pool is pool_before

    def test_pool_grows_for_wider_fan_out(self, inprocess_cluster):
        """A wider task list must replace the pool *safely* (old one
        closed only when idle) and still run every task."""
        coord = inprocess_cluster.coordinator

        def ident(_state, value):
            return value

        assert coord._fan_out(ident, [(i,) for i in range(2)]) == [0, 1]
        wide = coord._fan_out(ident, [(i,) for i in range(8)])
        assert wide == list(range(8))
        assert coord._pool is not None and coord._pool.workers >= 8


class TestRemoteHandleFrameSafety:
    def test_concurrent_calls_one_handle(self, spawned_cluster, hammer_queries):
        """Many threads sharing ONE RemoteNodeHandle: the per-handle
        request lock guarantees at most one frame in flight per
        connection, so responses can never pair with the wrong request
        (which would show up as crossed-over result rows)."""
        handle = spawned_cluster.nodes[0]
        reference = {}
        for r in range(8):
            cols, vals = hammer_queries.row(r)
            res = handle.query(cols.astype(np.int64), vals, radius=None)
            reference[r] = (res.indices.copy(), res.distances.copy())

        errors: list[BaseException] = []
        barrier = threading.Barrier(HAMMER_THREADS)

        def worker(seed):
            try:
                rng = np.random.default_rng(seed)
                barrier.wait(timeout=30)
                for _ in range(25):
                    r = int(rng.integers(0, 8))
                    cols, vals = hammer_queries.row(r)
                    res = handle.query(cols.astype(np.int64), vals, radius=None)
                    ref_ids, ref_dists = reference[r]
                    np.testing.assert_array_equal(res.indices, ref_ids)
                    np.testing.assert_array_equal(res.distances, ref_dists)
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(1000 + t,))
            for t in range(HAMMER_THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
            assert not thread.is_alive(), "handle hammer thread hung"
        if errors:
            raise errors[0]
