"""Replica groups: R-way shard replication with deterministic failover.

The paper's deployment keeps exactly one copy of every shard, so a single
node crash silently truncates every answer.  This module adds the standard
serving remedy — place each logical shard on ``R`` nodes — as one class,
:class:`ReplicaGroup`, that itself speaks the **node handle protocol**
(see :mod:`repro.cluster.node`).  The cluster's window/insert/broadcast
machinery drives shards exactly as it previously drove nodes; replication
is invisible above this layer, and ``R=1`` clusters keep using raw
handles with zero overhead.

Correctness contract (what the chaos suite asserts):

* **Writes fan out**: every insert / delete / retire goes to *all*
  non-evicted replicas, in placement order, so replicas hold bit-identical
  data by construction.
* **Reads fail over**: a query tries the primary (first live replica) and
  falls through siblings on transport failure.  Because replicas are
  bit-identical, *which* replica answers is unobservable — answers stay
  exactly equal to the healthy cluster's so long as one replica lives.
* **Divergence is forbidden, then repaired online**: a replica that
  fails a *data* mutation (crash or timeout mid-insert — the op may or
  may not have been applied) is **evicted** from the group rather than
  left to answer queries from a diverged copy.  :meth:`ReplicaGroup.resync`
  re-admits it (or a fresh replacement handle) by copying a surviving
  sibling's full state over the handle protocol (``export_state`` /
  ``import_state``) — after which the rebuilt replica is bit-identical
  to its siblings and serves again.  Merge ops are exempt from eviction:
  a missed merge leaves a replica with a larger delta, which changes
  performance, never answers.
* **Query failures never evict**: a flaky read says nothing about the
  replica's data, and the handle's own circuit breaker already removes
  persistently-failing replicas from the rotation (recovery via the
  heartbeat's probes).

When every replica of a shard is gone the group raises
:class:`ShardUnavailableError`; the coordinator converts that into
``degraded=True`` plus a ``missing_shards`` entry on the outcome instead
of propagating the exception — degraded service is honest, not fatal.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.transport import TransportStats
from repro.core.query import QueryResult
from repro.sparse.csr import CSRMatrix

__all__ = ["ReplicaGroup", "ShardUnavailableError", "group_handles"]

#: transport-level failures a sibling replica can paper over (application
#: errors — RemoteNodeError — are deterministic and re-raised as-is).
_FAILOVER_ERRORS = (ConnectionError, TimeoutError)


class ShardUnavailableError(ConnectionError):
    """Every replica of a logical shard is dead, evicted, or tripped."""


class ReplicaGroup:
    """R replica handles behind one node-handle-protocol facade.

    ``replicas`` are index-aligned with their placement; the first
    non-evicted, broadcast-ready replica is the read primary.  The group
    assumes the replicas start bit-identical (the cluster builds them
    that way) and preserves that invariant by construction (fan-out
    writes, permanent eviction on write ambiguity).
    """

    def __init__(self, shard_id: int, replicas: list) -> None:
        if not replicas:
            raise ValueError("a replica group needs at least one replica")
        self.shard_id = shard_id
        self.replicas = list(replicas)
        #: replica -> reason, for replicas evicted after a failed write.
        self.evicted: dict[int, str] = {}
        #: server-side compute seconds of the replica that served the last
        #: query_batch (mirrors the handle attribute the stats layer reads).
        self.last_compute_seconds: float | None = None

    # -- replica selection -------------------------------------------------

    def _active(self) -> list:
        """Replicas still trusted to hold the shard (not evicted)."""
        return [
            r for i, r in enumerate(self.replicas) if i not in self.evicted
        ]

    def _ready(self) -> list:
        """Active replicas a broadcast may use right now (breaker CLOSED)."""
        return [
            r for r in self._active() if getattr(r, "broadcast_ready", True)
        ]

    def _evict(self, replica, reason: str) -> None:
        idx = self.replicas.index(replica)
        self.evicted.setdefault(idx, reason)

    @property
    def node_id(self) -> int:
        """The group answers for its shard id (broadcast bookkeeping keys
        ``node_seconds``/``node_errors`` by this)."""
        return self.shard_id

    @property
    def replication(self) -> int:
        return len(self.replicas)

    @property
    def n_live_replicas(self) -> int:
        return len(self._ready())

    @property
    def alive(self) -> bool:
        return bool(self._ready())

    @property
    def broadcast_ready(self) -> bool:
        return bool(self._ready())

    # -- capacity (node handle protocol) -----------------------------------

    @property
    def n_items(self) -> int:
        # Max over active replicas: a replica whose mirror lagged behind a
        # failed exchange must not make a populated shard look empty.
        return max((r.n_items for r in self._active()), default=0)

    @property
    def capacity(self) -> int:
        return self.replicas[0].capacity

    @property
    def free_capacity(self) -> int:
        return self.capacity - self.n_items

    @property
    def is_full(self) -> bool:
        return self.free_capacity <= 0

    # -- writes: fan out to every active replica ---------------------------

    def _fan_write(self, op_name: str, fn):
        """Apply a data mutation to every active replica.

        Transport failure (crash / timeout / torn frame) on one replica
        evicts it — the op's application is ambiguous and the copy can no
        longer be trusted to match its siblings.  An application-level
        error is deterministic (replicas are identical) and re-raised.
        Raises :class:`ShardUnavailableError` if no replica applied it.
        """
        results = []
        app_error: Exception | None = None
        for replica in self._active():
            try:
                results.append(fn(replica))
            except _FAILOVER_ERRORS as exc:
                self._evict(replica, f"{op_name}: {exc}")
            except Exception as exc:  # application error: no eviction
                app_error = app_error if app_error is not None else exc
        if app_error is not None:
            raise app_error
        if not results:
            raise ShardUnavailableError(
                f"shard {self.shard_id}: no replica could apply {op_name} "
                f"(evicted: {sorted(self.evicted)})"
            )
        return results[0]

    def insert_batch(
        self,
        vectors: CSRMatrix,
        global_ids: np.ndarray,
        timestamps: np.ndarray | None = None,
    ) -> None:
        self._fan_write(
            "insert_batch",
            lambda r: r.insert_batch(vectors, global_ids, timestamps),
        )

    def delete_global(self, global_ids: np.ndarray) -> int:
        return int(
            self._fan_write(
                "delete_global", lambda r: r.delete_global(global_ids)
            )
        )

    def retire(self) -> np.ndarray:
        return self._fan_write("retire", lambda r: r.retire())

    def retire_window(self) -> np.ndarray:
        # Replicas are bit-identical, so every replica reports the same
        # retired ids; the first successful result is the shard's answer.
        return self._fan_write("retire_window", lambda r: r.retire_window())

    def retire_before(self, cutoff: int) -> np.ndarray:
        return self._fan_write(
            "retire_before", lambda r: r.retire_before(cutoff)
        )

    # -- resync: rebuild a lost replica from a surviving sibling -----------

    def resync(self, index: int, replacement=None) -> None:
        """Rebuild replica ``index`` from a surviving sibling and re-admit
        it to the write fan-out and read rotation.

        ``replacement`` substitutes a fresh handle at that slot first —
        the crash-recovery path, where the dead process's handle is
        replaced by a stub talking to a newly spawned server.  The full
        shard state (every partition, delta rows with cached hashes,
        tombstones, clock, global-id map) is exported from the first
        ready sibling and imported wholesale, so the rebuilt replica is
        bit-identical to its source by construction.  Raises
        :class:`ShardUnavailableError` when no sibling can serve as the
        source."""
        if not 0 <= index < len(self.replicas):
            raise IndexError(
                f"replica index {index} out of range "
                f"(shard has {len(self.replicas)} replicas)"
            )
        if replacement is not None:
            self.replicas[index] = replacement
        target = self.replicas[index]
        sources = [
            r
            for i, r in enumerate(self.replicas)
            if i != index
            and i not in self.evicted
            and getattr(r, "broadcast_ready", True)
        ]
        last: Exception | None = None
        for source in sources:
            try:
                target.import_state(source.export_state())
                self.evicted.pop(index, None)
                return
            except _FAILOVER_ERRORS as exc:
                last = exc
        raise ShardUnavailableError(
            f"shard {self.shard_id}: no surviving sibling to resync "
            f"replica {index} from"
            + (f" (last error: {last})" if last is not None else "")
        )

    # -- maintenance: best effort, never evicts ----------------------------

    def _fan_maintenance(self, fn, default):
        """Run a merge-family op on every active replica, best-effort.  A
        replica that misses a merge just carries a bigger delta — answers
        are unaffected — so failures are swallowed (the handle's breaker
        already recorded them) and the first successful result returned."""
        result, got = default, False
        for replica in self._active():
            try:
                value = fn(replica)
            except _FAILOVER_ERRORS:
                continue
            if not got:
                result, got = value, True
        return result

    def begin_merge(self) -> bool:
        return bool(self._fan_maintenance(lambda r: r.begin_merge(), False))

    def commit_merge(self, *, wait: bool = False) -> bool:
        return bool(
            self._fan_maintenance(lambda r: r.commit_merge(wait=wait), False)
        )

    def merge_now(self) -> None:
        self._fan_maintenance(lambda r: r.merge_now(), None)

    # -- reads: primary first, fail over through siblings ------------------

    def _fan_read(self, op_name: str, fn):
        last: Exception | None = None
        for replica in self._ready():
            try:
                return fn(replica)
            except _FAILOVER_ERRORS as exc:
                last = exc  # sibling answers from the identical copy
        raise ShardUnavailableError(
            f"shard {self.shard_id}: no live replica for {op_name}"
            + (f" (last error: {last})" if last is not None else "")
        )

    def ping(self) -> int:
        return int(self._fan_read("ping", lambda r: r.ping()))

    def query(
        self,
        q_cols: np.ndarray,
        q_vals: np.ndarray,
        *,
        radius: float | None = None,
        time_range: tuple[int, int] | None = None,
    ) -> QueryResult:
        return self._fan_read(
            "query",
            lambda r: r.query(
                q_cols, q_vals, radius=radius, time_range=time_range
            ),
        )

    def query_batch(
        self,
        queries: CSRMatrix,
        *,
        radius: float | None = None,
        mode: str | None = None,
        workers: int | None = None,
        backend: str | None = None,
        time_range: tuple[int, int] | None = None,
    ) -> list[QueryResult]:
        def _run(replica):
            kwargs = {"radius": radius, "workers": workers, "backend": backend}
            if mode is not None:
                kwargs["mode"] = mode
            if time_range is not None:
                kwargs["time_range"] = time_range
            results = replica.query_batch(queries, **kwargs)
            self.last_compute_seconds = getattr(
                replica, "last_compute_seconds", None
            )
            return results

        return self._fan_read("query_batch", _run)

    def stats(self) -> dict:
        stats = dict(self._fan_read("stats", lambda r: r.stats()))
        stats["shard_id"] = self.shard_id
        stats["replication"] = self.replication
        stats["live_replicas"] = self.n_live_replicas
        stats["evicted_replicas"] = sorted(self.evicted)
        return stats

    # -- pass-throughs -----------------------------------------------------

    def prepare_workers(self, workers, backend) -> None:
        for replica in self._ready():
            prepare = getattr(replica, "prepare_workers", None)
            if prepare is not None:
                prepare(workers, backend)

    @property
    def transport_stats(self) -> TransportStats | None:
        """Wire totals summed over replicas (None for in-process groups)."""
        total, saw = TransportStats(), False
        for replica in self.replicas:
            stats = getattr(replica, "transport_stats", None)
            if stats is None:
                continue
            saw = True
            total.add(stats)
        return total if saw else None

    def reset_transport_stats(self) -> None:
        """Zero every replica's byte counters (batch isolation)."""
        for replica in self.replicas:
            reset = getattr(replica, "reset_transport_stats", None)
            if reset is not None:
                reset()

    def health_snapshot(self) -> dict:
        """One monitoring row per shard, with per-replica detail."""
        rows = []
        for i, replica in enumerate(self.replicas):
            snap = getattr(replica, "health_snapshot", None)
            row = snap() if snap is not None else {
                "node_id": getattr(replica, "node_id", i),
                "state": "up",
                "breaker": "closed",
                "n_items": replica.n_items,
            }
            row["evicted"] = i in self.evicted
            if i in self.evicted:
                row["evicted_reason"] = self.evicted[i]
            rows.append(row)
        return {
            "shard_id": self.shard_id,
            "replication": self.replication,
            "live_replicas": self.n_live_replicas,
            "n_items": self.n_items,
            "replicas": rows,
        }

    def close(self) -> None:
        for replica in self.replicas:
            replica.close()

    def __repr__(self) -> str:
        return (
            f"ReplicaGroup(shard={self.shard_id}, R={self.replication}, "
            f"live={self.n_live_replicas})"
        )


def group_handles(handles: list, replication: int) -> list:
    """Partition ``handles`` into shards of ``replication`` consecutive
    replicas.  ``replication=1`` returns the handles themselves (no
    wrapper, no overhead — the R=1 cluster is byte-for-byte the old one);
    otherwise ``len(handles)`` must divide evenly into groups."""
    if replication < 1:
        raise ValueError(f"replication must be >= 1, got {replication}")
    if replication == 1:
        return list(handles)
    if len(handles) % replication:
        raise ValueError(
            f"{len(handles)} nodes do not split into replica groups of "
            f"{replication}"
        )
    return [
        ReplicaGroup(s, handles[s * replication : (s + 1) * replication])
        for s in range(len(handles) // replication)
    ]
