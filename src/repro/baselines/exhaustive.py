"""Exhaustive R-near-neighbor search (Table 2's "Exhaustive search").

"Calculates the distance from a query point to all the points in the input
data and reports only those points that lie within a distance R."
Deterministic; performs exactly N distance computations per query.
"""

from __future__ import annotations

import numpy as np

from repro.core.distance import angular_distance
from repro.core.query import QueryResult
from repro.sparse.csr import CSRMatrix
from repro.sparse.ops import densify_query, row_dots_dense

__all__ = ["ExhaustiveSearch"]


class ExhaustiveSearch:
    """Linear scan over the corpus; the exact-answer oracle."""

    def __init__(self, data: CSRMatrix, radius: float) -> None:
        if not 0 < radius <= np.pi:
            raise ValueError(f"radius must be in (0, pi], got {radius}")
        self.data = data
        self.radius = radius
        self.n_distance_computations = 0
        self._all_rows = np.arange(data.n_rows, dtype=np.int64)
        self._q_dense = np.zeros(data.n_cols, dtype=np.float32)

    def query(self, q_cols: np.ndarray, q_vals: np.ndarray) -> QueryResult:
        """All data items within ``radius`` of the query."""
        q_cols = np.asarray(q_cols, dtype=np.int64)
        q_vals = np.asarray(q_vals, dtype=np.float32)
        self._q_dense[q_cols] = q_vals
        dots = row_dots_dense(self.data, self._all_rows, self._q_dense)
        self._q_dense[q_cols] = 0.0
        self.n_distance_computations += self.data.n_rows
        dists = angular_distance(dots)
        within = dists <= self.radius
        return QueryResult(self._all_rows[within], dists[within])

    def query_batch(self, queries: CSRMatrix) -> list[QueryResult]:
        return [
            self.query(*queries.row(r)) for r in range(queries.n_rows)
        ]

    def ground_truth_sets(self, queries: CSRMatrix) -> list[set[int]]:
        """Exact neighbor id sets (recall denominators for the evaluation)."""
        return [set(res.indices.tolist()) for res in self.query_batch(queries)]
