"""Remote node handles and the localhost cluster spawner.

:class:`RemoteNodeHandle` implements the node handle protocol (see
:mod:`repro.cluster.node`) over one TCP connection to a
:class:`~repro.cluster.server.NodeServer` process, so the coordinator and
:class:`~repro.cluster.cluster.PLSHCluster` drive in-process and remote
nodes through identical call sites.  Capacity bookkeeping (``n_items``,
``free_capacity``) is mirrored client-side from authoritative counts the
server returns with every mutating response — the cluster's rolling insert
window needs those without a round trip per check.

:func:`spawn_local_cluster` is the zero-config deployment for tests and
benches: it forks one ``NodeServer`` process per node on localhost and
returns a :class:`SpawnedLocalCluster` (a :class:`PLSHCluster` whose nodes
are remote handles).  Fork-based spawning shares the parent's hyperplane
bank copy-on-write, so every node hashes queries identically even when
``params.seed`` is ``None`` — the same trick the in-process simulation
plays by sharing one :class:`AllPairsHasher` object.

A node process that dies mid-broadcast surfaces as a per-node error in the
:class:`~repro.cluster.coordinator.BroadcastOutcome` (the handle marks
itself dead and later broadcasts skip it); it never kills the broadcast.
"""

from __future__ import annotations

import multiprocessing
import time

import numpy as np

from repro.cluster import protocol
from repro.cluster.cluster import PLSHCluster
from repro.cluster.network import NetworkModel
from repro.cluster.node import ClusterNode
from repro.cluster.server import NodeServer
from repro.cluster.transport import Connection
from repro.core.hashing import AllPairsHasher
from repro.core.query import QueryResult
from repro.params import PLSHParams
from repro.sparse.csr import CSRMatrix

__all__ = [
    "RemoteNodeError",
    "RemoteNodeHandle",
    "SpawnedLocalCluster",
    "spawn_local_cluster",
]


class RemoteNodeError(RuntimeError):
    """The server answered a request with an application-level error."""


class RemoteNodeHandle:
    """The node handle protocol spoken over one TCP connection."""

    def __init__(
        self,
        node_id: int,
        host: str,
        port: int,
        capacity: int,
        *,
        connect_timeout: float = 10.0,
    ) -> None:
        self.node_id = node_id
        self.host = host
        self.port = port
        self._capacity = int(capacity)
        self._n_items = 0
        self._alive = True
        #: server-side compute seconds of the last query_batch (excludes
        #: the wire), for measured communication-share accounting.
        self.last_compute_seconds: float | None = None
        self._conn = Connection.connect(host, port, timeout=connect_timeout)
        # Sync the client-side mirror from the server's authoritative
        # counts: a handle (re)connected to an already-populated server
        # must not report 0 items (the coordinator would silently skip
        # the node and the insert window would over-fill it).
        self.stats()

    # -- plumbing ----------------------------------------------------------

    @property
    def alive(self) -> bool:
        """False once a transport failure marked the node dead."""
        return self._alive

    @property
    def transport_stats(self):
        """Real bytes/messages on this handle's wire (TransportStats)."""
        return self._conn.stats

    def _call(
        self, code: int, meta: dict | None = None, arrays=()
    ) -> tuple[dict, list[np.ndarray]]:
        if not self._alive:
            raise ConnectionError(
                f"node {self.node_id} is marked dead (earlier transport failure)"
            )
        try:
            self._conn.send_message(code, meta, arrays)
            status, out_meta, out_arrays = self._conn.recv_message()
        except ConnectionError:
            self._alive = False
            raise
        if status == protocol.STATUS_ERROR:
            raise RemoteNodeError(
                f"node {self.node_id} {out_meta.get('op', '?')}: "
                f"{out_meta.get('type', 'Error')}: {out_meta.get('error', '')}"
            )
        return out_meta, out_arrays

    # -- node handle protocol ----------------------------------------------

    @property
    def n_items(self) -> int:
        return self._n_items

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def free_capacity(self) -> int:
        return self._capacity - self._n_items

    @property
    def is_full(self) -> bool:
        return self.free_capacity <= 0

    def ping(self) -> int:
        meta, _ = self._call(protocol.OP_PING)
        return int(meta["node_id"])

    def insert_batch(self, vectors: CSRMatrix, global_ids: np.ndarray) -> None:
        meta, _ = self._call(
            protocol.OP_INSERT_BATCH,
            {"n_cols": vectors.n_cols},
            protocol.csr_to_arrays(vectors)
            + [np.ascontiguousarray(global_ids, dtype=np.int64)],
        )
        self._n_items = int(meta["n_items"])

    def query(
        self, q_cols: np.ndarray, q_vals: np.ndarray, *, radius: float | None = None
    ) -> QueryResult:
        _, (ids, dists) = self._call(
            protocol.OP_QUERY,
            {"radius": radius},
            [
                np.ascontiguousarray(q_cols, dtype=np.int64),
                np.ascontiguousarray(q_vals, dtype=np.float32),
            ],
        )
        return QueryResult(ids, dists)

    def query_batch(
        self,
        queries: CSRMatrix,
        *,
        radius: float | None = None,
        mode: str | None = None,
        workers: int | None = None,
        backend: str | None = None,
    ) -> list[QueryResult]:
        meta = {"n_cols": queries.n_cols, "radius": radius}
        # Omitted fields defer to the server's own defaults.
        if mode is not None:
            meta["mode"] = mode
        if workers is not None:
            meta["workers"] = workers
        if backend is not None:
            meta["backend"] = backend
        out_meta, (indptr, ids, dists) = self._call(
            protocol.OP_QUERY_BATCH, meta, protocol.csr_to_arrays(queries)
        )
        self.last_compute_seconds = float(out_meta["seconds"])
        return [
            QueryResult(ids[int(s) : int(e)], dists[int(s) : int(e)])
            for s, e in zip(indptr[:-1], indptr[1:])
        ]

    def delete_global(self, global_ids: np.ndarray) -> int:
        meta, _ = self._call(
            protocol.OP_DELETE_GLOBAL,
            None,
            [np.ascontiguousarray(global_ids, dtype=np.int64)],
        )
        return int(meta["n_deleted"])

    def begin_merge(self) -> bool:
        meta, _ = self._call(protocol.OP_BEGIN_MERGE)
        return bool(meta["started"])

    def commit_merge(self, *, wait: bool = False) -> bool:
        meta, _ = self._call(protocol.OP_COMMIT_MERGE, {"wait": wait})
        return bool(meta["committed"])

    def merge_now(self) -> None:
        self._call(protocol.OP_MERGE_NOW)

    def stats(self) -> dict:
        meta, _ = self._call(protocol.OP_STATS)
        stats = meta["stats"]
        self._n_items = int(stats["n_items"])
        return stats

    def retire(self) -> np.ndarray:
        _, (dropped,) = self._call(protocol.OP_RETIRE)
        self._n_items = 0
        return dropped

    def shutdown(self) -> None:
        """Ask the server process to exit cleanly (idempotent-ish)."""
        try:
            self._call(protocol.OP_SHUTDOWN)
        except (ConnectionError, RemoteNodeError):
            pass  # already gone
        self.close()

    def close(self) -> None:
        """Drop the connection (the server keeps running; see shutdown)."""
        self._conn.close()
        self._alive = False


# -- localhost spawning ----------------------------------------------------


def _node_server_main(
    node_id: int,
    dim: int,
    params: PLSHParams,
    capacity: int,
    hasher: AllPairsHasher,
    delta_fraction: float,
    overlap_merges: bool,
    workers: int | None,
    backend: str | None,
    ready,
) -> None:
    """Child-process entry: build the node, report the port, serve."""
    node = ClusterNode(
        node_id,
        dim,
        params,
        capacity,
        hasher,
        delta_fraction=delta_fraction,
        overlap_merges=overlap_merges,
    )
    server = NodeServer(node, workers=workers, backend=backend)
    ready.send((server.host, server.port))
    ready.close()
    server.serve_forever()


class SpawnedLocalCluster(PLSHCluster):
    """A :class:`PLSHCluster` whose nodes live in forked server processes."""

    #: one multiprocessing.Process per node, index-aligned with ``nodes``.
    processes: list

    def kill_node(self, index: int) -> None:
        """Hard-kill one node's process (failure injection for tests)."""
        proc = self.processes[index]
        proc.kill()
        proc.join(timeout=5.0)

    def close(self) -> None:
        for node in self.nodes:
            try:
                node.shutdown()
            except Exception:
                pass
        for proc in self.processes:
            proc.join(timeout=5.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5.0)
        super().close()


def spawn_local_cluster(
    n_nodes: int,
    node_capacity: int,
    dim: int,
    params: PLSHParams,
    *,
    insert_window: int = 4,
    delta_fraction: float = 0.1,
    overlap_merges: bool = False,
    network: NetworkModel | None = None,
    node_workers: int | None = None,
    node_backend: str | None = None,
    connect_timeout: float = 10.0,
) -> SpawnedLocalCluster:
    """Fork ``n_nodes`` :class:`NodeServer` processes and cluster them.

    Every child is forked *after* the parent draws the hyperplane bank, so
    all nodes share identical hash functions by copy-on-write inheritance
    (required for broadcast querying; works even with ``params.seed=None``).
    Requires a platform with ``fork`` (Linux/macOS); call it before any
    background merge builds are running (fork-while-threaded hazard, same
    rule the fork pool follows).
    """
    from repro.parallel import fork_available

    if not fork_available():
        raise RuntimeError(
            "spawn_local_cluster requires the fork start method "
            "(unavailable on this platform)"
        )
    ctx = multiprocessing.get_context("fork")
    hasher = AllPairsHasher(params, dim)
    processes = []
    ready_ends = []
    handles = []
    try:
        for i in range(n_nodes):
            recv_end, send_end = ctx.Pipe(duplex=False)
            proc = ctx.Process(
                target=_node_server_main,
                args=(
                    i, dim, params, node_capacity, hasher,
                    delta_fraction, overlap_merges,
                    node_workers, node_backend, send_end,
                ),
                daemon=True,
                name=f"plsh-node-{i}",
            )
            proc.start()
            send_end.close()
            processes.append(proc)
            ready_ends.append(recv_end)
        deadline = time.monotonic() + connect_timeout
        for i, recv_end in enumerate(ready_ends):
            if not recv_end.poll(max(0.0, deadline - time.monotonic())):
                raise TimeoutError(f"node {i} did not report a port in time")
            host, port = recv_end.recv()
            recv_end.close()
            handles.append(
                RemoteNodeHandle(
                    i, host, port, node_capacity,
                    connect_timeout=connect_timeout,
                )
            )
    except BaseException:
        for handle in handles:
            handle.close()
        for recv_end in ready_ends:
            recv_end.close()
        for proc in processes:
            if proc.is_alive():
                proc.terminate()
        for proc in processes:
            proc.join(timeout=5.0)
        raise
    cluster = SpawnedLocalCluster.from_handles(
        handles, dim, params,
        insert_window=insert_window, network=network,
    )
    cluster.processes = processes
    return cluster
