"""Vocabulary registry tests."""

from __future__ import annotations

import pytest

from repro.text.vocabulary import Vocabulary


def test_assigns_dense_ids_in_first_seen_order():
    v = Vocabulary()
    ids = v.add_document(["b", "a", "b", "c"])
    assert ids == [0, 1, 0, 2]
    assert v.token(0) == "b"
    assert v.id_of("c") == 2


def test_doc_frequency_counts_documents_not_occurrences():
    v = Vocabulary()
    v.add_document(["x", "x", "y"])
    v.add_document(["x"])
    assert v.doc_frequency(v.id_of("x")) == 2
    assert v.doc_frequency(v.id_of("y")) == 1


def test_build_returns_encoded_corpus():
    v = Vocabulary()
    encoded = v.build([["a", "b"], ["b", "c"]])
    assert encoded == [[0, 1], [1, 2]]
    assert len(v) == 3


def test_freeze_blocks_growth():
    v = Vocabulary()
    v.add_document(["a"])
    v.freeze()
    assert v.frozen
    with pytest.raises(RuntimeError):
        v.add_document(["b"])


def test_encode_drops_unknown_tokens():
    v = Vocabulary()
    v.add_document(["a", "b"])
    v.freeze()
    assert v.encode(["a", "zzz", "b"]) == [0, 1]


def test_contains():
    v = Vocabulary()
    v.add_document(["a"])
    assert "a" in v
    assert "b" not in v
