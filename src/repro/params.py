"""PLSH algorithm parameters (Section 3 and Section 7 of the paper).

The data structure is parameterized by:

* ``k``  — number of bits indexing a single hash table (must be even: each
  table key is the concatenation of two ``k/2``-bit function values).
* ``m``  — number of ``k/2``-bit hash functions ``u_1..u_m``; all unordered
  pairs are combined, giving ``L = m(m-1)/2`` tables.
* ``radius`` — angular query radius R (radians in ``[0, pi]``).
* ``delta`` — failure probability: each R-near neighbor is reported with
  probability at least ``1 - delta``.

The paper's flagship configuration is ``k=16, m=40`` (hence ``L=780``),
``R=0.9``, ``delta=0.1``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from math import pi

__all__ = ["PLSHParams", "PAPER_TWITTER_PARAMS"]


@dataclass(frozen=True)
class PLSHParams:
    """Immutable bundle of LSH parameters with validation.

    Raises :class:`ValueError` on construction if the parameters are not a
    valid PLSH configuration (odd ``k``, fewer than two hash functions, a
    radius outside ``[0, pi]``, ...).
    """

    k: int = 16
    m: int = 40
    radius: float = 0.9
    delta: float = 0.1
    seed: int | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.k < 2:
            raise ValueError(f"k must be >= 2, got {self.k}")
        if self.k % 2 != 0:
            raise ValueError(
                f"k must be even (tables concatenate two k/2-bit functions), got {self.k}"
            )
        if self.k > 32:
            raise ValueError(f"k must be <= 32 so table keys fit in uint32, got {self.k}")
        if self.m < 2:
            raise ValueError(f"m must be >= 2 (need at least one pair), got {self.m}")
        if not 0.0 < self.radius <= pi:
            raise ValueError(f"radius must be in (0, pi], got {self.radius}")
        if not 0.0 < self.delta < 1.0:
            raise ValueError(f"delta must be in (0, 1), got {self.delta}")

    @property
    def bits_per_function(self) -> int:
        """Number of bits per hash function ``u_i`` (``k/2``)."""
        return self.k // 2

    @property
    def n_tables(self) -> int:
        """``L = m(m-1)/2`` — number of hash tables."""
        return self.m * (self.m - 1) // 2

    @property
    def n_hash_bits(self) -> int:
        """Total hyperplanes needed: ``m * k/2`` sign bits."""
        return self.m * self.bits_per_function

    @property
    def n_buckets_per_level(self) -> int:
        """Buckets in one partitioning level: ``2^(k/2)``."""
        return 1 << self.bits_per_function

    @property
    def n_buckets(self) -> int:
        """Buckets per table: ``2^k``."""
        return 1 << self.k

    def table_pairs(self) -> list[tuple[int, int]]:
        """The ``L`` ordered pairs ``(i, j)`` with ``i < j`` defining tables.

        Table ``l`` uses key ``g_l(v) = (u_i(v) << k/2) | u_j(v)``.  Pairs are
        enumerated in row-major order ``(0,1), (0,2), ..., (m-2, m-1)`` so the
        first-level function changes slowest — this is the order in which the
        shared-first-level construction reuses partitions.
        """
        return [(i, j) for i in range(self.m) for j in range(i + 1, self.m)]

    def table_memory_bytes(self, n: int) -> int:
        """Memory for the hash tables per Equation 7.4: ``(L*N + 2^k * L) * 4``."""
        return (self.n_tables * n + self.n_buckets * self.n_tables) * 4

    def with_seed(self, seed: int | None) -> "PLSHParams":
        """Return a copy with a different seed (hash functions re-drawn)."""
        return replace(self, seed=seed)


#: The configuration the paper uses for the billion-tweet evaluation
#: (Section 8): k=16, m=40 (L=780), R=0.9, delta=0.1.
PAPER_TWITTER_PARAMS = PLSHParams(k=16, m=40, radius=0.9, delta=0.1)
