"""Figure 8 — scaling with workers on a single node.

Paper: 7.2x initialization and 7.8x query speedup at 16 SMT threads on an
8-core Xeon.

This bench sweeps worker counts for construction (thread-parallel per-table
partitioning) and for batch querying through the :mod:`repro.parallel`
execution layer:

* ``vectorized x workers`` (``mode="vectorized"`` over the persistent
  fork pool) — **the Figure 8 reproduction**: the PR 1 batch kernel
  sharded into per-worker sub-blocks, each worker a fork()ed process
  sharing the tables copy-on-write.  The pool forks once and stays warm,
  so its setup cost amortizes across batches; the table reports both the
  warm per-batch time and the one-off pool spin-up.
* ``loop x threads`` — the paper's literal design (shared tables,
  per-thread bitvectors) run on CPython, kept to *document the negative
  result*: the GIL serializes the small numpy calls that dominate a
  per-query pipeline, so threads do not reproduce the paper's query
  scaling and can regress.

Shape to check: the vectorized fork-pool column scales monotonically up to
the host core count (>= 1.6x at 2 workers on a >= 2-vCPU host); on a
single-vCPU host every parallel row degenerates to serial-plus-overhead
and only the mechanics are exercised.
"""

from __future__ import annotations

import os
import time

from repro import PLSHIndex
from repro.bench.reporting import format_table, print_section
from repro.bench.runner import measure_median
from repro.parallel import fork_available


def _worker_counts() -> list[int]:
    n_cpu = os.cpu_count() or 1
    counts = [1, 2, 4, 8, 16]
    return [c for c in counts if c <= max(n_cpu, 2)]


def test_fig8_thread_scaling(benchmark, twitter, scale):
    params = scale.params()
    vectors = twitter.vectors
    # Parallelism only pays once the batch carries real work (the paper
    # amortizes over 1000 queries x ~1.4 ms); draw a paper-sized query set
    # from the corpus.
    n_q = int(os.environ.get("PLSH_BENCH_FIG8_QUERIES", "1000"))
    ids = twitter.corpus.sample_query_ids(n_q, seed=97)
    queries = vectors.gather_rows(ids)

    index = PLSHIndex(vectors.n_cols, params).build(vectors)
    engine = index.engine
    assert engine is not None
    pool_backend = "fork_pool" if fork_available() else "thread"

    # Serial vectorized batch kernel: the single-core reference the
    # sharded column must beat.
    vec_s = measure_median(
        lambda: engine.query_batch(queries, mode="vectorized", workers=1),
        repeats=2,
        warmup=1,
    )
    loop_s = measure_median(
        lambda: engine.query_batch(queries, mode="loop", workers=1),
        repeats=1,
        warmup=0,
    )

    rows = []
    base_init = None
    for workers in _worker_counts():
        init_s = measure_median(
            lambda w=workers: PLSHIndex(vectors.n_cols, params).build(
                vectors, workers=w
            ),
            repeats=1,
            warmup=0,
        )
        if base_init is None:
            base_init = init_s
        if workers == 1:
            cold_s = warm_s = vec_s
            thread_s = loop_s
        else:
            # Cold call pays pool creation (fork of the parent); warm
            # calls ride the persistent pool — the steady-state number.
            start = time.perf_counter()
            engine.query_batch(
                queries, mode="vectorized", workers=workers,
                backend=pool_backend,
            )
            cold_s = time.perf_counter() - start
            warm_s = measure_median(
                lambda w=workers: engine.query_batch(
                    queries, mode="vectorized", workers=w,
                    backend=pool_backend,
                ),
                repeats=2,
                warmup=1,
            )
            thread_s = measure_median(
                lambda w=workers: engine.query_batch(
                    queries, workers=w, mode="loop", backend="thread"
                ),
                repeats=2,
                warmup=1,
            )
        rows.append(
            [
                workers,
                init_s * 1e3,
                base_init / init_s,
                warm_s * 1e3,
                vec_s / warm_s,
                (cold_s - warm_s) * 1e3,
                thread_s * 1e3,
                loop_s / thread_s,
            ]
        )

    benchmark.pedantic(
        lambda: engine.query_batch(queries), rounds=3, iterations=1
    )
    engine.close()

    n_cpu = os.cpu_count() or 1
    print_section(
        f"Figure 8 — parallel scaling (host has {n_cpu} cpus; "
        f"N={vectors.n_rows:,}, {queries.n_rows} queries; "
        f"query pool backend: {pool_backend})",
        format_table(
            ["workers", "init ms", "init spd", "vec q ms", "vec spd",
             "pool setup ms", "thread loop ms", "thread spd"],
            rows,
        )
        + f"\nserial vectorized batch kernel: {vec_s * 1e3:.1f} ms "
        f"({loop_s / vec_s:.1f}x over the serial loop); 'vec spd' is the "
        f"sharded kernel's speedup over that bar with a WARM pool; "
        f"'pool setup ms' is the one-off fork cost the first batch pays "
        f"(amortizes to ~0 across a session)"
        + "\npaper: 7.2x init / 7.8x query at 16 threads on 8 cores"
        + "\nthread loop column: CPython GIL serializes per-query numpy"
          " calls — the documented negative result",
    )

    # The Figure 8 claim, asserted only where hardware AND workload can
    # express it: sharding has a fixed per-batch cost (shard pickling over
    # the pool's pipes), so the bar applies at paper-sized batches on
    # multi-core hosts — tiny CI smokes exercise the mechanics only.
    real_scale = vectors.n_rows >= 10_000 and queries.n_rows >= 500
    if not real_scale:
        return
    # Warm sharded-vectorized must scale monotonically (10% noise slack)
    # up to the core count, and reach >= 1.6x at 2 workers on >= 2 vCPUs.
    if fork_available() and n_cpu >= 2:
        in_core_rows = [r for r in rows if r[0] <= n_cpu]
        for prev, cur in zip(in_core_rows, in_core_rows[1:]):
            assert cur[4] >= prev[4] * 0.9, (
                f"vectorized fork-pool speedup not monotone: "
                f"{prev[4]:.2f}x at {prev[0]} workers -> "
                f"{cur[4]:.2f}x at {cur[0]}"
            )
        two = next(r for r in rows if r[0] == 2)
        assert two[4] >= 1.6, (
            f"vectorized fork pool only {two[4]:.2f}x at 2 workers "
            f"on a {n_cpu}-vCPU host (need >= 1.6x)"
        )
    else:
        # Single-core host: the parallel rows cannot beat serial; just
        # guard against a catastrophic regression of the warm path.
        for row in rows[1:]:
            assert row[3] < vec_s * 1e3 * 3.0, (
                f"warm sharded kernel at {row[0]} workers regressed: "
                f"{row[3]:.1f} ms vs serial {vec_s * 1e3:.1f} ms"
            )
