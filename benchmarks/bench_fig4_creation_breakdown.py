"""Figure 4 — PLSH creation optimization breakdown.

Paper: starting from an unoptimized implementation (one-level partitioning,
separate handling per table), "+2-level hashtable", "+shared tables" and
"+vectorization" give a cumulative 3.7x construction speedup (16 threads).

Rungs here (same pipeline slots, Python realization):

1. ``no optimizations``  — one-level partitioning with the literal
   three-step Python partition loop per table (2^k-bucket passes).
2. ``+2-level hashtable`` — two k/2-bit passes per table (Python kernel).
3. ``+shared tables``     — first-level pass shared across tables: L + m
   passes instead of 2L (Python kernel).
4. ``+vectorization``     — same shared pass structure on the numpy radix
   kernel (the production path).

Shape to check: monotone decrease, step 4 largest (SIMD analogue).
The Python rungs run on a subsample so the bench stays in seconds; all
rungs use identical hash values so outputs are bitwise comparable.
"""

from __future__ import annotations

import os

import numpy as np

from repro.bench.reporting import format_table, print_section
from repro.bench.runner import measure
from repro.core.tables import StaticTableSet


def _rung_times(u_values, params):
    subsample = int(os.environ.get("PLSH_BENCH_FIG4_N", "8000"))
    u_small = u_values[:subsample]
    rungs = [
        ("no optimizations", "one_level", False, u_small),
        ("+2-level hashtable", "two_level", False, u_small),
        ("+shared tables", "shared", False, u_small),
        ("+vectorization", "shared", True, u_small),
    ]
    times = []
    for label, strategy, vectorized, u in rungs:
        _, secs = measure(
            lambda s=strategy, v=vectorized, uu=u: StaticTableSet.build(
                uu, params, strategy=s, vectorized=v
            )
        )
        times.append((label, secs, u.shape[0]))
    return times


def test_fig4_creation_breakdown(benchmark, twitter, flagship_index, scale):
    params = scale.params()
    assert flagship_index.u_values is not None
    times = _rung_times(flagship_index.u_values, params)

    # The production path at full scale, timed by pytest-benchmark.
    benchmark.pedantic(
        lambda: StaticTableSet.build(
            flagship_index.u_values, params, strategy="shared", vectorized=True
        ),
        rounds=3,
        iterations=1,
    )

    base = times[0][1]
    rows = [
        [label, n, secs * 1e3, base / secs]
        for label, secs, n in times
    ]
    print_section(
        f"Figure 4 — creation breakdown (L={params.n_tables}, k={params.k})",
        format_table(
            ["rung", "n docs", "time ms", "cumulative speedup"], rows
        )
        + "\npaper: cumulative speedup 3.7x at the final rung",
    )

    labels = [t[0] for t in times]
    secs = [t[1] for t in times]
    # Monotone improvement and a substantial final speedup.
    assert secs[1] < secs[0], f"{labels[1]} not faster than {labels[0]}"
    assert secs[2] < secs[1], f"{labels[2]} not faster than {labels[1]}"
    assert secs[3] < secs[2], f"{labels[3]} not faster than {labels[2]}"
    assert secs[0] / secs[3] > 3.0
