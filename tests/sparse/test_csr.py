"""CSRMatrix unit + property tests, cross-checked against scipy."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse.csr import CSRMatrix


def make_random_csr(rng: np.random.Generator, n_rows=10, n_cols=20, density=0.3):
    dense = (rng.random((n_rows, n_cols)) < density) * rng.standard_normal(
        (n_rows, n_cols)
    )
    return CSRMatrix.from_dense(dense.astype(np.float32)), dense.astype(np.float32)


class TestConstruction:
    def test_from_rows_roundtrip(self):
        m = CSRMatrix.from_rows([([0, 3], [1.0, 2.0]), ([], []), ([4], [5.0])], 5)
        assert m.shape == (3, 5)
        assert m.nnz == 3
        cols, vals = m.row(0)
        np.testing.assert_array_equal(cols, [0, 3])
        np.testing.assert_array_equal(vals, [1.0, 2.0])
        assert m.row(1)[0].size == 0

    def test_from_dense_to_dense_roundtrip(self, rng):
        m, dense = make_random_csr(rng)
        np.testing.assert_allclose(m.to_dense(), dense, rtol=1e-6)

    def test_mismatched_row_raises(self):
        with pytest.raises(ValueError):
            CSRMatrix.from_rows([([0, 1], [1.0])], 5)

    def test_empty_matrix(self):
        m = CSRMatrix.empty(7)
        assert m.shape == (0, 7)
        assert m.nnz == 0

    def test_validate_rejects_bad_indptr(self):
        with pytest.raises(ValueError):
            CSRMatrix(
                np.asarray([1, 2]), np.asarray([0, 0]), np.asarray([1.0, 1.0]), 3
            )

    def test_validate_rejects_decreasing_indptr(self):
        with pytest.raises(ValueError):
            CSRMatrix(
                np.asarray([0, 2, 1]), np.asarray([0, 1]), np.asarray([1.0, 1.0]), 3
            )

    def test_validate_rejects_column_overflow(self):
        with pytest.raises(ValueError):
            CSRMatrix(np.asarray([0, 1]), np.asarray([3]), np.asarray([1.0]), 3)

    def test_validate_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            CSRMatrix(np.asarray([0, 2]), np.asarray([0, 1]), np.asarray([1.0]), 3)


class TestRowAccess:
    def test_gather_rows_matches_dense(self, rng):
        m, dense = make_random_csr(rng)
        take = np.asarray([3, 0, 3, 7])
        g = m.gather_rows(take)
        np.testing.assert_allclose(g.to_dense(), dense[take], rtol=1e-6)

    def test_gather_rows_empty_selection(self, rng):
        m, _ = make_random_csr(rng)
        g = m.gather_rows(np.empty(0, dtype=np.int64))
        assert g.shape == (0, m.n_cols)

    def test_gather_rows_with_empty_rows(self):
        m = CSRMatrix.from_rows([([], []), ([1], [2.0]), ([], [])], 3)
        g = m.gather_rows(np.asarray([0, 2, 1]))
        assert g.row_lengths().tolist() == [0, 0, 1]

    def test_slice_rows_matches_dense(self, rng):
        m, dense = make_random_csr(rng)
        s = m.slice_rows(2, 6)
        np.testing.assert_allclose(s.to_dense(), dense[2:6], rtol=1e-6)

    def test_slice_rows_bounds_checked(self, rng):
        m, _ = make_random_csr(rng)
        with pytest.raises(IndexError):
            m.slice_rows(0, 99)

    def test_row_lengths(self):
        m = CSRMatrix.from_rows([([0], [1.0]), ([], []), ([1, 2], [1.0, 1.0])], 3)
        assert m.row_lengths().tolist() == [1, 0, 2]


class TestVstackAndNorms:
    def test_vstack_matches_dense(self, rng):
        a, da = make_random_csr(rng, n_rows=4)
        b, db = make_random_csr(rng, n_rows=6)
        stacked = CSRMatrix.vstack([a, b])
        np.testing.assert_allclose(
            stacked.to_dense(), np.vstack([da, db]), rtol=1e-6
        )

    def test_vstack_rejects_column_mismatch(self, rng):
        a, _ = make_random_csr(rng, n_cols=5)
        b, _ = make_random_csr(rng, n_cols=6)
        with pytest.raises(ValueError):
            CSRMatrix.vstack([a, b])

    def test_vstack_empty_list_raises(self):
        with pytest.raises(ValueError):
            CSRMatrix.vstack([])

    def test_row_norms_match_numpy(self, rng):
        m, dense = make_random_csr(rng)
        np.testing.assert_allclose(
            m.row_norms(), np.linalg.norm(dense, axis=1), rtol=1e-5
        )

    def test_normalized_rows_are_unit(self, rng):
        m, _ = make_random_csr(rng, density=0.5)
        norms = m.normalized().row_norms()
        nonempty = m.row_lengths() > 0
        np.testing.assert_allclose(norms[nonempty], 1.0, rtol=1e-5)

    def test_normalized_keeps_empty_rows_empty(self):
        m = CSRMatrix.from_rows([([], []), ([0], [3.0])], 2)
        normed = m.normalized()
        assert normed.row_norms()[0] == 0.0
        np.testing.assert_allclose(normed.row_norms()[1], 1.0)


@st.composite
def csr_strategy(draw):
    n_rows = draw(st.integers(0, 8))
    n_cols = draw(st.integers(1, 12))
    rows = []
    for _ in range(n_rows):
        cols = draw(
            st.lists(
                st.integers(0, n_cols - 1), unique=True, max_size=n_cols
            )
        )
        vals = draw(
            st.lists(
                st.floats(-5, 5, allow_nan=False, width=32),
                min_size=len(cols),
                max_size=len(cols),
            )
        )
        rows.append((sorted(cols), vals))
    return CSRMatrix.from_rows(rows, n_cols)


@settings(max_examples=60, deadline=None)
@given(m=csr_strategy())
def test_scipy_equivalence_property(m):
    """to_scipy/to_dense must agree for arbitrary structures."""
    np.testing.assert_allclose(m.to_dense(), m.to_scipy().toarray(), rtol=1e-6)


@settings(max_examples=40, deadline=None)
@given(m=csr_strategy(), data=st.data())
def test_gather_rows_property(m, data):
    if m.n_rows == 0:
        return
    take = data.draw(
        st.lists(st.integers(0, m.n_rows - 1), min_size=1, max_size=10)
    )
    g = m.gather_rows(np.asarray(take))
    np.testing.assert_allclose(g.to_dense(), m.to_dense()[take], rtol=1e-6)
