"""``NodeServer`` — one process owning one :class:`ClusterNode`.

The paper's deployment (Section 4, Figure 1) runs one PLSH engine per
node, with a coordinator broadcasting queries over the interconnect.  A
``NodeServer`` is that per-node engine as a real OS process: it owns a
:class:`~repro.cluster.node.ClusterNode` and serves the binary protocol of
:mod:`repro.cluster.protocol` over a TCP socket — insert/query/delete hot
paths move raw CSR and result buffers, never pickle.

The server is single-client by design (its only peer is the coordinator):
it accepts one connection at a time and processes requests sequentially,
which also serializes mutations against queries exactly like the
in-process node.  Parallelism lives *inside* the node (its per-node
worker pools shard a batch across cores) and *across* nodes (the
coordinator keeps every node's request in flight concurrently).

A failed request answers ``STATUS_ERROR`` with the exception message and
keeps serving; only ``shutdown`` (or ``SIGTERM``) stops the process.
"""

from __future__ import annotations

import socket

import numpy as np

from repro.cluster import protocol
from repro.cluster.node import ClusterNode
from repro.cluster.shm import ShmRing
from repro.cluster.transport import Connection, ShmConnection
from repro.core.query import QueryResult

__all__ = ["NodeServer"]


class NodeServer:
    """Serves one :class:`ClusterNode` over a listening TCP socket."""

    def __init__(
        self,
        node: ClusterNode,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int | None = None,
        backend: str | None = None,
    ) -> None:
        self.node = node
        #: default parallelism for this node's batch kernel (the paper's
        #: per-node multithreaded engine); the request meta can override.
        self.workers = workers
        self.backend = backend
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(1)
        self.host, self.port = self._listener.getsockname()[:2]
        self._running = False

    # -- lifecycle ---------------------------------------------------------

    def serve_forever(self) -> None:
        """Accept coordinator connections until a ``shutdown`` request.

        A dropped connection returns the server to ``accept`` — the
        coordinator may reconnect after a transient failure.
        """
        self._running = True
        try:
            while self._running:
                try:
                    sock, _ = self._listener.accept()
                except OSError:
                    break  # listener closed under us: shut down
                conn = Connection(sock)
                try:
                    self._serve_connection(conn)
                finally:
                    conn.close()
        finally:
            self.close()

    def _serve_connection(self, conn: Connection) -> None:
        rings: list[ShmRing] = []
        try:
            while self._running:
                try:
                    # Zero-copy receive: over shm the query hot path gets
                    # views straight into the client's ring.  Ops that
                    # retain buffers past this request copy them below.
                    code, meta, arrays = conn.recv_message(copy=False)
                except ConnectionError:
                    return  # client went away; back to accept
                if code == protocol.OP_HELLO:
                    conn = self._handle_hello(conn, meta, rings)
                    continue
                if arrays and code not in (
                    protocol.OP_QUERY, protocol.OP_QUERY_BATCH
                ):
                    arrays = [np.array(a, copy=True) for a in arrays]
                try:
                    status, out_meta, out_arrays = self._handle(
                        code, meta, arrays
                    )
                except Exception as exc:  # surface, don't die: per-node errors
                    status = protocol.STATUS_ERROR
                    out_meta = {
                        "error": str(exc),
                        "type": type(exc).__name__,
                        "op": protocol.OP_NAMES.get(code, str(code)),
                    }
                    out_arrays = []
                try:
                    conn.send_message(status, out_meta, out_arrays)
                except ConnectionError:
                    return
                if code == protocol.OP_SHUTDOWN and status == protocol.STATUS_OK:
                    self._running = False
        finally:
            for ring in rings:
                ring.close()  # detach only; the client owns /dev/shm entries

    def _handle_hello(
        self, conn: Connection, meta: dict, rings: list
    ) -> Connection:
        """Negotiate transport features; returns the (possibly wrapped)
        connection to keep serving on.  Failure to attach the client's
        rings declines shm and keeps plain TCP — never kills the
        connection."""
        shm_meta = meta.get("shm") or {}
        req_ring = resp_ring = None
        if shm_meta.get("req") and shm_meta.get("resp"):
            try:
                req_ring = ShmRing.attach(str(shm_meta["req"]))
                resp_ring = ShmRing.attach(str(shm_meta["resp"]))
            except (OSError, ValueError) as exc:
                if req_ring is not None:
                    req_ring.close()
                try:
                    conn.send_message(
                        protocol.STATUS_OK, {"shm": False, "reason": str(exc)}
                    )
                except ConnectionError:
                    pass
                return conn
        if req_ring is None or resp_ring is None:
            try:
                conn.send_message(
                    protocol.STATUS_OK, {"shm": False, "reason": "not offered"}
                )
            except ConnectionError:
                pass
            return conn
        rings.extend([req_ring, resp_ring])
        try:
            conn.send_message(protocol.STATUS_OK, {"shm": True})
        except ConnectionError:
            return conn
        # Client's request ring is our inbound; its response ring our out.
        return ShmConnection(conn, out_ring=resp_ring, in_ring=req_ring)

    def close(self) -> None:
        self._running = False
        try:
            self._listener.close()
        finally:
            self.node.close()

    # -- request dispatch --------------------------------------------------

    def _handle(
        self, code: int, meta: dict, arrays: list[np.ndarray]
    ) -> tuple[int, dict, list[np.ndarray]]:
        node = self.node
        if code == protocol.OP_PING:
            return protocol.STATUS_OK, {"node_id": node.node_id}, []
        if code == protocol.OP_INSERT_BATCH:
            # A fifth array carries optional per-row insert timestamps
            # (the cluster clock); four-array messages stamp server-side.
            indptr, indices, data, global_ids = arrays[:4]
            timestamps = (
                protocol.widen_ids(arrays[4]) if len(arrays) > 4 else None
            )
            vectors = protocol.arrays_to_csr(
                indptr, indices, data, int(meta["n_cols"])
            )
            node.insert_batch(
                vectors, protocol.widen_ids(global_ids), timestamps
            )
            return protocol.STATUS_OK, {"n_items": node.n_items}, []
        if code == protocol.OP_QUERY:
            q_cols, q_vals = arrays
            res = node.query(
                q_cols,
                q_vals,
                radius=meta.get("radius"),
                time_range=_meta_time_range(meta),
            )
            return protocol.STATUS_OK, {}, [res.indices, res.distances]
        if code == protocol.OP_QUERY_BATCH:
            return self._handle_query_batch(meta, arrays)
        if code == protocol.OP_DELETE_GLOBAL:
            (global_ids,) = arrays
            n = node.delete_global(protocol.widen_ids(global_ids))
            return protocol.STATUS_OK, {"n_deleted": n}, []
        if code == protocol.OP_BEGIN_MERGE:
            return protocol.STATUS_OK, {"started": node.begin_merge()}, []
        if code == protocol.OP_COMMIT_MERGE:
            landed = node.commit_merge(wait=bool(meta.get("wait", False)))
            return protocol.STATUS_OK, {"committed": landed}, []
        if code == protocol.OP_MERGE_NOW:
            node.merge_now()
            return protocol.STATUS_OK, {"n_items": node.n_items}, []
        if code == protocol.OP_STATS:
            return protocol.STATUS_OK, {"stats": node.stats()}, []
        if code == protocol.OP_RETIRE:
            dropped = node.retire()
            return protocol.STATUS_OK, {"n_items": node.n_items}, [dropped]
        if code == protocol.OP_RETIRE_WINDOW:
            dropped = node.retire_window()
            return (
                protocol.STATUS_OK,
                {"n_items": node.n_items},
                [protocol.compact_ids(dropped)],
            )
        if code == protocol.OP_RETIRE_BEFORE:
            dropped = node.retire_before(int(meta["cutoff"]))
            return (
                protocol.STATUS_OK,
                {"n_items": node.n_items},
                [protocol.compact_ids(dropped)],
            )
        if code == protocol.OP_EXPORT_STATE:
            payload = node.export_state()
            keys = sorted(payload)
            return (
                protocol.STATUS_OK,
                {"keys": keys},
                [payload[k] for k in keys],
            )
        if code == protocol.OP_IMPORT_STATE:
            keys = meta["keys"]
            if len(keys) != len(arrays):
                raise ValueError(
                    f"{len(keys)} state keys but {len(arrays)} arrays"
                )
            node.import_state(dict(zip(keys, arrays)))
            return protocol.STATUS_OK, {"n_items": node.n_items}, []
        if code == protocol.OP_SHUTDOWN:
            return protocol.STATUS_OK, {}, []
        raise ValueError(f"unknown op code {code}")

    def _handle_query_batch(
        self, meta: dict, arrays: list[np.ndarray]
    ) -> tuple[int, dict, list[np.ndarray]]:
        import time

        indptr, indices, data = arrays
        queries = protocol.arrays_to_csr(
            indptr, indices, data, int(meta["n_cols"])
        )
        workers = meta.get("workers", self.workers)
        backend = meta.get("backend", self.backend)
        start = time.perf_counter()
        results = self.node.query_batch(
            queries,
            radius=meta.get("radius"),
            mode=meta.get("mode"),
            workers=workers,
            backend=backend,
            time_range=_meta_time_range(meta),
        )
        seconds = time.perf_counter() - start
        return (
            protocol.STATUS_OK,
            {"seconds": seconds},
            _pack_results(results, score_dtype=meta.get("score_dtype")),
        )


def _meta_time_range(meta: dict) -> tuple[int, int] | None:
    """Decode the optional ``time_range`` meta field (a 2-element list —
    JSON has no tuples) back into the engine's half-open window."""
    tr = meta.get("time_range")
    if tr is None:
        return None
    t0, t1 = tr
    return (int(t0), int(t1))


def _pack_results(
    results: list[QueryResult], *, score_dtype: str | None = None
) -> list[np.ndarray]:
    """Flatten per-query results into ``[indptr, ids, distances]``.

    Compact wire dtypes: ``indptr`` and ``ids`` narrow to int32 when
    their values fit (exact; the client widens them back), and
    ``score_dtype="float16"`` halves the distance column again — lossy
    by half-precision rounding, which the radius filter's tolerance
    admits (the client opts in per handle and tests bound the error).
    """
    counts = np.fromiter(
        (len(r) for r in results), count=len(results), dtype=np.int64
    )
    indptr = np.zeros(len(results) + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    if results:
        ids = np.concatenate([r.indices for r in results])
        dists = np.concatenate([r.distances for r in results])
    else:
        ids = np.empty(0, dtype=np.int64)
        dists = np.empty(0, dtype=np.float32)
    ids = np.ascontiguousarray(ids, dtype=np.int64)
    dists = np.ascontiguousarray(dists, dtype=np.float32)
    if score_dtype == "float16":
        dists = dists.astype(np.float16)
    elif score_dtype not in (None, "float32"):
        raise ValueError(f"unknown score_dtype {score_dtype!r}")
    return [protocol.compact_ids(indptr), protocol.compact_ids(ids), dists]
